"""Fig 4 — GPU read bandwidth vs message size and prefetch window (flushed TX).

Regenerates the paper artefact through the registered experiment; run with
pytest benchmarks/test_fig4.py --benchmark-only -s to see the table.
"""


def test_fig4(run_experiment):
    result = run_experiment("fig4")
    assert result.comparisons or result.rendered
