"""Fig 12 — BFS execution-time breakdown at NP=4.

Regenerates the paper artefact through the registered experiment; run with
pytest benchmarks/test_fig12.py --benchmark-only -s to see the table.
"""


def test_fig12(run_experiment):
    result = run_experiment("fig12")
    assert result.comparisons or result.rendered
