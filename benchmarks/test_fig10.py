"""Fig 10 — LogP host overhead from bandwidth-test run times.

Regenerates the paper artefact through the registered experiment; run with
pytest benchmarks/test_fig10.py --benchmark-only -s to see the table.
"""


def test_fig10(run_experiment):
    result = run_experiment("fig10")
    assert result.comparisons or result.rendered
