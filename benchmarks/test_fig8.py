"""Fig 8 — APEnet+ half-RTT latency, four buffer combinations.

Regenerates the paper artefact through the registered experiment; run with
pytest benchmarks/test_fig8.py --benchmark-only -s to see the table.
"""


def test_fig8(run_experiment):
    result = run_experiment("fig8")
    assert result.comparisons or result.rendered
