"""Table I — APEnet+ low-level loop-back bandwidths.

Regenerates the paper artefact through the registered experiment; run with
pytest benchmarks/test_table1.py --benchmark-only -s to see the table.
"""


def test_table1(run_experiment):
    result = run_experiment("table1")
    assert result.comparisons or result.rendered
