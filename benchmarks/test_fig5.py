"""Fig 5 — G-G loop-back bandwidth (Nios II shared between TX and RX).

Regenerates the paper artefact through the registered experiment; run with
pytest benchmarks/test_fig5.py --benchmark-only -s to see the table.
"""


def test_fig5(run_experiment):
    result = run_experiment("fig5")
    assert result.comparisons or result.rendered
