"""Table III — HSG two-node breakdown by P2P mode.

Regenerates the paper artefact through the registered experiment; run with
pytest benchmarks/test_table3.py --benchmark-only -s to see the table.
"""


def test_table3(run_experiment):
    result = run_experiment("table3")
    assert result.comparisons or result.rendered
