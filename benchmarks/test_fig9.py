"""Fig 9 — G-G latency: P2P vs staging vs MVAPICH2/InfiniBand.

Regenerates the paper artefact through the registered experiment; run with
pytest benchmarks/test_fig9.py --benchmark-only -s to see the table.
"""


def test_fig9(run_experiment):
    result = run_experiment("fig9")
    assert result.comparisons or result.rendered
