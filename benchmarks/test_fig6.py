"""Fig 6 — Two-node uni-directional bandwidth, four buffer combinations.

Regenerates the paper artefact through the registered experiment; run with
pytest benchmarks/test_fig6.py --benchmark-only -s to see the table.
"""


def test_fig6(run_experiment):
    result = run_experiment("fig6")
    assert result.comparisons or result.rendered
