"""Fig 3 — PCIe bus-analyzer timings of a GPU-buffer transmission.

Regenerates the paper artefact through the registered experiment; run with
pytest benchmarks/test_fig3.py --benchmark-only -s to see the table.
"""


def test_fig3(run_experiment):
    result = run_experiment("fig3")
    assert result.comparisons or result.rendered
