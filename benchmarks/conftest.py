"""Shared fixtures for the benchmark suite.

Each benchmark runs one registered experiment (one per paper table/figure)
exactly once per round — the experiments are deterministic simulations, so
repeated timing rounds would only measure the host machine, not the model.

Set ``REPRO_FULL=1`` to run the paper's full parameters (slow: the BFS
table alone takes several minutes at scale 20).
"""

import os

import pytest


def full_mode() -> bool:
    return os.environ.get("REPRO_FULL", "0") == "1"


@pytest.fixture
def run_experiment(benchmark):
    """Run an experiment under pytest-benchmark and echo its output."""

    def _run(exp_id: str):
        from repro.bench import run

        result = benchmark.pedantic(
            lambda: run(exp_id, quick=not full_mode()), rounds=1, iterations=1
        )
        print()
        print(result.rendered)
        for name, measured, paper, unit in result.comparisons:
            if paper:
                dev = (measured - paper) / paper * 100
                print(f"  {name}: {measured:.4g} vs paper {paper:.4g} {unit} ({dev:+.1f}%)")
        return result

    return _run
