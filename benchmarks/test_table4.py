"""Table IV — BFS TEPS strong scaling, APEnet+ vs InfiniBand.

Regenerates the paper artefact through the registered experiment; run with
pytest benchmarks/test_table4.py --benchmark-only -s to see the table.
"""


def test_table4(run_experiment):
    result = run_experiment("table4")
    assert result.comparisons or result.rendered
