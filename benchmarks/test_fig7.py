"""Fig 7 — G-G bandwidth: P2P vs staging vs MVAPICH2/InfiniBand.

Regenerates the paper artefact through the registered experiment; run with
pytest benchmarks/test_fig7.py --benchmark-only -s to see the table.
"""


def test_fig7(run_experiment):
    result = run_experiment("fig7")
    assert result.comparisons or result.rendered
