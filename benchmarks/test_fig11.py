"""Fig 11 — HSG strong-scaling speedups incl. the super-linear L=512.

Regenerates the paper artefact through the registered experiment; run with
pytest benchmarks/test_fig11.py --benchmark-only -s to see the table.
"""


def test_fig11(run_experiment):
    result = run_experiment("fig11")
    assert result.comparisons or result.rendered
