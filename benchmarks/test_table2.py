"""Table II — HSG strong scaling at L=256 (ps per spin update).

Regenerates the paper artefact through the registered experiment; run with
pytest benchmarks/test_table2.py --benchmark-only -s to see the table.
"""


def test_table2(run_experiment):
    result = run_experiment("table2")
    assert result.comparisons or result.rendered
