#!/usr/bin/env python
"""Collectives + diagnostics: library building blocks on an 8-node torus.

Shows the reusable pieces a downstream application would build on instead
of hand-rolling its communication: the collective-operations library
(barrier / broadcast / allreduce / alltoallv / ring exchange) over the
RDMA API, and the post-run diagnostics report that explains where the
hardware spent its time.

Run:  python examples/collective_workloads.py
"""

import numpy as np

from repro.bench.diagnostics import render_report
from repro.net import TorusShape, build_apenet_cluster, make_collectives
from repro.sim import Simulator
from repro.units import fmt_time, kib


def main():
    sim = Simulator()
    cluster = build_apenet_cluster(sim, TorusShape(4, 2, 1))
    colls = make_collectives(cluster, scratch_bytes=kib(256))
    n = len(cluster)
    results = {}

    def rank_proc(c):
        yield from c.setup()

        # 1. A barrier: nobody proceeds until all 8 ranks arrived.
        yield from c.barrier(tag=("demo", "start"))
        t_bar = sim.now

        # 2. Broadcast a configuration object from rank 0.
        config = yield from c.broadcast(
            {"iterations": 3, "payload": kib(64)} if c.rank == 0 else None
        )

        # 3. An iterative all-to-all + allreduce workload (BFS-shaped).
        checksum = 0
        for it in range(config["iterations"]):
            payloads, sizes = {}, {}
            for p in range(n):
                if p == c.rank:
                    continue
                buf = np.full(config["payload"] // n, c.rank * 10 + it, np.uint8)
                payloads[p], sizes[p] = buf, len(buf)
            got = yield from c.alltoallv(payloads, sizes, tag=("a2a", it))
            checksum += sum(int(v.sum()) for v in got.values())
            total = yield from c.allreduce(checksum, tag=("sum", it))
            checksum = total if c.rank == 0 else checksum

        # 4. A ring halo exchange (HSG-shaped).
        halo = np.full(kib(8), c.rank, np.uint8)
        from_down, from_up = yield from c.ring_exchange(halo, halo, kib(8))
        assert from_down[0] == (c.rank - 1) % n
        assert from_up[0] == (c.rank + 1) % n

        results[c.rank] = (t_bar, checksum)

    procs = [sim.process(rank_proc(c)) for c in colls]
    sim.run()
    assert all(p.processed for p in procs)

    t_bars = {r: t for r, (t, _) in results.items()}
    print(f"8 ranks released from the opening barrier within "
          f"{fmt_time(max(t_bars.values()) - min(t_bars.values()))} of each other")
    print(f"workload finished at t={fmt_time(sim.now)} (simulated)\n")
    print(render_report(cluster))


if __name__ == "__main__":
    main()
