#!/usr/bin/env python
"""Design-space exploration with the card model (ablation playground).

Three studies the paper's engineers would recognise:

1. prefetch-window sweep vs GPU read head latency — where does Fig 4's
   knee come from, and what would a lower-latency GPU protocol buy?
2. the Nios II bottleneck — what the RX path would do with faster firmware
   (the "we are currently working on adding more hardware blocks to
   accelerate the RX task" ending of §V.B);
3. platform topology — why the paper's Table I footnote insists on a PLX
   switch for the BAR1/"ideal" numbers, and what a QPI hop would cost.

Run:  python examples/interconnect_explorer.py
"""

from repro.apenet import BufferKind, GpuTxVersion
from repro.bench.microbench import (
    loopback_read_bandwidth,
    pingpong_latency,
    unidirectional_bandwidth,
)
from repro.units import KiB, mib, us

G, H = BufferKind.GPU, BufferKind.HOST


def prefetch_window_study():
    print("== 1. Prefetch window vs GPU head latency (flushed read, MB/s) ==")
    windows = [4, 8, 16, 32]
    latencies = {"Fermi 1.8us": None, "hypothetical 0.6us": us(0.6)}
    print(f"{'window':>8} | " + " | ".join(f"{k:>18}" for k in latencies))
    for w in windows:
        row = []
        for label, lat in latencies.items():
            kw = dict(gpu_tx_version=GpuTxVersion.V2, prefetch_window=w * KiB)
            if lat is not None:
                # Lower-latency GPU: patch the spec via a custom cluster.
                from dataclasses import replace
                from repro.gpu import FERMI_2050

                kw["gpu_spec"] = replace(FERMI_2050, p2p_read_head_latency=lat)
            r = loopback_read_bandwidth(G, mib(1), n_messages=4, **kw)
            row.append(r.MBps)
        print(f"{w:>6}KB | " + " | ".join(f"{v:>18.0f}" for v in row))
    print("-> the window hides latency: bw ~ W / (head + W/rate)\n")


def nios_study():
    print("== 2. What would faster RX firmware buy? (H-H loop-back, MB/s) ==")
    for scale_label, f in (("today", 1.0), ("2x faster", 0.5), ("4x faster", 0.25)):
        r = unidirectional_bandwidth(
            H, H, mib(1), n_messages=4, loopback=True,
            rx_buflist_base=1350.0 * f, rx_v2p_cost=1400.0 * f,
            rx_packet_overhead=450.0 * f,
        )
        print(f"  RX firmware {scale_label:>10}: {r.MBps:7.0f} MB/s")
    print("-> Table I's conclusion: 'the Nios II micro-controller is the "
        "main performance bottleneck'\n")


def topology_study():
    print("== 3. Platform topology: H-H small-message latency (us) ==")
    base = pingpong_latency(H, H, 32)
    slow_links = pingpong_latency(H, H, 32, link_latency=800.0)
    print(f"  standard platform        : {base.usec:.2f}")
    print(f"  +650ns per torus hop     : {slow_links.usec:.2f}")
    fast_rtr = pingpong_latency(H, H, 32, router_latency=10.0)
    print(f"  near-zero router latency : {fast_rtr.usec:.2f}")
    print("-> most of the 6.3us H-H latency lives in the RX firmware, "
          "not the wires")


if __name__ == "__main__":
    prefetch_window_study()
    nios_study()
    topology_study()
