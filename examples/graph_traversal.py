#!/usr/bin/env python
"""Distributed GPU BFS on a graph500 RMAT graph (the paper's §V.E app).

Runs a level-synchronous BFS across four simulated GPUs — once over the
APEnet+ torus (GPU peer-to-peer PUTs), once over InfiniBand with manually
staged MPI — validates both traversals against a serial reference, and
prints the TEPS figures and the per-task compute/communication breakdown
of Fig 12.

Run:  python examples/graph_traversal.py
"""

from repro.apps.bfs import BfsConfig, run_bfs


def traverse(transport: str, scale: int = 14, np_: int = 4):
    res = run_bfs(BfsConfig(scale=scale, np_=np_, transport=transport, validate=True))
    assert res.validation_errors == [], res.validation_errors
    return res


def main():
    scale, np_ = 14, 4
    print(f"RMAT scale={scale} (|V|=2^{scale}, ~{16 << scale} edges), {np_} GPUs\n")

    results = {}
    for transport in ("apenet", "ib"):
        res = traverse(transport, scale, np_)
        results[transport] = res
        reached = int((res.levels >= 0).sum())
        print(f"[{transport:6s}] TEPS={res.teps:.3e}  levels={res.n_levels}  "
              f"reached {reached}/{1 << scale} vertices  "
              f"(validated against serial BFS)")

    print("\nPer-task breakdown (Fig 12 style), task 1 of 4:")
    print(f"{'fabric':>8} | {'compute ms':>10} | {'comm ms':>8} | comm share")
    for transport, res in results.items():
        b = res.breakdown[1]
        print(f"{transport:>8} | {b.t_compute_ns / 1e6:>10.2f} | "
              f"{b.t_comm_ns / 1e6:>8.2f} | {b.comm_fraction * 100:.0f}%")

    print("\nStrong scaling (APEnet+, Table IV style):")
    for n in (1, 2, 4, 8):
        r = run_bfs(BfsConfig(scale=scale, np_=n, transport="apenet", validate=False))
        print(f"  NP={n}: {r.teps:.3e} TEPS")
    print("\n(paper, scale 20: 6.7e7 / 9.8e7 / 1.3e8 / 1.7e8 TEPS — "
          "run `python -m repro.bench table4 --full` for the full graph)")


if __name__ == "__main__":
    main()
