#!/usr/bin/env python
"""Quickstart: GPU-to-GPU RDMA over the simulated APEnet+ torus.

Builds a two-node cluster, registers a GPU buffer on the receiver, and
PUTs real data straight from the sender's GPU memory — the paper's
headline capability — then repeats the same transfer with host staging to
show why peer-to-peer wins for small messages.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.apenet import BufferKind
from repro.bench.microbench import pingpong_latency, staged_pingpong_latency
from repro.net import TorusShape, build_apenet_cluster
from repro.sim import Simulator
from repro.units import fmt_bw, fmt_time, kib, us


def main():
    # ------------------------------------------------------------------
    # 1. Build a 2x1 torus: each node = Westmere host + Fermi GPU + APEnet+
    # ------------------------------------------------------------------
    sim = Simulator()
    cluster = build_apenet_cluster(sim, TorusShape(2, 1, 1))
    sender, receiver = cluster.nodes

    # ------------------------------------------------------------------
    # 2. Allocate GPU buffers and fill the source with real data
    # ------------------------------------------------------------------
    nbytes = kib(64)
    src = sender.gpu.alloc(nbytes)
    dst = receiver.gpu.alloc(nbytes)
    src.data[:] = np.arange(nbytes, dtype=np.uint8) % 251

    # ------------------------------------------------------------------
    # 3. Register the destination and PUT (GPU peer-to-peer, both ends)
    # ------------------------------------------------------------------
    timings = {}

    def receiver_proc():
        yield from receiver.endpoint.register(dst.addr, nbytes)
        rec = yield from receiver.endpoint.wait_event()
        timings["delivered"] = sim.now
        print(f"[receiver] message #{rec.msg_id} arrived: {rec.nbytes} B "
              f"from rank {rec.src_rank} at t={fmt_time(sim.now)}")

    def sender_proc():
        yield sim.timeout(us(10))  # let registration land
        yield from sender.endpoint.register(src.addr, nbytes)
        timings["start"] = sim.now
        local_done = yield from sender.endpoint.put(
            dst_rank=1,
            local_addr=src.addr,
            remote_addr=dst.addr,
            nbytes=nbytes,
            src_kind=BufferKind.GPU,  # the compile-time buffer-type flag
        )
        yield local_done
        print(f"[sender]   local completion at t={fmt_time(sim.now)} "
              f"(GPU memory fully read by the NIC)")

    sim.process(receiver_proc())
    sim.process(sender_proc())
    sim.run()

    elapsed = timings["delivered"] - timings["start"]
    print(f"\n{nbytes} bytes GPU->GPU in {fmt_time(elapsed)} "
          f"({fmt_bw(nbytes / elapsed)})")
    assert np.array_equal(dst.data, src.data), "data corruption!"
    print("payload verified byte-for-byte at the destination GPU\n")

    # ------------------------------------------------------------------
    # 4. Why peer-to-peer?  Small-message latency vs host staging
    # ------------------------------------------------------------------
    p2p = pingpong_latency(BufferKind.GPU, BufferKind.GPU, 32)
    staged = staged_pingpong_latency(32)
    print(f"G-G half-round-trip @32B:  P2P {p2p.usec:.1f} us   "
          f"staging {staged.usec:.1f} us   "
          f"(paper: 8.2 vs 16.8 us — '50% less latency')")


if __name__ == "__main__":
    main()
