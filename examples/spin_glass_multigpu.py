#!/usr/bin/env python
"""Multi-GPU Heisenberg Spin Glass over-relaxation (the paper's §V.D app).

Part 1 validates the physics: the distributed run moves real spin planes
through the simulated network and must match the serial lattice exactly
(and conserve energy, which over-relaxation does by construction).

Part 2 is a strong-scaling study at L=256 comparing the three P2P modes —
the Table II / Table III experiment at example scale.

Run:  python examples/spin_glass_multigpu.py
"""

import numpy as np

from repro.apps.hsg import HsgConfig, SpinLattice, run_hsg


def validate_physics():
    print("== Part 1: distributed physics == ")
    L, sweeps = 16, 3
    ref = SpinLattice((L, L, L), seed=11)
    e0 = ref.energy()
    for _ in range(sweeps):
        ref.sweep()
    print(f"serial     : E0={e0:+.6f}  drift={abs(ref.energy() - e0):.2e}")

    res = run_hsg(
        HsgConfig(L=L, np_=4, p2p_mode="on", sweeps=sweeps, validate=True, seed=11)
    )
    drift = abs(res.energy_after - res.energy_before)
    match = np.allclose(res.spins, ref.spins, atol=1e-10)
    print(f"distributed: E0={res.energy_before:+.6f}  drift={drift:.2e}  "
          f"matches serial: {match}")
    assert match and drift < 1e-8


def scaling_study():
    print("\n== Part 2: strong scaling at L=256 (ps per spin update) ==")
    print(f"{'NP':>3} | {'P2P=ON':>8} | {'P2P=RX':>8} | {'P2P=OFF':>8} | speedup(ON)")
    base = None
    for np_ in (1, 2, 4, 8):
        row = {}
        for mode in ("on", "rx", "off"):
            if np_ == 1 and mode != "on":
                row[mode] = row.get("on")
                continue
            r = run_hsg(HsgConfig(L=256, np_=np_, p2p_mode=mode, sweeps=2))
            row[mode] = r.ttot_ps
        if base is None:
            base = row["on"]
        print(f"{np_:>3} | {row['on']:>8.0f} | {row['rx']:>8.0f} | "
              f"{row['off']:>8.0f} | {base / row['on']:.2f}x")
    print("\npaper Table II (P2P=ON): 921 / 416 / 202 / 148 ps per spin")


if __name__ == "__main__":
    validate_physics()
    scaling_study()
