"""Heisenberg spin lattice and the over-relaxation kernel (real physics).

The model: classical 3-component unit spins on a 3D periodic lattice with
nearest-neighbour exchange coupling,

    E = - sum_<ij> s_i . s_j .

Microcanonical **over-relaxation** reflects each spin about its local field
h_i = sum_{j in nn(i)} s_j:

    s_i'  =  2 (s_i . h_i) / (h_i . h_i)  h_i  -  s_i ,

which preserves |s_i| = 1 and the energy exactly — the invariants our
property tests pin down.  Sites are updated in the checkerboard (even/odd)
order the paper's CUDA code uses, so all updates within a parity are
independent (and the update is deterministic given the ordering).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["SpinLattice", "overrelax_spins"]


def _normalize(v: np.ndarray) -> np.ndarray:
    norm = np.sqrt((v * v).sum(axis=-1, keepdims=True))
    return v / norm


def overrelax_spins(spins: np.ndarray, field: np.ndarray) -> np.ndarray:
    """Reflect *spins* about *field* (both (..., 3) arrays).

    Zero-field sites (possible only on pathological lattices) are left
    unchanged.
    """
    h2 = (field * field).sum(axis=-1, keepdims=True)
    sh = (spins * field).sum(axis=-1, keepdims=True)
    safe = np.where(h2 > 0, h2, 1.0)
    reflected = 2.0 * (sh / safe) * field - spins
    return np.where(h2 > 0, reflected, spins)


class SpinLattice:
    """A (nx, ny, nz) periodic Heisenberg lattice with float64 spins."""

    def __init__(
        self,
        shape: tuple[int, int, int],
        seed: int = 0,
        spins: Optional[np.ndarray] = None,
    ):
        self.shape = tuple(shape)
        if any(s < 2 for s in self.shape):
            raise ValueError("each lattice dimension must be >= 2")
        if spins is not None:
            if spins.shape != (*self.shape, 3):
                raise ValueError("spin array shape mismatch")
            self.spins = _normalize(np.asarray(spins, dtype=np.float64))
        else:
            rng = np.random.default_rng(seed)
            v = rng.normal(size=(*self.shape, 3))
            self.spins = _normalize(v)
        # Checkerboard parity masks.
        x, y, z = np.indices(self.shape)
        self._parity = (x + y + z) % 2

    @property
    def n_sites(self) -> int:
        """Total number of spins."""
        return self.shape[0] * self.shape[1] * self.shape[2]

    def local_field(self) -> np.ndarray:
        """h_i = sum of the six nearest-neighbour spins (periodic)."""
        s = self.spins
        h = np.zeros_like(s)
        for axis in range(3):
            h += np.roll(s, 1, axis=axis)
            h += np.roll(s, -1, axis=axis)
        return h

    def energy(self) -> float:
        """Total exchange energy E = -1/2 sum_i s_i . h_i."""
        return float(-(self.spins * self.local_field()).sum() / 2.0)

    def magnetization(self) -> np.ndarray:
        """The (3,) total magnetization vector."""
        return self.spins.sum(axis=(0, 1, 2))

    def spin_norms(self) -> np.ndarray:
        """Per-site |s| (should be exactly 1 up to rounding)."""
        return np.sqrt((self.spins * self.spins).sum(axis=-1))

    def overrelax_parity(self, parity: int) -> None:
        """Over-relax every site of the given checkerboard parity."""
        if parity not in (0, 1):
            raise ValueError("parity must be 0 or 1")
        mask = self._parity == parity
        h = self.local_field()
        updated = overrelax_spins(self.spins, h)
        self.spins[mask] = updated[mask]

    def sweep(self) -> None:
        """One full over-relaxation sweep (even sites, then odd sites)."""
        self.overrelax_parity(0)
        self.overrelax_parity(1)

    def copy(self) -> "SpinLattice":
        """Deep copy."""
        return SpinLattice(self.shape, spins=self.spins.copy())
