"""Heatbath updates for the Heisenberg model.

Over-relaxation (the paper's benchmark kernel) is microcanonical: it
explores a constant-energy surface and cannot thermalize on its own.  The
production spin-glass codes of the paper's authors therefore mix it with
**heatbath** sweeps [Bernaschi, Parisi & Parisi, CPC 182 (2011)]: each
spin is redrawn from its exact conditional Boltzmann distribution

    P(s) ∝ exp(beta * s . h),    h = sum of neighbour spins,

which for a classical 3-component spin has a closed form: with
``a = beta*|h|``, the component along h is

    x = 1 + log(u + (1-u) e^{-2a}) / a,   u ~ U(0,1],    x in [-1, 1],

and the azimuthal angle is uniform.  This module implements that sampler
(vectorized) plus the mixed sweep the production codes run.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .lattice import SpinLattice

__all__ = ["heatbath_spins", "heatbath_parity", "heatbath_sweep", "mixed_sweep"]


def heatbath_spins(
    field: np.ndarray, beta: float, rng: np.random.Generator
) -> np.ndarray:
    """Draw spins from P(s) ∝ exp(beta s·h) for each field vector.

    ``field`` is (..., 3); returns unit spins of the same shape.  For
    ``beta == 0`` (or vanishing fields) the draw is uniform on the sphere.
    """
    shape = field.shape[:-1]
    h_norm = np.sqrt((field * field).sum(-1))
    a = beta * h_norm
    u = rng.random(shape)
    # cos(theta) relative to h; series-safe for small a.
    with np.errstate(divide="ignore", invalid="ignore"):
        x = 1.0 + np.log(u + (1.0 - u) * np.exp(-2.0 * a)) / a
    # a -> 0 limit: uniform in [-1, 1].
    x = np.where(a > 1e-9, x, 2.0 * u - 1.0)
    x = np.clip(x, -1.0, 1.0)
    phi = rng.random(shape) * 2.0 * np.pi
    sin_t = np.sqrt(np.maximum(1.0 - x * x, 0.0))
    # Local frame: e3 along h, e1/e2 completing it.
    e3 = np.zeros_like(field)
    safe = h_norm > 1e-12
    e3[safe] = field[safe] / h_norm[safe, None]
    # Any unit e3 works for zero fields; pick z.
    e3[~safe] = np.array([0.0, 0.0, 1.0])
    # Build e1 orthogonal to e3 robustly.
    helper = np.zeros_like(e3)
    use_x = np.abs(e3[..., 0]) < 0.9
    helper[use_x] = np.array([1.0, 0.0, 0.0])
    helper[~use_x] = np.array([0.0, 1.0, 0.0])
    e1 = np.cross(helper, e3)
    e1 /= np.sqrt((e1 * e1).sum(-1))[..., None]
    e2 = np.cross(e3, e1)
    out = (
        x[..., None] * e3
        + (sin_t * np.cos(phi))[..., None] * e1
        + (sin_t * np.sin(phi))[..., None] * e2
    )
    # Renormalize against accumulated rounding.
    out /= np.sqrt((out * out).sum(-1))[..., None]
    return out


def heatbath_parity(
    lattice: SpinLattice, parity: int, beta: float, rng: np.random.Generator
) -> None:
    """Heatbath-update every site of one checkerboard parity."""
    if parity not in (0, 1):
        raise ValueError("parity must be 0 or 1")
    mask = lattice._parity == parity
    h = lattice.local_field()
    fresh = heatbath_spins(h, beta, rng)
    lattice.spins[mask] = fresh[mask]


def heatbath_sweep(
    lattice: SpinLattice, beta: float, rng: Optional[np.random.Generator] = None
) -> None:
    """One full heatbath sweep (both parities).

    With no *rng* a **seeded** generator is built: an unseeded fallback
    would make sweeps irreproducible run to run (DET001).
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    heatbath_parity(lattice, 0, beta, rng)
    heatbath_parity(lattice, 1, beta, rng)


def mixed_sweep(
    lattice: SpinLattice,
    beta: float,
    rng: Optional[np.random.Generator] = None,
    overrelax_per_heatbath: int = 3,
) -> None:
    """The production recipe: several over-relaxation sweeps per heatbath.

    Over-relaxation decorrelates quickly at constant energy; the heatbath
    supplies the ergodicity — the mix the authors benchmark in [11].
    With no *rng* a seeded generator is built (see :func:`heatbath_sweep`).
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    for _ in range(overrelax_per_heatbath):
        lattice.sweep()
    heatbath_sweep(lattice, beta, rng)
