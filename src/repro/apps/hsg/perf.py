"""GPU kernel-time model for the HSG code, calibrated from the paper.

Anchor points (per-spin update times on the paper's Fermi boards):

* L=256 whole lattice on one C2050: **921 ps/spin** (Table II, NP=1);
* L=512 on the 6 GB C2070: **1471 ps/spin** — "though in this case with low
  efficiency" (§V.D): the working set blows past the cache/TLB sweet spot;
* Table II's NP=2/4 rows imply ~832/808 ps per *local* spin — smaller local
  volumes run faster (better cache residency), the effect behind the
  super-linear speedup of Fig 11.

The model interpolates the per-spin rate in log(local sites); boundary-
plane kernels pay a strided-access penalty on top.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ...gpu.specs import GPUSpec
from ...units import us

__all__ = ["HsgKernelModel", "SPIN_BYTES"]

# float3 spin as stored by the CUDA code.
SPIN_BYTES = 12

# (local sites, ps per spin) anchors; derived from Tables II/III and §V.D.
_RATE_ANCHORS = [
    (2.1e6, 800.0),  # 128^3 local slabs (extrapolated from the NP=4 trend)
    (4.2e6, 808.0),  # Table II NP=4: 202 ps x 4
    (8.4e6, 832.0),  # Table II NP=2: 416 ps x 2
    (16.8e6, 921.0),  # Table II NP=1 (L=256)
    (33.6e6, 1030.0),  # interpolation toward the big-volume regime
    (67.1e6, 1230.0),
    (134.2e6, 1471.0),  # L=512 on the C2070 (§V.D)
]

# Strided boundary-plane access penalty relative to the bulk rate.
_BOUNDARY_PENALTY = 1.30


@dataclass(frozen=True)
class HsgKernelModel:
    """Kernel durations for a given GPU and decomposition."""

    spec: GPUSpec
    kernel_launch_overhead: float = us(5.0)

    def rate_ps(self, local_sites: int) -> float:
        """Per-spin update time (picoseconds) for a local volume."""
        if local_sites <= 0:
            raise ValueError("local volume must be positive")
        x = math.log(local_sites)
        pts = _RATE_ANCHORS
        if local_sites <= pts[0][0]:
            base = pts[0][1]
        elif local_sites >= pts[-1][0]:
            base = pts[-1][1]
        else:
            base = pts[-1][1]
            for (s0, r0), (s1, r1) in zip(pts, pts[1:]):
                if s0 <= local_sites <= s1:
                    f = (x - math.log(s0)) / (math.log(s1) - math.log(s0))
                    base = r0 + f * (r1 - r0)
                    break
        # The anchors are C2050 measurements; other boards scale with
        # internal memory bandwidth (the kernel is bandwidth-bound).
        from ...gpu.specs import FERMI_2050

        scale = FERMI_2050.mem_bandwidth / self.spec.mem_bandwidth
        return base * scale

    def bulk_kernel_ns(self, sites: int, local_sites: int) -> float:
        """Duration of a bulk update kernel over *sites* spins."""
        return self.kernel_launch_overhead + sites * self.rate_ps(local_sites) / 1000.0

    def boundary_kernel_ns(self, sites: int, local_sites: int) -> float:
        """Duration of a boundary-plane kernel (strided access)."""
        return (
            self.kernel_launch_overhead
            + sites * self.rate_ps(local_sites) * _BOUNDARY_PENALTY / 1000.0
        )

    def lattice_bytes(self, sites: int) -> int:
        """Device-memory footprint of the spin lattice: spins plus field
        and bookkeeping buffers (~2.5x the raw spin array — which is what
        makes L=512 overflow the 3 GB C2050, §V.D)."""
        return int(2.5 * sites * SPIN_BYTES)

    def fits(self, sites: int) -> bool:
        """Whether a lattice of *sites* spins fits this GPU's memory."""
        return self.lattice_bytes(sites) <= self.spec.vram
