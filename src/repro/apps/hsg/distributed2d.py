"""Two-dimensional HSG domain decomposition (the paper's §V.D outlook).

"This advantage could increase for a multi-dimensional domain-
decomposition, where the size of the exchanged messages shrinks in the
strong scaling, thanks to more regularly shaped 3D sub-domains."

This module implements that suggestion: the lattice is split over a
(Py × Pz) process grid along Y and Z, each rank owning an
L × (L/Py) × (L/Pz) pencil with one-plane halos on its four faces.  The
six-neighbour stencil needs face halos only (no corners), so per parity a
rank exchanges four parity-packed faces with its four grid neighbours —
less total data and smaller messages than the 1-D slab at the same NP.

``validate=True`` again pushes the real spin planes through the simulated
network and compares bit-for-bit with the serial lattice.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ...apenet.buflist import BufferKind
from ...apenet.config import DEFAULT_CONFIG
from ...cuda.stream import CudaStream
from ...gpu.kernels import KernelLaunch
from ...net.cluster import build_apenet_cluster
from ...net.topology import TorusShape
from ...sim import DeadlockError, Simulator
from ...units import Gbps, KiB, us
from .distributed import HsgResult  # reuse result type
from .lattice import SpinLattice, overrelax_spins
from .perf import SPIN_BYTES, HsgKernelModel

__all__ = ["Hsg2DConfig", "run_hsg_2d", "grid_for_ranks"]

HALO_CHUNK = 128 * KiB


def grid_for_ranks(np_: int) -> tuple[int, int]:
    """The most square (Py, Pz) factorization of NP."""
    best = (1, np_)
    for py in range(1, int(math.sqrt(np_)) + 1):
        if np_ % py == 0:
            best = (py, np_ // py)
    return best


@dataclass
class Hsg2DConfig:
    """One 2-D-decomposed HSG run."""

    L: int = 128
    np_: int = 4
    grid: Optional[tuple[int, int]] = None  # (Py, Pz); default: most square
    sweeps: int = 2
    validate: bool = False
    seed: int = 7
    link_bandwidth: float = Gbps(20)

    def __post_init__(self):
        if self.grid is None:
            self.grid = grid_for_ranks(self.np_)
        py, pz = self.grid
        if py * pz != self.np_:
            raise ValueError(f"grid {self.grid} does not cover NP={self.np_}")
        if self.L % py or self.L % pz:
            raise ValueError("L must be divisible by both grid dimensions")


def _torus_for(np_: int) -> TorusShape:
    shapes = {1: (1, 1, 1), 2: (2, 1, 1), 4: (4, 1, 1), 8: (4, 2, 1), 16: (4, 4, 1)}
    if np_ not in shapes:
        raise ValueError(f"NP={np_} has no torus mapping here")
    return TorusShape(*shapes[np_])


class _Rank2D:
    """Per-rank pencil state."""

    # Face descriptors: (name, axis ('y'|'z'), side (-1|+1))
    FACES = [("ym", "y", -1), ("yp", "y", 1), ("zm", "z", -1), ("zp", "z", 1)]

    def __init__(self, cfg: Hsg2DConfig, rank: int, node, model: HsgKernelModel):
        self.cfg = cfg
        self.rank = rank
        self.node = node
        self.model = model
        py, pz = cfg.grid
        self.py, self.pz = rank % py, rank // py
        self.Ly, self.Lz = cfg.L // py, cfg.L // pz
        self.y0, self.z0 = self.py * self.Ly, self.pz * self.Lz
        self.local_sites = cfg.L * self.Ly * self.Lz
        site_bytes = 24 if cfg.validate else SPIN_BYTES
        # Parity-packed face sizes (bytes).
        self.face_bytes = {
            "y": cfg.L * self.Lz // 2 * site_bytes,
            "z": cfg.L * self.Ly // 2 * site_bytes,
        }
        self.slab: Optional[np.ndarray] = None
        if cfg.validate:
            self.slab = np.zeros((cfg.L, self.Ly + 2, self.Lz + 2, 3))
        self.t_net = 0.0
        self.t_bnd = 0.0
        self.s_bulk = CudaStream(node.runtime.sim, f"r{rank}.bulk2d")
        self.s_bnd = CudaStream(node.runtime.sim, f"r{rank}.bnd2d")

    # -- neighbours ---------------------------------------------------------

    def neighbor(self, axis: str, side: int) -> int:
        """Rank of the grid neighbour along *axis* in direction *side*."""
        py, pz = self.cfg.grid
        if axis == "y":
            return ((self.py + side) % py) + py * self.pz
        return self.py + py * ((self.pz + side) % pz)

    # -- numerics (validate mode) --------------------------------------------

    def interior_field(self) -> np.ndarray:
        """Six-neighbour field of the owned pencil (uses halo planes)."""
        s = self.slab
        h = np.roll(s, 1, axis=0) + np.roll(s, -1, axis=0)
        h = h[:, 1:-1, 1:-1]
        h = h + s[:, 0:-2, 1:-1] + s[:, 2:, 1:-1]
        h = h + s[:, 1:-1, 0:-2] + s[:, 1:-1, 2:]
        return h

    def parity_mask(self) -> np.ndarray:
        """Checkerboard parity of each owned site (global coordinates)."""
        L = self.cfg.L
        x, y, z = np.indices((L, self.Ly, self.Lz))
        return (x + y + self.y0 + z + self.z0) % 2

    def update_parity(self, parity: int) -> None:
        """Over-relax the owned sites of one parity."""
        h = self.interior_field()
        interior = self.slab[:, 1:-1, 1:-1]
        updated = overrelax_spins(interior, h)
        mask = self.parity_mask() == parity
        interior[mask] = updated[mask]

    def _face_plane(self, axis: str, side: int, halo: bool):
        """View of a boundary plane (owned) or halo plane."""
        if axis == "y":
            if halo:
                idx = 0 if side < 0 else self.Ly + 1
            else:
                idx = 1 if side < 0 else self.Ly
            return self.slab[:, idx, 1:-1]
        if halo:
            idx = 0 if side < 0 else self.Lz + 1
        else:
            idx = 1 if side < 0 else self.Lz
        return self.slab[:, 1:-1, idx]

    def _face_mask(self, axis: str, side: int, parity: int, halo: bool) -> np.ndarray:
        """(L, extent) parity mask of a face plane in GLOBAL coordinates."""
        L = self.cfg.L
        if axis == "y":
            gy = (
                (self.y0 - 1 if side < 0 else self.y0 + self.Ly)
                if halo
                else (self.y0 if side < 0 else self.y0 + self.Ly - 1)
            ) % L
            x, z = np.indices((L, self.Lz))
            par = (x + gy + z + self.z0) % 2
        else:
            gz = (
                (self.z0 - 1 if side < 0 else self.z0 + self.Lz)
                if halo
                else (self.z0 if side < 0 else self.z0 + self.Lz - 1)
            ) % L
            x, y = np.indices((L, self.Ly))
            par = (x + y + self.y0 + gz) % 2
        return par == parity

    def pack_face(self, axis: str, side: int, parity: int) -> np.ndarray:
        """Parity-packed bytes of an owned boundary plane."""
        plane = self._face_plane(axis, side, halo=False)
        mask = self._face_mask(axis, side, parity, halo=False)
        return np.frombuffer(plane[mask].astype(np.float64).tobytes(), dtype=np.uint8)

    def unpack_halo(self, axis: str, side: int, parity: int, raw) -> None:
        """Install received parity sites into the matching halo plane."""
        plane = self._face_plane(axis, side, halo=True)
        mask = self._face_mask(axis, side, parity, halo=True)
        vals = np.frombuffer(bytes(raw), dtype=np.float64).reshape(-1, 3)
        plane[mask] = vals

    # -- kernel site counts ----------------------------------------------------

    def boundary_sites(self) -> int:
        """Owned face sites of one parity (the boundary kernel's work)."""
        L = self.cfg.L
        # Union of the four faces, halved for one parity (edges counted once).
        faces = 2 * L * self.Lz + 2 * L * self.Ly - 4 * L
        return max(faces // 2, 1)

    def bulk_sites(self) -> int:
        """Interior sites of one parity (the bulk kernel's work)."""
        return max(self.local_sites // 2 - self.boundary_sites(), 1)


def run_hsg_2d(cfg: Hsg2DConfig) -> HsgResult:
    """Execute one 2-D-decomposed configuration on the APEnet+ torus."""
    sim = Simulator()
    acfg = DEFAULT_CONFIG.with_(link_bandwidth=cfg.link_bandwidth)
    cluster = build_apenet_cluster(sim, _torus_for(cfg.np_), acfg)
    states = [
        _Rank2D(cfg, r, cluster.nodes[r], HsgKernelModel(cluster.nodes[r].gpu.spec))
        for r in range(cfg.np_)
    ]

    ref = None
    energy_before = None
    if cfg.validate:
        ref = SpinLattice((cfg.L,) * 3, seed=cfg.seed)
        energy_before = ref.energy()
        for st in states:
            L, Ly, Lz = cfg.L, st.Ly, st.Lz
            st.slab[:, 1 : Ly + 1, 1 : Lz + 1] = ref.spins[
                :, st.y0 : st.y0 + Ly, st.z0 : st.z0 + Lz
            ]
            # Seed halos from the global lattice (periodic).
            st.slab[:, 0, 1:-1] = ref.spins[:, (st.y0 - 1) % L, st.z0 : st.z0 + Lz]
            st.slab[:, Ly + 1, 1:-1] = ref.spins[:, (st.y0 + Ly) % L, st.z0 : st.z0 + Lz]
            st.slab[:, 1:-1, 0] = ref.spins[:, st.y0 : st.y0 + Ly, (st.z0 - 1) % L]
            st.slab[:, 1:-1, Lz + 1] = ref.spins[:, st.y0 : st.y0 + Ly, (st.z0 + Lz) % L]

    # RDMA plumbing: per-face send/recv GPU buffers, registered up front.
    send_bufs, recv_bufs = {}, {}
    for st in states:
        sb, rb = {}, {}
        for name, axis, side in _Rank2D.FACES:
            fb = max(st.face_bytes[axis], 64)
            sb[name] = st.node.gpu.alloc(fb)
            rb[name] = st.node.gpu.alloc(fb)
        send_bufs[st.rank], recv_bufs[st.rank] = sb, rb

    opposite = {"ym": "yp", "yp": "ym", "zm": "zp", "zp": "zm"}
    t_start = {}

    def rank_proc(st: _Rank2D):
        node = st.node
        ep = node.endpoint
        for name, axis, side in _Rank2D.FACES:
            yield from ep.register(recv_bufs[st.rank][name].addr, recv_bufs[st.rank][name].size)
            yield from ep.register(send_bufs[st.rank][name].addr, send_bufs[st.rank][name].size)
        yield sim.timeout(us(20))
        t_start[st.rank] = sim.now
        for sweep in range(cfg.sweeps):
            for parity in (0, 1):
                if cfg.validate:
                    st.update_parity(parity)
                bnd = st.model.boundary_kernel_ns(st.boundary_sites(), st.local_sites)
                blk = st.model.bulk_kernel_ns(st.bulk_sites(), st.local_sites)
                t0 = sim.now
                bnd_ev = st.s_bnd.enqueue(
                    lambda d=bnd: node.gpu.compute.execute(KernelLaunch("bnd", d))
                )
                blk_ev = st.s_bulk.enqueue(
                    lambda d=blk: node.gpu.compute.execute(KernelLaunch("bulk", d))
                )
                yield bnd_ev
                st.t_bnd += sim.now - t0
                if cfg.np_ > 1:
                    t1 = sim.now
                    yield from _exchange_2d(
                        sim, cfg, st, ep, send_bufs, recv_bufs, opposite, parity, sweep
                    )
                    st.t_net += sim.now - t1
                elif cfg.validate:
                    _wrap_local(st)
                yield blk_ev

    procs = [sim.process(rank_proc(st), name=f"hsg2d.r{st.rank}") for st in states]
    sim.run()
    if not all(p.processed for p in procs):
        raise DeadlockError("2-D HSG ranks deadlocked")

    sites = cfg.L**3
    start = max(t_start.values())
    total = sim.now - start
    per_spin = 1000.0 / (cfg.sweeps * sites)
    spins = None
    energy_after = None
    if cfg.validate:
        spins = np.zeros((cfg.L,) * 3 + (3,))
        for st in states:
            spins[:, st.y0 : st.y0 + st.Ly, st.z0 : st.z0 + st.Lz] = st.slab[:, 1:-1, 1:-1]
        energy_after = SpinLattice((cfg.L,) * 3, spins=spins).energy()
    return HsgResult(
        config=cfg,
        ttot_ps=total * per_spin,
        tbnd_tnet_ps=float(np.mean([st.t_bnd + st.t_net for st in states]) * per_spin),
        tnet_ps=float(np.mean([st.t_net for st in states]) * per_spin),
        total_time_ns=total,
        energy_before=energy_before,
        energy_after=energy_after,
        spins=spins,
    )


def _wrap_local(st: _Rank2D) -> None:
    """NP=1: periodic halo refresh without a network."""
    s = st.slab
    s[:, 0, 1:-1] = s[:, st.Ly, 1:-1]
    s[:, st.Ly + 1, 1:-1] = s[:, 1, 1:-1]
    s[:, 1:-1, 0] = s[:, 1:-1, st.Lz]
    s[:, 1:-1, st.Lz + 1] = s[:, 1:-1, 1]


def _exchange_2d(sim, cfg, st, ep, send_bufs, recv_bufs, opposite, parity, sweep):
    """One parity's four-face halo exchange."""
    py, pz = cfg.grid
    expected = 0
    for name, axis, side in _Rank2D.FACES:
        extent = py if axis == "y" else pz
        if extent == 1:
            # Single rank along this axis: periodic wrap is local.
            if cfg.validate:
                _wrap_axis_local(st, axis)
            continue
        peer = st.neighbor(axis, side)
        nbytes = st.face_bytes[axis]
        if cfg.validate:
            raw = st.pack_face(axis, side, parity)
            send_bufs[st.rank][name].data[: len(raw)] = raw
        remote_face = opposite[name]
        dst = recv_bufs[peer][remote_face].addr
        n_chunks = math.ceil(nbytes / HALO_CHUNK)
        for c in range(n_chunks):
            off = c * HALO_CHUNK
            csize = min(HALO_CHUNK, nbytes - off)
            yield from ep.put(
                peer, send_bufs[st.rank][name].addr + off, dst + off, csize,
                src_kind=BufferKind.GPU, tag=("halo2d", sweep, parity, remote_face, c),
            )
        expected += n_chunks
    for _ in range(expected):
        yield from ep.wait_event()
    if cfg.validate:
        for name, axis, side in _Rank2D.FACES:
            extent = py if axis == "y" else pz
            if extent == 1:
                continue
            raw = recv_bufs[st.rank][name].data[: st.face_bytes[axis]]
            st.unpack_halo(axis, side, parity, raw)


def _wrap_axis_local(st: _Rank2D, axis: str) -> None:
    s = st.slab
    if axis == "y":
        s[:, 0, 1:-1] = s[:, st.Ly, 1:-1]
        s[:, st.Ly + 1, 1:-1] = s[:, 1, 1:-1]
    else:
        s[:, 1:-1, 0] = s[:, 1:-1, st.Lz]
        s[:, 1:-1, st.Lz + 1] = s[:, 1:-1, 1]
