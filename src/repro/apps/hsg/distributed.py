"""Distributed multi-GPU Heisenberg Spin Glass over-relaxation (§V.D).

Faithful to the paper's structure: "the 3D domain is decomposed among the
computing nodes along a single dimension, and the communication-computation
overlap method is used: first compute the local lattice boundary, then
exchange it with the remote nodes, while computing the bulk".

Each rank owns an L × L × (L/NP) slab with one-plane halos.  Per
checkerboard parity:

1. boundary kernel (the two faces) on its own CUDA stream,
2. bulk kernel on another stream (overlaps with everything below),
3. the freshly-updated parity sites of each face are sent to the two ring
   neighbours in 128 KiB messages (matching the paper's "6 outgoing and 6
   incoming 128 KB messages" for L=256 on two nodes),
4. wait for the neighbours' halos, then the bulk kernel, then next parity.

Transports: APEnet+ RDMA with ``p2p_mode`` in {"on", "rx", "off"} (GPU
peer-to-peer for both directions / RX only / staging both ways) or
GPU-aware MPI over the InfiniBand cluster.

``validate=True`` moves the *real* spin planes through the simulated
network so the distributed result can be compared bit-for-bit against the
serial :class:`~repro.apps.hsg.lattice.SpinLattice`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ...apenet.buflist import BufferKind
from ...apenet.config import DEFAULT_CONFIG, ApenetConfig
from ...cuda.memcpy import memcpy_device_work, memcpy_sync
from ...cuda.stream import CudaStream
from ...gpu.kernels import KernelLaunch
from ...gpu.specs import FERMI_2050, FERMI_2070
from ...mpi.comm import MpiWorld
from ...ib.cluster import build_ib_cluster
from ...net.cluster import build_apenet_cluster
from ...net.topology import TorusShape
from ...sim import DeadlockError, Event, Simulator
from ...units import Gbps, KiB, us
from .lattice import SpinLattice, overrelax_spins
from .perf import SPIN_BYTES, HsgKernelModel

__all__ = ["HsgConfig", "HsgResult", "run_hsg", "torus_for_ranks"]

HALO_CHUNK = 128 * KiB


def torus_for_ranks(np_: int) -> TorusShape:
    """The sub-torus the paper's runs used for NP nodes of Cluster I."""
    shapes = {1: (1, 1, 1), 2: (2, 1, 1), 4: (4, 1, 1), 8: (4, 2, 1)}
    if np_ not in shapes:
        raise ValueError(f"NP={np_} not in the paper's strong-scaling set")
    return TorusShape(*shapes[np_])


@dataclass
class HsgConfig:
    """One HSG run."""

    L: int = 128
    np_: int = 2
    transport: str = "apenet"  # "apenet" | "mpi"
    p2p_mode: str = "on"  # "on" | "rx" | "off" (apenet only)
    sweeps: int = 3
    validate: bool = False
    seed: int = 7
    # The HSG runs used the 20 Gbps link bitstream (Fig 11 caption).
    link_bandwidth: float = Gbps(20)
    mpi_pcie_lanes: int = 8  # Cluster II for the OMPI reference column
    apenet_config: Optional[ApenetConfig] = None
    # Chaos/robustness knobs (apenet transport only): a FaultPlan/-Injector
    # and a RecoveryPolicy/-Manager.  None keeps the run bit-identical to
    # one without these fields.
    faults: Optional[object] = None
    recovery: Optional[object] = None

    def __post_init__(self):
        if self.L % self.np_:
            raise ValueError("L must be divisible by NP (slab decomposition)")
        if self.transport not in ("apenet", "mpi"):
            raise ValueError(f"unknown transport {self.transport!r}")
        if self.p2p_mode not in ("on", "rx", "off"):
            raise ValueError(f"unknown p2p_mode {self.p2p_mode!r}")


@dataclass
class HsgResult:
    """Measured outcome, normalized like the paper's tables (ps/spin)."""

    config: "object"  # HsgConfig or Hsg2DConfig
    ttot_ps: float
    tbnd_tnet_ps: float
    tnet_ps: float
    total_time_ns: float
    energy_before: Optional[float] = None
    energy_after: Optional[float] = None
    spins: Optional[np.ndarray] = None  # reassembled lattice (validate mode)
    # RecoveryStats of the run, when the cluster had a recovery manager.
    recovery_stats: Optional[object] = None

    def speedup_vs(self, single: "HsgResult") -> float:
        """Strong-scaling speedup relative to a single-node run."""
        return single.ttot_ps / self.ttot_ps


def _face_parity_mask(L: int, global_z: int) -> np.ndarray:
    """(L, L) boolean masks of parity-0 sites on plane *global_z*."""
    x, y = np.indices((L, L))
    return (x + y + global_z) % 2 == 0


class _RankState:
    """Everything one rank needs during the run."""

    def __init__(self, cfg: HsgConfig, rank: int, node, model: HsgKernelModel):
        self.cfg = cfg
        self.rank = rank
        self.node = node
        self.model = model
        L, NP = cfg.L, cfg.np_
        self.Lz = L // NP
        self.local_sites = L * L * self.Lz
        self.z0 = rank * self.Lz  # global z of the first owned plane
        # Face message size: the updated-parity sites of one plane.  The
        # CUDA code ships float3 spins (12 B/site — that is what makes the
        # L=256 faces exactly 3 x 128 KiB); validate mode moves the full
        # float64 state so the serial comparison stays bit-exact.
        site_bytes = 24 if cfg.validate else SPIN_BYTES
        self.face_bytes = L * L // 2 * site_bytes
        self.n_chunks = math.ceil(self.face_bytes / HALO_CHUNK)
        # Real data (validate mode): slab with halo planes at z=0, Lz+1.
        self.slab: Optional[np.ndarray] = None
        if cfg.validate:
            self.slab = np.zeros((L, L, self.Lz + 2, 3))
        # Instrumentation (ns).
        self.t_net = 0.0
        self.t_bnd = 0.0
        # Streams.
        self.s_bulk = CudaStream(node.runtime.sim, f"r{rank}.bulk")
        self.s_bnd = CudaStream(node.runtime.sim, f"r{rank}.bnd")
        self.s_copy = CudaStream(node.runtime.sim, f"r{rank}.copy")

    # -- numerics (validate mode) ------------------------------------------

    def interior_field(self) -> np.ndarray:
        """Six-neighbour field of the owned slab (uses halo planes)."""
        s = self.slab
        h = np.roll(s, 1, axis=0) + np.roll(s, -1, axis=0)
        h += np.roll(s, 1, axis=1) + np.roll(s, -1, axis=1)
        h = h[:, :, 1:-1]
        h = h + s[:, :, 0:-2] + s[:, :, 2:]
        return h

    def parity_mask_interior(self) -> np.ndarray:
        """Checkerboard parity of each owned site (global coordinates)."""
        L, Lz = self.cfg.L, self.Lz
        x, y, z = np.indices((L, L, Lz))
        return (x + y + z + self.z0) % 2

    def update_parity(self, parity: int) -> None:
        """Over-relax the owned sites of *parity* (uses current halos)."""
        h = self.interior_field()
        interior = self.slab[:, :, 1:-1]
        updated = overrelax_spins(interior, h)
        mask = self.parity_mask_interior() == parity
        interior[mask] = updated[mask]

    def pack_face(self, which: str, parity: int) -> np.ndarray:
        """Bytes of the updated-parity sites of a boundary plane."""
        zl = 1 if which == "down" else self.Lz
        gz = self.z0 if which == "down" else self.z0 + self.Lz - 1
        plane = self.slab[:, :, zl]
        mask = _face_parity_mask(self.cfg.L, gz) if parity == 0 else ~_face_parity_mask(
            self.cfg.L, gz
        )
        return plane[mask].astype(np.float64).tobytes()

    def unpack_halo(self, which: str, parity: int, raw: np.ndarray) -> None:
        """Install received parity sites into a halo plane."""
        zl = 0 if which == "down" else self.Lz + 1
        gz = self.z0 - 1 if which == "down" else self.z0 + self.Lz
        mask = _face_parity_mask(self.cfg.L, gz % self.cfg.L) if parity == 0 else ~_face_parity_mask(
            self.cfg.L, gz % self.cfg.L
        )
        vals = np.frombuffer(bytes(raw), dtype=np.float64).reshape(-1, 3)
        plane = self.slab[:, :, zl]
        plane[mask] = vals

    # -- kernel durations ----------------------------------------------------

    def refresh_local_halos(self) -> None:
        """NP=1: periodic wrap without any network (validate mode)."""
        self.slab[:, :, 0] = self.slab[:, :, self.Lz]
        self.slab[:, :, self.Lz + 1] = self.slab[:, :, 1]

    def boundary_sites(self) -> int:
        """Owned face sites of one parity (two faces of L^2/2 each)."""
        # Two faces, one parity each: 2 * L^2/2.
        return self.cfg.L * self.cfg.L

    def bulk_sites(self) -> int:
        """Interior sites of one parity (the bulk kernel's work)."""
        return self.local_sites // 2 - self.boundary_sites()


def run_hsg(cfg: HsgConfig) -> HsgResult:
    """Execute one configuration end to end; see :class:`HsgConfig`."""
    sim = Simulator()
    if cfg.transport == "apenet":
        return _run_apenet(sim, cfg)
    return _run_mpi(sim, cfg)


# ---------------------------------------------------------------------------
# Shared rank logic
# ---------------------------------------------------------------------------


def _init_validate(cfg: HsgConfig, states: list[_RankState]) -> SpinLattice:
    """Seed a global lattice and scatter slabs (+ initial halos)."""
    ref = SpinLattice((cfg.L, cfg.L, cfg.L), seed=cfg.seed)
    for st in states:
        z0, Lz, L = st.z0, st.Lz, cfg.L
        st.slab[:, :, 1 : Lz + 1] = ref.spins[:, :, z0 : z0 + Lz]
        st.slab[:, :, 0] = ref.spins[:, :, (z0 - 1) % L]
        st.slab[:, :, Lz + 1] = ref.spins[:, :, (z0 + Lz) % L]
    return ref


def _gather_spins(cfg: HsgConfig, states: list[_RankState]) -> np.ndarray:
    out = np.zeros((cfg.L, cfg.L, cfg.L, 3))
    for st in states:
        out[:, :, st.z0 : st.z0 + st.Lz] = st.slab[:, :, 1:-1]
    return out


def _kernels_for_parity(st: _RankState):
    """(boundary kernel, bulk kernel) durations for one parity phase."""
    bnd = st.model.boundary_kernel_ns(st.boundary_sites(), st.local_sites)
    blk = st.model.bulk_kernel_ns(max(st.bulk_sites(), 1), st.local_sites)
    return bnd, blk


# ---------------------------------------------------------------------------
# APEnet transport
# ---------------------------------------------------------------------------


def _run_apenet(sim: Simulator, cfg: HsgConfig) -> HsgResult:
    shape = torus_for_ranks(cfg.np_)
    base = cfg.apenet_config or DEFAULT_CONFIG
    acfg = base.with_(link_bandwidth=cfg.link_bandwidth)
    specs = None
    if cfg.np_ == 1:
        # Single-node L=512 only fits the 6 GB C2070 (§V.D).
        need = 2 * cfg.L**3 * SPIN_BYTES
        specs = [FERMI_2070 if need > FERMI_2050.vram else FERMI_2050]
    cluster = build_apenet_cluster(
        sim, shape, acfg, gpu_specs=specs, faults=cfg.faults, recovery=cfg.recovery
    )
    states = [
        _RankState(cfg, r, cluster.nodes[r], HsgKernelModel(cluster.nodes[r].gpu.spec))
        for r in range(cfg.np_)
    ]
    ref = _init_validate(cfg, states) if cfg.validate else None
    energy_before = ref.energy() if ref is not None else None

    # Per-rank device buffers: two outgoing face buffers, two halo landing
    # buffers (GPU), plus host bounces for the staging modes.
    #
    # With a recovery manager the landing buffers are double-buffered by
    # parity: a recovery window (timeout + replay) skews the ranks by up to
    # one exchange, so a neighbour's next-parity halo can arrive before
    # this rank has unpacked the current one.  The exchange dependency
    # chain bounds the skew at one, so two slots suffice.  Without
    # recovery the single-slot layout is kept bit-identical to before.
    slots = 2 if cfg.recovery is not None else 1
    send_gpu, recv_gpu, send_host, recv_host = {}, {}, {}, {}
    for st in states:
        node = st.node
        fb = max(st.face_bytes, 64)
        send_gpu[st.rank] = {d: node.gpu.alloc(fb) for d in ("down", "up")}
        recv_gpu[st.rank] = {d: node.gpu.alloc(fb * slots) for d in ("down", "up")}
        send_host[st.rank] = {d: node.runtime.host_alloc(fb) for d in ("down", "up")}
        recv_host[st.rank] = {d: node.runtime.host_alloc(fb * slots) for d in ("down", "up")}

    done_events = []
    t_start = {}

    def rank_proc(st: _RankState):
        node = st.node
        ep = node.endpoint
        L, NP = cfg.L, cfg.np_
        up = (st.rank + 1) % NP
        down = (st.rank - 1) % NP
        # Registration: halos land in GPU memory unless staging RX too.
        for d in ("down", "up"):
            if cfg.p2p_mode in ("on", "rx"):
                yield from ep.register(recv_gpu[st.rank][d].addr, st.face_bytes * slots)
            else:
                yield from ep.register(recv_host[st.rank][d].addr, st.face_bytes * slots)
            yield from ep.register(send_gpu[st.rank][d].addr, st.face_bytes)
        yield sim.timeout(us(20))  # registration barrier stand-in
        t_start[st.rank] = sim.now

        for sweep in range(cfg.sweeps):
            for parity in (0, 1):
                if cfg.validate:
                    st.update_parity(parity)
                bnd_ns, blk_ns = _kernels_for_parity(st)
                t0 = sim.now
                bnd_ev = st.s_bnd.enqueue(
                    lambda d=bnd_ns: node.gpu.compute.execute(KernelLaunch("bnd", d))
                )
                blk_ev = st.s_bulk.enqueue(
                    lambda d=blk_ns: node.gpu.compute.execute(KernelLaunch("bulk", d))
                )
                yield bnd_ev
                st.t_bnd += sim.now - t0
                if NP > 1:
                    t1 = sim.now
                    yield from _apenet_exchange(
                        sim, cfg, st, ep, up, down, parity, sweep,
                        send_gpu, recv_gpu, send_host, recv_host,
                    )
                    st.t_net += sim.now - t1
                elif cfg.validate:
                    st.refresh_local_halos()
                yield blk_ev
        done = Event(sim)
        done.succeed(sim.now)
        done_events.append(sim.now)

    procs = [sim.process(rank_proc(st), name=f"hsg.r{st.rank}") for st in states]
    sim.run()
    if not all(p.processed for p in procs):
        raise DeadlockError("HSG ranks deadlocked")
    recovery_stats = cluster.recovery.stats if cluster.recovery is not None else None
    return _finalize(
        cfg, sim, states, t_start, ref, energy_before, recovery_stats=recovery_stats
    )


def _apenet_exchange(
    sim, cfg, st, ep, up, down, parity, sweep,
    send_gpu, recv_gpu, send_host, recv_host,
):
    """One parity's halo exchange on the APEnet transport."""
    node = st.node
    expected = 2 * st.n_chunks  # messages arriving at this rank
    # With a recovery manager attached, halos travel as reliable PUTs:
    # delivered exactly once across link kills (replayed over the detour)
    # or the run fails with a structured verdict instead of corrupting
    # physics.  Without one, the code path is identical to before.
    reliable = ep.recovery is not None
    # Reliable mode double-buffers the landing zones by parity (the slot
    # the peer reads from alternates in lockstep with the one we target).
    slot_off = parity * st.face_bytes if reliable else 0
    sends = []
    for d, peer in (("down", down), ("up", up)):
        # In validate mode the outgoing face data is copied into the
        # send buffer (kernel output); data rides the puts.
        if cfg.validate:
            raw = np.frombuffer(st.pack_face(d, parity), dtype=np.uint8)
            send_gpu[st.rank][d].data[: len(raw)] = raw
        remote_dir = "up" if d == "down" else "down"
        if cfg.p2p_mode in ("on", "rx"):
            dst_addr = recv_gpu[peer][remote_dir].addr + slot_off
        else:
            dst_addr = recv_host[peer][remote_dir].addr + slot_off
        src_gpu = send_gpu[st.rank][d]
        for c in range(st.n_chunks):
            off = c * HALO_CHUNK
            csize = min(HALO_CHUNK, st.face_bytes - off)
            if cfg.p2p_mode == "on":
                if reliable:
                    outcome = yield from ep.reliable_put(
                        peer, src_gpu.addr + off, dst_addr + off, csize,
                        src_kind=BufferKind.GPU,
                        tag=("halo", sweep, parity, remote_dir, c),
                    )
                    if not outcome.delivered:
                        raise RuntimeError(
                            f"HSG halo chunk undeliverable ({outcome.verdict} "
                            f"after {outcome.attempts} attempts)"
                        )
                    done = None
                else:
                    done = yield from ep.put(
                        peer, src_gpu.addr + off, dst_addr + off, csize,
                        src_kind=BufferKind.GPU, tag=("halo", sweep, parity, remote_dir, c),
                    )
            else:
                # TX staging: D2H copy of the chunk, then a host-source put.
                # The RX-only mode pipelines the copies on a stream (the
                # optimized variant that beats full P2P in Table III); the
                # fully-staged mode uses plain synchronous cudaMemcpy, as
                # the simple P2P=OFF code path does.
                host = send_host[st.rank][d]
                if cfg.p2p_mode == "rx":
                    copy_ev = st.s_copy.enqueue(
                        lambda dst=host.addr + off, src=src_gpu.addr + off, n=csize: (
                            memcpy_device_work(node.runtime, dst, src, n)
                        )
                    )
                    yield copy_ev
                else:
                    yield from memcpy_sync(
                        node.runtime, host.addr + off, src_gpu.addr + off, csize
                    )
                if reliable:
                    outcome = yield from ep.reliable_put(
                        peer, host.addr + off, dst_addr + off, csize,
                        src_kind=BufferKind.HOST,
                        tag=("halo", sweep, parity, remote_dir, c),
                    )
                    if not outcome.delivered:
                        raise RuntimeError(
                            f"HSG halo chunk undeliverable ({outcome.verdict} "
                            f"after {outcome.attempts} attempts)"
                        )
                    done = None
                else:
                    done = yield from ep.put(
                        peer, host.addr + off, dst_addr + off, csize,
                        src_kind=BufferKind.HOST, tag=("halo", sweep, parity, remote_dir, c),
                    )
            if done is not None:
                sends.append(done)
    # Wait for all expected halo chunks.
    for _ in range(expected):
        yield from ep.wait_event()
    if cfg.p2p_mode == "off":
        # Drain the host bounces into GPU memory.
        for d in ("down", "up"):
            ev = st.s_copy.enqueue(
                lambda dst=recv_gpu[st.rank][d].addr + slot_off,
                src=recv_host[st.rank][d].addr + slot_off,
                n=st.face_bytes: memcpy_device_work(node.runtime, dst, src, n)
            )
            yield ev
    for ev in sends:
        if not ev.processed:
            yield ev
    if cfg.validate:
        for d in ("down", "up"):
            if cfg.p2p_mode == "off":
                raw = recv_host[st.rank][d].data[slot_off : slot_off + st.face_bytes]
            else:
                raw = recv_gpu[st.rank][d].data[slot_off : slot_off + st.face_bytes]
            st.unpack_halo(d, parity, raw)


# ---------------------------------------------------------------------------
# MPI transport (OpenMPI / MVAPICH2 over IB — the reference columns)
# ---------------------------------------------------------------------------


def _run_mpi(sim: Simulator, cfg: HsgConfig) -> HsgResult:
    from ...mpi.gpu_aware import OpenMPIProtocol

    cluster = build_ib_cluster(sim, cfg.np_, pcie_lanes=cfg.mpi_pcie_lanes)
    world = MpiWorld(cluster, protocol_factory=OpenMPIProtocol)
    states = [
        _RankState(cfg, r, cluster.nodes[r], HsgKernelModel(cluster.nodes[r].gpu.spec))
        for r in range(cfg.np_)
    ]
    ref = _init_validate(cfg, states) if cfg.validate else None
    energy_before = ref.energy() if ref is not None else None

    bufs = {}
    for st in states:
        fb = max(st.face_bytes, 64)
        bufs[st.rank] = {
            ("send", d): st.node.gpu.alloc(fb) for d in ("down", "up")
        }
        bufs[st.rank].update(
            {("recv", d): st.node.gpu.alloc(fb) for d in ("down", "up")}
        )

    t_start = {}

    def rank_proc(st: _RankState):
        ep = world.endpoint(st.rank)
        NP = cfg.np_
        up, down = (st.rank + 1) % NP, (st.rank - 1) % NP
        yield sim.timeout(us(20))
        t_start[st.rank] = sim.now
        for sweep in range(cfg.sweeps):
            for parity in (0, 1):
                if cfg.validate:
                    st.update_parity(parity)
                bnd_ns, blk_ns = _kernels_for_parity(st)
                t0 = sim.now
                bnd_ev = st.s_bnd.enqueue(
                    lambda d=bnd_ns: st.node.gpu.compute.execute(KernelLaunch("bnd", d))
                )
                blk_ev = st.s_bulk.enqueue(
                    lambda d=blk_ns: st.node.gpu.compute.execute(KernelLaunch("bulk", d))
                )
                yield bnd_ev
                st.t_bnd += sim.now - t0
                if NP > 1:
                    t1 = sim.now
                    reqs = []
                    for d, peer in (("down", down), ("up", up)):
                        if cfg.validate:
                            raw = np.frombuffer(st.pack_face(d, parity), dtype=np.uint8)
                            bufs[st.rank][("send", d)].data[: len(raw)] = raw
                        remote_dir = "up" if d == "down" else "down"
                        r = yield from ep.irecv(
                            peer,
                            bufs[st.rank][("recv", d)].addr,
                            st.face_bytes,
                            tag=("halo", sweep, parity, d),
                        )
                        reqs.append(r)
                        s = yield from ep.isend(
                            peer,
                            bufs[st.rank][("send", d)].addr,
                            st.face_bytes,
                            tag=("halo", sweep, parity, remote_dir),
                        )
                        reqs.append(s)
                    yield from ep.wait_all(reqs)
                    st.t_net += sim.now - t1
                    if cfg.validate:
                        for d in ("down", "up"):
                            st.unpack_halo(
                                d, parity, bufs[st.rank][("recv", d)].data[: st.face_bytes]
                            )
                elif cfg.validate:
                    st.refresh_local_halos()
                yield blk_ev

    procs = [sim.process(rank_proc(st), name=f"hsg.r{st.rank}") for st in states]
    sim.run()
    if not all(p.processed for p in procs):
        raise DeadlockError("HSG MPI ranks deadlocked")
    return _finalize(cfg, sim, states, t_start, ref, energy_before)


# ---------------------------------------------------------------------------
# Result assembly
# ---------------------------------------------------------------------------


def _finalize(
    cfg, sim, states, t_start, ref, energy_before, recovery_stats=None
) -> HsgResult:
    sites = cfg.L**3
    start = max(t_start.values())
    total = sim.now - start
    per_spin = 1000.0 / (cfg.sweeps * sites)  # ns -> ps per spin
    tnet = np.mean([st.t_net for st in states]) * per_spin
    tbnd_tnet = np.mean([st.t_bnd + st.t_net for st in states]) * per_spin
    spins = None
    energy_after = None
    if cfg.validate:
        spins = _gather_spins(cfg, states)
        energy_after = SpinLattice((cfg.L,) * 3, spins=spins).energy()
    return HsgResult(
        config=cfg,
        ttot_ps=total * per_spin,
        tbnd_tnet_ps=float(tbnd_tnet),
        tnet_ps=float(tnet),
        total_time_ns=total,
        energy_before=energy_before,
        energy_after=energy_after,
        spins=spins,
        recovery_stats=recovery_stats,
    )
