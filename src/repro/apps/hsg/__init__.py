"""Heisenberg Spin Glass over-relaxation: physics + distributed runs."""

from .distributed import HsgConfig, HsgResult, run_hsg, torus_for_ranks
from .distributed2d import Hsg2DConfig, grid_for_ranks, run_hsg_2d
from .heatbath import heatbath_spins, heatbath_sweep, mixed_sweep
from .lattice import SpinLattice, overrelax_spins
from .perf import SPIN_BYTES, HsgKernelModel

__all__ = [
    "SpinLattice",
    "overrelax_spins",
    "HsgKernelModel",
    "SPIN_BYTES",
    "HsgConfig",
    "HsgResult",
    "run_hsg",
    "torus_for_ranks",
    "Hsg2DConfig",
    "run_hsg_2d",
    "grid_for_ranks",
    "heatbath_spins",
    "heatbath_sweep",
    "mixed_sweep",
]
