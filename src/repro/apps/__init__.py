"""The paper's evaluation applications, runnable on the simulated clusters.

* :mod:`repro.apps.hsg` — Heisenberg Spin Glass over-relaxation (plus the
  heatbath sampler and the 2-D decomposition extension);
* :mod:`repro.apps.bfs` — graph500-style distributed level-synchronous BFS.

Both compute their physics/graph results for real (NumPy) while every
halo plane and frontier bucket travels through the simulated network, and
both validate bit-for-bit against serial references.
"""
