"""Reference level-synchronous BFS + graph500-style validation.

Ground truth for the §VI application study: a single-process BFS over
the same CSR graph, plus graph500-style parent-tree validation, used to
check that the distributed simulation visits exactly the same vertices
regardless of partitioning or transmit-path version.
"""

from __future__ import annotations

import numpy as np

from .csr import CSRGraph

__all__ = ["serial_bfs", "validate_bfs", "traversed_edges"]

UNVISITED = -1


def serial_bfs(graph: CSRGraph, root: int) -> tuple[np.ndarray, np.ndarray]:
    """Level-synchronous BFS; returns (levels, parents) int64 arrays.

    Unreached vertices have level == parent == -1; the root is its own
    parent (graph500 convention).
    """
    n = graph.n_vertices
    levels = np.full(n, UNVISITED, dtype=np.int64)
    parents = np.full(n, UNVISITED, dtype=np.int64)
    levels[root] = 0
    parents[root] = root
    frontier = np.array([root], dtype=np.int64)
    level = 0
    while len(frontier):
        nbrs, pars = graph.neighbors_of_set(frontier)
        if len(nbrs) == 0:
            break
        # First-visit filter: keep one (neighbor, parent) pair per new vertex.
        fresh_mask = levels[nbrs] == UNVISITED
        nbrs, pars = nbrs[fresh_mask], pars[fresh_mask]
        if len(nbrs) == 0:
            break
        uniq, first_idx = np.unique(nbrs, return_index=True)
        levels[uniq] = level + 1
        parents[uniq] = pars[first_idx]
        frontier = uniq
        level += 1
    return levels, parents


def traversed_edges(graph: CSRGraph, levels: np.ndarray) -> int:
    """Graph500 edge count for TEPS: input (undirected) edges with at least
    one endpoint in the traversed component."""
    visited = levels >= 0
    # Each stored directed edge (u, v): count if u visited; each undirected
    # edge is stored twice, so halve.
    u = np.repeat(np.arange(graph.n_vertices), np.diff(graph.row_ptr))
    touched = visited[u] | visited[graph.col_idx]
    return int(touched.sum() // 2)


def validate_bfs(
    graph: CSRGraph, root: int, levels: np.ndarray, parents: np.ndarray
) -> list[str]:
    """Graph500-style result validation; returns a list of violations.

    Checks: (1) root is its own parent at level 0; (2) every visited
    non-root vertex has a visited parent exactly one level shallower;
    (3) the (parent, child) link is a real graph edge; (4) levels are
    consistent with BFS optimality (no edge spans more than one level);
    (5) unvisited vertices have no parent.
    """
    errors: list[str] = []
    n = graph.n_vertices
    if levels[root] != 0 or parents[root] != root:
        errors.append("root must be its own parent at level 0")
    visited = levels >= 0
    if (visited != (parents >= 0)).any():
        errors.append("visited/parent masks disagree")
    others = np.flatnonzero(visited)
    others = others[others != root]
    if len(others):
        p = parents[others]
        if (levels[others] != levels[p] + 1).any():
            errors.append("a parent is not exactly one level shallower")
        # Tree edges must exist in the graph.
        for v in others[: min(len(others), 50_000)]:
            if v not in graph.neighbors(int(parents[v])):
                errors.append(f"tree edge ({parents[v]}, {v}) not in graph")
                break
    # BFS optimality: no edge connects levels differing by more than 1.
    u = np.repeat(np.arange(n), np.diff(graph.row_ptr))
    v = graph.col_idx
    both = visited[u] & visited[v]
    if (np.abs(levels[u[both]] - levels[v[both]]) > 1).any():
        errors.append("an edge spans more than one BFS level")
    # Connectivity: any edge from a visited to an unvisited vertex is a bug.
    if (visited[u] & ~visited[v]).any():
        errors.append("unvisited vertex adjacent to the traversed component")
    return errors
