"""Compressed-sparse-row graph storage (the GPU-friendly layout).

Supporting data structure for the §VI BFS application study: adjacency
stored as offset/edge arrays so frontier expansion is a contiguous,
coalesced scan — the layout real GPU graph500 kernels use, which keeps
the simulated per-level work model faithful.
"""

from __future__ import annotations


import numpy as np

__all__ = ["CSRGraph"]


class CSRGraph:
    """An undirected graph in CSR form (both edge directions stored)."""

    def __init__(self, n_vertices: int, row_ptr: np.ndarray, col_idx: np.ndarray):
        self.n_vertices = int(n_vertices)
        self.row_ptr = row_ptr
        self.col_idx = col_idx

    @classmethod
    def from_edges(
        cls,
        n_vertices: int,
        edges: np.ndarray,
        undirected: bool = True,
        dedupe: bool = True,
    ) -> "CSRGraph":
        """Build from a (2, M) edge array.

        Self-loops are dropped; duplicate edges are removed when *dedupe*;
        for undirected graphs both directions are stored (graph500 rules).
        """
        src, dst = np.asarray(edges[0]), np.asarray(edges[1])
        if src.min(initial=0) < 0 or max(src.max(initial=0), dst.max(initial=0)) >= n_vertices:
            raise ValueError("edge endpoint out of range")
        keep = src != dst  # no self-loops
        src, dst = src[keep], dst[keep]
        if undirected:
            src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
        if dedupe and len(src):
            key = src * n_vertices + dst
            _, unique_idx = np.unique(key, return_index=True)
            src, dst = src[unique_idx], dst[unique_idx]
        order = np.argsort(src, kind="stable")
        src, dst = src[order], dst[order]
        row_ptr = np.zeros(n_vertices + 1, dtype=np.int64)
        counts = np.bincount(src, minlength=n_vertices)
        row_ptr[1:] = np.cumsum(counts)
        return cls(n_vertices, row_ptr, dst.astype(np.int64))

    @property
    def n_directed_edges(self) -> int:
        """Stored (directed) edge count."""
        return len(self.col_idx)

    def degree(self, v: int) -> int:
        """Out-degree of vertex *v*."""
        return int(self.row_ptr[v + 1] - self.row_ptr[v])

    def neighbors(self, v: int) -> np.ndarray:
        """Neighbor ids of vertex *v*."""
        return self.col_idx[self.row_ptr[v] : self.row_ptr[v + 1]]

    def neighbors_of_set(self, vertices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Concatenated neighbors of *vertices* + matching parent ids.

        Returns (neighbor_ids, parent_ids), the vectorized frontier
        expansion a level-synchronous BFS performs.
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        starts = self.row_ptr[vertices]
        ends = self.row_ptr[vertices + 1]
        lengths = ends - starts
        total = int(lengths.sum())
        if total == 0:
            return (
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
            )
        # Vectorized multi-range gather.
        offsets = np.repeat(starts, lengths)
        within = np.arange(total) - np.repeat(
            np.concatenate([[0], np.cumsum(lengths)[:-1]]), lengths
        )
        neighbor_ids = self.col_idx[offsets + within]
        parent_ids = np.repeat(vertices, lengths)
        return neighbor_ids, parent_ids

    def row_slice(self, lo: int, hi: int) -> "CSRGraph":
        """A sub-CSR holding only rows [lo, hi) (columns stay global).

        Row indices in the slice stay GLOBAL: callers pass global vertex
        ids and the slice translates internally — matching how a 1-D
        partitioned BFS addresses its local rows.
        """
        sub_ptr = self.row_ptr[lo : hi + 1] - self.row_ptr[lo]
        sub_col = self.col_idx[self.row_ptr[lo] : self.row_ptr[hi]]
        sliced = CSRGraph(hi - lo, sub_ptr, sub_col)
        sliced._row_offset = lo  # type: ignore[attr-defined]
        return sliced

    def neighbors_of_set_global(self, vertices: np.ndarray):
        """Like :meth:`neighbors_of_set` for a :meth:`row_slice` result."""
        off = getattr(self, "_row_offset", 0)
        local = np.asarray(vertices, dtype=np.int64) - off
        nbrs, parents = self.neighbors_of_set(local)
        return nbrs, parents + off
