"""Distributed level-synchronous BFS on GPU clusters (graph500-style)."""

from .csr import CSRGraph
from .distributed import (
    BfsConfig,
    BfsResult,
    BfsSuiteResult,
    RankBreakdown,
    bfs_torus,
    run_bfs,
    run_bfs_suite,
)
from .perf import BfsKernelModel
from .rmat import EDGEFACTOR, rmat_edges
from .serial import UNVISITED, serial_bfs, traversed_edges, validate_bfs

__all__ = [
    "rmat_edges",
    "EDGEFACTOR",
    "CSRGraph",
    "serial_bfs",
    "validate_bfs",
    "traversed_edges",
    "UNVISITED",
    "BfsKernelModel",
    "BfsConfig",
    "BfsResult",
    "BfsSuiteResult",
    "RankBreakdown",
    "run_bfs",
    "run_bfs_suite",
    "bfs_torus",
]
