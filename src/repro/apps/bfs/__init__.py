"""Distributed level-synchronous BFS on GPU clusters (graph500-style).

Reproduces the application study of the paper's §VI: a breadth-first
search partitioned across GPUs, where per-level frontier exchanges ride
the simulated APEnet+ RDMA path so that the GPU-P2P transmit
optimisations show up as end-to-end traversal speedups.
"""

from .csr import CSRGraph
from .distributed import (
    BfsConfig,
    BfsResult,
    BfsSuiteResult,
    RankBreakdown,
    bfs_torus,
    run_bfs,
    run_bfs_suite,
)
from .perf import BfsKernelModel
from .rmat import EDGEFACTOR, rmat_edges
from .serial import UNVISITED, serial_bfs, traversed_edges, validate_bfs

__all__ = [
    "rmat_edges",
    "EDGEFACTOR",
    "CSRGraph",
    "serial_bfs",
    "validate_bfs",
    "traversed_edges",
    "UNVISITED",
    "BfsKernelModel",
    "BfsConfig",
    "BfsResult",
    "BfsSuiteResult",
    "RankBreakdown",
    "run_bfs",
    "run_bfs_suite",
    "bfs_torus",
]
