"""GPU kernel-time model for the multi-GPU BFS code (§V.E).

The paper's BFS (Mastrostefano & Bernaschi's multi-GPU code) is far from
the raw Merrill-style single-GPU traversal rates: its per-level pipeline
(expand, compact, dedupe, bucket) runs at an *effective* rate calibrated
here so that the single-GPU TEPS of Table IV (6.7·10^7 on Cluster I's
C2050, 6.2·10^7 on Cluster II's M2075) emerge from the level loop.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...gpu.specs import GPUSpec
from ...units import us

__all__ = ["BfsKernelModel"]

# Per-GPU-model efficiency factors, anchored on the two NP=1 rows of
# Table IV (identical code, different boards/hosts).
_PLATFORM_FACTOR = {
    "Tesla C2050": 1.00,
    "Tesla C2070": 1.00,
    "Tesla M2075": 1.08,  # Cluster II measured ~7% slower at NP=1
}


@dataclass(frozen=True)
class BfsKernelModel:
    """Durations of the per-level kernels."""

    spec: GPUSpec
    # Effective edge-expansion rate (edges/ns) on the C2050 baseline.
    expand_rate: float = 0.205
    # Candidate filtering / status update rate (items/ns).
    filter_rate: float = 0.41
    # Fixed per-level kernel-pipeline overhead (several launches + scans).
    level_overhead: float = us(60.0)

    def _factor(self) -> float:
        return _PLATFORM_FACTOR.get(self.spec.name, 1.0)

    def expand_ns(self, edges_scanned: int) -> float:
        """Frontier-expansion kernel time for *edges_scanned* edges."""
        return self.level_overhead / 2 + edges_scanned / self.expand_rate * self._factor()

    def filter_ns(self, candidates: int) -> float:
        """Dedupe/first-visit filter kernel time."""
        return self.level_overhead / 2 + candidates / self.filter_rate * self._factor()
