"""Distributed level-synchronous BFS on the simulated GPU clusters (§V.E).

1-D vertex partition: rank r owns a contiguous block of vertices and the
CSR rows for them.  Per level, each rank:

1. expands its local frontier on the GPU (expansion kernel, timed by
   :class:`~repro.apps.bfs.perf.BfsKernelModel`),
2. buckets (neighbor, parent) pairs by owner rank,
3. exchanges bucket *counts*, then the buckets themselves — an all-to-all
   whose messages shrink and grow with the frontier, "so that the
   performance of the networking compartment is exercised in different
   regions of the bandwidth plot",
4. filters first visits on the GPU and forms the next frontier,
5. all-reduces the global frontier size to detect termination.

Transports: APEnet+ RDMA PUTs between GPU buffers (P2P=ON — the mode of
Table IV) or GPU-aware MPI over InfiniBand.  In both cases the vertex
data really rides the simulated network, so the distributed result can be
validated against :func:`~repro.apps.bfs.serial.serial_bfs`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ...apenet.buflist import BufferKind
from ...apenet.config import DEFAULT_CONFIG, ApenetConfig
from ...cuda.memcpy import memcpy_sync
from ...gpu.kernels import KernelLaunch
from ...mpi.comm import MpiWorld
from ...ib.cluster import build_ib_cluster
from ...net.cluster import build_apenet_cluster
from ...net.topology import TorusShape
from ...sim import DeadlockError, Simulator
from ...units import Gbps, us
from .csr import CSRGraph
from .perf import BfsKernelModel
from .rmat import rmat_edges
from .serial import UNVISITED, serial_bfs, traversed_edges, validate_bfs

__all__ = [
    "BfsConfig",
    "BfsResult",
    "BfsSuiteResult",
    "RankBreakdown",
    "run_bfs",
    "run_bfs_suite",
    "bfs_torus",
]

_PAIR_BYTES = 8  # (vertex, parent) as two packed uint32s


def bfs_torus(np_: int) -> TorusShape:
    """Torus shapes for the strong-scaling runs (Cluster I layout)."""
    shapes = {1: (1, 1, 1), 2: (2, 1, 1), 4: (4, 1, 1), 8: (4, 2, 1)}
    if np_ not in shapes:
        raise ValueError(f"NP={np_} not in the paper's scaling set")
    return TorusShape(*shapes[np_])


@dataclass
class BfsConfig:
    """One BFS run."""

    scale: int = 14
    edgefactor: int = 16
    np_: int = 2
    transport: str = "apenet"  # "apenet" | "ib"
    seed: int = 3
    root: Optional[int] = None  # default: the highest-degree vertex's block
    validate: bool = True
    link_bandwidth: float = Gbps(28)
    # Cluster II packs TWO M2075s per node, so two BFS ranks share one
    # ConnectX-2: approximated as an x4-slot per-rank share of the HCA.
    ib_pcie_lanes: int = 4
    apenet_config: Optional[ApenetConfig] = None

    def __post_init__(self):
        if self.transport not in ("apenet", "ib"):
            raise ValueError(f"unknown transport {self.transport!r}")

    @property
    def n_vertices(self) -> int:
        """Graph size |V| = 2^scale."""
        return 1 << self.scale


@dataclass
class RankBreakdown:
    """Per-rank time split (Fig 12)."""

    rank: int
    t_compute_ns: float = 0.0
    t_comm_ns: float = 0.0

    @property
    def comm_fraction(self) -> float:
        """Share of this rank's busy time spent communicating."""
        total = self.t_compute_ns + self.t_comm_ns
        return self.t_comm_ns / total if total else 0.0


@dataclass
class BfsResult:
    """Outcome of one traversal."""

    config: BfsConfig
    teps: float  # traversed edges per (real) second
    total_time_ns: float
    n_levels: int
    traversed: int
    breakdown: list[RankBreakdown] = field(default_factory=list)
    levels: Optional[np.ndarray] = None
    parents: Optional[np.ndarray] = None
    validation_errors: Optional[list[str]] = None


def _pack_pairs(vertices: np.ndarray, parents: np.ndarray) -> np.ndarray:
    out = np.empty(2 * len(vertices), dtype=np.uint32)
    out[0::2] = vertices.astype(np.uint32)
    out[1::2] = parents.astype(np.uint32)
    return out.view(np.uint8)


def _unpack_pairs(raw: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    arr = np.frombuffer(bytes(raw), dtype=np.uint32)
    return arr[0::2].astype(np.int64), arr[1::2].astype(np.int64)


class _BfsRank:
    """Per-rank BFS state."""

    def __init__(self, cfg: BfsConfig, rank: int, node, graph: CSRGraph):
        self.cfg = cfg
        self.rank = rank
        self.node = node
        n = cfg.n_vertices
        self.chunk = math.ceil(n / cfg.np_)
        self.lo = rank * self.chunk
        self.hi = min(n, self.lo + self.chunk)
        self.rows = graph.row_slice(self.lo, self.hi)
        self.levels = np.full(n, UNVISITED, dtype=np.int64)
        self.parents = np.full(n, UNVISITED, dtype=np.int64)
        self.model = BfsKernelModel(node.gpu.spec)
        self.breakdown = RankBreakdown(rank)
        self.frontier = np.empty(0, dtype=np.int64)

    def owner(self, vertices: np.ndarray) -> np.ndarray:
        """Owning rank of each vertex id (1-D block partition)."""
        return vertices // self.chunk

    def expand(self) -> dict[int, np.ndarray]:
        """Neighbor (vertex, parent) buckets by destination rank."""
        nbrs, pars = self.rows.neighbors_of_set_global(self.frontier)
        owners = self.owner(nbrs)
        buckets: dict[int, np.ndarray] = {}
        for peer in range(self.cfg.np_):
            mask = owners == peer
            buckets[peer] = _pack_pairs(nbrs[mask], pars[mask])
        self._edges_scanned = len(nbrs) + len(self.frontier)
        return buckets

    def absorb(self, raws: list[np.ndarray], level: int) -> int:
        """Filter first visits from all received buckets; returns count."""
        cand_v, cand_p = [], []
        for raw in raws:
            if len(raw) == 0:
                continue
            v, p = _unpack_pairs(raw)
            cand_v.append(v)
            cand_p.append(p)
        self._candidates = 0
        if not cand_v:
            self.frontier = np.empty(0, dtype=np.int64)
            return 0
        v = np.concatenate(cand_v)
        p = np.concatenate(cand_p)
        self._candidates = len(v)
        fresh = self.levels[v] == UNVISITED
        v, p = v[fresh], p[fresh]
        if len(v) == 0:
            self.frontier = np.empty(0, dtype=np.int64)
            return 0
        uniq, first = np.unique(v, return_index=True)
        self.levels[uniq] = level + 1
        self.parents[uniq] = p[first]
        self.frontier = uniq
        return len(uniq)


def run_bfs(cfg: BfsConfig) -> BfsResult:
    """Execute one configuration end to end."""
    # Build the graph once (shared, read-only across the simulated ranks).
    edges = rmat_edges(cfg.scale, cfg.edgefactor, seed=cfg.seed)
    graph = CSRGraph.from_edges(cfg.n_vertices, edges)
    degrees = np.diff(graph.row_ptr)
    root = cfg.root if cfg.root is not None else int(np.argmax(degrees))

    sim = Simulator()
    if cfg.transport == "apenet":
        acfg = (cfg.apenet_config or DEFAULT_CONFIG).with_(
            link_bandwidth=cfg.link_bandwidth
        )
        cluster = build_apenet_cluster(sim, bfs_torus(cfg.np_), acfg)
        nodes = cluster.nodes[: cfg.np_]
        comm_factory = lambda st: _ApenetComm(sim, cfg, st, nodes)
    else:
        cluster = build_ib_cluster(sim, cfg.np_, pcie_lanes=cfg.ib_pcie_lanes)
        world = MpiWorld(cluster)
        nodes = cluster.nodes
        comm_factory = lambda st: _MpiComm(sim, cfg, st, world)

    states = [_BfsRank(cfg, r, nodes[r], graph) for r in range(cfg.np_)]
    comms = [comm_factory(st) for st in states]
    for comm in comms:
        comm.link(comms)
    t_span = {}

    def rank_proc(st: _BfsRank, comm):
        yield from comm.setup()
        gpu = st.node.gpu
        if st.lo <= root < st.hi:
            st.levels[root] = 0
            st.parents[root] = root
            st.frontier = np.array([root], dtype=np.int64)
        t_span[st.rank] = sim.now
        level = 0
        while True:
            buckets = st.expand()
            t0 = sim.now
            yield gpu.compute.execute(
                KernelLaunch("expand", st.model.expand_ns(st._edges_scanned))
            )
            st.breakdown.t_compute_ns += sim.now - t0
            # Keep the local bucket; ship the rest.
            local = buckets.pop(st.rank)
            t1 = sim.now
            received = yield from comm.alltoall(buckets, level)
            st.breakdown.t_comm_ns += sim.now - t1
            new_count = st.absorb([local] + received, level)
            t2 = sim.now
            yield gpu.compute.execute(
                KernelLaunch("filter", st.model.filter_ns(max(st._candidates, 1)))
            )
            st.breakdown.t_compute_ns += sim.now - t2
            t3 = sim.now
            total_new = yield from comm.allreduce(new_count, level)
            st.breakdown.t_comm_ns += sim.now - t3
            level += 1
            if total_new == 0:
                break
        t_span[st.rank] = sim.now - t_span[st.rank]
        return level

    procs = [
        sim.process(rank_proc(st, comm), name=f"bfs.r{st.rank}")
        for st, comm in zip(states, comms)
    ]
    sim.run()
    if not all(p.processed for p in procs):
        raise DeadlockError("BFS ranks deadlocked")
    n_levels = max(p.value for p in procs)

    # Reassemble the global result from the owned slices.
    levels = np.full(cfg.n_vertices, UNVISITED, dtype=np.int64)
    parents = np.full(cfg.n_vertices, UNVISITED, dtype=np.int64)
    for st in states:
        levels[st.lo : st.hi] = st.levels[st.lo : st.hi]
        parents[st.lo : st.hi] = st.parents[st.lo : st.hi]

    total_time = max(t_span.values())
    traversed = traversed_edges(graph, levels)
    teps = traversed / (total_time / 1e9)
    errors = None
    if cfg.validate:
        errors = validate_bfs(graph, root, levels, parents)
        ref_levels, _ = serial_bfs(graph, root)
        if not np.array_equal(ref_levels, levels):
            errors.append("levels differ from the serial reference")
    return BfsResult(
        config=cfg,
        teps=teps,
        total_time_ns=total_time,
        n_levels=n_levels,
        traversed=traversed,
        breakdown=[st.breakdown for st in states],
        levels=levels,
        parents=parents,
        validation_errors=errors,
    )


@dataclass
class BfsSuiteResult:
    """A graph500-style multi-root campaign."""

    results: list[BfsResult]

    @property
    def harmonic_mean_teps(self) -> float:
        """The graph500 summary statistic."""
        inv = [1.0 / r.teps for r in self.results]
        return len(inv) / sum(inv)

    @property
    def min_teps(self) -> float:
        """Slowest traversal of the campaign."""
        return min(r.teps for r in self.results)

    @property
    def max_teps(self) -> float:
        """Fastest traversal of the campaign."""
        return max(r.teps for r in self.results)


def run_bfs_suite(cfg: BfsConfig, n_roots: int = 4) -> BfsSuiteResult:
    """Run *n_roots* traversals from distinct non-isolated roots.

    The graph500 specification samples 64 search keys and reports the
    harmonic-mean TEPS; this is the same campaign at a configurable root
    count (each traversal rebuilds a fresh cluster so runs are
    independent and deterministic).
    """
    edges = rmat_edges(cfg.scale, cfg.edgefactor, seed=cfg.seed)
    graph = CSRGraph.from_edges(cfg.n_vertices, edges)
    degrees = np.diff(graph.row_ptr)
    candidates = np.flatnonzero(degrees > 0)
    rng = np.random.default_rng(cfg.seed ^ 0xBF5)
    roots = rng.choice(candidates, size=min(n_roots, len(candidates)), replace=False)
    results = []
    for root in roots:
        sub = BfsConfig(
            scale=cfg.scale,
            edgefactor=cfg.edgefactor,
            np_=cfg.np_,
            transport=cfg.transport,
            seed=cfg.seed,
            root=int(root),
            validate=cfg.validate,
            link_bandwidth=cfg.link_bandwidth,
            ib_pcie_lanes=cfg.ib_pcie_lanes,
            apenet_config=cfg.apenet_config,
        )
        results.append(run_bfs(sub))
    return BfsSuiteResult(results)


# ---------------------------------------------------------------------------
# Transports
# ---------------------------------------------------------------------------
#
# Counts travel as 8-byte control messages, then each non-empty bucket as
# one message sized exactly to its content.  In ``validate`` runs the
# bucket bytes really ride the simulated network and are read back out of
# the landing buffers; in timing-only runs the same messages are sent
# (identical timing) while the numpy payload short-circuits through an
# in-process mailbox.


class _ApenetComm:
    """All-to-all + allreduce over APEnet+ RDMA PUTs (P2P=ON)."""

    def __init__(self, sim, cfg: BfsConfig, st: _BfsRank, nodes):
        self.sim = sim
        self.cfg = cfg
        self.st = st
        self.nodes = nodes
        self.node = nodes[st.rank]
        self.mailbox: dict[tuple, np.ndarray] = {}
        self._peers: list["_ApenetComm"] = []
        np_ = cfg.np_
        me = st.rank
        # Exact worst-case bucket per peer: edges from my rows into the
        # peer's vertex range (a bucket can never exceed it).
        owners = st.rows.col_idx // st.chunk
        sizes = np.bincount(owners, minlength=np_) * _PAIR_BYTES + 64
        self.count_buf = self.node.gpu.alloc(max(8 * np_, 64))
        self.reduce_buf = self.node.gpu.alloc(max(8 * np_, 64))
        self.small_scratch = self.node.gpu.alloc(64)
        self.send_bufs = {
            p: self.node.gpu.alloc(int(sizes[p])) for p in range(np_) if p != me
        }
        self.data_bufs: dict[int, object] = {}
        # Events arriving out of phase (a fast peer's next-level counts can
        # beat rank 0's serialized allreduce results) are parked here.
        self._deferred: list = []

    def link(self, peers: list["_ApenetComm"]) -> None:
        """Wire peer references and allocate landing buffers to match the
        senders' worst-case bucket sizes."""
        self._peers = peers
        me = self.st.rank
        for p, peer in enumerate(peers):
            if p == me:
                continue
            self.data_bufs[p] = self.node.gpu.alloc(peer.send_bufs[me].size)

    def setup(self):
        """Generator: register landing buffers before the first level."""
        ep = self.node.endpoint
        yield from ep.register(self.count_buf.addr, self.count_buf.size)
        yield from ep.register(self.reduce_buf.addr, self.reduce_buf.size)
        yield from ep.register(self.small_scratch.addr, self.small_scratch.size)
        for buf in self.data_bufs.values():
            yield from ep.register(buf.addr, buf.size)
        for buf in self.send_bufs.values():
            yield from ep.register(buf.addr, buf.size)
        yield self.sim.timeout(us(50))  # registration settle

    def _wait_matching(self, pred):
        """Generator: next completion event satisfying *pred*."""
        for i, rec in enumerate(self._deferred):
            if pred(rec.tag):
                return self._deferred.pop(i)
        ep = self.node.endpoint
        while True:
            rec = yield from ep.wait_event()
            if pred(rec.tag):
                return rec
            self._deferred.append(rec)

    def alltoall(self, buckets: dict[int, np.ndarray], level: int):
        """Exchange buckets; returns the received raw byte arrays."""
        ep = self.node.endpoint
        np_ = self.cfg.np_
        me = self.st.rank
        # Phase 1: counts (8-byte control puts; value rides the tag).
        for peer, raw in buckets.items():
            pc = self._peers[peer]
            pc.mailbox[(level, me)] = raw
            yield from ep.put(
                peer, self.small_scratch.addr, pc.count_buf.addr + me * 8, 8,
                src_kind=BufferKind.GPU, tag=("cnt", level, me, len(raw)),
            )
        # Phase 2: data.
        for peer, raw in buckets.items():
            if len(raw) == 0:
                continue
            pc = self._peers[peer]
            if self.cfg.validate:
                self.send_bufs[peer].data[: len(raw)] = raw
            yield from ep.put(
                peer, self.send_bufs[peer].addr, pc.data_bufs[me].addr, len(raw),
                src_kind=BufferKind.GPU, tag=("data", level, me),
            )
        # Collect: all counts plus one data message per non-empty count.
        counts: dict[int, int] = {}
        data_got: set[int] = set()

        def complete() -> bool:
            if len(counts) < np_ - 1:
                return False
            return all(counts[p] == 0 or p in data_got for p in counts)

        while not complete():
            rec = yield from self._wait_matching(
                lambda t: t[0] in ("cnt", "data") and t[1] == level
            )
            tag = rec.tag
            if tag[0] == "cnt":
                counts[tag[2]] = tag[3]
            else:
                data_got.add(tag[2])
        out = []
        for p in sorted(counts):
            n = counts[p]
            if n == 0:
                out.append(np.empty(0, dtype=np.uint8))
            elif self.cfg.validate:
                out.append(np.array(self.data_bufs[p].data[:n]))
                self._peers[p].mailbox.pop((level, p), None)
                self.mailbox.pop((level, p), None)
            else:
                out.append(self.mailbox.pop((level, p)))
        return out

    def allreduce(self, value: int, level: int):
        """Sum across ranks via small PUTs through rank 0."""
        ep = self.node.endpoint
        np_ = self.cfg.np_
        me = self.st.rank
        if np_ == 1:
            return value
        if me == 0:
            total = value
            for _ in range(np_ - 1):
                rec = yield from self._wait_matching(
                    lambda t: t[0] == "red" and t[1] == level
                )
                total += rec.tag[2]
            for peer in range(1, np_):
                yield from ep.put(
                    peer, self.small_scratch.addr,
                    self._peers[peer].reduce_buf.addr, 8,
                    src_kind=BufferKind.GPU, tag=("red", level, total),
                )
            return total
        yield from ep.put(
            0, self.small_scratch.addr, self._peers[0].reduce_buf.addr + me * 8, 8,
            src_kind=BufferKind.GPU, tag=("red", level, value),
        )
        rec = yield from self._wait_matching(
            lambda t: t[0] == "red" and t[1] == level
        )
        return rec.tag[2]


class _MpiComm:
    """All-to-all + allreduce over MPI/IB with *manual* staging.

    The paper's MPI BFS predates usable GPU-aware MPI: the 2012 code stages
    GPU buckets through host bounce buffers with plain synchronous
    cudaMemcpy calls around host-pointer MPI operations, one peer at a time
    — a major reason its communication time is so much worse than the raw
    IB wire rate (and what the APEnet version beats at small scale).
    """

    def __init__(self, sim, cfg: BfsConfig, st: _BfsRank, world: MpiWorld):
        self.sim = sim
        self.cfg = cfg
        self.st = st
        self.world = world
        self.ep = world.endpoint(st.rank)
        self.mailbox: dict[tuple, np.ndarray] = {}
        self._peers: list["_MpiComm"] = []
        np_ = cfg.np_
        me = st.rank
        node = world.cluster.node(me)
        rt = node.runtime
        owners = st.rows.col_idx // st.chunk
        sizes = np.bincount(owners, minlength=np_) * _PAIR_BYTES + 64
        self.send_bufs = {
            p: node.gpu.alloc(int(sizes[p])) for p in range(np_) if p != me
        }
        self.send_stage = {
            p: rt.host_alloc(int(sizes[p])) for p in range(np_) if p != me
        }
        self.recv_bufs: dict[int, object] = {}
        self.recv_stage: dict[int, object] = {}
        self.cnt_send = {p: rt.host_alloc(8) for p in range(np_) if p != me}
        self.cnt_recv = {p: rt.host_alloc(8) for p in range(np_) if p != me}

    def link(self, peers: list["_MpiComm"]) -> None:
        """Allocate receive buffers sized to the senders' worst cases."""
        self._peers = peers
        me = self.st.rank
        node = self.world.cluster.node(me)
        for p, peer in enumerate(peers):
            if p == me:
                continue
            size = peer.send_bufs[me].size
            self.recv_bufs[p] = node.gpu.alloc(size)
            self.recv_stage[p] = node.runtime.host_alloc(size)

    def setup(self):
        """Generator: MPI needs no registration; small settle delay."""
        yield self.sim.timeout(us(50))

    def alltoall(self, buckets: dict[int, np.ndarray], level: int):
        """Generator: counts, then manually staged data; returns buckets."""
        ep = self.ep
        me = self.st.rank
        rt = self.world.cluster.node(me).runtime
        reqs = []
        # Counts (8-byte host messages; the value rides the payload).
        for peer, raw in buckets.items():
            self._peers[peer].mailbox[(level, me)] = raw
            self.cnt_send[peer].data[:] = np.frombuffer(
                np.uint64(len(raw)).tobytes(), dtype=np.uint8
            )
            r = yield from ep.isend(
                peer, self.cnt_send[peer].addr, 8, tag=("cnt", level, me)
            )
            reqs.append(r)
        cnt_reqs = {}
        for peer in buckets:
            r = yield from ep.irecv(
                peer, self.cnt_recv[peer].addr, 8, tag=("cnt", level, peer)
            )
            cnt_reqs[peer] = r
        yield from ep.wait_all(list(cnt_reqs.values()) + reqs)
        counts = {
            p: int(np.frombuffer(bytes(self.cnt_recv[p].data), dtype=np.uint64)[0])
            for p in cnt_reqs
        }
        # Data phase: sync D2H stage per peer, host sends, then sync H2D.
        reqs = []
        for peer, raw in buckets.items():
            if len(raw) == 0:
                continue
            if self.cfg.validate:
                self.send_bufs[peer].data[: len(raw)] = raw
            yield from memcpy_sync(
                rt, self.send_stage[peer].addr, self.send_bufs[peer].addr, len(raw)
            )
            r = yield from ep.isend(
                peer, self.send_stage[peer].addr, len(raw), tag=("data", level, me)
            )
            reqs.append(r)
        for peer, n in counts.items():
            if n == 0:
                continue
            r = yield from ep.irecv(
                peer, self.recv_stage[peer].addr, n, tag=("data", level, peer)
            )
            reqs.append(r)
        yield from ep.wait_all(reqs)
        for peer, n in counts.items():
            if n == 0:
                continue
            yield from memcpy_sync(
                rt, self.recv_bufs[peer].addr, self.recv_stage[peer].addr, n
            )
        out = []
        for p in sorted(counts):
            n = counts[p]
            if n == 0:
                out.append(np.empty(0, dtype=np.uint8))
            elif self.cfg.validate:
                out.append(np.array(self.recv_bufs[p].data[:n]))
                self.mailbox.pop((level, p), None)
            else:
                out.append(self.mailbox.pop((level, p)))
        return out

    def allreduce(self, value: int, level: int):
        """Generator: termination reduction through the MPI layer."""
        result = yield from self.ep.allreduce(value, tag=("bfs-ar", level))
        return result
