"""Graph500-style RMAT (Kronecker) edge generator.

"According to the specs of the graph500 benchmark" (§V.E): recursive
quadrant subdivision with the standard (A, B, C) = (0.57, 0.19, 0.19)
probabilities and edgefactor 16, fully vectorized in NumPy.
"""

from __future__ import annotations

import numpy as np

__all__ = ["rmat_edges", "GRAPH500_A", "GRAPH500_B", "GRAPH500_C", "EDGEFACTOR"]

GRAPH500_A = 0.57
GRAPH500_B = 0.19
GRAPH500_C = 0.19
EDGEFACTOR = 16


def rmat_edges(
    scale: int,
    edgefactor: int = EDGEFACTOR,
    seed: int = 1,
    a: float = GRAPH500_A,
    b: float = GRAPH500_B,
    c: float = GRAPH500_C,
    scramble: bool = True,
) -> np.ndarray:
    """Generate a (2, M) int64 edge array for a 2^scale-vertex RMAT graph.

    M = edgefactor * 2^scale.  Per the graph500 spec, vertex ids are
    scrambled with a random permutation so the RMAT hubs do not all land in
    the first 1-D partition block (disable with ``scramble=False``).
    """
    if scale < 1 or scale > 32:
        raise ValueError("scale must be in [1, 32]")
    d = 1.0 - a - b - c
    if d <= 0:
        raise ValueError("A + B + C must be < 1")
    n_edges = edgefactor << scale
    rng = np.random.default_rng(seed)
    src = np.zeros(n_edges, dtype=np.int64)
    dst = np.zeros(n_edges, dtype=np.int64)
    ab = a + b
    a_norm = a / ab
    c_norm = c / (c + d)
    for bit in range(scale):
        r1 = rng.random(n_edges)
        r2 = rng.random(n_edges)
        # Down half (south quadrants) with probability c + d.
        down = r1 >= ab
        # Right half depends on which vertical half we are in.
        right = np.where(down, r2 >= c_norm, r2 >= a_norm)
        src |= down.astype(np.int64) << bit
        dst |= right.astype(np.int64) << bit
    if scramble:
        perm = np.random.default_rng(seed ^ 0x5C4A).permutation(1 << scale)
        src, dst = perm[src], perm[dst]
    return np.stack([src, dst])
