"""Supervised worker-process execution: crash detection, deadlines, retry.

One simulation request = one single-shot worker process.  The supervisor
starts the worker, watches its result pipe under the request's deadline,
and classifies every way the attempt can end:

* **ok** — the worker delivered a success payload;
* **execution-error** — the worker delivered an *error* payload (the
  experiment raised).  The simulation is deterministic, so re-running a
  failed experiment reproduces the same exception: execution errors are
  terminal immediately, never retried;
* **crashed** — the worker died without delivering a payload (segfault,
  OOM kill, ``SIGKILL`` from a chaos test).  Crashes are environmental,
  so the attempt is retried with exponential backoff up to a bounded
  budget; determinism guarantees the retried payload is bit-identical to
  what the crashed attempt would have produced;
* **hung** — the per-request deadline expired with the worker still
  running.  The worker is killed (SIGTERM, then SIGKILL after a grace
  period) and the request terminates with a structured ``timeout``
  outcome — a stuck simulation can never hang the service.

Every terminal state is a structured :class:`SupervisedResult`; the
supervisor never raises for worker misbehaviour and never leaks a worker
process (each attempt joins its process before returning).

The supervisor is synchronous by design — the service runs it on worker
threads via ``asyncio.to_thread`` — and uses the ``fork`` start method
where available so workers inherit runtime-registered experiments, same
as the CLI runner's pool.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..sim.sched import BACKEND_ENV, resolve_backend
from ..bench.engine import ExecutionEngine

__all__ = ["WorkSpec", "SupervisedResult", "WorkerSupervisor"]


@dataclass(frozen=True)
class WorkSpec:
    """What a worker should execute (the coalescing unit's identity)."""

    experiment_id: str
    quick: bool = True
    backend: Optional[str] = None  # None = the service process's default
    trace: bool = False


@dataclass
class SupervisedResult:
    """Terminal outcome of a supervised execution.

    ``outcome`` is one of ``"done"``, ``"execution-error"``,
    ``"worker-crash"`` (retry budget exhausted), ``"timeout"`` (deadline
    tripped).  ``payload`` is the engine payload for ``done`` and
    ``execution-error``, ``None`` otherwise.
    """

    outcome: str
    payload: Optional[dict] = None
    attempts: int = 0
    retries: int = 0
    wall_s: float = 0.0
    detail: str = ""
    exitcodes: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when the execution produced a success payload."""
        return self.outcome == "done"


def _child_main(conn, spec: WorkSpec) -> None:
    """Worker-process entry point: execute, ship the payload, exit."""
    import signal

    # Shed the parent's asyncio signal plumbing.  A forked worker inherits
    # both the parent's SIGTERM/SIGINT handlers and its signal wakeup fd —
    # so a supervisor SIGTERM aimed at a hung worker would write into the
    # *parent's* event-loop pipe and trigger the parent's drain handler
    # (the service would shut itself down every time it killed a worker).
    # Default dispositions also let proc.terminate() actually terminate.
    signal.set_wakeup_fd(-1)
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_DFL)
    if spec.backend is not None:
        os.environ[BACKEND_ENV] = resolve_backend(spec.backend)
    payload = ExecutionEngine().execute(spec.experiment_id, spec.quick, spec.trace)
    conn.send(payload)
    conn.close()
    # Hard-exit once the payload is on the wire.  The worker is forked from
    # a thread of an asyncio parent, and CPython's interpreter teardown in
    # that configuration can die inside threading._shutdown() with a silent
    # exit code 1 — which the supervisor would misread as a crash.  There is
    # nothing left to tear down (the cache write happens in the parent), so
    # skip straight to a deterministic exit status.
    os._exit(0)


def _pool_context():
    """Fork where available (workers inherit runtime-registered
    experiments, mirroring the CLI runner's pool)."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


class WorkerSupervisor:
    """Runs :class:`WorkSpec`\\ s in watched single-shot worker processes.

    *retry_limit* bounds crash retries per request (attempts =
    ``retry_limit + 1``); *backoff_base_s* and *backoff_factor* shape the
    exponential backoff between crash retries (``base * factor ** n``,
    never constant — the RETRY001 discipline); *kill_grace_s* is how long
    a deadline-tripped worker gets to die on SIGTERM before SIGKILL.

    *on_retry* / *on_worker_exit* are metric hooks called with no
    arguments and with the worker's exitcode respectively.
    """

    def __init__(
        self,
        retry_limit: int = 2,
        backoff_base_s: float = 0.25,
        backoff_factor: float = 2.0,
        kill_grace_s: float = 2.0,
        poll_interval_s: float = 0.02,
        on_retry: Optional[Callable[[], None]] = None,
        on_worker_exit: Optional[Callable[[Optional[int]], None]] = None,
    ):
        if retry_limit < 0:
            raise ValueError(f"retry_limit must be >= 0, got {retry_limit}")
        if backoff_factor < 1.0:
            raise ValueError(f"backoff_factor must be >= 1, got {backoff_factor}")
        self.retry_limit = retry_limit
        self.backoff_base_s = backoff_base_s
        self.backoff_factor = backoff_factor
        self.kill_grace_s = kill_grace_s
        self.poll_interval_s = poll_interval_s
        self.on_retry = on_retry
        self.on_worker_exit = on_worker_exit
        self._ctx = _pool_context()

    # -- single attempt ------------------------------------------------------

    def _attempt(self, spec: WorkSpec, timeout_s: float):
        """One worker-process execution.

        Returns ``(status, payload, exitcode)`` with status in
        ``{"ok", "error", "crashed", "hung"}``.
        """
        recv, send = self._ctx.Pipe(duplex=False)
        proc = self._ctx.Process(
            target=_child_main, args=(send, spec), name="repro-serve-worker"
        )
        proc.start()
        send.close()
        deadline = time.monotonic() + timeout_s
        payload = None
        status = "crashed"
        try:
            while True:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    status = "hung"
                    break
                if recv.poll(min(remaining, self.poll_interval_s)):
                    try:
                        payload = recv.recv()
                    except EOFError:
                        status = "crashed"  # died between connect and send
                        break
                    status = "error" if payload.get("error") else "ok"
                    break
                if not proc.is_alive() and not recv.poll(0):
                    status = "crashed"
                    break
        finally:
            recv.close()
            exitcode = self._reap(proc, hung=status == "hung")
        if self.on_worker_exit is not None:
            self.on_worker_exit(exitcode)
        return status, payload, exitcode

    def _reap(self, proc, hung: bool) -> Optional[int]:
        """Join the worker (escalating SIGTERM -> SIGKILL for hung ones);
        returns its exitcode and releases the process object."""
        if hung and proc.is_alive():
            proc.terminate()
            proc.join(self.kill_grace_s)
            if proc.is_alive():
                proc.kill()
        proc.join(self.kill_grace_s)
        if proc.is_alive():  # pragma: no cover - kill cannot be refused
            proc.kill()
            proc.join()
        exitcode = proc.exitcode
        proc.close()
        return exitcode

    # -- retry loop ----------------------------------------------------------

    def run(self, spec: WorkSpec, deadline_s: float) -> SupervisedResult:
        """Execute *spec* to a terminal outcome within *deadline_s* seconds.

        The deadline covers the whole request — every attempt and every
        backoff sleep; a request can therefore never occupy a worker slot
        for longer than ``deadline_s`` plus one kill grace period.
        """
        if deadline_s <= 0:
            raise ValueError(f"deadline_s must be > 0, got {deadline_s}")
        start = time.monotonic()
        attempts = 0
        exitcodes: list = []
        while True:
            remaining = deadline_s - (time.monotonic() - start)
            if remaining <= 0:
                return SupervisedResult(
                    outcome="timeout",
                    attempts=attempts,
                    retries=max(attempts - 1, 0),
                    wall_s=time.monotonic() - start,
                    detail=f"deadline of {deadline_s:g}s exhausted by retries",
                    exitcodes=exitcodes,
                )
            attempts += 1
            status, payload, exitcode = self._attempt(spec, remaining)
            exitcodes.append(exitcode)
            wall_s = time.monotonic() - start
            if status == "ok":
                return SupervisedResult(
                    outcome="done",
                    payload=payload,
                    attempts=attempts,
                    retries=attempts - 1,
                    wall_s=wall_s,
                    exitcodes=exitcodes,
                )
            if status == "error":
                return SupervisedResult(
                    outcome="execution-error",
                    payload=payload,
                    attempts=attempts,
                    retries=attempts - 1,
                    wall_s=wall_s,
                    detail=payload.get("error_class") or "Exception",
                    exitcodes=exitcodes,
                )
            if status == "hung":
                return SupervisedResult(
                    outcome="timeout",
                    attempts=attempts,
                    retries=attempts - 1,
                    wall_s=wall_s,
                    detail=(
                        f"worker still running at the {deadline_s:g}s deadline; "
                        "killed"
                    ),
                    exitcodes=exitcodes,
                )
            # status == "crashed": retry with exponential backoff while the
            # budget and the deadline allow.
            if attempts > self.retry_limit:
                return SupervisedResult(
                    outcome="worker-crash",
                    attempts=attempts,
                    retries=attempts - 1,
                    wall_s=wall_s,
                    detail=(
                        f"worker crashed {attempts} time(s) "
                        f"(exitcodes {exitcodes}); retry budget "
                        f"({self.retry_limit}) exhausted"
                    ),
                    exitcodes=exitcodes,
                )
            if self.on_retry is not None:
                self.on_retry()
            delay = self.backoff_base_s * self.backoff_factor ** (attempts - 1)
            remaining = deadline_s - (time.monotonic() - start)
            time.sleep(max(0.0, min(delay, remaining)))
