"""``repro.serve`` — a fault-tolerant, always-on simulation service.

The batch front end (``python -m repro.bench``) answers one interconnect
question per process; this package turns the same execution core
(:class:`~repro.bench.engine.ExecutionEngine`) into a long-running
capacity-planning service: an asyncio HTTP server (stdlib only) that
accepts simulation requests (experiment id, quick/full, kernel backend,
optional tracing), deduplicates them against the on-disk result cache the
CLI already shares, runs them on a supervised worker-process pool, and
exports Prometheus metrics.

Robustness is the headline, in four guarantees:

* **overload degrades explicitly** — a bounded admission queue answers
  HTTP 429 with ``Retry-After`` instead of queueing without limit;
* **no request hangs** — per-request deadlines kill stuck workers and
  terminate the request with a structured ``timeout`` outcome;
* **crashes are survived** — a killed worker is retried with exponential
  backoff inside a bounded budget, and determinism guarantees the retried
  payload is bit-identical to an undisturbed run (the idempotent-replay
  discipline the RDMA layer's ``reliable_put`` established, applied to
  serving);
* **shutdown is graceful** — SIGTERM stops admission (``repro_serve_up``
  drops to 0, /readyz answers 503), in-flight work finishes, metrics are
  flushed, and the process exits 0.

Run it::

    python -m repro.serve --port 8642 --workers 4

See DESIGN.md §13 for the architecture and ``scripts/serve_smoke.py`` for
a full client session (submit, poll, scrape, drain).
"""

from .http import HttpFrontend
from .metrics import Counter, Gauge, Histogram, Registry
from .service import Rejected, ServeConfig, SimulationService
from .supervisor import SupervisedResult, WorkerSupervisor, WorkSpec

__all__ = [
    "ServeConfig",
    "SimulationService",
    "HttpFrontend",
    "Rejected",
    "WorkerSupervisor",
    "WorkSpec",
    "SupervisedResult",
    "Registry",
    "Counter",
    "Gauge",
    "Histogram",
]
