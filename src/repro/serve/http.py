"""Minimal asyncio HTTP/1.1 front end for :class:`SimulationService`.

Stdlib only: a hand-rolled request parser over ``asyncio.start_server``
(the repo bakes in no third-party web framework, and the protocol subset
a simulation service needs is tiny).  One connection = one request =
one response (``Connection: close``), which keeps the parser honest and
the drain logic trivial.

Routes:

* ``POST /submit`` — admit a simulation request (JSON body);
* ``GET /status/<request-id>`` — lifecycle state of one request;
* ``GET /result/<request-id>`` — terminal state + deterministic result body;
* ``GET /healthz`` — liveness (200 while the process runs, even draining);
* ``GET /readyz`` — readiness (503 once draining: take me out of rotation);
* ``GET /metrics`` — Prometheus text exposition.

Failure answers are structured JSON: 400 malformed, 404 unknown id/route,
405 wrong method, 413 oversized body, 429 queue full (with
``Retry-After``), 503 draining (with ``Retry-After``).
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional

from .service import Rejected, SimulationService

__all__ = ["HttpFrontend"]

#: Submission bodies are small JSON documents; anything bigger is abuse.
MAX_BODY_BYTES = 1 << 20

#: Upper bound on the request line + headers.
MAX_HEADER_BYTES = 64 * 1024


class _BadRequest(Exception):
    """Protocol-level parse failure -> 400."""


class HttpFrontend:
    """Routes HTTP connections onto one :class:`SimulationService`."""

    def __init__(self, service: SimulationService):
        self.service = service
        self._server: Optional[asyncio.AbstractServer] = None

    # -- lifecycle -----------------------------------------------------------

    async def start(self, host: str, port: int) -> tuple[str, int]:
        """Bind and serve; returns the bound (host, port) — port 0 works."""
        self._server = await asyncio.start_server(self._handle, host, port)
        sock = self._server.sockets[0]
        bound_host, bound_port = sock.getsockname()[:2]
        return bound_host, bound_port

    async def stop(self) -> None:
        """Close the listening socket and wait for it."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- connection handling -------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader, writer) -> None:
        route, status = "other", 0
        try:
            try:
                method, path, body = await self._read_request(reader)
            except _BadRequest as exc:
                route, status = "bad", 400
                await self._respond(writer, 400, {}, {"error": str(exc)})
                return
            except (asyncio.IncompleteReadError, ConnectionError, TimeoutError):
                return  # client went away mid-request; nothing to answer
            route, status, headers, payload = await self._route(method, path, body)
            await self._respond(writer, status, headers, payload)
        except (ConnectionError, BrokenPipeError):  # client gone mid-response
            status = status or 0
        finally:
            if status:
                self.service.m_http.inc(route=route, code=str(status))
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader) -> tuple[str, str, Optional[dict]]:
        head = await reader.readuntil(b"\r\n\r\n")
        if len(head) > MAX_HEADER_BYTES:
            raise _BadRequest("headers too large")
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3:
            raise _BadRequest("malformed request line")
        method, target, _version = parts
        headers = {}
        for line in lines[1:]:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if not sep:
                raise _BadRequest(f"malformed header line {line!r}")
            headers[name.strip().lower()] = value.strip()
        body: Optional[dict] = None
        length = headers.get("content-length")
        if length is not None:
            try:
                n = int(length)
            except ValueError:
                raise _BadRequest("malformed Content-Length") from None
            if n > MAX_BODY_BYTES:
                raise _BadRequest(f"body exceeds {MAX_BODY_BYTES} bytes")
            raw = await reader.readexactly(n) if n else b""
            if raw:
                try:
                    body = json.loads(raw)
                except ValueError:
                    raise _BadRequest("body is not valid JSON") from None
        return method, target.split("?", 1)[0], body

    # -- routing -------------------------------------------------------------

    async def _route(self, method: str, path: str, body):
        """Dispatch; returns ``(route_label, status, extra_headers, doc)``.

        ``doc`` is a JSON-able dict, or a ``(content_type, text)`` tuple
        for non-JSON answers (/metrics).
        """
        service = self.service
        if path == "/healthz":
            if method != "GET":
                return "healthz", 405, {}, {"error": "GET only"}
            return "healthz", 200, {}, {"status": "ok"}
        if path == "/readyz":
            if method != "GET":
                return "readyz", 405, {}, {"error": "GET only"}
            if service.accepting:
                return "readyz", 200, {}, {"status": "ready"}
            return (
                "readyz",
                503,
                {"Retry-After": _fmt_retry(service.config.retry_after_s)},
                {"status": "draining"},
            )
        if path == "/metrics":
            if method != "GET":
                return "metrics", 405, {}, {"error": "GET only"}
            text = service.metrics_text()
            return "metrics", 200, {}, (service.registry.CONTENT_TYPE, text)
        if path == "/submit":
            if method != "POST":
                return "submit", 405, {}, {"error": "POST only"}
            try:
                status, doc = await service.submit(body if body is not None else {})
            except Rejected as exc:
                headers = {}
                if exc.retry_after_s is not None:
                    headers["Retry-After"] = _fmt_retry(exc.retry_after_s)
                return "submit", exc.status, headers, {"error": exc.reason}
            return "submit", status, {}, doc
        if path.startswith("/status/"):
            if method != "GET":
                return "status", 405, {}, {"error": "GET only"}
            doc = service.status(path[len("/status/"):])
            if doc is None:
                return "status", 404, {}, {"error": "unknown request id"}
            return "status", 200, {}, doc
        if path.startswith("/result/"):
            if method != "GET":
                return "result", 405, {}, {"error": "GET only"}
            doc = service.result(path[len("/result/"):])
            if doc is None:
                return "result", 404, {}, {"error": "unknown request id"}
            return "result", 200, {}, doc
        return "other", 404, {}, {"error": f"no route for {path}"}

    # -- responses -----------------------------------------------------------

    async def _respond(self, writer, status: int, headers: dict, payload) -> None:
        if isinstance(payload, tuple):
            content_type, text = payload
            body = text.encode()
        else:
            content_type = "application/json"
            body = json.dumps(payload).encode()
        reason = _REASONS.get(status, "")
        head = [f"HTTP/1.1 {status} {reason}".rstrip()]
        head.append(f"Content-Type: {content_type}")
        head.append(f"Content-Length: {len(body)}")
        head.append("Connection: close")
        for name, value in headers.items():
            head.append(f"{name}: {value}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + body)
        await writer.drain()


_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


def _fmt_retry(seconds: float) -> str:
    """Retry-After must be an integer number of seconds (ceil, min 1)."""
    return str(max(1, int(seconds + 0.999)))
