"""A tiny Prometheus text-format metrics registry (stdlib only).

The service exports its operational state — queue depth, in-flight
requests, cache hit rate, retries, worker restarts, simulated events per
wall second — in the Prometheus exposition format (version 0.0.4) so any
scraper can watch a long-running capacity-planning service the same way
the paper's authors watched their cluster.  Modeled on the exporters in
the related RDMA tooling, but dependency-free: three metric kinds
(counter, gauge, histogram), label support, and a deterministic renderer.

Determinism notes (the repo-wide discipline applies here too): metrics
are declared once at registry construction, so ``render()`` always emits
every ``# HELP``/``# TYPE`` header in declaration order even before the
first sample — scrapers and the golden-name smoke test see a stable
schema — and samples render sorted by label values, never in dict
insertion order.
"""

from __future__ import annotations

import threading
from typing import Iterable, Optional, Sequence

__all__ = ["Counter", "Gauge", "Histogram", "Registry"]

#: Submit-to-terminal latency buckets, in seconds: sub-50 ms cache hits
#: through half-hour full-parameter sweeps.
DEFAULT_BUCKETS = (0.05, 0.25, 1.0, 5.0, 15.0, 60.0, 300.0, 1800.0)


def _fmt(value: float) -> str:
    """Render a sample value the way Prometheus expects (no float noise)."""
    if value == float("inf"):
        return "+Inf"
    as_int = int(value)
    if value == as_int:
        return str(as_int)
    return repr(value)


def _escape(value: str) -> str:
    """Escape a label value per the exposition format."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labels_blob(names: Sequence[str], values: Sequence[str]) -> str:
    """``{a="x",b="y"}`` or '' when unlabelled."""
    if not names:
        return ""
    inner = ",".join(
        f'{name}="{_escape(str(value))}"' for name, value in zip(names, values)
    )
    return "{" + inner + "}"


class _Metric:
    """Common machinery: a named family with labelled sample children."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: Sequence[str] = ()):
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._samples: dict[tuple, float] = {}
        self._lock = threading.Lock()

    def _key(self, labels: dict) -> tuple:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: expected labels {self.labelnames}, got "
                f"{tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def value(self, **labels) -> float:
        """Current value of one child (0.0 before the first touch)."""
        key = self._key(labels)
        with self._lock:
            return self._samples.get(key, 0.0)

    def render(self) -> Iterable[str]:
        """The ``# HELP``/``# TYPE`` header plus one line per child."""
        yield f"# HELP {self.name} {self.help}"
        yield f"# TYPE {self.name} {self.kind}"
        with self._lock:
            items = sorted(self._samples.items())
        for key, value in items:
            yield f"{self.name}{_labels_blob(self.labelnames, key)} {_fmt(value)}"


class Counter(_Metric):
    """Monotonically increasing count."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        """Add *amount* (must be >= 0) to the labelled child."""
        if amount < 0:
            raise ValueError(f"{self.name}: counters cannot decrease")
        key = self._key(labels)
        with self._lock:
            self._samples[key] = self._samples.get(key, 0.0) + amount


class Gauge(_Metric):
    """A value that goes up and down (queue depth, in-flight, up/down)."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        """Set the labelled child to *value*."""
        key = self._key(labels)
        with self._lock:
            self._samples[key] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        """Add *amount* (may be negative) to the labelled child."""
        key = self._key(labels)
        with self._lock:
            self._samples[key] = self._samples.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels) -> None:
        """Subtract *amount* from the labelled child."""
        self.inc(-amount, **labels)


class Histogram(_Metric):
    """Cumulative-bucket histogram (``_bucket``/``_sum``/``_count``)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        super().__init__(name, help, labelnames)
        self.buckets = tuple(sorted(buckets))
        # per child: [bucket counts..., +Inf count], sum
        self._hist: dict[tuple, tuple[list[int], float]] = {}

    def observe(self, value: float, **labels) -> None:
        """Record one observation for the labelled child."""
        key = self._key(labels)
        with self._lock:
            counts, total = self._hist.get(key, (None, 0.0))
            if counts is None:
                counts = [0] * (len(self.buckets) + 1)
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    counts[i] += 1
            counts[-1] += 1
            self._hist[key] = (counts, total + value)

    def child_count(self, **labels) -> int:
        """Observation count of one child (0 before the first observe)."""
        key = self._key(labels)
        with self._lock:
            counts, _total = self._hist.get(key, (None, 0.0))
        return counts[-1] if counts else 0

    def render(self) -> Iterable[str]:
        yield f"# HELP {self.name} {self.help}"
        yield f"# TYPE {self.name} {self.kind}"
        with self._lock:
            items = sorted(self._hist.items())
        bucket_names = self.labelnames + ("le",)
        for key, (counts, total) in items:
            # counts[i] is already cumulative: observe() increments every
            # bucket whose bound the value fits under.
            for bound, count in zip(self.buckets, counts):
                blob = _labels_blob(bucket_names, key + (_fmt(bound),))
                yield f"{self.name}_bucket{blob} {count}"
            blob = _labels_blob(bucket_names, key + ("+Inf",))
            yield f"{self.name}_bucket{blob} {counts[-1]}"
            yield f"{self.name}_sum{_labels_blob(self.labelnames, key)} {repr(total)}"
            yield f"{self.name}_count{_labels_blob(self.labelnames, key)} {counts[-1]}"


class Registry:
    """Declaration-ordered collection of metrics with one text renderer."""

    #: Content-Type for the /metrics endpoint.
    CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

    def __init__(self):
        self._metrics: list[_Metric] = []
        self._by_name: dict[str, _Metric] = {}

    def _add(self, metric: _Metric) -> _Metric:
        if metric.name in self._by_name:
            raise ValueError(f"duplicate metric {metric.name!r}")
        self._metrics.append(metric)
        self._by_name[metric.name] = metric
        return metric

    def counter(self, name: str, help: str, labelnames: Sequence[str] = ()) -> Counter:
        """Declare and register a counter."""
        return self._add(Counter(name, help, labelnames))

    def gauge(self, name: str, help: str, labelnames: Sequence[str] = ()) -> Gauge:
        """Declare and register a gauge."""
        return self._add(Gauge(name, help, labelnames))

    def histogram(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        """Declare and register a histogram."""
        return self._add(Histogram(name, help, labelnames, buckets))

    def get(self, name: str) -> Optional[_Metric]:
        """Look a metric up by family name."""
        return self._by_name.get(name)

    def render(self) -> str:
        """The full exposition document, trailing newline included."""
        lines: list[str] = []
        for metric in self._metrics:
            lines.extend(metric.render())
        return "\n".join(lines) + "\n"
