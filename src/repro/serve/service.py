"""The simulation service core: admission, dedup, supervision, drain.

:class:`SimulationService` is the HTTP-free heart of ``repro.serve`` —
the chaos tests drive it directly, the asyncio HTTP front end
(:mod:`repro.serve.http`) is a thin routing layer over it.  One instance
owns:

* a **bounded admission queue**: at most ``queue_limit`` executions may
  be waiting for a worker slot; submissions beyond that are rejected
  immediately with HTTP 429 and a ``Retry-After`` hint, never queued
  unboundedly (overload degrades explicitly, not by OOM);
* **request deduplication**: the coalescing key is the runner's
  :func:`~repro.bench.runner.cache_key` (experiment, quick, calibration,
  backend, version) plus the trace flag — identical concurrent
  submissions attach to one in-flight execution, and completed results
  are answered from the shared on-disk :class:`~repro.bench.runner.ResultCache`
  (the same cache ``python -m repro.bench`` reads and writes);
* a **supervised worker pool**: each execution runs on a single-shot
  worker process watched by :class:`~repro.serve.supervisor.WorkerSupervisor`
  (crash -> exponential-backoff retry within a bounded budget, hang ->
  deadline kill), with ``workers`` concurrent slots;
* **graceful drain**: :meth:`begin_drain` stops admission (readiness and
  ``repro_serve_up`` drop immediately), lets in-flight executions finish,
  then fires :attr:`drained` — the CLI front end exits 0 afterwards.

Every request is traced through four service spans — ``admission`` (submit
validation + cache/dedup checks), ``queue`` (waiting for a worker slot),
``execute`` (the supervised run), ``land`` (cache write + request
resolution) — recorded in the :mod:`repro.obs` event schema so a traced
request's serve-side story exports alongside its simulation spans.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Optional

from .. import __version__
from ..bench import harness
from ..bench.engine import deterministic_view
from ..bench.runner import ResultCache, cache_key, default_cache_dir
from ..sim.sched import resolve_backend
from .metrics import Registry
from .supervisor import SupervisedResult, WorkerSupervisor, WorkSpec

__all__ = ["ServeConfig", "SimulationService", "Rejected"]


@dataclass(frozen=True)
class ServeConfig:
    """Tunables of one service instance (all overridable from the CLI)."""

    host: str = "127.0.0.1"
    port: int = 8642
    workers: int = 2  # concurrent supervised executions
    queue_limit: int = 16  # executions waiting for a slot; beyond -> 429
    deadline_s: float = 300.0  # per-request deadline (attempts + backoff)
    retry_limit: int = 2  # crash retries per request
    backoff_base_s: float = 0.25
    backoff_factor: float = 2.0
    retry_after_s: float = 2.0  # hint on 429/503 responses
    use_cache: bool = True
    cache_dir: Optional[str] = None  # None = the runner's default
    request_history: int = 4096  # terminal requests kept for /status


class Rejected(Exception):
    """A submission the service refuses to admit.

    Carries the HTTP status the front end should answer with (400 unknown
    request, 429 overload, 503 draining) and whether a ``Retry-After``
    hint applies (overload and drain are transient; bad requests are not).
    """

    def __init__(self, status: int, reason: str, retry_after_s: Optional[float] = None):
        super().__init__(reason)
        self.status = status
        self.reason = reason
        self.retry_after_s = retry_after_s


@dataclass
class _Request:
    """One submission's lifecycle record."""

    id: str
    experiment_id: str
    quick: bool
    backend: Optional[str]
    trace: bool
    key: str
    submitted_m: float  # monotonic, for latency
    state: str = "queued"  # queued | running | done | failed
    outcome: Optional[str] = None  # done|timeout|worker-crash|execution-error
    cached: bool = False
    coalesced: bool = False
    attempts: int = 0
    retries: int = 0
    wall_s: float = 0.0
    detail: str = ""
    payload: Optional[dict] = None  # engine payload for terminal ok/error
    spans: list = field(default_factory=list)

    def public(self, include_result: bool = False) -> dict:
        """The JSON view served by /status and /result."""
        doc = {
            "request_id": self.id,
            "experiment": self.experiment_id,
            "quick": self.quick,
            "backend": self.backend,
            "trace": self.trace,
            "state": self.state,
            "outcome": self.outcome,
            "cached": self.cached,
            "coalesced": self.coalesced,
        }
        if self.state in ("done", "failed"):
            doc["telemetry"] = {
                "attempts": self.attempts,
                "retries": self.retries,
                "wall_s": self.wall_s,
                "spans": self.spans,
            }
            if self.detail:
                doc["detail"] = self.detail
        if include_result and self.payload is not None:
            if self.state == "done":
                # The deterministic view: bit-identical across retries,
                # workers, and front ends (CLI vs service).
                doc["result"] = deterministic_view(self.payload)
                if self.trace and "trace" in self.payload:
                    doc["trace"] = self.payload["trace"]
            else:
                doc["error"] = {
                    "error_class": self.payload.get("error_class"),
                    "traceback": self.payload.get("error"),
                }
        return doc


class _Execution:
    """One in-flight supervised run; the unit requests coalesce onto."""

    __slots__ = (
        "key", "spec", "deadline_s", "use_cache", "request_ids", "state",
        "spans", "t0_m",
    )

    def __init__(
        self,
        key: str,
        spec: WorkSpec,
        deadline_s: float,
        t0_m: float,
        use_cache: bool = True,
    ):
        self.key = key
        self.spec = spec
        self.deadline_s = deadline_s
        self.use_cache = use_cache
        self.request_ids: list[str] = []
        self.state = "queued"  # queued | running
        self.spans: list[dict] = []
        self.t0_m = t0_m


class SimulationService:
    """Admission + dedup + supervision + metrics, behind async methods.

    Construct, then call :meth:`submit` / :meth:`status` / :meth:`result`
    from one event loop.  The supervisor's blocking work runs on
    ``asyncio.to_thread`` workers, bounded by a semaphore of
    ``config.workers`` slots.
    """

    def __init__(self, config: ServeConfig = ServeConfig()):
        self.config = config
        self.accepting = True
        self.drained = asyncio.Event()
        self._draining = False
        self._start_m = time.monotonic()
        self._seq = 0
        self._requests: dict[str, _Request] = {}
        self._order: list[str] = []  # insertion order, for history eviction
        self._executions: dict[str, _Execution] = {}
        self._tasks: set[asyncio.Task] = set()
        self._slots = asyncio.Semaphore(config.workers)
        self._cache = ResultCache(
            config.cache_dir if config.cache_dir is not None else default_cache_dir()
        )
        self._init_metrics()
        self.supervisor = WorkerSupervisor(
            retry_limit=config.retry_limit,
            backoff_base_s=config.backoff_base_s,
            backoff_factor=config.backoff_factor,
            on_retry=self.m_retries.inc,
            on_worker_exit=self._note_worker_exit,
        )

    # -- metrics -------------------------------------------------------------

    def _init_metrics(self) -> None:
        r = self.registry = Registry()
        self.m_info = r.gauge(
            "repro_serve_info",
            "Constant 1, with the package version and active default backend "
            "as labels.",
            ("version", "backend"),
        )
        self.m_info.set(1, version=__version__, backend=resolve_backend(None))
        self.m_up = r.gauge(
            "repro_serve_up",
            "1 while accepting work, 0 once draining for shutdown.",
        )
        self.m_up.set(1)
        self.m_http = r.counter(
            "repro_serve_http_requests_total",
            "HTTP requests served, by route and status code.",
            ("route", "code"),
        )
        self.m_requests = r.counter(
            "repro_serve_requests_total",
            "Submitted simulation requests, by admission outcome "
            "(accepted|rejected).",
            ("outcome",),
        )
        self.m_inflight = r.gauge(
            "repro_serve_requests_inflight",
            "Requests in a non-terminal state (accepted, queued or running).",
        )
        self.m_queue_depth = r.gauge(
            "repro_serve_queue_depth",
            "Executions admitted but not yet running on a worker.",
        )
        self.m_cache_hits = r.counter(
            "repro_serve_cache_hits_total",
            "Requests answered from the on-disk result cache.",
        )
        self.m_cache_misses = r.counter(
            "repro_serve_cache_misses_total",
            "Requests that required a fresh execution (cache miss or "
            "cache=false).",
        )
        self.m_dedup_hits = r.counter(
            "repro_serve_dedup_hits_total",
            "Requests attached to an identical already-in-flight execution.",
        )
        self.m_completed = r.counter(
            "repro_serve_completed_total",
            "Terminal requests, by outcome "
            "(done|timeout|execution-error|worker-crash).",
            ("outcome",),
        )
        self.m_latency = r.histogram(
            "repro_serve_request_latency_seconds",
            "Submit-to-terminal latency per experiment, in seconds.",
            ("experiment",),
        )
        self.m_sim_events = r.counter(
            "repro_serve_sim_events_total",
            "Simulated DES kernel events processed by completed executions.",
        )
        self.m_sim_wall = r.counter(
            "repro_serve_sim_wall_seconds_total",
            "Worker wall-clock seconds spent executing simulations (rate "
            "ratio with repro_serve_sim_events_total gives sim events/s).",
        )
        self.m_retries = r.counter(
            "repro_serve_retries_total",
            "Execution attempts retried after a worker crash (exponential "
            "backoff, bounded budget).",
        )
        self.m_worker_restarts = r.counter(
            "repro_serve_worker_restarts_total",
            "Worker processes that exited abnormally (crashed or killed).",
        )
        self.m_obs_spans = r.counter(
            "repro_sim_spans_total",
            "Obs bridge: spans recorded by traced executions, by component "
            "and span name.",
            ("component", "name"),
        )
        self.m_obs_span_seconds = r.counter(
            "repro_sim_span_seconds_total",
            "Obs bridge: total simulated time inside spans, by component and "
            "span name.",
            ("component", "name"),
        )
        self.m_obs_counter_last = r.gauge(
            "repro_sim_counter_last",
            "Obs bridge: last sampled value of each simulation counter track.",
            ("component", "track"),
        )

    def _note_worker_exit(self, exitcode: Optional[int]) -> None:
        if exitcode != 0:
            self.m_worker_restarts.inc()

    def metrics_text(self) -> str:
        """The /metrics document."""
        return self.registry.render()

    # -- span helpers --------------------------------------------------------

    def _now_ns(self) -> float:
        """Wall nanoseconds since service start (the serve-span clock)."""
        return (time.monotonic() - self._start_m) * 1e9

    def _span(self, sink: list, name: str, begin_ns: float, **args) -> None:
        """Record one completed serve-phase span in the obs event schema."""
        rec = {
            "ph": "X",
            "run": 0,
            "comp": "serve",
            "name": name,
            "ts": begin_ns,
            "dur": self._now_ns() - begin_ns,
        }
        if args:
            rec["args"] = args
        sink.append(rec)

    # -- submission ----------------------------------------------------------

    def _next_id(self) -> str:
        self._seq += 1
        return f"req-{self._seq:06d}"

    def _parse(self, body: dict) -> tuple[str, bool, Optional[str], bool, bool, float]:
        if not isinstance(body, dict):
            raise Rejected(400, "request body must be a JSON object")
        experiment_id = body.get("experiment")
        if not isinstance(experiment_id, str) or not experiment_id:
            raise Rejected(400, "missing required field 'experiment'")
        try:
            harness.get(experiment_id)
        except KeyError as exc:
            raise Rejected(400, exc.args[0]) from None
        quick = body.get("quick", True)
        if not isinstance(quick, bool):
            raise Rejected(400, "'quick' must be a boolean")
        backend = body.get("backend")
        if backend is not None:
            try:
                backend = resolve_backend(backend)
            except ValueError as exc:
                raise Rejected(400, str(exc)) from None
        trace = body.get("trace", False)
        if not isinstance(trace, bool):
            raise Rejected(400, "'trace' must be a boolean")
        use_cache = body.get("cache", True)
        if not isinstance(use_cache, bool):
            raise Rejected(400, "'cache' must be a boolean")
        deadline_s = body.get("deadline_s", self.config.deadline_s)
        if not isinstance(deadline_s, (int, float)) or isinstance(deadline_s, bool) \
                or not deadline_s > 0:
            raise Rejected(400, "'deadline_s' must be a positive number")
        return experiment_id, quick, backend, trace, use_cache, float(deadline_s)

    async def submit(self, body: dict) -> tuple[int, dict]:
        """Admit one submission; returns ``(http_status, response_doc)``.

        Raises :class:`Rejected` for anything the service refuses: 400 for
        malformed requests, 429 with ``Retry-After`` when the admission
        queue is full, 503 while draining.
        """
        t_adm = self._now_ns()
        if not self.accepting:
            self.m_requests.inc(outcome="rejected")
            raise Rejected(
                503, "service is draining", retry_after_s=self.config.retry_after_s
            )
        experiment_id, quick, backend, trace, use_cache, deadline_s = self._parse(body)
        use_cache = use_cache and self.config.use_cache and not trace
        key = cache_key(experiment_id, quick, backend)
        if trace:
            key += "+trace"

        req = _Request(
            id=self._next_id(),
            experiment_id=experiment_id,
            quick=quick,
            backend=backend,
            trace=trace,
            key=key,
            submitted_m=time.monotonic(),
        )

        # 1. The shared on-disk cache (the CLI runner's): a hit is terminal
        #    immediately — no queue, no worker.
        if use_cache:
            payload = self._cache.get(key)
            if payload is not None:
                self.m_cache_hits.inc()
                req.cached = True
                req.payload = payload
                self._span(req.spans, "admission", t_adm, resolution="cache-hit")
                self._remember(req)
                self._finish_request(req, "done", payload=payload)
                self.m_requests.inc(outcome="accepted")
                return 200, req.public(include_result=True)
        self.m_cache_misses.inc()

        # 2. In-flight coalescing: identical concurrent submissions share
        #    one execution (and the first request's deadline).
        exe = self._executions.get(key)
        if exe is not None:
            self.m_dedup_hits.inc()
            req.coalesced = True
            req.state = exe.state
            self._span(req.spans, "admission", t_adm, resolution="coalesced")
            exe.request_ids.append(req.id)
            self._remember(req)
            self._admit(req)
            return 202, req.public()

        # 3. Bounded admission: reject rather than queue without limit.
        queued = sum(1 for e in self._executions.values() if e.state == "queued")
        if queued >= self.config.queue_limit:
            self.m_requests.inc(outcome="rejected")
            raise Rejected(
                429,
                f"admission queue full ({queued} executions waiting, "
                f"limit {self.config.queue_limit})",
                retry_after_s=self.config.retry_after_s,
            )

        spec = WorkSpec(
            experiment_id=experiment_id, quick=quick, backend=backend, trace=trace
        )
        exe = _Execution(
            key, spec, deadline_s, t0_m=time.monotonic(), use_cache=use_cache
        )
        exe.request_ids.append(req.id)
        self._executions[key] = exe
        self.m_queue_depth.set(queued + 1)
        self._span(req.spans, "admission", t_adm, resolution="executed")
        self._remember(req)
        self._admit(req)
        task = asyncio.get_running_loop().create_task(self._run_execution(exe))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return 202, req.public()

    def _admit(self, req: _Request) -> None:
        self.m_requests.inc(outcome="accepted")
        self.m_inflight.inc()

    def _remember(self, req: _Request) -> None:
        self._requests[req.id] = req
        self._order.append(req.id)
        # Bound the history: evict the oldest *terminal* requests beyond the
        # cap so /status answers stay O(1) memory under sustained load.
        while len(self._order) > self.config.request_history:
            for i, rid in enumerate(self._order):
                old = self._requests.get(rid)
                if old is None or old.state in ("done", "failed"):
                    del self._order[i]
                    self._requests.pop(rid, None)
                    break
            else:
                break  # everything is in flight; nothing evictable

    # -- execution -----------------------------------------------------------

    async def _run_execution(self, exe: _Execution) -> None:
        t_queue = self._now_ns()
        async with self._slots:
            exe.state = "running"
            for rid in exe.request_ids:
                req = self._requests.get(rid)
                if req is not None:
                    req.state = "running"
            self.m_queue_depth.set(
                sum(1 for e in self._executions.values() if e.state == "queued")
            )
            self._span(exe.spans, "queue", t_queue)
            t_exec = self._now_ns()
            result = await asyncio.to_thread(
                self.supervisor.run, exe.spec, exe.deadline_s
            )
            self._span(
                exe.spans,
                "execute",
                t_exec,
                outcome=result.outcome,
                attempts=result.attempts,
            )
            await self._land(exe, result)
        self._executions.pop(exe.key, None)
        self._maybe_drained()

    async def _land(self, exe: _Execution, result: SupervisedResult) -> None:
        t_land = self._now_ns()
        if result.ok:
            if exe.use_cache:
                # Same payload format the CLI runner stores — the two front
                # ends share one cache.  The trace is stripped exactly like
                # runner._land does.
                stored = {
                    k: v for k, v in result.payload.items() if k != "trace"
                }
                await asyncio.to_thread(self._cache.put, exe.key, stored)
            payload = result.payload
            if exe.spec.trace and "trace" in payload:
                self._bridge_trace(payload["trace"])
                # The serve-phase spans ride the trace payload so a traced
                # request exports end to end (admission -> queue -> execute;
                # "land" is still open here and lands in request telemetry).
                payload["trace"]["events"] = (
                    list(self._spans_for(exe)) + payload["trace"]["events"]
                )
            self.m_sim_events.inc(payload.get("events", 0))
            self.m_sim_wall.inc(payload.get("wall_s", 0.0))
        # The land span covers the cache write and trace bridging; recorded
        # before the finish loop so request telemetry carries all four
        # service phases (admission -> queue -> execute -> land).
        self._span(exe.spans, "land", t_land)
        state = "done" if result.ok else "failed"
        for rid in exe.request_ids:
            req = self._requests.get(rid)
            if req is None:
                continue
            req.attempts = result.attempts
            req.retries = result.retries
            req.wall_s = result.wall_s
            req.detail = result.detail
            req.spans = req.spans + exe.spans
            self._finish_request(req, state, payload=result.payload,
                                 outcome=result.outcome)

    def _spans_for(self, exe: _Execution) -> list[dict]:
        first = self._requests.get(exe.request_ids[0]) if exe.request_ids else None
        admission = first.spans if first is not None else []
        return admission + exe.spans

    def _finish_request(
        self, req: _Request, state: str, payload=None, outcome: str = "done"
    ) -> None:
        was_inflight = req.state in ("queued", "running") and not req.cached
        req.state = state
        req.outcome = outcome
        req.payload = payload
        if was_inflight:
            self.m_inflight.dec()
        self.m_completed.inc(outcome=outcome)
        self.m_latency.observe(
            time.monotonic() - req.submitted_m, experiment=req.experiment_id
        )

    def _bridge_trace(self, trace_payload: dict) -> None:
        """Aggregate a traced execution's records into Prometheus metrics."""
        for rec in trace_payload.get("events", ()):
            ph = rec.get("ph")
            if ph == "X":
                self.m_obs_spans.inc(component=rec["comp"], name=rec["name"])
                self.m_obs_span_seconds.inc(
                    rec.get("dur", 0.0) / 1e9,
                    component=rec["comp"],
                    name=rec["name"],
                )
            elif ph == "C":
                self.m_obs_counter_last.set(
                    rec.get("value", 0.0), component=rec["comp"], track=rec["name"]
                )

    # -- lookup --------------------------------------------------------------

    def status(self, request_id: str) -> Optional[dict]:
        """The /status view of one request, or None when unknown/evicted."""
        req = self._requests.get(request_id)
        return None if req is None else req.public()

    def result(self, request_id: str) -> Optional[dict]:
        """The /result view (includes the deterministic result body)."""
        req = self._requests.get(request_id)
        return None if req is None else req.public(include_result=True)

    # -- drain ---------------------------------------------------------------

    def begin_drain(self) -> None:
        """Stop admitting; finish in-flight work; then :attr:`drained` fires.

        Idempotent.  ``repro_serve_up`` drops to 0 immediately so scrapers
        observe the drain before the process exits; /metrics, /status and
        /result keep answering until the front end shuts down.
        """
        if self._draining:
            return
        self._draining = True
        self.accepting = False
        self.m_up.set(0)
        self._maybe_drained()

    def _maybe_drained(self) -> None:
        if self._draining and not self._executions:
            self.drained.set()

    @property
    def draining(self) -> bool:
        """True once :meth:`begin_drain` has been called."""
        return self._draining

    def inflight_executions(self) -> int:
        """Executions not yet landed (the drain gate)."""
        return len(self._executions)
