"""CLI: ``python -m repro.serve [options]`` — run the simulation service.

Boots the asyncio HTTP front end over one :class:`SimulationService` and
serves until SIGTERM/SIGINT, then drains gracefully: admission stops
(``repro_serve_up 0``, /readyz 503), in-flight executions finish, the
final metrics snapshot is flushed to stderr, and the process exits 0.

Options mirror :class:`~repro.serve.service.ServeConfig`:

* ``--host``/``--port`` — bind address (``--port 0`` picks an ephemeral
  port; the bound port is printed on the ``listening on`` line);
* ``--workers N`` — concurrent supervised worker processes;
* ``--queue-limit N`` — executions waiting for a slot before 429;
* ``--deadline S`` — default per-request deadline (seconds);
* ``--retry-limit N`` / ``--backoff-base S`` — crash-retry budget/backoff;
* ``--cache-dir DIR`` / ``--no-cache`` — the shared result cache
  (the same store ``python -m repro.bench`` reads and writes).
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys

from ..bench.runner import default_cache_dir
from .http import HttpFrontend
from .service import ServeConfig, SimulationService


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro.serve`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Always-on simulation service over the bench execution core.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=8642,
        help="bind port (0 = ephemeral; see the 'listening on' line)",
    )
    parser.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="concurrent supervised worker processes (default: 2)",
    )
    parser.add_argument(
        "--queue-limit", type=int, default=16, metavar="N",
        help="max executions waiting for a worker before 429 (default: 16)",
    )
    parser.add_argument(
        "--deadline", type=float, default=300.0, metavar="S",
        help="default per-request deadline in seconds (default: 300)",
    )
    parser.add_argument(
        "--retry-limit", type=int, default=2, metavar="N",
        help="crash retries per request before terminal failure (default: 2)",
    )
    parser.add_argument(
        "--backoff-base", type=float, default=0.25, metavar="S",
        help="base of the exponential crash-retry backoff (default: 0.25)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help=f"shared result cache location (default: {default_cache_dir()})",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="never read or write the on-disk result cache",
    )
    return parser


def config_from_args(args: argparse.Namespace) -> ServeConfig:
    """Translate parsed CLI arguments into a :class:`ServeConfig`."""
    return ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_limit=args.queue_limit,
        deadline_s=args.deadline,
        retry_limit=args.retry_limit,
        backoff_base_s=args.backoff_base,
        use_cache=not args.no_cache,
        cache_dir=args.cache_dir,
    )


async def serve(config: ServeConfig) -> int:
    """Run the service until a termination signal, then drain; returns 0."""
    service = SimulationService(config)
    frontend = HttpFrontend(service)
    host, port = await frontend.start(config.host, config.port)
    print(
        f"repro.serve {_version()} listening on http://{host}:{port} "
        f"(workers={config.workers}, queue_limit={config.queue_limit}, "
        f"deadline={config.deadline_s:g}s)",
        file=sys.stderr,
        flush=True,
    )

    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(sig, service.begin_drain)

    await service.drained.wait()
    # Drain order: in-flight work has landed; stop answering, then flush
    # the final metrics snapshot (repro_serve_up is already 0 in it).
    await frontend.stop()
    print(service.metrics_text(), file=sys.stderr, flush=True)
    import multiprocessing

    leftover = multiprocessing.active_children()
    print(
        f"repro.serve drained: inflight=0 workers_alive={len(leftover)}",
        file=sys.stderr,
        flush=True,
    )
    return 0 if not leftover else 1


def _version() -> str:
    from .. import __version__

    return __version__


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.workers < 1:
        build_parser().error(f"--workers must be >= 1, got {args.workers}")
    if args.queue_limit < 1:
        build_parser().error(f"--queue-limit must be >= 1, got {args.queue_limit}")
    if args.deadline <= 0:
        build_parser().error(f"--deadline must be > 0, got {args.deadline}")
    try:
        return asyncio.run(serve(config_from_args(args)))
    except KeyboardInterrupt:
        # SIGINT before the handler was installed (startup window).
        return 130


if __name__ == "__main__":
    sys.exit(main())
