"""PCI Express transaction-layer packet (TLP) framing math.

The simulation works at TLP granularity.  Per-TLP wire overhead for a Gen2
link (values in bytes):

* physical framing (STP + END) ............ 2
* DLL sequence number ..................... 2
* LCRC .................................... 4
* TLP header .............................. 12 (3DW) or 16 (4DW, 64-bit addr)

Memory writes/reads targeting 64-bit addresses use 4DW headers (the paper's
UVA buffers live above 4 GiB); completions use 3DW headers.  ECRC is not
modelled.  DLLP traffic (ACK/NAK, flow-control updates) is folded into a
configurable link-efficiency factor on the link bandwidth rather than being
simulated per-DLLP.

Fragmentation rules:

* posted writes are split at the Max Payload Size (MPS) boundary,
* read requests are split at the Max Read Request Size (MRRS) boundary,
* completions for one request are split at the Read Completion Boundary
  (RCB); we use MPS for completion chunking, which matches observed
  behaviour on the PLX-based platforms the paper used.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = [
    "TlpKind",
    "Tlp",
    "FRAMING_OVERHEAD",
    "HEADER_3DW",
    "HEADER_4DW",
    "tlp_overhead",
    "wire_size",
    "fragment",
    "write_efficiency",
    "DEFAULT_MPS",
    "DEFAULT_MRRS",
]

# Per-TLP fixed overheads (bytes).
FRAMING_OVERHEAD = 2 + 2 + 4  # STP/END + seqnum + LCRC
HEADER_3DW = 12
HEADER_4DW = 16

# Typical Gen2 platform settings (SuperMicro/Westmere per the paper).
DEFAULT_MPS = 256  # Max Payload Size
DEFAULT_MRRS = 512  # Max Read Request Size


class TlpKind(enum.Enum):
    """The TLP types the simulation distinguishes."""

    MEM_WRITE = "MWr"  # posted write, carries payload
    MEM_READ = "MRd"  # non-posted read request, header only
    COMPLETION = "CplD"  # completion with data
    MESSAGE = "Msg"  # vendor/control message, header only


_HEADER_BYTES = {
    TlpKind.MEM_WRITE: HEADER_4DW,
    TlpKind.MEM_READ: HEADER_4DW,
    TlpKind.COMPLETION: HEADER_3DW,
    TlpKind.MESSAGE: HEADER_4DW,
}


def tlp_overhead(kind: TlpKind) -> int:
    """Fixed wire overhead (bytes) for a TLP of *kind*."""
    return FRAMING_OVERHEAD + _HEADER_BYTES[kind]


def wire_size(kind: TlpKind, payload_bytes: int) -> int:
    """Total bytes a TLP occupies on the link."""
    if payload_bytes < 0:
        raise ValueError("negative payload")
    if kind in (TlpKind.MEM_READ, TlpKind.MESSAGE) and payload_bytes:
        raise ValueError(f"{kind.value} TLPs carry no payload")
    return tlp_overhead(kind) + payload_bytes


_seq_counter = 0


def _next_seq() -> int:
    global _seq_counter
    _seq_counter += 1
    return _seq_counter


@dataclass
class Tlp:
    """One transaction-layer packet in flight.

    ``payload`` is an optional Python object riding along for data-carrying
    simulations (delivered to the target's write hook on arrival); it does
    not affect timing — only ``nbytes`` does.
    """

    kind: TlpKind
    addr: int
    nbytes: int  # payload bytes (request size for MEM_READ)
    requester: str = ""
    tag: int = field(default_factory=_next_seq)
    payload: Any = None

    @property
    def size(self) -> int:
        """Wire footprint in bytes (for FIFO/channel accounting)."""
        if self.kind == TlpKind.MEM_READ:
            return tlp_overhead(self.kind)
        return wire_size(self.kind, self.nbytes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Tlp({self.kind.value} addr=0x{self.addr:x} n={self.nbytes} "
            f"tag={self.tag})"
        )


def fragment(addr: int, nbytes: int, boundary: int) -> Iterator[tuple[int, int]]:
    """Split [addr, addr+nbytes) into naturally-aligned chunks.

    PCIe requires transactions not to cross the MPS/MRRS boundary from an
    aligned grid, so the first chunk may be short.  Yields (addr, size).
    """
    if nbytes < 0:
        raise ValueError("negative size")
    if boundary <= 0 or boundary & (boundary - 1):
        raise ValueError(f"boundary {boundary} must be a positive power of two")
    end = addr + nbytes
    cur = addr
    while cur < end:
        next_boundary = (cur // boundary + 1) * boundary
        chunk_end = min(end, next_boundary)
        yield cur, chunk_end - cur
        cur = chunk_end


def write_efficiency(mps: int = DEFAULT_MPS) -> float:
    """Payload fraction of wire bytes for back-to-back max-size writes."""
    return mps / wire_size(TlpKind.MEM_WRITE, mps)


@dataclass(frozen=True)
class LinkParams:
    """Electrical parameters of one PCIe link."""

    gen: int = 2
    lanes: int = 8
    # Fraction of raw bandwidth left after DLLP (ACK/FC) traffic.
    dllp_efficiency: float = 0.95

    # Data rate per lane after 8b/10b (Gen1/2) or 128b/130b (Gen3), bytes/ns.
    _PER_LANE = {1: 0.25, 2: 0.5, 3: 0.985}

    @property
    def raw_bandwidth(self) -> float:
        """Raw post-encoding bandwidth in bytes/ns (== GB/s)."""
        try:
            per_lane = self._PER_LANE[self.gen]
        except KeyError:
            raise ValueError(f"unsupported PCIe gen {self.gen}") from None
        return per_lane * self.lanes

    @property
    def effective_bandwidth(self) -> float:
        """Bandwidth available to TLPs after DLLP overhead, bytes/ns."""
        return self.raw_bandwidth * self.dllp_efficiency
