"""PCIe endpoint base class and target-side behaviour descriptors.

A device participates in the fabric in two roles:

* **initiator** — it calls :meth:`repro.pcie.fabric.PCIeFabric.write` /
  :meth:`~repro.pcie.fabric.PCIeFabric.read` against remote addresses;
* **target** — the fabric consults :meth:`PCIeDevice.describe_read` /
  :meth:`PCIeDevice.describe_write` for the address being accessed and
  applies the returned :class:`ReadBehavior` / :class:`WriteBehavior`
  (first-access latency, sustained-rate limiter, delivery hook).

Behaviour objects are *shared* across transactions so that a single
:class:`~repro.sim.channel.RateLimiter` naturally serializes concurrent
accesses to the same internal engine (e.g. a GPU's BAR1 read path).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..sim import RateLimiter, Simulator

__all__ = ["ReadBehavior", "WriteBehavior", "AddressWindow", "PCIeDevice", "HostMemory"]


@dataclass
class ReadBehavior:
    """How a device serves inbound memory-read requests.

    ``latency`` — time from request arrival to first completion data
    (device-internal; link traversal is added by the fabric).
    ``limiter`` — optional shared rate limiter bounding sustained completion
    production (None = only the link limits).
    """

    latency: float
    limiter: Optional[RateLimiter] = None


@dataclass
class WriteBehavior:
    """How a device absorbs inbound posted writes.

    ``limiter`` — optional shared sink-rate limiter.
    ``on_write`` — called as ``on_write(addr, nbytes, payload)`` when the
    last TLP of a write transaction arrives (payload rides on that TLP).
    """

    limiter: Optional[RateLimiter] = None
    on_write: Optional[Callable[[int, int, Any], None]] = None


@dataclass
class AddressWindow:
    """One BAR-like address range owned by a device."""

    base: int
    size: int
    label: str = ""

    @property
    def limit(self) -> int:
        """One past the last byte of the window."""
        return self.base + self.size

    def contains(self, addr: int) -> bool:
        """True if *addr* falls inside the window."""
        return self.base <= addr < self.limit


class PCIeDevice:
    """Base class for anything that plugs into the fabric.

    Subclasses override :meth:`describe_read` / :meth:`describe_write` to
    give per-window behaviour, and may use ``self.fabric`` (set on attach)
    to initiate transactions.
    """

    def __init__(self, sim: Simulator, name: str):
        self.sim = sim
        self.name = name
        self.windows: list[AddressWindow] = []
        self.fabric = None  # set by PCIeFabric.add_endpoint
        self.node = None  # fabric node, set on attach

    def add_window(self, base: int, size: int, label: str = "") -> AddressWindow:
        """Register an address window owned by this device."""
        win = AddressWindow(base, size, label)
        for existing in self.windows:
            if not (win.limit <= existing.base or existing.limit <= win.base):
                raise ValueError(
                    f"{self.name}: window {label!r} overlaps {existing.label!r}"
                )
        self.windows.append(win)
        if self.fabric is not None:
            self.fabric.index_window(self, win)
        return win

    def window_for(self, addr: int) -> AddressWindow:
        """The window containing *addr* (raises KeyError if none)."""
        for win in self.windows:
            if win.contains(addr):
                return win
        raise KeyError(f"{self.name}: address 0x{addr:x} not in any window")

    # -- target-side hooks ---------------------------------------------------

    def describe_read(self, addr: int) -> ReadBehavior:
        """Behaviour for an inbound read at *addr*."""
        raise NotImplementedError(f"{self.name} does not serve reads")

    def describe_write(self, addr: int) -> WriteBehavior:
        """Behaviour for an inbound write at *addr*."""
        raise NotImplementedError(f"{self.name} does not accept writes")


class HostMemory(PCIeDevice):
    """System DRAM behind the root complex.

    Served through the memory controller: modest first-access latency and a
    rate limiter representing achievable DMA bandwidth to DRAM (generous on
    the Westmere platforms — the bottlenecks in the paper are elsewhere).
    """

    def __init__(
        self,
        sim: Simulator,
        base: int = 0x0,
        size: int = 1 << 36,
        read_latency: float = 150.0,
        write_rate: float = 12.8,
        read_rate: float = 12.8,
        name: str = "host-memory",
    ):
        super().__init__(sim, name)
        self.add_window(base, size, "dram")
        self._read = ReadBehavior(
            latency=read_latency, limiter=RateLimiter(sim, read_rate, f"{name}.rd")
        )
        self._write = WriteBehavior(
            limiter=RateLimiter(sim, write_rate, f"{name}.wr"), on_write=self._deliver
        )
        # Observable delivery log for data-carrying tests: (addr, nbytes, payload)
        self.write_log: list[tuple[int, int, Any]] = []
        self.log_writes = False
        # Higher layers (e.g. the CUDA runtime's host-buffer heap) register
        # hooks to receive data-carrying writes into their address ranges.
        self.delivery_hooks: list[Callable[[int, int, Any], None]] = []

    def _deliver(self, addr: int, nbytes: int, payload: Any) -> None:
        if self.log_writes:
            self.write_log.append((addr, nbytes, payload))
        if payload is not None:
            for hook in self.delivery_hooks:
                hook(addr, nbytes, payload)

    def describe_read(self, addr: int) -> ReadBehavior:
        return self._read

    def describe_write(self, addr: int) -> WriteBehavior:
        return self._write
