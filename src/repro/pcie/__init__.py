"""PCI Express fabric model: TLP math, links, switches, split transactions.

See :mod:`repro.pcie.fabric` for the transaction engines and
:mod:`repro.pcie.topology` for ready-made host platforms.
"""

from .analyzer import BusAnalyzer, PhaseTiming
from .device import AddressWindow, HostMemory, PCIeDevice, ReadBehavior, WriteBehavior
from .fabric import FabricLink, FabricNode, PCIeFabric, TransferRecord
from .tlp import (
    DEFAULT_MPS,
    DEFAULT_MRRS,
    LinkParams,
    Tlp,
    TlpKind,
    fragment,
    tlp_overhead,
    wire_size,
    write_efficiency,
)
from .topology import Platform, dual_socket_platform, plx_platform, westmere_platform

__all__ = [
    "BusAnalyzer",
    "PhaseTiming",
    "AddressWindow",
    "HostMemory",
    "PCIeDevice",
    "ReadBehavior",
    "WriteBehavior",
    "FabricLink",
    "FabricNode",
    "PCIeFabric",
    "TransferRecord",
    "LinkParams",
    "Tlp",
    "TlpKind",
    "fragment",
    "tlp_overhead",
    "wire_size",
    "write_efficiency",
    "DEFAULT_MPS",
    "DEFAULT_MRRS",
    "Platform",
    "plx_platform",
    "westmere_platform",
    "dual_socket_platform",
]
