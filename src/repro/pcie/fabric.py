"""The PCIe fabric: topology, routing, and split-transaction engines.

The fabric is a tree (root complex at the top, switches below, endpoints at
the leaves — a dual-socket platform is modelled as a virtual top node whose
children are the two root complexes joined by QPI-latency links).  Each edge
is a full-duplex pair of :class:`~repro.sim.channel.Channel` objects sized
from :class:`~repro.pcie.tlp.LinkParams`.

Transactions:

* :meth:`PCIeFabric.write` — posted write.  Payload is fragmented into
  *quanta* (default 4 KiB of payload, i.e. a batch of MPS-sized TLPs whose
  summed wire overhead is accounted exactly); quanta pipeline hop by hop.
  The returned event fires when the last quantum has been absorbed by the
  target (including the target's sink rate limiter).
* :meth:`PCIeFabric.read` — one split transaction (request ≤ MRRS): a
  header-only MRd travels to the target, waits the target's first-access
  latency and rate limiter, and MPS-chunked completions travel back.  The
  event fires when the last completion lands at the initiator.
* :meth:`PCIeFabric.read_pipelined` — a windowed initiator issuing many
  MRRS-sized requests with a bounded number outstanding (how real DMA
  engines achieve bandwidth despite the read round-trip).

Timing only: reads do not move Python data (the simulation gives callers
global visibility of memory objects); writes may carry an opaque payload
delivered to the target's ``on_write`` hook.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..sim import Channel, Event, SimulationError, Simulator
from .device import PCIeDevice
from .tlp import DEFAULT_MPS, DEFAULT_MRRS, LinkParams, TlpKind, fragment, tlp_overhead

__all__ = ["PCIeFabric", "FabricNode", "FabricLink", "TransferRecord"]


@dataclass
class TransferRecord:
    """One observed link crossing (fed to bus-analyzer taps)."""

    time: float
    kind: TlpKind
    addr: int
    payload_bytes: int
    wire_bytes: int
    direction: str  # "up" (toward root) or "down"
    requester: str


class FabricLink:
    """Full-duplex edge between a node and its parent."""

    def __init__(
        self,
        sim: Simulator,
        child: "FabricNode",
        parent: "FabricNode",
        params: LinkParams,
        latency: float,
    ):
        bw = params.effective_bandwidth
        self.params = params
        self.child = child
        self.parent = parent
        # "up" carries traffic toward the root, "down" away from it.
        self.up = Channel(sim, bw, latency, name=f"{child.name}->{parent.name}")
        self.down = Channel(sim, bw, latency, name=f"{parent.name}->{child.name}")
        self.taps: list[Callable[[TransferRecord], None]] = []

    def channel(self, direction: str) -> Channel:
        """The channel for *direction* ('up' or 'down')."""
        return self.up if direction == "up" else self.down

    def notify(self, rec: TransferRecord) -> None:
        """Feed *rec* to any attached analyzer taps."""
        for tap in self.taps:
            tap(rec)


class FabricNode:
    """A position in the tree: root complex, switch, or endpoint slot."""

    def __init__(self, name: str, kind: str, parent: Optional["FabricNode"]):
        self.name = name
        self.kind = kind  # "root" | "switch" | "endpoint"
        self.parent = parent
        self.uplink: Optional[FabricLink] = None
        self.device: Optional[PCIeDevice] = None
        self.depth = 0 if parent is None else parent.depth + 1

    def ancestors(self) -> list["FabricNode"]:
        """This node and all its ancestors, leaf-first."""
        chain = [self]
        node = self
        while node.parent is not None:
            node = node.parent
            chain.append(node)
        return chain


class PCIeFabric:
    """A tree of PCIe links with address-routed split transactions."""

    def __init__(
        self,
        sim: Simulator,
        mps: int = DEFAULT_MPS,
        mrrs: int = DEFAULT_MRRS,
        write_quantum: int = 4096,
        write_batch: int = 1,
    ):
        if write_batch < 1:
            raise SimulationError("write_batch must be >= 1")
        self.sim = sim
        self.mps = mps
        self.mrrs = mrrs
        self.write_quantum = write_quantum
        # Batch-scheduling factor for posted writes: how many back-to-back
        # quanta are coalesced into one scheduled transfer per hop.  1 (the
        # default) preserves quantum-granular pipelining and bit-identical
        # timing; larger values trade pipelining granularity for a
        # proportional reduction in simulated events — useful for bulk
        # sweeps where per-quantum interleaving does not matter.
        self.write_batch = write_batch
        self.nodes: dict[str, FabricNode] = {}
        self.root: Optional[FabricNode] = None
        # Address index: sorted list of (base, limit, device).
        self._windows: list[tuple[int, int, PCIeDevice]] = []
        # Fault-injection site (repro.faults): when set, every hop transfer
        # consults it for LCRC-triggered TLP replays.  None (the default)
        # leaves the transaction paths bit-identical to the fault-free
        # fabric — the hook is a single predictable branch per hop.
        self.faults = None

    def _hop_wire(self, channel: Channel, wire: int) -> int:
        """Wire bytes for one hop, inflated by any TLP replays."""
        if self.faults is None:
            return wire
        return wire + self.faults.tlp_extra_wire(channel.name, wire)

    # ------------------------------------------------------------------
    # Topology construction
    # ------------------------------------------------------------------

    def add_root(self, name: str = "root-complex") -> FabricNode:
        """Create the tree root (exactly one per fabric)."""
        if self.root is not None:
            raise SimulationError("fabric already has a root")
        node = FabricNode(name, "root", None)
        self.root = node
        self.nodes[name] = node
        return node

    def _attach(
        self,
        name: str,
        kind: str,
        parent: FabricNode,
        link: LinkParams,
        latency: float,
    ) -> FabricNode:
        if name in self.nodes:
            raise SimulationError(f"duplicate fabric node name {name!r}")
        node = FabricNode(name, kind, parent)
        node.uplink = FabricLink(self.sim, node, parent, link, latency)
        self.nodes[name] = node
        return node

    def add_switch(
        self,
        name: str,
        parent: FabricNode,
        link: LinkParams = LinkParams(gen=2, lanes=16),
        latency: float = 150.0,
    ) -> FabricNode:
        """Attach a switch (e.g. a PLX) below *parent*."""
        return self._attach(name, "switch", parent, link, latency)

    def add_endpoint(
        self,
        device: PCIeDevice,
        parent: FabricNode,
        link: LinkParams = LinkParams(gen=2, lanes=8),
        latency: float = 150.0,
    ) -> FabricNode:
        """Attach *device* below *parent* and index its address windows."""
        node = self._attach(device.name, "endpoint", parent, link, latency)
        node.device = device
        device.fabric = self
        device.node = node
        for win in device.windows:
            self.index_window(device, win)
        return node

    def index_window(self, device: PCIeDevice, win) -> None:
        """Register an address window for routing."""
        for base, limit, dev in self._windows:
            if not (win.limit <= base or limit <= win.base):
                raise SimulationError(
                    f"window clash: {device.name} [{win.base:#x},{win.limit:#x}) "
                    f"overlaps {dev.name}"
                )
        self._windows.append((win.base, win.limit, device))
        self._windows.sort()

    def resolve(self, addr: int) -> PCIeDevice:
        """The device owning *addr*."""
        for base, limit, dev in self._windows:
            if base <= addr < limit:
                return dev
        raise SimulationError(f"address 0x{addr:x} does not route anywhere")

    def link_of(self, name: str) -> FabricLink:
        """The uplink of node *name* (for analyzer attachment)."""
        node = self.nodes[name]
        if node.uplink is None:
            raise SimulationError(f"{name} is the root; it has no uplink")
        return node.uplink

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def path(
        self, src: FabricNode, dst: FabricNode
    ) -> list[tuple[FabricLink, str]]:
        """The ordered (link, direction) hops from *src* to *dst*."""
        if src is dst:
            return []
        src_chain = src.ancestors()
        dst_chain = dst.ancestors()
        # Keyed by the node itself (identity hash): same membership semantics
        # as id()-keys but with no raw-address handling (DET001).
        dst_index = {n: i for i, n in enumerate(dst_chain)}
        hops: list[tuple[FabricLink, str]] = []
        # Climb from src until we hit a node on dst's ancestor chain.
        meet_idx = None
        for node in src_chain:
            if node in dst_index:
                meet_idx = dst_index[node]
                break
            hops.append((node.uplink, "up"))
        if meet_idx is None:
            raise SimulationError(f"no path {src.name} -> {dst.name}")
        # Descend from the meeting point to dst.
        down = [(n.uplink, "down") for n in dst_chain[:meet_idx]]
        hops.extend(reversed(down))
        return hops

    def _device_node(self, device: PCIeDevice) -> FabricNode:
        if device.node is None:
            raise SimulationError(f"{device.name} is not attached to the fabric")
        return device.node

    # ------------------------------------------------------------------
    # Posted writes
    # ------------------------------------------------------------------

    def write(
        self,
        initiator: PCIeDevice,
        addr: int,
        nbytes: int,
        payload: Any = None,
        quantum: Optional[int] = None,
        batch: Optional[int] = None,
    ) -> Event:
        """Posted write of *nbytes* to *addr*; fires on target absorption.

        *batch* overrides the fabric's ``write_batch`` for this write:
        how many back-to-back quanta are scheduled as one transfer.
        """
        if nbytes <= 0:
            raise SimulationError("write needs a positive size")
        target = self.resolve(addr)
        behavior = target.describe_write(addr)
        hops = self.path(self._device_node(initiator), self._device_node(target))
        q = quantum or self.write_quantum
        b = batch if batch is not None else self.write_batch
        if b < 1:
            raise SimulationError("write batch must be >= 1")
        done = Event(self.sim)
        obs = self.sim._obs
        if obs is not None:
            span = obs.span("pcie", "write", initiator=initiator.name, nbytes=nbytes)
            done.callbacks.append(span.end_event)
        self.sim.process(
            self._write_proc(initiator, addr, nbytes, payload, behavior, hops, q, b, done),
            name=f"wr:{initiator.name}->0x{addr:x}",
        )
        return done

    def _wire_bytes_for_write(self, addr: int, nbytes: int) -> int:
        # TLP count == number of MPS-aligned boundaries the range touches.
        n_tlps = (addr + nbytes - 1) // self.mps - addr // self.mps + 1
        return nbytes + n_tlps * tlp_overhead(TlpKind.MEM_WRITE)

    def _write_proc(self, initiator, addr, nbytes, payload, behavior, hops, q, batch, done):
        # Split into quanta that pipeline across hops.  The producer issues
        # each quantum's FIRST hop inline so that competing initiators
        # interleave fairly at shared links; the remaining hops run in a
        # detached sub-process, giving store-and-forward pipelining.
        #
        # With batch > 1, back-to-back quanta are coalesced: one scheduled
        # transfer (and one hop sub-process) moves the batch's summed wire
        # bytes.  TLP framing overhead is still accounted per quantum — the
        # same TLPs cross the wire, the simulator just schedules them as a
        # unit — so delivered bandwidth is unchanged while the event count
        # drops by ~the batch factor.
        quanta = list(fragment(addr, nbytes, max(q, self.mps)))
        if batch > 1:
            groups = []
            for i in range(0, len(quanta), batch):
                part = quanta[i : i + batch]
                groups.append(
                    (
                        part[0][0],
                        sum(s for _, s in part),
                        sum(self._wire_bytes_for_write(a, s) for a, s in part),
                    )
                )
        else:
            groups = [
                (qaddr, qsize, self._wire_bytes_for_write(qaddr, qsize))
                for qaddr, qsize in quanta
            ]
        state = {"left": len(groups)}

        def _count(ev):
            state["left"] -= 1
            if state["left"] == 0:
                done.succeed(nbytes)

        for i, (qaddr, qsize, wire) in enumerate(groups):
            is_last = i == len(groups) - 1
            if hops:
                first_link, first_dir = hops[0]
                first_link.notify(
                    TransferRecord(
                        self.sim.now,
                        TlpKind.MEM_WRITE,
                        qaddr,
                        qsize,
                        wire,
                        first_dir,
                        initiator.name,
                    )
                )
                first_ch = first_link.channel(first_dir)
                yield first_ch.transfer(self._hop_wire(first_ch, wire))
            ev = Event(self.sim)
            ev.callbacks.append(_count)
            # The full payload is delivered once, with the whole write's base
            # address and size, when the final quantum is absorbed.
            delivery = (addr, nbytes, payload) if is_last else None
            self.sim.process(
                self._quantum_rest_proc(
                    initiator,
                    qaddr,
                    qsize,
                    wire,
                    delivery,
                    behavior,
                    hops[1:],
                    ev,
                ),
            )

    def _quantum_rest_proc(
        self, initiator, addr, nbytes, wire, delivery, behavior, hops, done
    ):
        for link, direction in hops:
            ch = link.channel(direction)
            link.notify(
                TransferRecord(
                    self.sim.now,
                    TlpKind.MEM_WRITE,
                    addr,
                    nbytes,
                    wire,
                    direction,
                    initiator.name,
                )
            )
            yield ch.transfer(self._hop_wire(ch, wire))
        if behavior.limiter is not None:
            yield behavior.limiter.consume(nbytes)
        if delivery is not None and behavior.on_write is not None:
            base_addr, total_nbytes, payload = delivery
            behavior.on_write(base_addr, total_nbytes, payload)
        done.succeed(nbytes)

    # ------------------------------------------------------------------
    # Split-transaction reads
    # ------------------------------------------------------------------

    def read(self, initiator: PCIeDevice, addr: int, nbytes: int) -> Event:
        """One split-transaction read (≤ MRRS); fires when data is back."""
        if nbytes <= 0:
            raise SimulationError("read needs a positive size")
        if nbytes > self.mrrs:
            raise SimulationError(
                f"read of {nbytes} exceeds MRRS {self.mrrs}; "
                "use read_pipelined for bulk transfers"
            )
        target = self.resolve(addr)
        behavior = target.describe_read(addr)
        fwd = self.path(self._device_node(initiator), self._device_node(target))
        rev = self.path(self._device_node(target), self._device_node(initiator))
        done = Event(self.sim)
        obs = self.sim._obs
        if obs is not None:
            span = obs.span("pcie", "read", initiator=initiator.name, nbytes=nbytes)
            done.callbacks.append(span.end_event)
        self.sim.process(
            self._read_proc(initiator, addr, nbytes, behavior, fwd, rev, done),
            name=f"rd:{initiator.name}<-0x{addr:x}",
        )
        return done

    def _read_proc(self, initiator, addr, nbytes, behavior, fwd, rev, done):
        req_wire = tlp_overhead(TlpKind.MEM_READ)
        for link, direction in fwd:
            ch = link.channel(direction)
            link.notify(
                TransferRecord(
                    self.sim.now,
                    TlpKind.MEM_READ,
                    addr,
                    nbytes,
                    req_wire,
                    direction,
                    initiator.name,
                )
            )
            yield ch.transfer(self._hop_wire(ch, req_wire))
        # Target first-access latency, then sustained-rate pacing.
        if behavior.latency > 0:
            yield self.sim.timeout(behavior.latency)
        if behavior.limiter is not None:
            yield behavior.limiter.consume(nbytes)
        n_cpl = sum(1 for _ in fragment(addr, nbytes, self.mps))
        cpl_wire = nbytes + n_cpl * tlp_overhead(TlpKind.COMPLETION)
        for link, direction in rev:
            ch = link.channel(direction)
            link.notify(
                TransferRecord(
                    self.sim.now,
                    TlpKind.COMPLETION,
                    addr,
                    nbytes,
                    cpl_wire,
                    direction,
                    initiator.name,
                )
            )
            yield ch.transfer(self._hop_wire(ch, cpl_wire))
        done.succeed(nbytes)

    def read_pipelined(
        self,
        initiator: PCIeDevice,
        addr: int,
        nbytes: int,
        outstanding: int = 4,
        request_size: Optional[int] = None,
        on_data: Optional[Callable[[int, int], None]] = None,
    ) -> Event:
        """Windowed bulk read: many MRRS-sized requests, bounded in flight.

        ``on_data(chunk_addr, chunk_size)`` runs as each chunk's completions
        arrive (used by DMA engines to forward data onward).  The returned
        event fires when the final chunk lands.
        """
        if outstanding < 1:
            raise SimulationError("need at least one outstanding request")
        rs = request_size or self.mrrs
        if rs > self.mrrs:
            raise SimulationError(f"request_size {rs} exceeds MRRS {self.mrrs}")
        done = Event(self.sim)
        obs = self.sim._obs
        if obs is not None:
            span = obs.span(
                "pcie",
                "read_pipelined",
                initiator=initiator.name,
                nbytes=nbytes,
                outstanding=outstanding,
            )
            done.callbacks.append(span.end_event)
        self.sim.process(
            self._read_pipelined_proc(initiator, addr, nbytes, outstanding, rs, on_data, done),
            name=f"rdpipe:{initiator.name}",
        )
        return done

    def _read_pipelined_proc(self, initiator, addr, nbytes, outstanding, rs, on_data, done):
        chunks = list(fragment(addr, nbytes, rs))
        in_flight: list[Event] = []
        completed = {"n": 0}
        total = len(chunks)

        def _make_cb(caddr, csize):
            def _cb(ev):
                completed["n"] += 1
                if on_data is not None:
                    on_data(caddr, csize)
                if completed["n"] == total:
                    done.succeed(nbytes)

            return _cb

        for caddr, csize in chunks:
            # Respect the window: wait for the oldest request to finish.
            while len(in_flight) >= outstanding:
                oldest = in_flight.pop(0)
                if not oldest.processed:
                    yield oldest
            ev = self.read(initiator, caddr, csize)
            ev.callbacks.append(_make_cb(caddr, csize))
            in_flight.append(ev)
        # Drain.
        for ev in in_flight:
            if not ev.processed:
                yield ev
