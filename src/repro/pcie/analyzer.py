"""Bus analyzer: an interposer recording traffic on one fabric link.

Models the "PCIe X8 Gen2 active interposer" from the paper's Fig 3 setup.
Attach to a link, run traffic, then query the trace for transaction timing
(first read request, first completion, data-stream duration, request rate).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from ..sim import Simulator
from .fabric import FabricLink, TransferRecord
from .tlp import TlpKind

__all__ = ["BusAnalyzer", "PhaseTiming"]


@dataclass
class PhaseTiming:
    """Summary of one observed transfer phase (Fig 3 quantities)."""

    first_request: Optional[float]  # first MRd seen
    first_completion: Optional[float]  # first data (CplD or MWr) seen
    last_data: Optional[float]  # last data TLP seen
    data_bytes: int  # total payload bytes
    request_count: int
    request_interval_mean: Optional[float]  # mean gap between read requests

    @property
    def head_latency(self) -> Optional[float]:
        """Time from first request to first data."""
        if self.first_request is None or self.first_completion is None:
            return None
        return self.first_completion - self.first_request

    @property
    def data_duration(self) -> Optional[float]:
        """Span of the data stream."""
        if self.first_completion is None or self.last_data is None:
            return None
        return self.last_data - self.first_completion

    @property
    def data_rate(self) -> Optional[float]:
        """Sustained payload rate over the data stream (bytes/ns)."""
        dur = self.data_duration
        if not dur:
            return None
        return self.data_bytes / dur


class BusAnalyzer:
    """Records every TLP crossing the tapped link."""

    def __init__(self, sim: Simulator, name: str = "analyzer"):
        self.sim = sim
        self.name = name
        self.records: list[TransferRecord] = []
        self._links: list[FabricLink] = []

    def attach(self, link: FabricLink) -> None:
        """Start capturing traffic on *link* (both directions)."""
        link.taps.append(self.records.append)
        self._links.append(link)

    def clear(self) -> None:
        """Drop captured records."""
        self.records.clear()

    def of_kind(self, kind: TlpKind) -> list[TransferRecord]:
        """All records of TLP type *kind*, in time order."""
        return [r for r in self.records if r.kind == kind]

    def between(self, t0: float, t1: float) -> list[TransferRecord]:
        """All records in the time window [t0, t1]."""
        return [r for r in self.records if t0 <= r.time <= t1]

    def payload_bytes(self, kinds: Iterable[TlpKind] = (TlpKind.MEM_WRITE, TlpKind.COMPLETION)) -> int:
        """Total payload bytes seen for the given TLP kinds."""
        kindset = set(kinds)
        return sum(r.payload_bytes for r in self.records if r.kind in kindset)

    def phase_timing(self) -> PhaseTiming:
        """Extract Fig-3-style phase timing from the captured trace."""
        reads = self.of_kind(TlpKind.MEM_READ)
        data = [
            r
            for r in self.records
            if r.kind in (TlpKind.COMPLETION, TlpKind.MEM_WRITE) and r.payload_bytes
        ]
        first_req = reads[0].time if reads else None
        first_data = data[0].time if data else None
        last_data = data[-1].time if data else None
        data_bytes = sum(r.payload_bytes for r in data)
        if len(reads) > 1:
            gaps = [b.time - a.time for a, b in zip(reads, reads[1:])]
            mean_gap = sum(gaps) / len(gaps)
        else:
            mean_gap = None
        return PhaseTiming(
            first_request=first_req,
            first_completion=first_data,
            last_data=last_data,
            data_bytes=data_bytes,
            request_count=len(reads),
            request_interval_mean=mean_gap,
        )
