"""Standard platform topologies used by the paper's test systems.

* :func:`plx_platform` — the "ideal platform" (Table I footnote): the GPU
  and the NIC hang off the same PLX PCIe switch, one hop apart.
* :func:`westmere_platform` — GPU and NIC on different root-complex ports
  (the common Cluster I arrangement): traffic crosses the chipset.
* :func:`dual_socket_platform` — two root complexes joined by QPI, with the
  GPU and NIC on different sockets: the pathological Sandy Bridge case the
  paper warns about (§III.A).

Each builder returns a :class:`Platform` handle exposing the fabric, the
host memory device, and named attachment points for GPUs and NICs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..sim import Simulator
from .device import HostMemory, PCIeDevice
from .fabric import FabricNode, PCIeFabric
from .tlp import LinkParams

__all__ = ["Platform", "plx_platform", "westmere_platform", "dual_socket_platform"]


@dataclass
class Platform:
    """A built host platform: fabric + host memory + attachment points."""

    sim: Simulator
    fabric: PCIeFabric
    host_memory: HostMemory
    # Where to plug accelerators / NICs (builder-specific semantics).
    slots: dict[str, FabricNode] = field(default_factory=dict)

    def attach(
        self,
        device: PCIeDevice,
        slot: str,
        link: LinkParams = LinkParams(gen=2, lanes=8),
        latency: float = None,
    ) -> FabricNode:
        """Plug *device* into the named slot.

        When *latency* is omitted it follows the slot's silicon: a PLX
        switch forwards in ~110 ns, a root-complex port in ~300 ns — the
        platform difference behind the paper's "ideal platform" footnote.
        """
        try:
            parent = self.slots[slot]
        except KeyError:
            raise KeyError(
                f"unknown slot {slot!r}; available: {sorted(self.slots)}"
            ) from None
        if latency is None:
            latency = _PLX_LATENCY if parent.kind == "switch" else _RC_PORT_LATENCY
        return self.fabric.add_endpoint(device, parent, link, latency)


# Root-complex forwarding is slower than a PLX switch; the memory
# controller path (DRAM attach) is slower still.
_RC_LATENCY = 300.0  # root complex <-> memory controller
_RC_PORT_LATENCY = 150.0  # root-complex PCIe port forwarding
_PLX_LATENCY = 110.0
_QPI_LATENCY = 400.0


def plx_platform(sim: Simulator, name: str = "plx") -> Platform:
    """GPU and NIC behind one PLX switch (best case for peer-to-peer)."""
    fab = PCIeFabric(sim)
    root = fab.add_root(f"{name}.rc")
    mem = HostMemory(sim, name=f"{name}.dram")
    fab.add_endpoint(mem, root, LinkParams(gen=2, lanes=16), latency=_RC_LATENCY)
    plx = fab.add_switch(
        f"{name}.plx", root, LinkParams(gen=2, lanes=16), latency=_PLX_LATENCY
    )
    return Platform(
        sim,
        fab,
        mem,
        slots={"gpu": plx, "nic": plx, "root": root},
    )


def westmere_platform(sim: Simulator, name: str = "westmere") -> Platform:
    """GPU and NIC on separate root-complex ports (Cluster I nodes).

    Peer traffic crosses the chipset: two hops with root-complex latency.
    """
    fab = PCIeFabric(sim)
    root = fab.add_root(f"{name}.rc")
    mem = HostMemory(sim, name=f"{name}.dram")
    fab.add_endpoint(mem, root, LinkParams(gen=2, lanes=16), latency=_RC_LATENCY)
    return Platform(sim, fab, mem, slots={"gpu": root, "nic": root, "root": root})


def dual_socket_platform(sim: Simulator, name: str = "2s") -> Platform:
    """Two sockets joined by QPI; GPU and NIC on different sockets.

    The virtual top node represents the QPI interconnect; each socket's
    root complex hangs below it with QPI-crossing latency, so peer-to-peer
    between the sockets pays two QPI traversals (the configuration where
    the paper notes "performance may suffer or malfunctionings can arise").
    """
    fab = PCIeFabric(sim)
    top = fab.add_root(f"{name}.qpi")
    rc0 = fab.add_switch(
        f"{name}.rc0", top, LinkParams(gen=2, lanes=16), latency=_QPI_LATENCY
    )
    rc1 = fab.add_switch(
        f"{name}.rc1", top, LinkParams(gen=2, lanes=16), latency=_QPI_LATENCY
    )
    mem = HostMemory(sim, name=f"{name}.dram")
    fab.add_endpoint(mem, rc0, LinkParams(gen=2, lanes=16), latency=_RC_LATENCY)
    return Platform(
        sim,
        fab,
        mem,
        slots={"gpu": rc0, "nic": rc1, "socket0": rc0, "socket1": rc1},
    )
