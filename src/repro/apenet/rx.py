"""RX RDMA processing: the Nios II's main job and the card's bottleneck.

Per inbound packet the firmware (§IV):

1. scans the BUF_LIST to validate the destination buffer (linear in the
   number of registered buffers),
2. walks the V2P table (constant time, 4 levels),
3. builds the write descriptor (fixed overhead) — together ≈3 µs per 4 KB
   packet ("1.2 GB/s for 4 KB packets"),
4. for GPU destinations, moves the P2P write window when needed (the ~10%
   penalty of Fig 6's H-G curve),

then hands the packet to the PCIe write DMA, which proceeds while the
Nios II starts on the next packet.  When a message's last byte lands, a
completion event is posted to the host event queue.
"""

from __future__ import annotations

from typing import Any

from ..net.packet import ApePacket
from ..sim import Event, PacketFifo, Simulator
from .buflist import BufferKind

__all__ = ["RxEngine", "RxCompletion"]


class RxCompletion:
    """Record delivered to the receiving host's event queue."""

    __slots__ = ("msg_id", "src_rank", "dst_addr", "nbytes", "tag", "time")

    def __init__(self, msg_id, src_rank, dst_addr, nbytes, tag, time):
        self.msg_id = msg_id
        self.src_rank = src_rank
        self.dst_addr = dst_addr
        self.nbytes = nbytes
        self.tag = tag
        self.time = time

    def __repr__(self) -> str:  # pragma: no cover
        return f"RxCompletion(msg={self.msg_id}, n={self.nbytes}, tag={self.tag!r})"


class RxEngine:
    """Extraction-port packet processing."""

    def __init__(self, sim: Simulator, card: Any):
        self.sim = sim
        self.card = card
        self.fifo = PacketFifo(sim, card.config.rx_fifo_bytes, f"{card.name}.rxfifo")
        self._msg_bytes: dict[int, int] = {}
        self.packets_processed = 0
        self.packets_dropped = 0
        self.bytes_received = 0
        self.replay_fragments_suppressed = 0
        sim.process(self._loop(), name=f"{card.name}.rx")

    def admit(self, pkt: ApePacket) -> Event:
        """Router extraction port: may backpressure when the FIFO is full."""
        return self.fifo.put(pkt)

    def _loop(self):
        cfg = self.card.config
        while True:
            pkt: ApePacket = yield self.fifo.get()
            obs = self.sim._obs
            span = None
            if obs is not None:
                span = obs.span("apenet", "rx", nbytes=pkt.nbytes)
            entry, visited = self.card.buflist.lookup(pkt.dst_addr, pkt.nbytes)
            if cfg.rx_hw_accel:
                # Future-work hardware blocks: constant-time CAM lookup and
                # hardware V2P — no linear scan, far less Nios II time.
                cost = (
                    cfg.rx_hw_lookup_cost
                    + cfg.rx_hw_v2p_cost
                    + cfg.rx_hw_packet_overhead
                )
            else:
                cost = (
                    cfg.rx_buflist_base
                    + visited * cfg.rx_buflist_per_entry
                    + cfg.rx_v2p_cost
                    + cfg.rx_packet_overhead
                )
            if entry is not None and entry.kind is BufferKind.GPU:
                cost += cfg.rx_gpu_window_switch
            yield from self.card.nios.run(cost, "rx")
            if span is not None:
                span.end()
            if entry is None:
                # Buffer validation failed: the firmware drops the packet.
                self.packets_dropped += 1
                if obs is not None:
                    obs.instant("apenet", "rx_drop", nbytes=pkt.nbytes)
                continue
            self.packets_processed += 1
            # Hand off to the write DMA; the Nios II moves on.
            self.sim.process(self._writer(pkt), name=f"{self.card.name}.rx.wr")

    def _is_replayed_fragment(self, pkt: ApePacket) -> bool:
        """True for fragments of an already-delivered reliable PUT.

        The idempotence guarantee of ``reliable_put`` is enforced here, at
        the DMA boundary: a replay of a message the endpoint has already
        delivered must not touch the destination (GPU) buffer again — the
        application may have started computing on it.
        """
        endpoint = self.card.endpoint
        if endpoint is None:
            return False
        tag = pkt.message.tag
        if not (isinstance(tag, tuple) and len(tag) == 4 and tag[0] == "__rput__"):
            return False
        return tag[2] in endpoint._rx_delivered.get(tag[1], ())

    def _writer(self, pkt: ApePacket):
        obs = self.sim._obs
        span = None
        if obs is not None:
            span = obs.span("apenet", "rx_write", nbytes=pkt.nbytes)
        if self._is_replayed_fragment(pkt):
            # Suppress the payload DMA but keep the byte/completion
            # bookkeeping: the duplicate completion is what triggers the
            # endpoint's re-ACK, and it must not overwrite delivered data.
            self.replay_fragments_suppressed += 1
            mgr = self.card.endpoint.recovery
            if mgr is not None:
                mgr.stats.replay_fragments_suppressed += 1
        else:
            yield self.card.fabric.write(
                self.card, pkt.dst_addr, pkt.nbytes, payload=pkt.data
            )
        if span is not None:
            span.end()
        self.bytes_received += pkt.nbytes
        msg = pkt.message
        got = self._msg_bytes.get(msg.msg_id, 0) + pkt.nbytes
        if got < msg.total_bytes:
            self._msg_bytes[msg.msg_id] = got
            return
        # Message complete: post the completion event to the host.
        self._msg_bytes.pop(msg.msg_id, None)
        cfg = self.card.config
        yield from self.card.nios.run(cfg.rx_event_post_cost, "rx")
        endpoint = self.card.endpoint
        if endpoint is None:
            return  # nobody is listening (raw low-level tests)
        yield self.card.fabric.write(self.card, endpoint.event_addr, 32)
        endpoint._deliver_remote(
            RxCompletion(
                msg_id=msg.msg_id,
                src_rank=msg.src_rank,
                dst_addr=msg.dst_addr,
                nbytes=msg.total_bytes,
                tag=msg.tag,
                time=self.sim.now,
            )
        )
