"""The APEnet+ router: 8-port switch with dimension-ordered routing.

"The Router implements a dimension-ordered static routing algorithm and
directly controls an 8-ports switch, with 6 ports connecting the external
torus link blocks (X+, X−, Y+, Y−, Z+, Z−) and 2 local packet
injection/extraction ports" (§III.B).

One forwarding process per input source (each torus port plus the local
injection FIFO).  Routing corrects X, then Y, then Z; packets that cross a
ring's wrap-around edge move to VC1 (see :mod:`repro.apenet.torus`), and the
VC resets when the packet turns into a new dimension.

``flush_tx`` mode discards locally injected packets at the switch —
"effectively simulating a zero-latency infinitely fast switch" (Fig 4's
measurement mode).
"""

from __future__ import annotations

from typing import Callable, Optional

from ..net.packet import ApePacket
from ..net.topology import Coord, TorusShape
from ..sim import PacketFifo, Simulator
from .config import ApenetConfig
from .torus import TorusLink, TorusPort

__all__ = ["Router"]

_PORTS = [(dim, direction) for dim in range(3) for direction in (1, -1)]


class Router:
    """Per-card switch fabric."""

    def __init__(
        self,
        sim: Simulator,
        coord: Coord,
        shape: TorusShape,
        config: ApenetConfig,
        deliver_local: Callable[[ApePacket], "object"],
        name: str = "router",
    ):
        """``deliver_local(pkt)`` must return an Event (RX admission)."""
        self.sim = sim
        self.coord = coord
        self.shape = shape
        self.config = config
        self.name = name
        self.deliver_local = deliver_local
        # Input ports for the six torus directions.
        self.ports: dict[tuple[int, int], TorusPort] = {
            pd: TorusPort(sim, config.port_fifo_bytes, f"{name}.in{pd}")
            for pd in _PORTS
        }
        # Output links, wired by the cluster builder.
        self.links: dict[tuple[int, int], TorusLink] = {}
        # Local injection FIFO — the card's TX FIFO drains into the switch.
        self.inject_fifo = PacketFifo(sim, config.tx_fifo_bytes, f"{name}.txfifo")
        self.packets_forwarded = 0
        self.packets_delivered = 0
        self.packets_flushed = 0
        self.packets_unreachable = 0
        # Recovery manager (attached by the cluster builder): when present,
        # forwarding consults its dead-link-aware detour routes instead of
        # static dimension order, and a missing route becomes a structured
        # unreachable verdict rather than a crash.
        self.recovery = None
        from .torus import VC_COUNT

        for pd in _PORTS:
            for vc in range(VC_COUNT):
                sim.process(self._port_loop(pd, vc), name=f"{name}.fwd{pd}v{vc}")
        sim.process(self._inject_loop(), name=f"{name}.inject")

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def wire(self, dim: int, direction: int, link: TorusLink) -> None:
        """Attach the outgoing link for (dim, direction)."""
        self.links[(dim, direction)] = link

    def port(self, dim: int, direction: int) -> TorusPort:
        """The input port for packets arriving from (dim, direction)."""
        return self.ports[(dim, direction)]

    # ------------------------------------------------------------------
    # Injection
    # ------------------------------------------------------------------

    def inject(self, packet: ApePacket):
        """Event: packet accepted into the TX FIFO (backpressure point)."""
        return self.inject_fifo.put(packet)

    # ------------------------------------------------------------------
    # Forwarding
    # ------------------------------------------------------------------

    def _next_hop(self, pkt: ApePacket) -> Optional[tuple[int, int]]:
        if self.recovery is not None:
            # Dead-link-aware detour (falls back to static dimension order
            # while no link has died); None here means partitioned.
            return self.recovery.next_hop(self.coord, pkt.dst_coord)
        route = self.shape.route(self.coord, pkt.dst_coord)
        return route[0] if route else None

    def _vc_after_hop(self, vc: int, hop: tuple[int, int], prev_dim: Optional[int]) -> int:
        dim, direction = hop
        if prev_dim is not None and dim != prev_dim:
            vc = 0  # new dimension, fresh ring
        extent = self.shape.dims[dim]
        at = self.coord[dim]
        crosses_dateline = (direction == 1 and at == extent - 1) or (
            direction == -1 and at == 0
        )
        return 1 if crosses_dateline else vc

    def _inject_loop(self):
        while True:
            pkt = yield self.inject_fifo.get()
            if self.config.flush_tx:
                self.packets_flushed += 1
                continue
            yield from self._forward(pkt, vc=0, prev_dim=None, release=None)

    def _port_loop(self, pd: tuple[int, int], vc: int):
        port = self.ports[pd]
        # One independent forwarding process per (input port, VC): the
        # incoming dimension is pd's dim; the packet continues in that ring
        # or turns.
        while True:
            pkt = yield port.queues[vc].get()

            def _release(p=port, v=vc, n=pkt.size):
                p.release(v, n)

            yield from self._forward(pkt, vc=vc, prev_dim=pd[0], release=_release)

    def _forward(self, pkt, vc, prev_dim, release):
        yield self.sim.timeout(self.config.router_latency)
        if pkt.dst_coord == self.coord:
            # Extraction port: admission into the RX engine may backpressure.
            admission = self.deliver_local(pkt)
            if admission is not None:
                yield admission
            self.packets_delivered += 1
            if release:
                release()
            return
        hop = self._next_hop(pkt)
        if hop is None or hop not in self.links:
            if self.recovery is not None and hop is None:
                # Partitioned: every surviving route to the destination is
                # severed.  Discard with a structured verdict instead of
                # crashing the run; the transaction layer reports it.
                self.packets_unreachable += 1
                self.recovery.record_unreachable(self.name, pkt)
                if release:
                    release()
                return
            raise RuntimeError(
                f"{self.name}: no link for hop {hop} toward {pkt.dst_coord}"
            )
        next_vc = self._vc_after_hop(vc, hop, prev_dim)
        yield from self.links[hop].send(pkt, next_vc)
        self.packets_forwarded += 1
        if release:
            release()
