"""Every calibrated constant of the APEnet+ card model, in one place.

Each value is either taken directly from the paper (cited) or calibrated so
that the *measured paper numbers* emerge from the simulation:

=====================================  =======================================
Paper measurement                      How it emerges here
=====================================  =======================================
Host memory read 2.4 GB/s (Tab I)      ``host_read_rate`` ceiling on the TX
                                       DMA engine + windowed 512 B reads
GPU mem read 1.5 GB/s Fermi (Tab I)    GPU spec ``p2p_read_rate`` (1536 MB/s)
                                       through the prefetch pipeline
GPU_P2P_TX v1 600 MB/s (§IV)           ``v1_chunk_nios_cost`` + single
                                       outstanding 4 KB request round-trip
RX ~3 µs / 4 KB packet (§IV)           ``rx_buflist_base + rx_v2p_cost +
                                       rx_packet_overhead`` (+ linear
                                       ``rx_buflist_per_entry`` scan term)
H-H loop-back 1.2 GB/s (Tab I)         RX service time 3.4 µs per 4 KB on
                                       the shared Nios II
G-G loop-back 1.1 GB/s (Tab I)         + ``rx_gpu_window_switch`` per packet
H-H latency 6.3 µs (Fig 8)             sum of the TX/link/RX pipeline stages
G-G latency +1.9 µs (Fig 8/9)          GPU read head latency + TX engine
                                       message startup (Fig 3's "3 µs")
=====================================  =======================================

The GPU_P2P_TX generations (§IV):

* **v1** — software only, one outstanding ≤4 KB request, Nios II generates
  every read request.
* **v2** — hardware read-request generator (one per 80 ns), *bounded*
  prefetch window (4–32 KB); Nios II still runs the flow control per chunk.
* **v3** — unlimited prefetch bounded only by on-board FIFO credits
  (almost-full feedback), negligible Nios II involvement.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..units import Gbps, KiB, MBps, ns, us

__all__ = ["ApenetConfig", "DEFAULT_CONFIG", "GpuTxVersion"]


class GpuTxVersion:
    """Enumeration of GPU_P2P_TX engine generations."""

    V1 = 1
    V2 = 2
    V3 = 3


@dataclass(frozen=True)
class ApenetConfig:
    """Tunable parameters of one APEnet+ card."""

    # ------------------------------------------------------------------
    # PCIe interface ("PCIe X8 Gen2 link ... maximum data transfer rate of
    # 4+4 GB/s", §III.B)
    # ------------------------------------------------------------------
    pcie_gen: int = 2
    pcie_lanes: int = 8

    # ------------------------------------------------------------------
    # Torus links ("Link 28Gbps" in the micro-benchmark figures; the HSG
    # runs used a 20 Gbps bitstream)
    # ------------------------------------------------------------------
    link_bandwidth: float = Gbps(28)
    link_latency: float = ns(150)  # serdes + cable, per hop
    router_latency: float = ns(60)  # switch forwarding decision
    port_fifo_bytes: int = 16 * KiB  # per-port receive buffering (credits)

    # ------------------------------------------------------------------
    # TX: host-memory path (kernel-driver driven, §III.B/IV)
    # ------------------------------------------------------------------
    tx_fifo_bytes: int = 32 * KiB  # "32 KB transmission buffer"
    host_read_rate: float = MBps(2400)  # Table I ceiling (DMA engine)
    host_read_request: int = 512  # MRRS-sized descriptor reads
    host_read_outstanding: int = 8
    driver_fragment_cost: float = us(0.10)  # per-message kernel-driver work
    driver_descriptor_cost: float = us(0.15)  # per-packet descriptor build
    descriptor_write_bytes: int = 64  # posted write into the card's queue
    tx_queue_slots: int = 64  # descriptor ring depth

    # ------------------------------------------------------------------
    # TX: GPU peer-to-peer path (GPU_P2P_TX, §IV)
    # ------------------------------------------------------------------
    gpu_tx_version: int = GpuTxVersion.V3
    # EXTENSION (paper conclusions): "On Kepler, the BAR1 technique seems
    # more promising ... it requires minimal changes at the hardware
    # level."  "bar1" makes the TX engine read GPU memory with plain PCIe
    # reads through a BAR1 mapping instead of the mailbox protocol.
    gpu_tx_method: str = "p2p"  # "p2p" | "bar1"
    bar1_read_request: int = 512  # MRRS-sized BAR1 reads
    bar1_read_outstanding: int = 8
    gpu_read_chunk: int = 4 * KiB  # one mailbox descriptor covers ≤4 KB
    prefetch_window: int = 128 * KiB  # outstanding-bytes bound (v2: ≤32 KB)
    v2_request_interval: float = ns(80)  # HW generator rate ("one every 80ns")
    gpu_tx_msg_overhead: float = us(0.8)  # per-message engine startup (Fig 3)
    # Protocol-state teardown between message descriptors: the engine
    # re-arms the prefetch/flow-control state before the next message (the
    # reason Fig 6's G-G curve rises much more slowly than H-H).
    gpu_tx_msg_drain: float = us(6.0)
    v1_chunk_nios_cost: float = us(1.6)  # software request generation
    v2_chunk_nios_cost: float = us(0.6)  # flow-control bookkeeping per chunk
    v3_chunk_nios_cost: float = us(0.05)  # HW flow control; Nios barely touched

    # ------------------------------------------------------------------
    # RX path (Nios II firmware, §IV): ~3 µs per 4 KB packet "equally
    # dominated by the BUF_LIST traversal ... and the address translation"
    # ------------------------------------------------------------------
    rx_buflist_base: float = us(1.35)
    rx_buflist_per_entry: float = ns(50)  # linear scan of registered buffers
    rx_v2p_cost: float = us(1.40)  # constant 4-level walk
    rx_packet_overhead: float = us(0.45)  # header parse, descriptor mgmt
    rx_gpu_window_switch: float = us(0.50)  # P2P write-window move per packet
    rx_event_post_cost: float = us(0.35)  # completion event to host
    rx_fifo_bytes: int = 32 * KiB  # extraction-side buffering
    # EXTENSION (§V.B future work): "We are currently working on adding
    # more hardware blocks to accelerate the RX task."  When enabled, the
    # BUF_LIST becomes a CAM and the V2P walk a hardware table: per-packet
    # costs drop to the values below and stop scaling with registrations.
    rx_hw_accel: bool = False
    rx_hw_lookup_cost: float = us(0.25)  # CAM match, constant time
    rx_hw_v2p_cost: float = us(0.20)  # hardware table walk
    rx_hw_packet_overhead: float = us(0.25)

    # ------------------------------------------------------------------
    # Host API costs
    # ------------------------------------------------------------------
    put_post_cost: float = us(0.25)  # user->driver PUT submission
    completion_poll_cost: float = us(0.10)  # event-queue poll round

    # ------------------------------------------------------------------
    # Test harness knobs
    # ------------------------------------------------------------------
    flush_tx: bool = False  # discard packets at injection (Fig 4 mode)

    def with_(self, **kw) -> "ApenetConfig":
        """A modified copy (keyword overrides)."""
        return replace(self, **kw)

    def gpu_chunk_nios_cost(self) -> float:
        """Nios II time per GPU-read chunk for the configured TX engine."""
        return {
            GpuTxVersion.V1: self.v1_chunk_nios_cost,
            GpuTxVersion.V2: self.v2_chunk_nios_cost,
            GpuTxVersion.V3: self.v3_chunk_nios_cost,
        }[self.gpu_tx_version]

    def effective_window(self) -> int:
        """Prefetch bound in bytes for the configured engine."""
        if self.gpu_tx_version == GpuTxVersion.V1:
            return self.gpu_read_chunk  # single outstanding request
        return self.prefetch_window


DEFAULT_CONFIG = ApenetConfig()
