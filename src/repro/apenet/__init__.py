"""The APEnet+ card model: NI, Nios II firmware, GPU_P2P_TX, router, RDMA."""

from .buflist import BufferKind, BufList, RegisteredBuffer
from .card import CARD_BASE_ADDRESS, ApenetCard
from .config import DEFAULT_CONFIG, ApenetConfig, GpuTxVersion
from .driver import ApenetDriver
from .gpu_tx import GpuTxEngine
from .jobs import TxJob, fragment_message
from .nios import NiosII
from .rdma import ApenetEndpoint
from .router import Router
from .rx import RxCompletion, RxEngine
from .torus import TorusLink, TorusPort, VC_COUNT
from .tx import HostTxEngine
from .v2p import HOST_PAGE_SIZE, GpuV2PSet, HostV2P

__all__ = [
    "ApenetCard",
    "CARD_BASE_ADDRESS",
    "ApenetConfig",
    "DEFAULT_CONFIG",
    "GpuTxVersion",
    "ApenetEndpoint",
    "ApenetDriver",
    "NiosII",
    "BufList",
    "BufferKind",
    "RegisteredBuffer",
    "HostV2P",
    "GpuV2PSet",
    "HOST_PAGE_SIZE",
    "Router",
    "TorusLink",
    "TorusPort",
    "VC_COUNT",
    "HostTxEngine",
    "GpuTxEngine",
    "RxEngine",
    "RxCompletion",
    "TxJob",
    "fragment_message",
]
