"""The Nios II soft microcontroller: the card's shared firmware CPU.

"These tasks are currently partly implemented in software running on a
micro-controller (Nios II), which is synthesized onto the Stratix IV FPGA"
(§III.B).  "The last column in the table shows that the Nios II
micro-controller is the main performance bottleneck" (§V.B).

Modelled as a single non-preemptive server: RX packet processing and the
software parts of the GPU TX flow control queue here FIFO.  Per-task-kind
busy accounting exposes *why* a configuration is slow (the Fig 5 story:
GPU_P2P_TX v3 frees Nios II cycles that the RX path then uses).
"""

from __future__ import annotations

from collections import defaultdict

from ..sim import Resource, Simulator

__all__ = ["NiosII"]


class NiosII:
    """Firmware CPU with FIFO task service and per-kind accounting."""

    def __init__(self, sim: Simulator, name: str = "nios"):
        self.sim = sim
        self.name = name
        self._cpu = Resource(sim, 1, name)
        self.busy_by_kind: dict[str, float] = defaultdict(float)
        self.tasks_by_kind: dict[str, int] = defaultdict(int)
        # Fault-injection site (stalls / uniform slowdown); attached by the
        # cluster builder, None leaves every task cost untouched.
        self.faults = None

    def run(self, duration: float, kind: str):
        """Generator: occupy the microcontroller for *duration* ns.

        Usage from a process: ``yield from nios.run(cost, "rx")``.
        Zero-duration tasks return immediately without queueing.
        """
        if duration <= 0:
            return
        if self.faults is not None:
            duration = self.faults.nios_inflate(self.name, kind, duration)
        obs = self.sim._obs
        span = None
        if obs is not None:
            # The span covers queueing *and* service, so Fig 5's story —
            # the shared firmware CPU as the bottleneck — shows up as long
            # spans whose service tail is only `duration` ns.
            span = obs.span("apenet", "nios:" + kind, cost=duration)
        yield self._cpu.acquire()
        try:
            yield self.sim.timeout(duration)
            self.busy_by_kind[kind] += duration
            self.tasks_by_kind[kind] += 1
        finally:
            self._cpu.release()
            if span is not None:
                span.end()

    @property
    def queue_len(self) -> int:
        """Tasks waiting for the microcontroller."""
        return self._cpu.queue_len

    def utilization(self) -> float:
        """Busy fraction of elapsed simulation time."""
        return self._cpu.utilization()

    def busy_time(self) -> float:
        """Total busy time."""
        return self._cpu.busy_time()
