"""The assembled APEnet+ card: DNP (NI + router + torus ports) on PCIe.

Fabric windows:

* ``regs`` — descriptor-queue writes from the kernel driver land here; the
  write hook dispatches :class:`~repro.apenet.jobs.TxJob` objects to the
  host or GPU TX engine;
* ``gpu_data`` — reply target for the GPU P2P read protocol: the GPU's
  pushed chunks land here and feed :class:`GpuTxEngine.on_response`.

The card must be attached to a host PCIe fabric (it initiates descriptor
reads, RX writes and mailbox writes) and wired into the torus by the
cluster builder.
"""

from __future__ import annotations

from typing import Any

from ..gpu.device import GPUDevice
from ..net.topology import Coord, TorusShape
from ..pcie.device import PCIeDevice, ReadBehavior, WriteBehavior
from ..sim import Simulator
from .buflist import BufList
from .config import DEFAULT_CONFIG, ApenetConfig
from .gpu_tx import GpuTxEngine
from .jobs import TxJob
from .nios import NiosII
from .router import Router
from .rx import RxEngine
from .tx import HostTxEngine
from .v2p import GpuV2PSet, HostV2P
from .buflist import BufferKind

__all__ = ["ApenetCard", "CARD_BASE_ADDRESS"]

CARD_BASE_ADDRESS = 0x400_0000_0000
_REGS_SIZE = 64 * 1024
_GPU_DATA_SIZE = 2 * 1024 * 1024


class ApenetCard(PCIeDevice):
    """One APEnet+ board."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        coord: Coord,
        shape: TorusShape,
        config: ApenetConfig = DEFAULT_CONFIG,
        base: int = CARD_BASE_ADDRESS,
    ):
        super().__init__(sim, name)
        self.config = config
        self.coord = coord
        self.shape = shape
        self.regs_window = self.add_window(base, _REGS_SIZE, "regs")
        self.gpu_data_window = self.add_window(base + _REGS_SIZE, _GPU_DATA_SIZE, "gpu-data")

        self.nios = NiosII(sim, f"{name}.nios")
        self.buflist = BufList(f"{name}.buflist")
        self.host_v2p = HostV2P(f"{name}.hv2p")
        self.gpu_v2p = GpuV2PSet(f"{name}.gv2p")
        self.gpus: list[GPUDevice] = []
        # BAR1-TX extension: registered GPU buffers' BAR1 mappings,
        # keyed by buffer base address (see config.gpu_tx_method).
        self.bar1_tx_maps: dict[int, tuple] = {}
        self.endpoint = None  # set by ApenetEndpoint

        self.rx = RxEngine(sim, self)
        self.router = Router(
            sim, coord, shape, config, deliver_local=self.rx.admit, name=f"{name}.rtr"
        )
        self.host_tx = HostTxEngine(sim, self)
        self.gpu_tx = GpuTxEngine(sim, self)

        self._regs_write = WriteBehavior(on_write=self._on_regs_write)
        self._gpu_data_write = WriteBehavior(on_write=self._on_gpu_data_write)

    # ------------------------------------------------------------------
    # Composition
    # ------------------------------------------------------------------

    def register_gpu(self, gpu: GPUDevice) -> int:
        """Tell the card about a GPU on this node; returns its index."""
        self.gpus.append(gpu)
        return len(self.gpus) - 1

    @property
    def rank(self) -> int:
        """This card's linear rank in the torus."""
        return self.shape.rank(self.coord)

    # ------------------------------------------------------------------
    # PCIe target behaviour
    # ------------------------------------------------------------------

    def describe_write(self, addr: int) -> WriteBehavior:
        if self.regs_window.contains(addr):
            return self._regs_write
        if self.gpu_data_window.contains(addr):
            return self._gpu_data_write
        raise KeyError(f"{self.name}: write outside card windows: 0x{addr:x}")

    def describe_read(self, addr: int) -> ReadBehavior:
        raise PermissionError(f"{self.name}: card windows are write-only")

    def _on_regs_write(self, addr: int, nbytes: int, payload: Any) -> None:
        if payload is None:
            return  # doorbell
        if not isinstance(payload, TxJob):
            raise TypeError(f"{self.name}: regs window expects TxJob, got {type(payload)!r}")
        if payload.src_kind is BufferKind.GPU:
            self.gpu_tx.enqueue(payload)
        else:
            self.host_tx.enqueue(payload)

    def _on_gpu_data_write(self, addr: int, nbytes: int, payload: Any) -> None:
        self.gpu_tx.on_response(nbytes, payload)
