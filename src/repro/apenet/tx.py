"""Descriptor-driven DMA-read transmit paths.

:func:`windowed_read_tx` is the shared engine core: a continuous window of
MRRS-sized PCIe reads pulls the source into a staging FIFO bounded by the
32 KB TX buffer, while a packetizer drains it into the router.  Keeping the
read window open *across* packet boundaries is what sustains the measured
2.4 GB/s host-read rate (Table I) despite the ~1.4 µs read round-trip.

Users:

* :class:`HostTxEngine` — the host-memory path ("completely handled by the
  kernel driver", §IV): engine ceiling 2.4 GB/s, reads of host DRAM;
* the BAR1-TX extension in :mod:`repro.apenet.gpu_tx` — same mechanics,
  reads aimed at a GPU BAR1 aperture (the GPU's BAR1 rate throttles).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Optional

import numpy as np

from ..net.packet import ApePacket
from ..sim import ByteFifo, Event, RateLimiter, Simulator, Store
from .jobs import TxJob

__all__ = ["HostTxEngine", "windowed_read_tx"]


def windowed_read_tx(
    sim: Simulator,
    card: Any,
    job: TxJob,
    src_addr_of: Callable[[int], int],
    request_size: int,
    outstanding: int,
    limiter: Optional[RateLimiter] = None,
    data_of: Optional[Callable[[int, int], Optional[np.ndarray]]] = None,
    on_bytes_sent: Optional[Callable[[int], None]] = None,
    obs_name: str = "host_tx",
):
    """Generator: transmit *job* with pipelined reads + packetization.

    ``src_addr_of(offset)`` maps a message offset to the fabric address to
    read; ``data_of(offset, nbytes)`` supplies real payload bytes (or
    None).  Returns when the job's last packet has been injected.
    *obs_name* labels the per-job trace span ("host_tx" for the kernel
    driver path, "bar1_tx" for the BAR1 variant).
    """
    cfg = card.config
    obs = sim._obs
    span = None
    if obs is not None:
        span = obs.span("apenet", obs_name, nbytes=job.message.total_bytes)
    staging = ByteFifo(sim, cfg.tx_fifo_bytes, f"{card.name}.tx.stage")
    state = {"reserved": 0}
    space_waiters: list[Event] = []

    def free_space(nbytes: int) -> None:
        state["reserved"] -= nbytes
        if space_waiters:
            waiters = space_waiters[:]
            space_waiters.clear()
            for w in waiters:
                w.succeed()

    packetizer_done = Event(sim)

    def packetizer():
        n = len(job.packets)
        for i, (offset, nbytes) in enumerate(job.packets):
            yield staging.get(nbytes)
            data = data_of(offset, nbytes) if data_of is not None else None
            pkt = ApePacket(
                dst_coord=job.dst_coord,
                src_coord=job.src_coord,
                dst_addr=job.message.dst_addr + offset,
                nbytes=nbytes,
                message=job.message,
                seq=i,
                is_last=(i == n - 1),
                data=data,
            )
            yield card.router.inject(pkt)
            if on_bytes_sent is not None:
                on_bytes_sent(nbytes)
            free_space(nbytes)
        job.local_done.succeed(job)
        packetizer_done.succeed()

    sim.process(packetizer(), name=f"{card.name}.tx.pkt")

    total = job.message.total_bytes
    in_flight: deque[Event] = deque()
    off = 0
    while off < total:
        csize = min(request_size, total - off)
        while state["reserved"] + csize > cfg.tx_fifo_bytes:
            ev = Event(sim)
            space_waiters.append(ev)
            yield ev
        while in_flight and in_flight[0].processed:
            in_flight.popleft()
        while len(in_flight) >= outstanding:
            yield in_flight.popleft()
        if limiter is not None:
            # Engine ceiling paces request issue.
            yield limiter.consume(csize)
        state["reserved"] += csize
        ev = card.fabric.read(card, src_addr_of(off), csize)
        ev.callbacks.append(lambda _e, n=csize: staging.put(n))
        in_flight.append(ev)
        off += csize
    yield packetizer_done
    if span is not None:
        span.end()


class HostTxEngine:
    """Pulls host-buffer messages into the network."""

    def __init__(self, sim: Simulator, card: Any):
        self.sim = sim
        self.card = card
        cfg = card.config
        self.jobs: Store = Store(sim, name=f"{card.name}.htx.jobs")
        self.limiter = RateLimiter(sim, cfg.host_read_rate, f"{card.name}.htx.rd")
        self.bytes_sent = 0
        self.messages_sent = 0
        sim.process(self._loop(), name=f"{card.name}.htx")

    def enqueue(self, job: TxJob) -> None:
        """Accept a job from the descriptor queue (card regs write)."""
        self.jobs.put(job)

    def _loop(self):
        cfg = self.card.config
        while True:
            job: TxJob = yield self.jobs.get()

            def _count(n: int) -> None:
                self.bytes_sent += n

            yield from windowed_read_tx(
                self.sim,
                self.card,
                job,
                src_addr_of=lambda off, base=job.src_addr: base + off,
                request_size=cfg.host_read_request,
                outstanding=cfg.host_read_outstanding,
                limiter=self.limiter,
                data_of=job.slice_data,
                on_bytes_sent=_count,
            )
            self.messages_sent += 1
