"""Transmission job descriptors shared by the driver and TX engines."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..net.packet import MAX_PACKET_PAYLOAD, MessageInfo
from ..net.topology import Coord
from ..sim import Event
from .buflist import BufferKind

__all__ = ["TxJob", "fragment_message"]


def fragment_message(nbytes: int, chunk: int = MAX_PACKET_PAYLOAD) -> list[tuple[int, int]]:
    """Split a message into (offset, size) fragments of at most *chunk*."""
    if nbytes <= 0:
        raise ValueError("message must have a positive size")
    out = []
    off = 0
    while off < nbytes:
        take = min(chunk, nbytes - off)
        out.append((off, take))
        off += take
    return out


@dataclass
class TxJob:
    """One RDMA PUT, as handed from the driver to a TX engine."""

    message: MessageInfo
    src_addr: int
    src_kind: BufferKind
    dst_coord: Coord
    src_coord: Coord
    local_done: Event
    data: Optional[np.ndarray] = field(default=None, repr=False)
    packets: list[tuple[int, int]] = field(default_factory=list)
    gpu_index: int = 0  # source GPU (for GPU-kind jobs)

    def __post_init__(self):
        if not self.packets:
            self.packets = fragment_message(self.message.total_bytes)

    def slice_data(self, offset: int, nbytes: int) -> Optional[np.ndarray]:
        """The real bytes for one fragment (None in timing-only runs)."""
        if self.data is None:
            return None
        return np.asarray(self.data[offset : offset + nbytes], dtype=np.uint8)

    @property
    def descriptor_bytes(self) -> int:
        """Wire size of the descriptor burst the driver posts."""
        return 64 * len(self.packets)
