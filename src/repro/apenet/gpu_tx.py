"""GPU_P2P_TX: the GPU-memory-read engine, in its three generations.

This block was "by far the most difficult task to achieve, requiring two
major redesigns" (§IV).  The engine drives the GPU's mailbox read protocol
(:mod:`repro.gpu.p2p`) and feeds the router's TX FIFO:

* **v1** — read requests generated in software on the Nios II, one
  outstanding ≤4 KB request at a time → ~600 MB/s.
* **v2** — "an hardware acceleration block which generates the read requests
  towards the GPU with a steady rate of one every 80 ns; a pre-fetch logic
  which attempts to hide the response latency" — bounded window (4–32 KB),
  Nios II still pays a per-chunk flow-control cost.
* **v3** — "the new flow-control block is able to pre-fetch an unlimited
  amount of data so as to keep the GPU read request queue full, while at the
  same time back-reacting to almost-full conditions of the different
  on-board temporary buffers": the window spans the on-board buffering and
  outstanding bytes are only retired when a packet clears the TX FIFO, so a
  full FIFO throttles request generation; Nios II involvement is negligible.

The bandwidth curves of Fig 4/5 *emerge* from exactly these mechanisms plus
the GPU-side protocol constants.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from ..gpu.p2p import REQUEST_DESCRIPTOR_BYTES, P2PReadRequest
from ..net.packet import ApePacket
from ..sim import Event, Simulator, Store
from .config import GpuTxVersion
from .jobs import TxJob

__all__ = ["GpuTxEngine"]


@dataclass
class _Chunk:
    """One in-flight GPU read chunk."""

    job: TxJob
    seq: int
    offset: int
    nbytes: int
    last: bool
    injected: Event = field(default=None)


class GpuTxEngine:
    """Reads GPU buffers through the P2P protocol and injects packets."""

    def __init__(self, sim: Simulator, card: Any):
        self.sim = sim
        self.card = card
        self.jobs: Store = Store(sim, name=f"{card.name}.gtx.jobs")
        self.pending: deque[_Chunk] = deque()
        self.outstanding = 0
        self._window_waiters: list[Event] = []
        self.bytes_sent = 0
        self.messages_sent = 0
        sim.process(self._loop(), name=f"{card.name}.gtx")

    def enqueue(self, job: TxJob) -> None:
        """Accept a job from the descriptor queue."""
        self.jobs.put(job)

    # ------------------------------------------------------------------
    # Request generation
    # ------------------------------------------------------------------

    def _loop(self):
        cfg = self.card.config
        while True:
            job: TxJob = yield self.jobs.get()
            gpu = self.card.gpus[job.gpu_index]
            if cfg.gpu_tx_method == "bar1":
                yield from self._run_job_bar1(job, gpu)
                self.messages_sent += 1
                continue
            obs = self.sim._obs
            span = None
            if obs is not None:
                span = obs.span(
                    "apenet",
                    "gpu_tx",
                    nbytes=job.message.total_bytes,
                    version=int(cfg.gpu_tx_version),
                )
            # Per-message engine startup: descriptor fetch, V2P setup — the
            # "overhead which is a substantial part of those 3 µs in the
            # initial delay" of Fig 3.
            yield from self.card.nios.run(cfg.gpu_tx_msg_overhead, "gpu_tx")
            chunk_cost = cfg.gpu_chunk_nios_cost()
            window = cfg.effective_window()
            carry = self._source_has_data(gpu, job)
            n = len(job.packets)
            # v2's prefetcher works in window-sized *batches*: it issues
            # read requests for one window's worth of data, waits for the
            # whole burst to land, then refills — so the head latency is
            # paid once per window and Fig 4's bandwidth follows
            # W / (head + W/rate).  v3's flow control is a true sliding
            # window bounded by FIFO credits.
            v2_batch = max(1, window // cfg.gpu_read_chunk)
            batch_tail: Optional[_Chunk] = None
            for i, (offset, nbytes) in enumerate(job.packets):
                if cfg.gpu_tx_version == GpuTxVersion.V2:
                    if batch_tail is not None and i % v2_batch == 0:
                        # Window drained before the refill burst.
                        if not batch_tail.injected.processed:
                            yield batch_tail.injected
                else:
                    while self.outstanding + nbytes > window:
                        ev = Event(self.sim)
                        self._window_waiters.append(ev)
                        yield ev
                if chunk_cost > 0:
                    yield from self.card.nios.run(chunk_cost, "gpu_tx")
                if cfg.gpu_tx_version >= GpuTxVersion.V2:
                    # HW request generator pacing.
                    yield self.sim.timeout(cfg.v2_request_interval)
                if cfg.gpu_tx_version != GpuTxVersion.V2:
                    self.outstanding += nbytes
                chunk = _Chunk(job, i, offset, nbytes, last=(i == n - 1), injected=Event(self.sim))
                self.pending.append(chunk)
                batch_tail = chunk
                req = P2PReadRequest(
                    src_addr=job.src_addr + offset,
                    nbytes=nbytes,
                    reply_addr=self.card.gpu_data_window.base,
                    carry_data=carry,
                )
                self.card.fabric.write(
                    self.card,
                    gpu.mailbox_window.base,
                    REQUEST_DESCRIPTOR_BYTES,
                    payload=req,
                )
                if cfg.gpu_tx_version == GpuTxVersion.V1:
                    # Software engine: strictly one request in flight.
                    yield chunk.injected
                last_chunk = chunk
            # The engine processes one message descriptor at a time: the
            # next job starts only when this message's data has fully
            # traversed the read pipeline into the TX FIFO.
            if not last_chunk.injected.processed:
                yield last_chunk.injected
            # Tear down / re-arm the protocol state before the next
            # descriptor (per-message cost, hidden from the message's own
            # latency but serializing successive GPU-source messages).
            if cfg.gpu_tx_msg_drain > 0:
                yield self.sim.timeout(cfg.gpu_tx_msg_drain)
            if span is not None:
                span.end()
            self.messages_sent += 1

    # ------------------------------------------------------------------
    # BAR1-TX extension (paper conclusions): plain PCIe reads through a
    # BAR1 mapping instead of the two-way mailbox protocol.  On Fermi the
    # 150 MB/s BAR1 read rate makes this hopeless; on Kepler it matches
    # the P2P rate with far simpler hardware.
    # ------------------------------------------------------------------

    def _bar1_translate(self, src_addr: int):
        for base, (buf, mapping) in self.card.bar1_tx_maps.items():
            if buf.contains(src_addr):
                return buf, mapping.bar1_addr + (src_addr - buf.addr)
        raise KeyError(
            f"{self.card.name}: BAR1 TX needs a registered mapping for "
            f"0x{src_addr:x}"
        )

    def _run_job_bar1(self, job: TxJob, gpu):
        from .tx import windowed_read_tx

        cfg = self.card.config
        yield from self.card.nios.run(cfg.gpu_tx_msg_overhead, "gpu_tx")
        buf, bar1_base = self._bar1_translate(job.src_addr)
        carry = buf._data is not None

        def data_of(offset: int, nbytes: int):
            if not carry:
                return None
            return buf.read_bytes(job.src_addr + offset, nbytes)

        def _count(n: int) -> None:
            self.bytes_sent += n

        # Same continuous-window transmit core as the host path, but the
        # reads target the BAR1 aperture: the GPU's BAR1 behaviour (rate
        # and latency; catastrophic on Fermi, fine on Kepler) throttles.
        yield from windowed_read_tx(
            self.sim,
            self.card,
            job,
            src_addr_of=lambda off: bar1_base + off,
            request_size=cfg.bar1_read_request,
            outstanding=cfg.bar1_read_outstanding,
            limiter=None,
            data_of=data_of,
            on_bytes_sent=_count,
            obs_name="bar1_tx",
        )

    @staticmethod
    def _source_has_data(gpu, job: TxJob) -> bool:
        try:
            return gpu.allocator.buffer_at(job.src_addr)._data is not None
        except KeyError:
            return False

    # ------------------------------------------------------------------
    # Response handling (wired to the card's gpu_data window)
    # ------------------------------------------------------------------

    def on_response(self, nbytes: int, data: Optional[np.ndarray]) -> None:
        """GPU pushed one chunk's data back; responses arrive in order."""
        if not self.pending:
            raise RuntimeError(f"{self.card.name}: unexpected GPU TX response")
        chunk = self.pending.popleft()
        if chunk.nbytes != nbytes:
            raise RuntimeError(
                f"{self.card.name}: response size {nbytes} != expected {chunk.nbytes}"
            )
        self.sim.process(self._injector(chunk, data), name=f"{self.card.name}.gtx.inj")

    def _injector(self, chunk: _Chunk, data):
        pkt = ApePacket(
            dst_coord=chunk.job.dst_coord,
            src_coord=chunk.job.src_coord,
            dst_addr=chunk.job.message.dst_addr + chunk.offset,
            nbytes=chunk.nbytes,
            message=chunk.job.message,
            seq=chunk.seq,
            is_last=chunk.last,
            data=data,
        )
        yield self.card.router.inject(pkt)
        cfg = self.card.config
        if cfg.gpu_tx_version != GpuTxVersion.V2:
            # v1/v3 retire credit only when the packet has cleared into the
            # TX FIFO — v3's almost-full feedback (arrow 3 in Fig 2).
            self._retire(chunk.nbytes)
        self.bytes_sent += chunk.nbytes
        chunk.injected.succeed()
        if chunk.last:
            chunk.job.local_done.succeed(chunk.job)

    def _retire(self, nbytes: int) -> None:
        self.outstanding -= nbytes
        if self._window_waiters:
            waiters, self._window_waiters = self._window_waiters, []
            for w in waiters:
                w.succeed()
