"""The user-facing APEnet+ RDMA API.

The programming model from §IV.A:

* buffers — host or GPU, identified by UVA pointers — are *registered*
  before use (BUF_LIST entry + host/GPU V2P mapping; GPU buffers are
  "mapped on-the-fly if not already present in an internal cache");
* :meth:`ApenetEndpoint.put` transmits a local buffer into a registered
  remote buffer.  "The source memory buffer type is chosen at compilation
  time by passing a flag to the PUT API.  This is useful to avoid a call to
  cuPointerGetAttribute(), which is possibly expensive" — pass
  ``src_kind`` to skip that charge, or leave it ``None`` to pay it;
* remote delivery raises a completion event at the destination, consumed
  with :meth:`wait_event` (event-queue polling).

All host-time-charging methods are generators (``yield from``).
"""

from __future__ import annotations

import itertools
from typing import Any, Optional


from ..cuda.runtime import CudaRuntime
from ..net.packet import MessageInfo, next_message_id
from ..net.topology import Coord
from ..sim import Event, Store
from ..units import us
from .buflist import BufferKind, RegisteredBuffer
from .card import ApenetCard
from .driver import ApenetDriver
from .jobs import TxJob
from .rx import RxCompletion

__all__ = ["ApenetEndpoint"]

# Host-side registration costs (not on the critical path of any benchmark).
_REGISTER_BASE_COST = us(2.0)
_REGISTER_HOST_PAGE_COST = us(0.02)
_REGISTER_GPU_PAGE_COST = us(0.20)  # P2P token retrieval + firmware install


class ApenetEndpoint:
    """Per-node handle onto the RDMA network."""

    def __init__(self, card: ApenetCard, runtime: CudaRuntime):
        self.sim = card.sim
        self.card = card
        self.runtime = runtime
        card.endpoint = self
        self.driver = ApenetDriver(self.sim, card, runtime.platform.host_memory)
        self.events: Store = Store(self.sim, name=f"{card.name}.events")
        # The event queue ring lives in host memory.
        self._event_buf = runtime.host_alloc(4096)
        self.event_addr = self._event_buf.addr
        self.puts_posted = 0
        self.gets_posted = 0
        # GET extension: a firmware mailbox where remote GET requests land
        # (installed at setup time, no simulated cost) plus per-request
        # completion routing.
        self._fw_mailbox = runtime.host_alloc(4096)
        self._fw_scratch = runtime.host_alloc(64)
        entry = RegisteredBuffer(self._fw_mailbox.addr, 4096, BufferKind.HOST)
        self.card.buflist.register(entry)
        self.card.host_v2p.map_range(self._fw_mailbox.addr, 4096)
        self._get_waiting: dict[int, Event] = {}
        self._peers: Optional[list["ApenetEndpoint"]] = None
        # --- End-to-end recovery state (repro.recovery) ---
        # Manager attached by the cluster builder; None keeps every code
        # path bit-identical to the recovery-free endpoint.
        self.recovery = None
        self.reliable_puts = 0
        self._tx_seq: dict[int, int] = {}  # per-destination sequence numbers
        self._rput_waiting: dict[tuple[int, int], Event] = {}  # (dst, seq) -> ACK event
        self._rx_delivered: dict[int, set] = {}  # src rank -> delivered seqs
        self._staging_buf = None  # lazy host bounce buffer for degraded PUTs

    @property
    def rank(self) -> int:
        """This endpoint's torus rank."""
        return self.card.rank

    @property
    def coord(self) -> Coord:
        """This endpoint's torus coordinate."""
        return self.card.coord

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def register(self, addr: int, nbytes: int):
        """Generator: pin + register a buffer for RDMA (host or GPU)."""
        attrs = self.runtime.pointer_attributes(addr)
        if attrs.is_device:
            kind = BufferKind.GPU
            gpu = self.runtime.device(attrs.device_index)
            card_index = self._card_gpu_index(gpu)
            buf = gpu.allocator.buffer_at(addr)
            pages = self.card.gpu_v2p.table(card_index).map_buffer(buf)
            cost = _REGISTER_BASE_COST + pages * _REGISTER_GPU_PAGE_COST
            if (
                self.card.config.gpu_tx_method == "bar1"
                and buf.addr not in self.card.bar1_tx_maps
            ):
                # BAR1-TX extension: expose the buffer through the BAR1
                # aperture — "an expensive operation, which requires a
                # full reconfiguration of the GPU".
                mapping = gpu.bar1.map(buf)
                self.card.bar1_tx_maps[buf.addr] = (buf, mapping)
                cost += gpu.spec.bar1_map_cost
            entry = RegisteredBuffer(addr, nbytes, kind, gpu_index=card_index)
        else:
            kind = BufferKind.HOST
            pages = self.card.host_v2p.map_range(addr, nbytes)
            cost = _REGISTER_BASE_COST + pages * _REGISTER_HOST_PAGE_COST
            entry = RegisteredBuffer(addr, nbytes, kind)
        self.card.buflist.register(entry)
        yield self.sim.timeout(cost)
        return entry

    def is_registered(self, addr: int) -> bool:
        """True if *addr* falls inside a registered buffer."""
        return self.card.buflist.find(addr) is not None

    def _card_gpu_index(self, gpu) -> int:
        for i, g in enumerate(self.card.gpus):
            if g is gpu:
                return i
        raise ValueError(f"{gpu.name} is not attached to {self.card.name}")

    # ------------------------------------------------------------------
    # PUT
    # ------------------------------------------------------------------

    def put(
        self,
        dst_rank: int,
        local_addr: int,
        remote_addr: int,
        nbytes: int,
        src_kind: Optional[BufferKind] = None,
        tag: Any = None,
    ):
        """Generator: post one RDMA PUT; returns the local-completion Event.

        ``src_kind`` is the compile-time buffer-type flag; omitting it costs
        a ``cuPointerGetAttribute`` query (§IV.A).
        """
        cfg = self.card.config
        yield self.sim.timeout(cfg.put_post_cost)
        if src_kind is None:
            attrs = yield from self.runtime.pointer_get_attributes(local_addr)
            src_kind = BufferKind.GPU if attrs.is_device else BufferKind.HOST

        mgr = self.recovery
        if mgr is not None and src_kind is BufferKind.GPU:
            mgr.stats.gpu_puts += 1
            if mgr.should_degrade(self.card):
                # Sick NIC (Nios stall budget / TLP replay storm crossed):
                # transparently fall back from P2P to host staging — bounce
                # the source through host memory and post a HOST-kind PUT.
                local_addr = yield from self._stage_degraded(local_addr, nbytes)
                src_kind = BufferKind.HOST
                mgr.stats.degraded_puts += 1

        gpu_index = 0
        data = None
        if src_kind is BufferKind.GPU:
            attrs = self.runtime.pointer_attributes(local_addr)
            gpu = self.runtime.device(attrs.device_index)
            gpu_index = self._card_gpu_index(gpu)
            # "the buffer mapping is automatically done, if necessary".
            table = self.card.gpu_v2p.table(gpu_index)
            if not table.is_mapped(local_addr):
                yield from self.register(local_addr, nbytes)
        else:
            host_buf = self.runtime.host_buffer_at(local_addr)
            if host_buf._data is not None:
                off = local_addr - host_buf.addr
                data = host_buf.data[off : off + nbytes]

        msg = MessageInfo(
            msg_id=next_message_id(),
            total_bytes=nbytes,
            src_rank=self.rank,
            dst_rank=dst_rank,
            dst_addr=remote_addr,
            tag=tag,
        )
        job = TxJob(
            message=msg,
            src_addr=local_addr,
            src_kind=src_kind,
            dst_coord=self.card.shape.coord(dst_rank),
            src_coord=self.coord,
            local_done=Event(self.sim),
            data=data,
            gpu_index=gpu_index,
        )
        obs = self.sim._obs
        if obs is not None:
            # Message-level span: post → local completion (TX pipeline
            # drained); the remote-completion tail shows up in the target's
            # rx/rx_write spans.
            span = obs.span(
                "apenet", "put", dst=dst_rank, nbytes=nbytes, kind=src_kind.name
            )
            job.local_done.callbacks.append(span.end_event)
        yield from self.driver.submit(job)
        self.puts_posted += 1
        return job.local_done

    def _stage_degraded(self, local_addr: int, nbytes: int):
        """Generator: D2H-copy a GPU source into the host bounce buffer.

        Returns the staged address.  The bounce buffer is lazily allocated
        and grown; a degraded endpoint reuses it for every PUT, like the
        persistent staging buffers of the paper's host-staged path.
        """
        if self._staging_buf is None or self._staging_buf.size < nbytes:
            self._staging_buf = self.runtime.host_alloc(max(nbytes, 65536))
        from ..cuda.memcpy import memcpy_sync

        yield from memcpy_sync(self.runtime, self._staging_buf.addr, local_addr, nbytes)
        return self._staging_buf.addr

    # ------------------------------------------------------------------
    # Reliable PUT (end-to-end transaction layer, repro.recovery)
    # ------------------------------------------------------------------

    def reliable_put(
        self,
        dst_rank: int,
        local_addr: int,
        remote_addr: int,
        nbytes: int,
        src_kind: Optional[BufferKind] = None,
        tag: Any = None,
    ):
        """Generator: PUT with end-to-end delivery guarantees.

        Wraps :meth:`put` in the recovery layer's transaction protocol:
        each message carries a per-destination sequence number, the
        receiver ACKs delivery (and re-ACKs duplicates), and the sender
        replays on an exponentially backed-off deadline until the bounded
        replay budget runs out.  Replays are idempotent — the receiver
        suppresses duplicate delivery, so a message never lands twice in
        application (or GPU) memory.  Returns a structured
        :class:`~repro.recovery.PutOutcome`; never raises on delivery
        failure and never silently loses a message.
        """
        mgr = self.recovery
        if mgr is None:
            raise RuntimeError(
                "reliable_put needs a recovery manager "
                "(build_apenet_cluster(..., recovery=RecoveryPolicy()))"
            )
        from ..recovery import PutOutcome

        policy = mgr.policy
        seq = self._tx_seq.get(dst_rank, 0) + 1
        self._tx_seq[dst_rank] = seq
        self.reliable_puts += 1
        dst_coord = self.card.shape.coord(dst_rank)
        acked = Event(self.sim)
        self._rput_waiting[(dst_rank, seq)] = acked
        wire_tag = ("__rput__", self.rank, seq, tag)
        t0 = self.sim.now
        obs = self.sim._obs
        span = None
        if obs is not None:
            span = obs.span(
                "recovery", "reliable_put", dst=dst_rank, nbytes=nbytes, seq=seq
            )
        attempts = 0
        verdict = "timeout"
        try:
            while attempts < 1 + policy.put_max_retries:
                if not mgr.reachable(self.coord, dst_coord):
                    # Fail fast: the failure detector proved a partition.
                    verdict = "unreachable"
                    mgr.stats.unreachable_puts += 1
                    break
                attempts += 1
                if attempts > 1:
                    mgr.stats.replays += 1
                    if obs is not None:
                        obs.instant(
                            "recovery", "replay", dst=dst_rank, seq=seq, attempt=attempts
                        )
                yield from self.put(
                    dst_rank, local_addr, remote_addr, nbytes,
                    src_kind=src_kind, tag=wire_tag,
                )
                deadline = self.sim.timeout(policy.timeout_for(nbytes, attempts))
                yield self.sim.any_of([acked, deadline])
                if acked.triggered:
                    elapsed = self.sim.now - t0
                    if attempts > 1:
                        mgr.stats.time_to_recover.add(elapsed)
                    return PutOutcome(True, "delivered", attempts, elapsed)
                mgr.stats.put_timeouts += 1
            return PutOutcome(False, verdict, attempts, self.sim.now - t0)
        finally:
            self._rput_waiting.pop((dst_rank, seq), None)
            if not acked.triggered:
                # Retire the ACK event so a failed transaction leaves no
                # pending event behind (a late ACK finds the dict empty).
                acked.succeed(None)
            if span is not None:
                span.end()

    def _on_rput(self, rec: RxCompletion) -> None:
        """Receiver side of the transaction protocol (duplicate-safe)."""
        _, src_rank, seq, user_tag = rec.tag
        delivered = self._rx_delivered.setdefault(src_rank, set())
        duplicate = seq in delivered
        if duplicate:
            mgr = self.recovery
            if mgr is not None:
                mgr.stats.duplicates_suppressed += 1
            obs = self.sim._obs
            if obs is not None:
                obs.instant("recovery", "duplicate", src=src_rank, seq=seq)
        else:
            delivered.add(seq)
        # ACK unconditionally: the sender may be replaying because the
        # previous ACK (not the data) was lost.
        self.sim.process(
            self._send_rput_ack(src_rank, seq), name=f"{self.card.name}.rput_ack"
        )
        if not duplicate:
            rec.tag = user_tag
            self.events.put(rec)

    def _send_rput_ack(self, src_rank: int, seq: int):
        """Generator process: 32-byte ACK into the sender's firmware mailbox."""
        if self._peers is None:
            return  # raw low-level tests; reliable_put needs built clusters
        target = self._peers[src_rank]
        yield from self.put(
            src_rank,
            self._fw_scratch.addr,
            target._fw_mailbox.addr,
            32,
            src_kind=BufferKind.HOST,
            tag=("__rput_ack__", self.rank, seq),
        )

    # ------------------------------------------------------------------
    # GET (extension: the read half of the RDMA model)
    # ------------------------------------------------------------------

    _get_ids = itertools.count(1)

    def link_peers(self, peers: list["ApenetEndpoint"]) -> None:
        """Give this endpoint the cluster's endpoint table (enables GET)."""
        self._peers = peers

    def get(
        self,
        src_rank: int,
        remote_addr: int,
        local_addr: int,
        nbytes: int,
        tag: Any = None,
    ):
        """Generator: RDMA GET — fetch a registered remote region.

        The APEnet+ RDMA model "has been extended with the ability to READ
        and write the GPU private memory" (§III.B); the paper's benchmarks
        only exercise PUT, so GET is implemented here as the natural dual:
        a small request message to the target's firmware, answered with a
        PUT of the requested region (host- or GPU-sourced according to the
        target buffer's registered kind).  Returns the arrival record once
        the data has landed in *local_addr* (which must be registered).
        """
        if self._peers is None:
            raise RuntimeError("GET needs link_peers() (built clusters do this)")
        get_id = next(self._get_ids)
        arrival = Event(self.sim)
        self._get_waiting[get_id] = arrival
        target = self._peers[src_rank]
        yield from self.put(
            src_rank,
            self._fw_scratch.addr,
            target._fw_mailbox.addr,
            64,
            src_kind=BufferKind.HOST,
            tag=("__get_req__", get_id, remote_addr, local_addr, nbytes, self.rank, tag),
        )
        self.gets_posted += 1
        rec = yield arrival
        return rec

    def _serve_get(self, get_id, remote_addr, local_addr, nbytes, requester, user_tag):
        """Firmware-side responder: PUT the requested region back."""
        entry = self.card.buflist.find(remote_addr)
        if entry is None:
            return  # invalid GET: dropped like any unvalidated packet
        yield from self.put(
            requester,
            remote_addr,
            local_addr,
            nbytes,
            src_kind=entry.kind,
            tag=("__get_data__", get_id, user_tag),
        )

    # ------------------------------------------------------------------
    # Completion events
    # ------------------------------------------------------------------

    def wait_event(self):
        """Generator: block until the next remote-completion event."""
        yield self.sim.timeout(self.card.config.completion_poll_cost)
        rec = yield self.events.get()
        return rec

    def poll_event(self) -> Optional[RxCompletion]:
        """Non-blocking event-queue check (no simulated cost)."""
        if len(self.events):
            ev = self.events.get()
            return ev.value
        return None

    def _deliver_remote(self, rec: RxCompletion) -> None:
        tag = rec.tag
        if isinstance(tag, tuple) and tag and tag[0] == "__rput__":
            self._on_rput(rec)
            return
        if isinstance(tag, tuple) and tag and tag[0] == "__rput_ack__":
            # ACK for (this sender's) transaction to rank tag[1], seq tag[2].
            waiter = self._rput_waiting.get((tag[1], tag[2]))
            if waiter is not None and not waiter.triggered:
                waiter.succeed(rec)
            return  # protocol traffic: never surfaces on the app event queue
        if isinstance(tag, tuple) and tag and tag[0] == "__get_req__":
            _, get_id, remote_addr, local_addr, nbytes, requester, user_tag = tag
            self.sim.process(
                self._serve_get(get_id, remote_addr, local_addr, nbytes, requester, user_tag),
                name=f"{self.card.name}.get",
            )
            return
        if isinstance(tag, tuple) and tag and tag[0] == "__get_data__":
            waiting = self._get_waiting.pop(tag[1], None)
            if waiting is not None:
                waiting.succeed(rec)
                return
        self.events.put(rec)
