"""BUF_LIST: the card's registered-buffer table.

"The receiving (RX) data path manages buffer validation (the BUF_LIST)"
(§III.B); after registration "a buffer — either a host or GPU, uniquely
identified by its (UVA) 64-bit virtual address and process ID — can be the
target of a PUT operation coming from another node" (§IV.A).

The firmware scans the list linearly: the RX processing time "linearly
scales with the number of registered buffers" (§IV) — :meth:`lookup`
returns how many entries were visited so the RX engine can charge the
Nios II accordingly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

__all__ = ["BufferKind", "RegisteredBuffer", "BufList"]


class BufferKind(enum.Enum):
    """Where a registered buffer lives."""

    HOST = "host"
    GPU = "gpu"


@dataclass
class RegisteredBuffer:
    """One BUF_LIST entry."""

    vaddr: int
    nbytes: int
    kind: BufferKind
    process_id: int = 0
    gpu_index: int = 0  # which GPU (for GPU buffers)

    @property
    def end(self) -> int:
        """One past the last byte."""
        return self.vaddr + self.nbytes

    def contains(self, addr: int, nbytes: int = 1) -> bool:
        """True if [addr, addr+nbytes) is inside this buffer."""
        return self.vaddr <= addr and addr + nbytes <= self.end


class BufList:
    """Linear-scan registered-buffer table (firmware-faithful)."""

    def __init__(self, name: str = "buflist"):
        self.name = name
        self._entries: list[RegisteredBuffer] = []

    def __len__(self) -> int:
        return len(self._entries)

    def register(self, entry: RegisteredBuffer) -> None:
        """Append an entry; overlapping registrations are rejected."""
        for existing in self._entries:
            if not (entry.end <= existing.vaddr or existing.end <= entry.vaddr):
                raise ValueError(
                    f"{self.name}: registration [{entry.vaddr:#x},{entry.end:#x}) "
                    f"overlaps existing [{existing.vaddr:#x},{existing.end:#x})"
                )
        self._entries.append(entry)

    def deregister(self, vaddr: int) -> RegisteredBuffer:
        """Remove and return the entry starting at *vaddr*."""
        for i, e in enumerate(self._entries):
            if e.vaddr == vaddr:
                return self._entries.pop(i)
        raise KeyError(f"{self.name}: no registration at 0x{vaddr:x}")

    def lookup(self, addr: int, nbytes: int = 1) -> tuple[Optional[RegisteredBuffer], int]:
        """Scan for the buffer containing the range; returns (entry, visited).

        ``visited`` is the number of entries examined (the linear-scan cost
        driver).  ``entry`` is None when validation fails — the firmware
        drops such packets.
        """
        visited = 0
        for e in self._entries:
            visited += 1
            if e.contains(addr, nbytes):
                return e, visited
        return None, visited

    def find(self, addr: int) -> Optional[RegisteredBuffer]:
        """Convenience lookup without the cost accounting."""
        entry, _ = self.lookup(addr)
        return entry
