"""The APEnet+ kernel device driver model (host side).

The driver "implements the message fragmentation and pushes transaction
descriptors with validated and translated physical memory addresses"
(§III.B).  Host CPU time is charged per message and per fragment; the
descriptor burst then crosses PCIe into the card's register window, whose
write hook dispatches the job to the right TX engine.

Descriptor-ring backpressure: a PUT blocks while all ``tx_queue_slots``
are held by in-flight messages (this is what keeps "the transmission queue
constantly full" in the paper's bandwidth test, §V.B).
"""

from __future__ import annotations

from typing import Any

from ..sim import Resource, Simulator
from .jobs import TxJob

__all__ = ["ApenetDriver"]


class ApenetDriver:
    """Per-node kernel driver instance."""

    def __init__(self, sim: Simulator, card: Any, host_initiator: Any):
        self.sim = sim
        self.card = card
        # PCIe transactions from the CPU are initiated by the host side of
        # the fabric (the memory/root complex device).
        self.host = host_initiator
        self.tx_slots = Resource(sim, card.config.tx_queue_slots, f"{card.name}.txq")
        self.messages_submitted = 0

    def submit(self, job: TxJob):
        """Generator: charge host CPU costs and post the descriptors.

        Returns when the card has accepted the descriptor burst; the
        caller's completion signal is ``job.local_done``.
        """
        cfg = self.card.config
        yield self.tx_slots.acquire()
        job.local_done.callbacks.append(lambda _ev: self.tx_slots.release())
        # Host CPU: fragmentation + the first ring batch of descriptors.
        # The rest of a long message's descriptors are built while the
        # engine is already transmitting (ring refill), so only the leading
        # batch delays the first byte.
        first_batch = min(len(job.packets), 8)
        yield self.sim.timeout(
            cfg.driver_fragment_cost + first_batch * cfg.driver_descriptor_cost
        )
        remaining = len(job.packets) - first_batch
        if remaining > 0:
            self.sim.process(
                self._refill(remaining), name=f"{self.card.name}.drv.refill"
            )
        # Post the descriptor burst (bounded by the ring size per write).
        burst = min(
            job.descriptor_bytes, cfg.tx_queue_slots * cfg.descriptor_write_bytes
        )
        yield self.card.fabric.write(
            self.host, self.card.regs_window.base, burst, payload=job
        )
        self.messages_submitted += 1

    def _refill(self, n_descriptors: int):
        # Background descriptor building: occupies host CPU time in
        # parallel with the card's DMA (kept for utilization accounting).
        yield self.sim.timeout(n_descriptors * self.card.config.driver_descriptor_cost)
