"""Torus links: credit-based, virtual-channelled point-to-point channels.

Each directed link couples an output of one card's router to an input port
of the neighbour.  Transmission is credit-based virtual cut-through: the
sender reserves space in the receiver's port buffer *before* occupying the
wire, so congestion back-pressures cleanly (this is what makes the all-to-all
BFS traffic congest the 4×2 torus, Table IV).

Two virtual channels share each physical link.  Packets normally travel on
VC0 and switch to VC1 after crossing a ring's dateline (the wrap-around
edge), the classic deadlock-free scheme for wormhole/VCT rings — the real
card has equivalent machinery in its link blocks.

With a :class:`~repro.faults.FaultInjector` attached (see
:func:`~repro.net.cluster.build_apenet_cluster`'s ``faults`` argument) each
link additionally runs the error-management layer of the follow-up APEnet+
papers: the receiver CRC-checks every frame and NAKs corrupted ones, the
sender keeps the packet in a replay buffer and retransmits — after the NAK
round trip for detected corruption, after an exponentially backed-off
replay timer for silently dropped frames — until a bounded retry budget is
exhausted, at which point a structured
:class:`~repro.faults.LinkFailure` escalates.  Without an injector the
send path is byte-for-byte the fault-free one: zero extra events.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..net.packet import ApePacket
from ..sim import ByteFifo, Channel, Simulator, Store

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from ..faults import FaultInjector

__all__ = ["TorusPort", "TorusLink", "VC_COUNT"]

VC_COUNT = 2


class TorusPort:
    """Input side of a directed link: per-VC credit pools + packet queues.

    Each virtual channel has its OWN queue and is forwarded by its own
    router process: a blocked VC0 packet must never stall VC1 traffic
    behind it, or the dateline scheme's deadlock-freedom argument breaks
    (cross-VC head-of-line blocking closes the very cycles VC1 exists to
    cut).
    """

    def __init__(self, sim: Simulator, capacity_per_vc: int, name: str = "port"):
        self.sim = sim
        self.name = name
        self.credits = [
            ByteFifo(sim, capacity_per_vc, f"{name}.vc{v}") for v in range(VC_COUNT)
        ]
        self.queues = [Store(sim, name=f"{name}.q{v}") for v in range(VC_COUNT)]
        self.packets_in = 0

    def reserve(self, vc: int, nbytes: int):
        """Event firing once *nbytes* of VC credit is held."""
        return self.credits[vc].put(nbytes)

    def deposit(self, packet: ApePacket, vc: int) -> None:
        """Hand an arrived packet to the router's input queue for its VC."""
        self.packets_in += 1
        self.queues[vc].put(packet)

    def release(self, vc: int, nbytes: int) -> None:
        """Return credit after the packet leaves the port buffer."""
        # get() on a ByteFifo used as a credit pool never blocks here because
        # release always follows a successful reserve of the same size.
        self.credits[vc].get(nbytes)


class TorusLink:
    """Directed physical link with a shared wire and per-VC credits."""

    def __init__(
        self,
        sim: Simulator,
        bandwidth: float,
        latency: float,
        dst_port: TorusPort,
        name: str = "link",
        src_coord=None,
        dst_coord=None,
        dim: Optional[int] = None,
        direction: Optional[int] = None,
    ):
        self.sim = sim
        self.name = name
        # The channel models wire serialization only; propagation is a
        # separate pipelined delay so the sender can start the next packet
        # as soon as the tail leaves the output (cut-through behaviour).
        self.channel = Channel(sim, bandwidth, 0.0, name)
        self.latency = latency
        self.dst_port = dst_port
        # Torus location of this directed channel (sender side); lets a
        # LinkFailure name the topology hop and the recovery layer mark
        # the right edge dead.  None for links wired outside a torus.
        self.src_coord = src_coord
        self.dst_coord = dst_coord
        self.dim = dim
        self.direction = direction
        self.packets_sent = 0
        self.bytes_sent = 0
        self.packets_lost = 0  # eaten by a dead link / absorbed escalation
        # Fault-injection site: attached by the cluster builder; None keeps
        # the send path identical to the fault-free simulator.
        self.faults: Optional["FaultInjector"] = None
        # Recovery manager: attached by the cluster builder when systemic
        # fault awareness is enabled; absorbs retry-budget escalations.
        self.recovery = None

    def send(self, packet: ApePacket, vc: int):
        """Generator: credit-reserve, serialize, deliver.

        Drive with ``yield from link.send(pkt, vc)`` from a router process.
        The generator returns once the packet's tail has left the wire;
        delivery at the far port happens ``latency`` later, pipelined.
        """
        obs = self.sim._obs
        span = None
        if obs is not None:
            # Covers credit wait + serialization (the VCT hop of §III.A);
            # propagation is pipelined and excluded, like the model itself.
            span = obs.span("apenet", "link:" + self.name, nbytes=packet.size, vc=vc)
        if self.faults is not None:
            yield from self._send_reliable(packet, vc)
            if span is not None:
                span.end()
            return
        yield self.dst_port.reserve(vc, packet.size)
        yield self.channel.transfer(packet.size)
        if span is not None:
            span.end()
        self.packets_sent += 1
        self.bytes_sent += packet.size
        # Fire-and-forget delivery timer: the reference is dropped right
        # here, so the pooled (recycled) variant is safe.
        arrive = self.sim.pooled_timeout(self.latency)
        arrive.callbacks.append(
            lambda _ev, p=packet, v=vc: self.dst_port.deposit(p, v)
        )

    def _send_reliable(self, packet: ApePacket, vc: int):
        """The ACK/NAK retransmission path (fault injector attached).

        A clean transmission costs exactly what the fault-free path costs:
        ACK bookkeeping rides the reverse link for free (as in the real
        link blocks, where the replay buffer drains transparently).  Only
        a fault stalls the sender: a CRC-detected corruption costs the NAK
        round trip (2x propagation), a silent drop costs the replay timer
        with exponential backoff, and either way the frame re-occupies the
        wire.  The port-buffer credit reserved up front spans all attempts
        — the receiver's slot is held for the packet until it lands or the
        link gives up.
        """
        from ..faults import LinkFailure

        inj = self.faults
        plan = inj.plan
        stats = inj.stats
        mgr = self.recovery
        if mgr is not None and self.src_coord is not None:
            if mgr.is_dead(self.src_coord, self.dim, self.direction):
                # Link already declared dead: eat the packet without even
                # reserving a credit — nothing will ever land, and the
                # end-to-end transaction layer replays over the detour.
                self.packets_lost += 1
                return
        yield self.dst_port.reserve(vc, packet.size)
        t0 = self.sim.now
        attempts = 0
        while True:
            yield self.channel.transfer(packet.size)
            stats.wire_bytes += packet.size
            if inj.link_killed(self.name, self.sim.now):
                # Hard kill: the wire eats every frame from the kill time
                # on.  No random draw — the schedule is the oracle, so the
                # site's stream is unperturbed for pre-kill traffic.
                fate = "dead"
            else:
                fate = inj.link_packet_fate(self.name, packet.size)
            if fate == "ok":
                self.packets_sent += 1
                self.bytes_sent += packet.size
                stats.payload_bytes += packet.nbytes
                if attempts:
                    stats.recovery_latency.add(self.sim.now - t0)
                # Fire-and-forget, same as the fault-free path: pooled.
                arrive = self.sim.pooled_timeout(self.latency)
                arrive.callbacks.append(
                    lambda _ev, p=packet, v=vc: self.dst_port.deposit(p, v)
                )
                return
            attempts += 1
            stats.retransmits += 1
            if fate == "corrupt":
                stats.crc_errors += 1
            else:
                stats.packets_dropped += 1
            if attempts > plan.max_retries:
                stats.record_link_failure(
                    site=self.name,
                    attempts=attempts,
                    time=self.sim.now,
                    kind=fate,
                    src_coord=self.src_coord,
                    dst_coord=self.dst_coord,
                )
                failure = LinkFailure(
                    self.name,
                    attempts,
                    self.sim.now - t0,
                    kind=fate,
                    src_coord=self.src_coord,
                    dst_coord=self.dst_coord,
                    dim=self.dim,
                    direction=self.direction,
                )
                if mgr is not None and mgr.link_failed(self, failure):
                    # Absorbed: the health monitor marked the link dead and
                    # the routers detour from now on.  Return the credit we
                    # held (nothing will land) and drop the frame; the
                    # reliable-PUT layer replays it end to end.
                    self.dst_port.release(vc, packet.size)
                    self.packets_lost += 1
                    return
                raise failure
            if fate == "corrupt":
                # Receiver CRC-checks the landed frame and NAKs: one
                # propagation for the frame, one for the NAK.  Yield-and-
                # drop delays: pooled timers, recycled once they fire.
                yield self.sim.pooled_timeout(2 * self.latency)
            else:
                # Nothing came back: the replay timer fires, backed off
                # exponentially per consecutive loss.
                yield self.sim.pooled_timeout(
                    plan.ack_timeout * plan.backoff ** (attempts - 1)
                )

    def utilization(self) -> float:
        """Wire busy fraction."""
        return self.channel.utilization()
