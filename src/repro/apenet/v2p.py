"""Virtual-to-physical translation tables kept on the card.

Two flavours (§IV):

* ``HOST_V2P`` — host pages are 4 KB; the map resolves host virtual
  addresses to physical scatter-list entries for the RX DMA;
* ``GPU_V2P`` — "For each GPU card on the bus, a 4-level GPU V2P page table
  is maintained, which resolves virtual addresses to GPU page descriptors"
  (64 KB pages — reuses :class:`repro.gpu.memory.GpuPageTable`).

Both have constant lookup depth; the *time* cost is charged by the RX/TX
engines via the Nios II (``rx_v2p_cost``), not here.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpu.memory import GpuPageTable

__all__ = ["HostV2P", "HOST_PAGE_SIZE", "GpuV2PSet"]

HOST_PAGE_SIZE = 4096


@dataclass(frozen=True)
class HostPageEntry:
    """One 4 KB host page mapping."""

    virtual_addr: int
    physical_addr: int


class HostV2P:
    """Host-side page map (4 KB granularity, 4-level constant walk)."""

    LEVELS = 4

    def __init__(self, name: str = "host-v2p"):
        self.name = name
        self._pages: dict[int, HostPageEntry] = {}

    @property
    def pages_mapped(self) -> int:
        """Number of installed page entries."""
        return len(self._pages)

    def map_range(self, vaddr: int, nbytes: int) -> int:
        """Install identity mappings covering [vaddr, vaddr+nbytes).

        Returns the number of pages newly installed.
        """
        if nbytes <= 0:
            raise ValueError("mapping needs a positive size")
        first = vaddr // HOST_PAGE_SIZE
        last = (vaddr + nbytes - 1) // HOST_PAGE_SIZE
        added = 0
        for page in range(first, last + 1):
            key = page * HOST_PAGE_SIZE
            if key not in self._pages:
                self._pages[key] = HostPageEntry(key, key)
                added += 1
        return added

    def unmap_range(self, vaddr: int, nbytes: int) -> int:
        """Remove mappings covering the range; returns pages removed."""
        first = vaddr // HOST_PAGE_SIZE
        last = (vaddr + nbytes - 1) // HOST_PAGE_SIZE
        removed = 0
        for page in range(first, last + 1):
            if self._pages.pop(page * HOST_PAGE_SIZE, None) is not None:
                removed += 1
        return removed

    def lookup(self, vaddr: int) -> HostPageEntry:
        """Translate one address (KeyError if unmapped)."""
        key = vaddr // HOST_PAGE_SIZE * HOST_PAGE_SIZE
        try:
            return self._pages[key]
        except KeyError:
            raise KeyError(f"{self.name}: unmapped host vaddr 0x{vaddr:x}") from None

    def is_mapped(self, vaddr: int) -> bool:
        """True if *vaddr* translates."""
        return (vaddr // HOST_PAGE_SIZE * HOST_PAGE_SIZE) in self._pages

    def scatter_list(self, vaddr: int, nbytes: int) -> list[tuple[int, int]]:
        """Physical (addr, len) chunks covering a virtual range."""
        out: list[tuple[int, int]] = []
        cur = vaddr
        end = vaddr + nbytes
        while cur < end:
            entry = self.lookup(cur)
            page_end = entry.virtual_addr + HOST_PAGE_SIZE
            take = min(end, page_end) - cur
            phys = entry.physical_addr + (cur - entry.virtual_addr)
            out.append((phys, take))
            cur += take
        return out


class GpuV2PSet:
    """The per-GPU collection of 4-level GPU page tables."""

    def __init__(self, name: str = "gpu-v2p"):
        self.name = name
        self._tables: dict[int, GpuPageTable] = {}

    def table(self, gpu_index: int) -> GpuPageTable:
        """The (lazily created) table for GPU *gpu_index*."""
        if gpu_index not in self._tables:
            self._tables[gpu_index] = GpuPageTable(f"{self.name}[{gpu_index}]")
        return self._tables[gpu_index]

    @property
    def gpu_count(self) -> int:
        """How many GPUs have tables."""
        return len(self._tables)
