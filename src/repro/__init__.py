"""Simulation-based reproduction of *GPU peer-to-peer techniques applied
to a cluster interconnect* (Ammendola et al., 2013 — the APEnet+ paper).

The package is a calibrated discrete-event model of the paper's entire
stack — PCIe fabric, Fermi/Kepler GPUDirect protocols, the APEnet+ card
(Nios II firmware, GPU_P2P_TX engines, 3D-torus router), an
InfiniBand/MVAPICH2 baseline — plus the two evaluation applications
(Heisenberg Spin Glass, distributed BFS) running *real* computation over
the simulated network.

Quick tour:

>>> from repro import Simulator, TorusShape, build_apenet_cluster
>>> sim = Simulator()
>>> cluster = build_apenet_cluster(sim, TorusShape(2, 1, 1))

See ``examples/quickstart.py``, and ``python -m repro.bench`` for the
table/figure reproductions.
"""

from .apenet import ApenetConfig, ApenetEndpoint, BufferKind, GpuTxVersion
from .gpu import FERMI_2050, FERMI_2070, FERMI_2075, KEPLER_K10, KEPLER_K20, GPUDevice
from .net import ApenetCluster, ClusterNode, TorusShape, build_apenet_cluster
from .sim import Simulator

__version__ = "1.5.0"

__all__ = [
    "Simulator",
    "TorusShape",
    "build_apenet_cluster",
    "ApenetCluster",
    "ClusterNode",
    "ApenetConfig",
    "ApenetEndpoint",
    "BufferKind",
    "GpuTxVersion",
    "GPUDevice",
    "FERMI_2050",
    "FERMI_2070",
    "FERMI_2075",
    "KEPLER_K10",
    "KEPLER_K20",
    "__version__",
]
