"""Discrete-event simulation kernel for the APEnet+ reproduction.

Public surface:

* :class:`Simulator`, :class:`Event`, :class:`Timeout`, :class:`Process`,
  :class:`AllOf`, :class:`AnyOf` — the event engine (:mod:`repro.sim.core`);
* :class:`Resource`, :class:`Store`, :class:`ByteFifo`, :class:`PacketFifo`
  — shared-resource primitives (:mod:`repro.sim.resources`);
* :class:`Channel`, :class:`RateLimiter` — bandwidth/latency pipes
  (:mod:`repro.sim.channel`);
* :class:`BandwidthMeter`, :class:`TraceLog` — instrumentation
  (:mod:`repro.sim.trace`).

The event-queue backend is selectable per simulator
(``Simulator(backend="heap"|"wheel")``) or process-wide via the
``REPRO_BACKEND`` environment variable; see :mod:`repro.sim.sched`.
All backends are bit-identical by contract.
"""

from .channel import Channel, RateLimiter
from .core import (
    AllOf,
    AnyOf,
    DeadlockError,
    Event,
    EventPool,
    Process,
    SimulationError,
    Simulator,
    Timeout,
    TimerHandle,
    kernel_event_count,
)
from .resources import ByteFifo, PacketFifo, Resource, Store
from .sched import BACKENDS, CalendarScheduler, HeapScheduler, resolve_backend
from .stats import FaultStats, OnlineStats, TimeSeries, percentile
from .trace import BandwidthMeter, TraceLog, TraceRecord, kernel_snapshot

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "TimerHandle",
    "EventPool",
    "SimulationError",
    "DeadlockError",
    "BACKENDS",
    "HeapScheduler",
    "CalendarScheduler",
    "resolve_backend",
    "kernel_event_count",
    "kernel_snapshot",
    "Resource",
    "Store",
    "ByteFifo",
    "PacketFifo",
    "Channel",
    "RateLimiter",
    "BandwidthMeter",
    "TraceLog",
    "TraceRecord",
    "OnlineStats",
    "FaultStats",
    "TimeSeries",
    "percentile",
]
