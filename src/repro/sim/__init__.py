"""Discrete-event simulation kernel for the APEnet+ reproduction.

Public surface:

* :class:`Simulator`, :class:`Event`, :class:`Timeout`, :class:`Process`,
  :class:`AllOf`, :class:`AnyOf` — the event engine (:mod:`repro.sim.core`);
* :class:`Resource`, :class:`Store`, :class:`ByteFifo`, :class:`PacketFifo`
  — shared-resource primitives (:mod:`repro.sim.resources`);
* :class:`Channel`, :class:`RateLimiter` — bandwidth/latency pipes
  (:mod:`repro.sim.channel`);
* :class:`BandwidthMeter`, :class:`TraceLog` — instrumentation
  (:mod:`repro.sim.trace`).
"""

from .channel import Channel, RateLimiter
from .core import (
    AllOf,
    AnyOf,
    DeadlockError,
    Event,
    Process,
    SimulationError,
    Simulator,
    Timeout,
    kernel_event_count,
)
from .resources import ByteFifo, PacketFifo, Resource, Store
from .stats import FaultStats, OnlineStats, TimeSeries, percentile
from .trace import BandwidthMeter, TraceLog, TraceRecord

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "SimulationError",
    "DeadlockError",
    "kernel_event_count",
    "Resource",
    "Store",
    "ByteFifo",
    "PacketFifo",
    "Channel",
    "RateLimiter",
    "BandwidthMeter",
    "TraceLog",
    "TraceRecord",
    "OnlineStats",
    "FaultStats",
    "TimeSeries",
    "percentile",
]
