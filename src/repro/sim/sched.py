"""Pluggable event-queue backends for the DES kernel.

The :class:`~repro.sim.core.Simulator` stores pending events as
``(time, seq, event)`` tuples whose lexicographic order *is* the
simulation's total event order: primary key is the timestamp, ties are
broken by schedule order (``seq``), and ``seq`` is unique so the event
object itself is never compared.  Any queue that pops entries in exactly
this order is a drop-in kernel backend, and every backend here is held to
that bar — the golden-number suites run bit-identically on all of them.

Two backends:

* :class:`HeapScheduler` — the binary heap (``heapq``) the kernel has used
  since the seed.  O(log n) per operation in C; the golden reference.
* :class:`CalendarScheduler` — a Brown-style calendar queue (event wheel):
  an array of buckets of width ``w`` ns, entry ``(t, ...)`` lives in ring
  slot ``floor(t/w) mod nbuckets``.  Inserts are O(1) appends for future
  buckets; the bucket at the clock is sorted *once* when it becomes
  current (Timsort, in C) and then consumed by index, so the per-event
  dequeue cost is an index bump instead of an O(log n) sift.  Same-cycle
  inserts keep exact order via ``bisect.insort`` into the current run.
  This is the right shape for the retransmission/recovery layers' traffic:
  dense, short-horizon timer bursts that land a few buckets ahead.

Exactness notes for the calendar queue (why bit-identity holds):

* bucket widths are constrained to **powers of two**, so ``t / w``,
  ``t * (1/w)`` and ``(b + 1) * w`` are exact float scalings — an entry's
  bucket is exactly ``floor(t / w)`` with no rounding ambiguity, and
  same-timestamp events can never straddle a bucket boundary;
* float division by a power of two is monotonic, so a smaller timestamp
  can never map to a later bucket: scanning buckets in ring order and
  draining each current bucket in sorted order yields the global
  ``(t, seq)`` minimum every time;
* resizing (both count and width re-tuning) rebuilds deterministically
  from the pending entries alone — no wall-clock, no sampling.
"""

from __future__ import annotations

import math
import os
from bisect import insort
from heapq import heappop, heappush
from typing import Any, Iterable

__all__ = ["BACKENDS", "resolve_backend", "HeapScheduler", "CalendarScheduler"]

_INF = float("inf")

#: The recognised kernel backends, in documentation order.
BACKENDS = ("heap", "wheel")

#: Environment variable consulted when ``Simulator(backend=None)``.
BACKEND_ENV = "REPRO_BACKEND"


def resolve_backend(backend: Any = None) -> str:
    """Normalise a backend selection to one of :data:`BACKENDS`.

    ``None`` falls back to the ``REPRO_BACKEND`` environment variable and
    then to ``"heap"``.  Raises :class:`ValueError` for unknown names (the
    kernel re-raises it as a :class:`~repro.sim.core.SimulationError`).
    """
    if backend is None:
        backend = os.environ.get(BACKEND_ENV, "") or "heap"
    name = str(backend).strip().lower()
    if name not in BACKENDS:
        raise ValueError(
            f"unknown simulator backend {backend!r}; known backends: "
            + ", ".join(BACKENDS)
        )
    return name


class HeapScheduler:
    """Binary-heap event queue — the golden reference backend.

    Thin wrapper over the same ``list`` + ``heapq`` machinery the inlined
    kernel hot paths use directly; the wrapper exists so cold paths (the
    generic ``step()``, the sanitizer's finalize, diagnostics) can talk to
    any backend through one small interface: ``push`` / ``pop`` /
    ``peek_time`` / ``entries`` / ``len``.
    """

    name = "heap"

    __slots__ = ("_list",)

    def __init__(self, backing: list | None = None):
        # The Simulator passes its own list so `sim._heap` and the
        # scheduler view are literally the same object.
        self._list: list[tuple] = [] if backing is None else backing

    @property
    def size(self) -> int:
        """Number of pending entries."""
        return len(self._list)

    def __len__(self) -> int:
        return len(self._list)

    def push(self, t: float, seq: int, event: Any) -> None:
        """Insert one ``(t, seq, event)`` entry."""
        heappush(self._list, (t, seq, event))

    def pop(self) -> tuple:
        """Remove and return the globally minimal ``(t, seq, event)``."""
        return heappop(self._list)

    def peek_time(self) -> float:
        """Timestamp of the next entry, or ``inf`` when empty."""
        return self._list[0][0] if self._list else _INF

    def entries(self) -> list[tuple]:
        """All pending entries, sorted by ``(t, seq)``."""
        return sorted(self._list)


class CalendarScheduler:
    """Calendar-queue (event-wheel) backend tuned for dense timer traffic.

    See the module docstring for the ordering-exactness argument.  The
    queue self-tunes: when the entry count outgrows (or far undershoots)
    the bucket array, it rebuilds with a bucket count sized to the load
    and a power-of-two bucket width matched to the pending-entry spread,
    targeting a couple of entries per bucket.
    """

    name = "wheel"

    __slots__ = (
        "width",
        "inv_width",
        "nbuckets",
        "mask",
        "buckets",
        "size",
        "cur",
        "cur_hi",
        "active",
        "head",
        "last_t",
        "overflow",
        "overflow_min",
        "flat",
        "grow_at",
        "min_buckets",
        "max_buckets",
        "rebuilds",
    )

    #: lower clamp for the power-of-two width exponent (2**-16 ns).
    _MIN_EXP = -16

    #: a sorted run longer than this triggers a width retune on push —
    #: past it, the O(run) insort memmove beats rebuild amortisation.
    _FAT_RUN = 64

    def __init__(self, width: float = 8.0, nbuckets: int = 64,
                 max_buckets: int = 1 << 15):
        if not (width > 0.0 and math.isfinite(width)):
            raise ValueError(f"bucket width must be positive and finite, got {width!r}")
        if math.frexp(width)[0] != 0.5:
            raise ValueError(f"bucket width must be a power of two, got {width!r}")
        if nbuckets < 2 or nbuckets & (nbuckets - 1):
            raise ValueError(f"nbuckets must be a power of two >= 2, got {nbuckets!r}")
        self.width = width
        self.inv_width = 1.0 / width  # exact: width is a power of two
        self.nbuckets = nbuckets
        self.mask = nbuckets - 1
        self.buckets: list[list[tuple]] = [[] for _ in range(nbuckets)]
        self.size = 0
        # Invariants:
        #  * entries with bucket number <= `cur` live (sorted by (t, seq))
        #    in `active[head:]` — every one of them precedes every ring
        #    and overflow entry in time, because a ring bucket cur+k holds
        #    only timestamps >= (cur+k) * width > any bucket-<=cur time;
        #  * ring slot (cur+k) & mask, 1 <= k < nbuckets, holds ONLY
        #    entries whose bucket is exactly cur+k — so a due bucket is
        #    claimed whole (one C sort, no partition scans);
        #  * entries beyond the ring window live in `overflow` (unsorted),
        #    with `overflow_min` tracking their minimum timestamp so the
        #    scan can tell when the window must be rebuilt around them.
        self.cur = 0
        # Exclusive upper time bound of bucket `cur`: exactly
        # (cur + 1) * width, kept as a float so the push fast path is one
        # comparison (`t < cur_hi` <=> `int(t * inv_width) <= cur` for
        # t >= 0; exact because width is a power of two).
        self.cur_hi = width
        self.active: list[tuple] = []
        self.head = 0
        self.last_t = 0.0  # timestamp of the last pop (fallback anchor)
        self.overflow: list[tuple] = []
        self.overflow_min = _INF
        # True when the last rebuild found no usable timestamp spread
        # (same-t cluster): suppresses the fat-run retune until the
        # picture can have changed, so it cannot thrash.
        self.flat = False
        self.min_buckets = nbuckets
        self.max_buckets = max_buckets
        self.grow_at = nbuckets << 1
        self.rebuilds = 0

    # -- hot path ------------------------------------------------------------

    def push(self, t: float, seq: int, event: Any) -> None:
        """Insert one ``(t, seq, event)`` entry (kernel guarantees t >= now).

        NOTE: this body is manually inlined at the kernel's hot scheduling
        sites (``Timeout.__init__``, ``pooled_timeout``, ``_wake_event`` in
        :mod:`repro.sim.core`) — keep the copies in sync.
        """
        entry = (t, seq, event)
        if t < self.cur_hi:
            # At or before the bucket currently being drained: splice into
            # the sorted run at/after the consumption cursor.  `t >= last
            # popped t` makes position >= head always correct.
            active = self.active
            insort(active, entry, self.head)
            self.size += 1
            if len(active) - self.head > self._FAT_RUN and not self.flat:
                self._rebuild()
            return
        b = int(t * self.inv_width)
        if b - self.cur < self.nbuckets:
            self.buckets[b & self.mask].append(entry)
        else:
            self.overflow.append(entry)
            if t < self.overflow_min:
                self.overflow_min = t
        self.size += 1
        if self.size > self.grow_at:
            self._rebuild()

    def pop(self) -> tuple:
        """Remove and return the globally minimal ``(t, seq, event)``."""
        if not self.size:
            raise IndexError("pop from an empty CalendarScheduler")
        if self.head >= len(self.active):
            self._advance()
        entry = self.active[self.head]
        self.head += 1
        self.size -= 1
        self.last_t = entry[0]
        return entry

    # -- cold paths ----------------------------------------------------------

    def peek_time(self) -> float:
        """Timestamp of the next entry, or ``inf`` when empty.

        May advance the internal current-bucket cursor (queue content is
        unchanged); the work is shared with the following ``pop``.
        """
        if not self.size:
            return _INF
        if self.head >= len(self.active):
            self._advance()
        return self.active[self.head][0]

    @property
    def _size(self) -> int:  # symmetry with HeapScheduler.size users
        return self.size

    def __len__(self) -> int:
        return self.size

    def entries(self) -> list[tuple]:
        """All pending entries, sorted by ``(t, seq)``."""
        out = list(self.active[self.head:])
        for lst in self.buckets:
            out.extend(lst)
        out.extend(self.overflow)
        out.sort()
        return out

    # -- internals -----------------------------------------------------------

    def _advance(self) -> None:
        """Make ``active[head]`` the next due entry (size > 0 required).

        Scans the ring forward from ``cur`` and claims the first non-empty
        bucket whole (slot contents are exactly that bucket, sorted once
        in C).  An overflow entry that would land at or before the claimed
        bucket — or an empty ring — forces a rebuild, which re-centres the
        window around the minimum pending entry; that rebuild always
        leaves ``active`` non-empty, so the loop runs at most twice.
        """
        if self.size <= (self.nbuckets >> 3) and self.nbuckets > self.min_buckets:
            # Far emptier than the ring: shrink so rotation scans stay
            # proportional to the load.
            self._rebuild()
        while True:
            if self.head < len(self.active):
                return
            buckets = self.buckets
            mask = self.mask
            cur = self.cur
            claimed = False
            for k in range(1, self.nbuckets):
                lst = buckets[(cur + k) & mask]
                if lst:
                    ab = cur + k
                    if self.overflow and int(self.overflow_min * self.inv_width) <= ab:
                        break  # an overflow entry sorts first: rebuild
                    buckets[ab & mask] = []
                    lst.sort()
                    self.active = lst
                    self.head = 0
                    self.cur = ab
                    self.cur_hi = (ab + 1) * self.width
                    # Fresh bucket: the same-t picture may have changed, so
                    # re-allow the push-side fat-run retune.
                    self.flat = False
                    claimed = True
                    break
            if claimed:
                return
            self._rebuild()

    def _rebuild(self) -> None:
        """Re-tune bucket count and width to the pending entries.

        Deterministic: derives everything from the pending entries.  Width
        is a power of two targeting several entries per bucket over the
        *dense* 7/8-quantile of the pending spread — far-future outliers
        are shrugged off to the overflow list instead of inflating the
        bucket width (the classic calendar-queue skew failure).  The
        window is anchored at the minimum pending entry, which is valid
        because any future push happens at ``now`` = a popped timestamp
        <= that minimum, and a push at or before ``cur`` splices into the
        active run.
        """
        entries = self.active[self.head:]
        for lst in self.buckets:
            entries.extend(lst)
        entries.extend(self.overflow)
        entries.sort()
        size = len(entries)
        n = self.min_buckets
        while n < size and n < self.max_buckets:
            n <<= 1
        width = self.width
        self.flat = True
        if size >= 2:
            lo = entries[0][0]
            dense = entries[(size * 7) // 8][0] - lo
            if dense > 0.0:
                self.flat = False
                # ~8 entries per bucket amortises the per-bucket claim cost
                # (one Timsort) without inflating the current-bucket insorts.
                target = dense * 8.0 / size
                exp = int(math.floor(math.log2(target))) + 1
                if exp < self._MIN_EXP:
                    exp = self._MIN_EXP
                width = math.ldexp(1.0, exp)
        inv = 1.0 / width
        self.width = width
        self.inv_width = inv
        self.nbuckets = n
        self.mask = n - 1
        self.grow_at = (n << 1) if n < self.max_buckets else (1 << 62)
        self.buckets = [[] for _ in range(n)]
        self.overflow = []
        self.overflow_min = _INF
        cur = int(entries[0][0] * inv) if size else int(self.last_t * inv)
        self.cur = cur
        self.cur_hi = (cur + 1) * width
        mask = self.mask
        horizon = cur + n
        active = []
        for e in entries:
            b = int(e[0] * inv)
            if b <= cur:
                active.append(e)  # entries are sorted: stays sorted
            elif b < horizon:
                self.buckets[b & mask].append(e)
            else:
                self.overflow.append(e)
                if e[0] < self.overflow_min:
                    self.overflow_min = e[0]
        self.active = active
        self.head = 0
        self.rebuilds += 1


def make_scheduler(backend: str, backing: list | None = None):
    """Instantiate the scheduler for *backend* (already resolved)."""
    if backend == "heap":
        return HeapScheduler(backing)
    if backend == "wheel":
        return CalendarScheduler()
    raise ValueError(f"unknown simulator backend {backend!r}")


def drain_order(schedule: Iterable[tuple], backend: str) -> list[tuple]:
    """Reference helper: feed ``(t, seq, event)`` entries through a fresh
    *backend* scheduler and return them in pop order.  Used by the backend
    identity tests; not part of the kernel hot path."""
    sched = make_scheduler(backend)
    entries = list(schedule)
    for t, seq, ev in entries:
        sched.push(t, seq, ev)
    return [sched.pop() for _ in range(len(entries))]
