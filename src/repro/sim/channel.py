"""Bandwidth × latency transfer primitives.

A :class:`Channel` models a serialized medium (a PCIe direction, a torus
link, an internal bus): transfers are serialized at a fixed bandwidth and
each transfer additionally experiences a fixed propagation latency that
*overlaps* with following transfers (classic store-and-forward pipe).

A :class:`RateLimiter` models a device that can absorb or emit data at a
bounded sustained rate without the notion of individual in-flight messages
(used for e.g. the GPU's internal read engine).
"""

from __future__ import annotations

import math
from typing import Any, Callable, Optional

from .core import Event, SimulationError, Simulator

__all__ = ["Channel", "RateLimiter"]


class Channel:
    """A serialized, unidirectional pipe with bandwidth and latency.

    ``transfer(nbytes)`` returns an event that fires when the *tail* of the
    message arrives at the far end: serialization time (``nbytes/bw``) is
    exclusive (transfers queue FIFO), propagation latency is pipelined.

    If *deliver* is given, it is called with the transferred payload object
    at arrival time — convenient for wiring stages together without an
    explicit receiving process.
    """

    def __init__(
        self,
        sim: Simulator,
        bandwidth: float,
        latency: float = 0.0,
        name: str = "",
        deliver: Optional[Callable[[Any], None]] = None,
    ):
        # `not (x > 0)` (rather than `x <= 0`) also rejects NaN, which
        # compares false against everything: a NaN bandwidth or latency
        # computed from bad calibration constants would otherwise poison
        # every transfer time silently.
        if not bandwidth > 0 or not math.isfinite(bandwidth):
            raise SimulationError(
                f"Channel bandwidth must be positive and finite, got {bandwidth!r}"
            )
        if not latency >= 0 or not math.isfinite(latency):
            raise SimulationError(
                f"Channel latency must be non-negative and finite, got {latency!r}"
            )
        self.sim = sim
        self.bandwidth = float(bandwidth)  # bytes/ns
        self.latency = float(latency)
        self.name = name
        self.deliver = deliver
        # Time at which the serializer becomes free.
        self._free_at = 0.0
        # Instrumentation
        self.total_bytes = 0
        self.total_transfers = 0
        self._busy_time = 0.0
        if sim._sanitizer is not None:
            sim._sanitizer.register_channel(self)

    def serialization_time(self, nbytes: int) -> float:
        """Pure wire time for *nbytes* at this channel's bandwidth."""
        return nbytes / self.bandwidth

    def transfer(self, nbytes: int, payload: Any = None, pooled: bool = False) -> Event:
        """Send *nbytes*; the event fires at delivery with value *payload*.

        Zero-byte transfers are legal (pure-latency control messages).

        With ``pooled=True`` the completion event comes from the kernel's
        free-list pool and is recycled after it fires: only for callers
        that yield-and-drop or fire-and-forget the event — never keep a
        pooled event past its delivery time (see
        :meth:`repro.sim.core.Simulator.pooled_timeout`).
        """
        if nbytes < 0:
            raise SimulationError("negative transfer size")
        now = self.sim.now
        start = max(now, self._free_at)
        ser = nbytes / self.bandwidth
        self._free_at = start + ser
        self._busy_time += ser
        self.total_bytes += nbytes
        self.total_transfers += 1
        done_at = start + ser + self.latency
        obs = self.sim._obs
        if obs is not None:
            # The completion time is known up front, so the span is recorded
            # retroactively: no extra events, traced runs stay bit-identical.
            obs.span_at(
                "sim", self.name or "channel", start, done_at, nbytes=nbytes
            )
        if pooled:
            ev = self.sim.pooled_timeout(done_at - now, payload)
        else:
            ev = self.sim.timeout(done_at - now, payload)
        if self.deliver is not None:
            deliver = self.deliver

            def _cb(event: Event, _deliver=deliver) -> None:
                _deliver(event.value)

            ev.callbacks.append(_cb)
        return ev

    @property
    def backlog(self) -> float:
        """Seconds-of-wire currently queued ahead of a new transfer (ns)."""
        return max(0.0, self._free_at - self.sim.now)

    def utilization(self) -> float:
        """Fraction of elapsed time the serializer was busy."""
        if self.sim.now <= 0:
            return 0.0
        return min(1.0, self._busy_time / self.sim.now)


class RateLimiter:
    """Serializes work at a sustained byte rate, without latency.

    ``consume(nbytes)`` returns an event firing when the device has had
    enough rate-time to process the bytes.  Equivalent to a zero-latency
    :class:`Channel` but kept separate for intent and cheaper bookkeeping.
    """

    def __init__(self, sim: Simulator, rate: float, name: str = ""):
        if not rate > 0 or not math.isfinite(rate):
            raise SimulationError(
                f"RateLimiter rate must be positive and finite, got {rate!r}"
            )
        self.sim = sim
        self.rate = float(rate)  # bytes/ns
        self.name = name
        self._free_at = 0.0
        self.total_bytes = 0
        if sim._sanitizer is not None:
            sim._sanitizer.register_channel(self)

    def consume(self, nbytes: int, payload: Any = None, pooled: bool = False) -> Event:
        """Occupy the device for ``nbytes/rate``; fires when done.

        ``pooled`` has :meth:`Channel.transfer` semantics: recycled
        completion event, caller must not hold it past firing.
        """
        if nbytes < 0:
            raise SimulationError("negative consume size")
        now = self.sim.now
        start = max(now, self._free_at)
        self._free_at = start + nbytes / self.rate
        self.total_bytes += nbytes
        obs = self.sim._obs
        if obs is not None:
            obs.span_at(
                "sim", self.name or "rate", start, self._free_at, nbytes=nbytes
            )
        if pooled:
            return self.sim.pooled_timeout(self._free_at - now, payload)
        return self.sim.timeout(self._free_at - now, payload)

    @property
    def backlog(self) -> float:
        """Work queued ahead of new arrivals, in ns."""
        return max(0.0, self._free_at - self.sim.now)
