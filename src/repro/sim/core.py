"""Discrete-event simulation kernel.

A small, deterministic, generator-coroutine event engine in the style of
SimPy, specialised for this project:

* the clock is a ``float`` in nanoseconds (see :mod:`repro.units`);
* event ordering is fully deterministic — ties at equal timestamps are broken
  by schedule order (a monotonically increasing sequence number), so a given
  seed always produces an identical trace;
* processes are plain generators that ``yield`` :class:`Event` objects.

Example
-------
>>> sim = Simulator()
>>> def proc(sim, log):
...     yield sim.timeout(10)
...     log.append(sim.now)
>>> log = []
>>> _ = sim.process(proc(sim, log))
>>> sim.run()
>>> log
[10.0]
"""

from __future__ import annotations

import os
from bisect import insort
from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, Optional

from .sched import BACKENDS, CalendarScheduler, HeapScheduler, resolve_backend

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "TimerHandle",
    "EventPool",
    "SimulationError",
    "DeadlockError",
    "BACKENDS",
    "resolve_backend",
    "kernel_event_count",
    "push_observer",
    "pop_observer",
    "active_observers",
]

_INF = float("inf")

# Cumulative events processed by every Simulator in this interpreter.  The
# benchmark runner samples this around an experiment to report event-count
# telemetry without touching the per-event hot path (the counters are
# updated in bulk when a run loop exits).
_KERNEL_STATS = {"events": 0}


def kernel_event_count() -> int:
    """Total events processed by all Simulators in this process so far."""
    return _KERNEL_STATS["events"]


# Active trace sessions (repro.obs.TraceSession), innermost last.  Like the
# sanitizer, observation is opt-in and observation-only: when the tuple is
# empty every Simulator carries ``_obs = None`` and the instrumented models
# pay exactly one attribute load + is-None test per probe site.  The kernel
# knows nothing about session internals — it only asks a session for a
# per-simulator scope at construction time.
_OBSERVERS: tuple = ()


def push_observer(session) -> None:
    """Activate *session*: Simulators created from now on report to it."""
    global _OBSERVERS
    _OBSERVERS = _OBSERVERS + (session,)


def pop_observer(session) -> None:
    """Deactivate *session* (removes the innermost matching entry)."""
    global _OBSERVERS
    for i in range(len(_OBSERVERS) - 1, -1, -1):
        if _OBSERVERS[i] is session:
            _OBSERVERS = _OBSERVERS[:i] + _OBSERVERS[i + 1 :]
            return
    raise SimulationError("pop_observer: session is not active")


def active_observers() -> tuple:
    """The currently active trace sessions (innermost last)."""
    return _OBSERVERS


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel."""


class DeadlockError(SimulationError):
    """A process (or set of processes) that should have finished never did."""


# Event lifecycle states.
_PENDING = 0  # created, not yet triggered
_TRIGGERED = 1  # scheduled for processing (value set)
_PROCESSED = 2  # callbacks have run


class Event:
    """A one-shot occurrence that processes can wait on.

    An event is *triggered* with either :meth:`succeed` or :meth:`fail`;
    the kernel then runs its callbacks at the current simulation time.
    Waiting on an already-processed event resumes the waiter immediately
    (at the current time, not retroactively).
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_state", "_seq")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: list[Callable[["Event"], None]] = []
        self._value: Any = None
        self._ok: bool = True
        self._state = _PENDING
        self._seq = -1

    # -- state inspection ---------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has a value (it may not have processed yet)."""
        return self._state >= _TRIGGERED

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have run."""
        return self._state == _PROCESSED

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception, if it failed)."""
        if self._state == _PENDING:
            raise SimulationError("event value accessed before trigger")
        return self._value

    # -- triggering ----------------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with *value*."""
        if self._state != _PENDING:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        self._state = _TRIGGERED
        self.sim._push(self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event with an exception; waiters will raise it."""
        if self._state != _PENDING:
            raise SimulationError("event already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() needs an exception instance")
        self._ok = False
        self._value = exc
        self._state = _TRIGGERED
        self.sim._push(self)
        return self

    # -- kernel hook ----------------------------------------------------------

    def _process(self) -> None:
        self._state = _PROCESSED
        callbacks, self.callbacks = self.callbacks, []
        for cb in callbacks:
            cb(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = {_PENDING: "pending", _TRIGGERED: "triggered", _PROCESSED: "done"}
        return f"<{type(self).__name__} {state[self._state]} at t={self.sim.now}>"


class Timeout(Event):
    """An event that fires after a fixed delay.

    Timeouts are the kernel's hottest allocation (every Channel transfer,
    RateLimiter grant and firmware cost is one), so construction takes a
    dedicated scheduling path: the event is born triggered and goes
    straight onto the heap, skipping :meth:`Event.__init__` and
    :meth:`Simulator._push`.
    """

    __slots__ = ("delay", "_cancelled")

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        # One chained comparison rejects negative, NaN and +inf alike: any
        # of them would silently corrupt heap ordering (NaN compares false
        # against everything, so heappush would misplace the entry).
        if not 0.0 <= delay < _INF:
            if sim._sanitizer is not None:
                sim._sanitizer.record_causality(delay, sim.now, "timeout delay")
            raise SimulationError(
                f"timeout delay {delay!r} must be finite and non-negative: "
                "a negative delay would schedule into the past, and a "
                "NaN/inf delay would corrupt heap ordering"
            )
        self.sim = sim
        self.callbacks = []
        self._value = value
        self._ok = True
        self.delay = delay
        self._cancelled = False
        self._state = _TRIGGERED
        seq = sim._seq + 1
        sim._seq = seq
        self._seq = seq
        heap = sim._heap
        if heap is not None:
            heappush(heap, (sim.now + delay, seq, self))
        else:
            # Inlined CalendarScheduler.push (see sched.py): this is the
            # kernel's hottest call site and the Python-level method call
            # alone costs as much as the C heappush it replaces.
            sched = sim._sched
            t = sim.now + delay
            entry = (t, seq, self)
            if t < sched.cur_hi:
                active = sched.active
                insort(active, entry, sched.head)
                sched.size += 1
                if len(active) - sched.head > sched._FAT_RUN and not sched.flat:
                    sched._rebuild()
            else:
                b = int(t * sched.inv_width)
                if b - sched.cur < sched.nbuckets:
                    sched.buckets[b & sched.mask].append(entry)
                else:
                    sched.overflow.append(entry)
                    if t < sched.overflow_min:
                        sched.overflow_min = t
                sched.size += 1
                if sched.size > sched.grow_at:
                    sched._rebuild()

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` has disarmed this timer."""
        return self._cancelled

    def cancel(self) -> bool:
        """Disarm the timer; returns True if it was still armed.

        The scheduled entry stays in the queue and pops as a no-op at its
        original time — this keeps event counts (and therefore every
        downstream seq number) identical whether or not a cancel happened
        before or after the deadline, which is what lets retransmission
        layers cancel freely without perturbing bit-identity.

        A timer some waiter currently ``yield``s on (or that an AllOf /
        AnyOf condition watches) must not be cancelled: the waiter would
        silently never resume.  Such cancels raise
        :class:`SimulationError`; fire-and-forget callbacks are dropped.
        """
        if self._state != _TRIGGERED or self._cancelled:
            return False
        for cb in self.callbacks:
            if isinstance(getattr(cb, "__self__", None), Event):
                raise SimulationError(
                    "cannot cancel a timeout that a process or condition "
                    "is waiting on: the waiter would never resume"
                )
        self.callbacks.clear()
        self._cancelled = True
        self._ok = True
        self._value = None
        return True

    def handle(self) -> "TimerHandle":
        """A generation-checked handle for safe deferred cancellation."""
        return TimerHandle(self)


class TimerHandle:
    """Cancellation token for a (possibly pooled) :class:`Timeout`.

    Pooled timers are recycled after they fire: a raw reference kept
    across the deadline may suddenly denote a *different*, later timer.
    The handle captures the pool generation at creation and turns any
    post-reuse operation into a safe no-op (``stale`` becomes True,
    ``cancel()`` returns False) instead of cancelling an innocent timer.
    For unpooled timeouts the generation is absent and the handle simply
    forwards.
    """

    __slots__ = ("_ev", "_gen")

    def __init__(self, ev: Timeout):
        self._ev = ev
        self._gen = getattr(ev, "_gen", None)

    @property
    def stale(self) -> bool:
        """True once the underlying pooled object was recycled for reuse."""
        gen = self._gen
        return gen is not None and self._ev._gen != gen

    @property
    def active(self) -> bool:
        """True while this timer is still armed (scheduled, not cancelled)."""
        if self.stale:
            return False
        ev = self._ev
        return ev._state == _TRIGGERED and not ev._cancelled

    def cancel(self) -> bool:
        """Cancel the timer if it is still ours and still armed."""
        if self.stale:
            return False
        return self._ev.cancel()


class _PooledTimeout(Timeout):
    """A :class:`Timeout` owned by its simulator's free-list pool.

    Identical semantics while armed; after its callbacks run the kernel
    puts the object back on the free list and a later
    :meth:`Simulator.pooled_timeout` may re-arm it under a new sequence
    number.  ``_gen`` counts reuses so :class:`TimerHandle` can detect
    staleness.  Only code that provably drops its reference after the
    event fires (or holds a handle) should request pooled timers.
    """

    __slots__ = ("_gen",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        Timeout.__init__(self, sim, delay, value)
        self._gen = 0


class _PooledEvent(Event):
    """A kernel-internal pooled wake event (see ``Simulator._wake_event``)."""

    __slots__ = ("_gen",)

    def __init__(self, sim: "Simulator"):
        Event.__init__(self, sim)
        self._gen = 0


class EventPool:
    """Free lists of recycled kernel event objects, plus reuse counters.

    Purely an allocation-rate optimisation: pooling changes which Python
    *object* carries an event, never its (t, seq) identity, so pooled and
    unpooled runs are bit-identical.  Capacity-bounded so a burst cannot
    pin memory forever; overflow objects are simply dropped to the GC.
    """

    __slots__ = ("cap", "timeouts", "events", "hits", "misses", "recycled", "dropped")

    def __init__(self, cap: int = 4096):
        self.cap = cap
        self.timeouts: list[_PooledTimeout] = []
        self.events: list[_PooledEvent] = []
        self.hits = 0  # reuses served from a free list
        self.misses = 0  # cold allocations
        self.recycled = 0  # objects returned to a free list
        self.dropped = 0  # objects discarded because the list was full

    def stats(self) -> dict[str, int]:
        """Counters snapshot (for telemetry / kernel_snapshot)."""
        return {
            "cap": self.cap,
            "free_timeouts": len(self.timeouts),
            "free_events": len(self.events),
            "hits": self.hits,
            "misses": self.misses,
            "recycled": self.recycled,
            "dropped": self.dropped,
        }


class Process(Event):
    """Wraps a generator; completes when the generator returns.

    The process is itself an event: other processes can ``yield`` it to
    join on its completion; its value is the generator's return value.
    """

    __slots__ = ("_gen", "_send", "_throw", "_waiting_on", "name")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        super().__init__(sim)
        if not hasattr(gen, "send") or not hasattr(gen, "throw"):
            raise SimulationError(f"process target must be a generator, got {gen!r}")
        self._gen = gen
        # Pre-bound for the resume hot path (one resume per processed event).
        self._send = gen.send
        self._throw = gen.throw
        self._waiting_on: Optional[Event] = None
        self.name = name or getattr(gen, "__name__", "process")
        if sim._sanitizer is not None:
            sim._sanitizer.register_process(self)
        # Kick off at the current time.  The init event is kernel-owned and
        # unobservable from model code, so it comes from the event pool.
        init = sim._wake_event(True, None)
        init.callbacks.append(self._resume)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return self._state == _PENDING

    def _resume(self, trigger: Event) -> None:
        self._waiting_on = None
        try:
            if trigger._ok:
                target = self._send(trigger._value)
            else:
                target = self._throw(trigger._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # repro: noqa-SIM001 — crash boundary:
            # the exception is re-raised through the completion event (joiners
            # see it; with nobody joined the kernel step re-raises it).
            self.fail(exc)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}, expected an Event"
            )
        if target.sim is not self.sim:
            raise SimulationError("yielded event belongs to a different Simulator")
        self._waiting_on = target
        if target._state == _PROCESSED:
            # Already done: resume on the next kernel step at current time.
            # Kernel-owned wake event — pooled, nobody else ever sees it.
            wake = self.sim._wake_event(target._ok, target._value)
            wake.callbacks.append(self._resume)
        else:
            target.callbacks.append(self._resume)


class _Condition(Event):
    """Base for AllOf / AnyOf composite events."""

    __slots__ = ("events", "_remaining")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        for ev in self.events:
            if ev.sim is not sim:
                raise SimulationError("condition mixes events from different sims")
        self._remaining = len(self.events)
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            if ev._state == _PROCESSED:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)

    def _results(self) -> dict[Event, Any]:
        # Only events whose callbacks have run count as "fired": a Timeout is
        # born in the triggered state, but it has not happened yet.
        return {ev: ev._value for ev in self.events if ev._state == _PROCESSED}

    def _check(self, ev: Event) -> None:  # pragma: no cover - overridden
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when every constituent event has fired; value = {event: value}."""

    __slots__ = ()

    def _check(self, ev: Event) -> None:
        if self._state != _PENDING:
            return
        if not ev._ok:
            self.fail(ev._value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed(self._results())


class AnyOf(_Condition):
    """Fires when the first constituent event fires; value = {event: value}."""

    __slots__ = ()

    def _check(self, ev: Event) -> None:
        if self._state != _PENDING:
            return
        if not ev._ok:
            self.fail(ev._value)
            return
        self.succeed(self._results())


class Simulator:
    """The event loop: a priority queue of (time, seq, event)."""

    # Slots: `sim.now` is read on every transfer/timeout across the whole
    # model, and slot access beats instance-dict lookup.
    __slots__ = (
        "now",
        "_heap",
        "_sched",
        "_pool",
        "_backend",
        "_seq",
        "_running",
        "events_processed",
        "_sanitizer",
        "_obs",
    )

    def __init__(self, sanitize: Optional[bool] = None, backend: Optional[str] = None):
        self.now: float = 0.0
        # Event-queue backend.  `heap` keeps the historical layout: the
        # entry list lives in `_heap` and the hot paths touch it directly
        # (HeapScheduler wraps the *same* list for the generic interface).
        # Other backends set `_heap = None`, which every inlined fast path
        # uses as the backend discriminator (one is-None test).
        try:
            self._backend = resolve_backend(backend)
        except ValueError as exc:
            raise SimulationError(str(exc)) from exc
        if self._backend == "heap":
            self._heap: Optional[list[tuple[float, int, Event]]] = []
            self._sched = HeapScheduler(self._heap)
        else:
            self._heap = None
            self._sched = CalendarScheduler()
        self._pool = EventPool()
        self._seq = 0
        self._running = False
        self.events_processed = 0  # total events this simulator has run
        # Observation-only runtime checking (repro.analysis.sanitizer).  All
        # hooks sit on cold paths, so sanitized runs are bit-identical.
        if sanitize is None:
            sanitize = os.environ.get("REPRO_SANITIZE", "") not in ("", "0")
        if sanitize:
            from ..analysis.sanitizer import Sanitizer

            self._sanitizer = Sanitizer(self)
        else:
            self._sanitizer = None
        # Observation-only tracing (repro.obs).  A scope binds this simulator
        # to every active TraceSession; None when tracing is off, so probe
        # sites cost one attribute load + is-None test.
        if _OBSERVERS:
            if len(_OBSERVERS) == 1:
                self._obs = _OBSERVERS[0].scope_for(self)
            else:
                self._obs = _OBSERVERS[0].fanout_scope(self, _OBSERVERS)
        else:
            self._obs = None

    @property
    def backend(self) -> str:
        """Name of the event-queue backend (one of :data:`BACKENDS`)."""
        return self._backend

    @property
    def pool(self) -> EventPool:
        """The simulator's event free-list pool (counters + free lists)."""
        return self._pool

    @property
    def obs(self):
        """The attached trace scope (see :mod:`repro.obs`), or None."""
        return self._obs

    @property
    def sanitizer(self):
        """The attached :class:`~repro.analysis.sanitizer.Sanitizer`, or None."""
        return self._sanitizer

    def sanitizer_report(self):
        """Finalize and return the sanitizer's report (None when disabled)."""
        return self._sanitizer.finalize() if self._sanitizer is not None else None

    # -- factories -------------------------------------------------------------

    def event(self) -> Event:
        """Create a fresh pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires *delay* ns from now."""
        return Timeout(self, delay, value)

    def pooled_timeout(self, delay: float, value: Any = None) -> Timeout:
        """A pooled :meth:`timeout`: same semantics, recycled storage.

        After the timer fires the kernel reclaims the object for reuse, so
        callers must not keep references across the deadline — keep a
        :meth:`Timeout.handle` instead if deferred cancellation is needed.
        Safe (and worthwhile) for fire-and-forget timers and yield-and-drop
        delays; never for events stored beyond their firing.
        """
        if not 0.0 <= delay < _INF:
            if self._sanitizer is not None:
                self._sanitizer.record_causality(delay, self.now, "timeout delay")
            raise SimulationError(
                f"timeout delay {delay!r} must be finite and non-negative: "
                "a negative delay would schedule into the past, and a "
                "NaN/inf delay would corrupt heap ordering"
            )
        pool = self._pool
        free = pool.timeouts
        if free:
            ev = free.pop()
            pool.hits += 1
            ev._gen += 1
            ev._value = value
            ev._ok = True
            ev._cancelled = False
            ev.delay = delay
            ev._state = _TRIGGERED
            seq = self._seq + 1
            self._seq = seq
            ev._seq = seq
            t = self.now + delay
            heap = self._heap
            if heap is not None:
                heappush(heap, (t, seq, ev))
            else:
                # Inlined CalendarScheduler.push — see Timeout.__init__.
                sched = self._sched
                entry = (t, seq, ev)
                if t < sched.cur_hi:
                    active = sched.active
                    insort(active, entry, sched.head)
                    sched.size += 1
                    if len(active) - sched.head > sched._FAT_RUN and not sched.flat:
                        sched._rebuild()
                else:
                    b = int(t * sched.inv_width)
                    if b - sched.cur < sched.nbuckets:
                        sched.buckets[b & sched.mask].append(entry)
                    else:
                        sched.overflow.append(entry)
                        if t < sched.overflow_min:
                            sched.overflow_min = t
                    sched.size += 1
                    if sched.size > sched.grow_at:
                        sched._rebuild()
            return ev
        pool.misses += 1
        return _PooledTimeout(self, delay, value)

    def _wake_event(self, ok: bool, value: Any) -> Event:
        """A pooled, pre-triggered event scheduled at the current time.

        Kernel-internal: backs the Process init/wake machinery, where the
        event object is provably unreachable from model code once its
        single ``_resume`` callback has run.
        """
        pool = self._pool
        free = pool.events
        if free:
            ev = free.pop()
            pool.hits += 1
            ev._gen += 1
        else:
            pool.misses += 1
            ev = _PooledEvent(self)
        ev._ok = ok
        ev._value = value
        ev._state = _TRIGGERED
        seq = self._seq + 1
        self._seq = seq
        ev._seq = seq
        heap = self._heap
        if heap is not None:
            heappush(heap, (self.now, seq, ev))
        else:
            # Inlined CalendarScheduler.push — see Timeout.__init__.
            sched = self._sched
            t = self.now
            entry = (t, seq, ev)
            if t < sched.cur_hi:
                active = sched.active
                insort(active, entry, sched.head)
                sched.size += 1
                if len(active) - sched.head > sched._FAT_RUN and not sched.flat:
                    sched._rebuild()
            else:
                b = int(t * sched.inv_width)
                if b - sched.cur < sched.nbuckets:
                    sched.buckets[b & sched.mask].append(entry)
                else:
                    sched.overflow.append(entry)
                    if t < sched.overflow_min:
                        sched.overflow_min = t
                sched.size += 1
                if sched.size > sched.grow_at:
                    sched._rebuild()
        return ev

    def process(self, gen: Generator, name: str = "") -> Process:
        """Register *gen* as a process; it starts at the current time."""
        return Process(self, gen, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """An event that fires when all of *events* have fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """An event that fires when any of *events* fires."""
        return AnyOf(self, events)

    # -- kernel -----------------------------------------------------------------

    def _push(self, event: Event, delay: float = 0.0) -> None:
        if not 0.0 <= delay < _INF:
            if self._sanitizer is not None:
                self._sanitizer.record_causality(delay, self.now, "schedule delay")
            raise SimulationError(
                f"cannot schedule {event!r} with a negative delay or "
                f"non-finite delay ({delay!r}): it would corrupt heap ordering"
            )
        seq = self._seq + 1
        self._seq = seq
        event._seq = seq
        heap = self._heap
        if heap is not None:
            heappush(heap, (self.now + delay, seq, event))
        else:
            self._sched.push(self.now + delay, seq, event)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        heap = self._heap
        if heap is not None:
            return heap[0][0] if heap else _INF
        return self._sched.peek_time()

    def pending_count(self) -> int:
        """Number of events currently scheduled, on any backend."""
        return len(self._sched)

    def pending_entries(self) -> list[tuple[float, int, Event]]:
        """Snapshot of pending ``(t, seq, event)`` entries, sorted.

        Backend-neutral replacement for reading ``sim._heap`` directly;
        used by the sanitizer's finalize and by diagnostics.
        """
        return self._sched.entries()

    def _recycle(self, event: Event) -> None:
        """Return a pooled event object to its free list (cold paths)."""
        pool = self._pool
        cls = event.__class__
        if cls is _PooledTimeout:
            free = pool.timeouts
        elif cls is _PooledEvent:
            free = pool.events
        else:
            return
        if len(free) < pool.cap:
            free.append(event)
            pool.recycled += 1
        else:
            pool.dropped += 1

    def step(self) -> None:
        """Process exactly one event (the generic, un-inlined path).

        :meth:`run` and :meth:`run_process` inline this logic with
        pre-bound locals for speed; ``step()`` is kept as the reference
        implementation for debuggers, lock-step co-simulation and the
        ``selftest`` micro-benchmark's before/after baseline.  Both paths
        must stay behaviourally identical, on every backend.
        """
        sched = self._sched
        if not len(sched):
            raise SimulationError("step() on an empty event queue")
        t, _, event = sched.pop()
        if t < self.now - 1e-9:
            if self._sanitizer is not None:
                self._sanitizer.record_causality(t, self.now, "event popped")
            raise SimulationError(f"time went backwards: {t} < {self.now}")
        self.now = t
        self.events_processed += 1
        _KERNEL_STATS["events"] += 1
        had_waiters = bool(event.callbacks)
        event._process()
        self._recycle(event)
        # A process that crashed with nobody joined on it at crash time:
        # surface the error instead of losing it silently.
        if isinstance(event, Process) and not event._ok and not had_waiters:
            raise event._value

    def _drain(self, until: Optional[float], watched: Optional[Event]) -> None:
        """The inlined hot loop behind :meth:`run` / :meth:`run_process`.

        Equivalent to ``while ...: self.step()`` but with the heap, the
        pop and the event-dispatch machinery pre-bound to locals, and
        :meth:`Event._process` inlined (every kernel event class uses the
        base implementation).  Stops when the queue drains, the next event
        lies beyond *until*, or *watched* leaves the pending state.

        The two backend loops (this one and :meth:`_drain_wheel`) must
        stay behaviourally identical step for step — the backend matrix in
        CI enforces it bit-exactly on the golden suites.
        """
        heap = self._heap
        if heap is None:
            return self._drain_wheel(until, watched)
        pop = heappop
        now = self.now
        pool = self._pool
        free_timeouts = pool.timeouts
        free_events = pool.events
        cap = pool.cap
        unconditional = until is None and watched is None
        n = 0
        try:
            while heap:
                if not unconditional:
                    if until is not None and heap[0][0] > until:
                        break
                    if watched is not None and watched._state != _PENDING:
                        break
                t, _, event = pop(heap)
                if t != now:
                    if t < now - 1e-9:
                        if self._sanitizer is not None:
                            self._sanitizer.record_causality(t, now, "event popped")
                        raise SimulationError(f"time went backwards: {t} < {now}")
                    self.now = now = t
                n += 1
                event._state = _PROCESSED
                callbacks = event.callbacks
                if callbacks:
                    event.callbacks = []
                    for cb in callbacks:
                        cb(event)
                elif not event._ok and isinstance(event, Process):
                    # Crashed with nobody joined: surface, don't swallow.
                    raise event._value
                cls = event.__class__
                if cls is _PooledTimeout:
                    if len(free_timeouts) < cap:
                        free_timeouts.append(event)
                        pool.recycled += 1
                    else:
                        pool.dropped += 1
                elif cls is _PooledEvent:
                    if len(free_events) < cap:
                        free_events.append(event)
                        pool.recycled += 1
                    else:
                        pool.dropped += 1
        finally:
            self.events_processed += n
            _KERNEL_STATS["events"] += n

    def _drain_wheel(self, until: Optional[float], watched: Optional[Event]) -> None:
        """The calendar-queue twin of :meth:`_drain`.

        Pops are inlined against the scheduler's current sorted run: an
        index bump instead of a heap sift.  ``sched.active`` / ``.head``
        are re-read every iteration because a callback may push events
        that trigger a rebuild (which replaces both).  Dispatch, causality
        checking, pooling and the bulk counter update are identical to the
        heap loop.
        """
        sched = self._sched
        now = self.now
        pool = self._pool
        free_timeouts = pool.timeouts
        free_events = pool.events
        cap = pool.cap
        unconditional = until is None and watched is None
        n = 0
        try:
            while True:
                head = sched.head
                active = sched.active
                if head >= len(active):
                    if not sched.size:
                        break
                    sched._advance()
                    head = sched.head
                    active = sched.active
                entry = active[head]
                if not unconditional:
                    if until is not None and entry[0] > until:
                        break
                    if watched is not None and watched._state != _PENDING:
                        break
                sched.head = head + 1
                sched.size -= 1
                t = entry[0]
                event = entry[2]
                if t != now:
                    if t < now - 1e-9:
                        if self._sanitizer is not None:
                            self._sanitizer.record_causality(t, now, "event popped")
                        raise SimulationError(f"time went backwards: {t} < {now}")
                    self.now = now = t
                n += 1
                event._state = _PROCESSED
                callbacks = event.callbacks
                if callbacks:
                    event.callbacks = []
                    for cb in callbacks:
                        cb(event)
                elif not event._ok and isinstance(event, Process):
                    # Crashed with nobody joined: surface, don't swallow.
                    raise event._value
                cls = event.__class__
                if cls is _PooledTimeout:
                    if len(free_timeouts) < cap:
                        free_timeouts.append(event)
                        pool.recycled += 1
                    else:
                        pool.dropped += 1
                elif cls is _PooledEvent:
                    if len(free_events) < cap:
                        free_events.append(event)
                        pool.recycled += 1
                    else:
                        pool.dropped += 1
        finally:
            self.events_processed += n
            _KERNEL_STATS["events"] += n

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or the clock passes *until*.

        When *until* is given the clock is left exactly at *until* (if the
        simulation got that far), matching SimPy semantics.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        try:
            if until is None:
                self._drain(None, None)
            else:
                if until < self.now:
                    raise SimulationError(f"until={until} is in the past (now={self.now})")
                self._drain(until, None)
                if self.now < until:
                    self.now = until
        except BaseException:
            # A run the model deliberately crashes (LinkFailure escalation,
            # process error) is not a clean end state; skip finalize checks.
            if self._sanitizer is not None:
                self._sanitizer.mark_aborted()
            raise
        finally:
            self._running = False

    def run_process(self, gen: Generator, name: str = "") -> Any:
        """Convenience: run *gen* to completion and return its value.

        Drives the whole simulation until the process finishes (other
        concurrent processes keep running while it does).
        """
        proc = self.process(gen, name)
        try:
            self._drain(None, proc)
        except BaseException:
            if self._sanitizer is not None:
                self._sanitizer.mark_aborted()
            raise
        if proc._state == _PENDING:
            raise DeadlockError(f"deadlock: process {proc.name!r} never finished")
        if not proc._ok:
            if self._sanitizer is not None:
                self._sanitizer.mark_aborted()
            raise proc._value
        return proc._value
