"""Shared-resource primitives for the simulation kernel.

* :class:`Resource` — a counted semaphore with FIFO queuing (models servers
  like the Nios II microcontroller or a DMA engine).
* :class:`Store` — an unbounded-or-bounded FIFO of Python objects.
* :class:`ByteFifo` — a byte-capacity FIFO with producer back-pressure; the
  workhorse for modelling hardware FIFOs (TX FIFO, link buffers) where only
  the *amount* of data matters.
* :class:`PacketFifo` — a byte-capacity FIFO of discrete packets (objects
  with a ``size`` attribute); producers block while the FIFO is full.

All wait operations return :class:`~repro.sim.core.Event` objects that a
process ``yield``\\ s on.  Queuing disciplines are strictly FIFO, which keeps
simulations deterministic.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from .core import Event, SimulationError, Simulator

__all__ = ["Resource", "Store", "ByteFifo", "PacketFifo"]


class Resource:
    """A counted resource with FIFO-ordered acquisition.

    Usage inside a process::

        req = resource.acquire()
        yield req
        try:
            yield sim.timeout(cost)
        finally:
            resource.release()
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise SimulationError("Resource capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: Deque[Event] = deque()
        # Instrumentation: total busy integral for utilization reporting.
        self._busy_since: Optional[float] = None
        self._busy_time = 0.0
        if sim._sanitizer is not None:
            sim._sanitizer.register_resource(self)

    @property
    def in_use(self) -> int:
        """Number of currently held slots."""
        return self._in_use

    @property
    def queue_len(self) -> int:
        """Number of waiting acquirers."""
        return len(self._waiters)

    def acquire(self) -> Event:
        """Return an event that fires once a slot is held."""
        ev = Event(self.sim)
        if self._in_use < self.capacity:
            self._grant(ev)
        else:
            self._waiters.append(ev)
        self._sample_obs()
        return ev

    def _grant(self, ev: Event) -> None:
        if self._in_use == 0:
            self._busy_since = self.sim.now
        self._in_use += 1
        ev.succeed(self)

    def release(self) -> None:
        """Release one held slot (caller must actually hold one)."""
        if self._in_use <= 0:
            raise SimulationError(f"release() on idle resource {self.name!r}")
        self._in_use -= 1
        if self._in_use == 0 and self._busy_since is not None:
            self._busy_time += self.sim.now - self._busy_since
            self._busy_since = None
        if self._waiters and self._in_use < self.capacity:
            self._grant(self._waiters.popleft())
        self._sample_obs()

    def _sample_obs(self) -> None:
        # Occupancy timeline for named resources (observation-only).
        obs = self.sim._obs
        if obs is not None and self.name:
            obs.counter("sim", self.name + ".in_use", float(self._in_use))
            obs.counter("sim", self.name + ".queue", float(len(self._waiters)))

    def busy_time(self) -> float:
        """Total time the resource had at least one holder."""
        extra = 0.0
        if self._busy_since is not None:
            extra = self.sim.now - self._busy_since
        return self._busy_time + extra

    def utilization(self) -> float:
        """Fraction of elapsed simulation time the resource was busy."""
        if self.sim.now <= 0:
            return 0.0
        return self.busy_time() / self.sim.now


class Store:
    """A FIFO of arbitrary objects with optional item-count capacity."""

    def __init__(self, sim: Simulator, capacity: Optional[int] = None, name: str = ""):
        if capacity is not None and capacity < 1:
            raise SimulationError("Store capacity must be >= 1 or None")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple[Event, Any]] = deque()
        if sim._sanitizer is not None:
            sim._sanitizer.register_container(self)

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> Event:
        """Insert *item*; the returned event fires once it is stored."""
        ev = Event(self.sim)
        if self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            ev.succeed(item)
            self._wake_getters()
        else:
            self._putters.append((ev, item))
        return ev

    def get(self) -> Event:
        """Remove the oldest item; the event's value is the item."""
        ev = Event(self.sim)
        if self._items:
            ev.succeed(self._items.popleft())
            self._wake_putters()
        else:
            self._getters.append(ev)
        return ev

    def _wake_getters(self) -> None:
        while self._getters and self._items:
            self._getters.popleft().succeed(self._items.popleft())
            self._wake_putters()

    def _wake_putters(self) -> None:
        while self._putters and (
            self.capacity is None or len(self._items) < self.capacity
        ):
            ev, item = self._putters.popleft()
            self._items.append(item)
            ev.succeed(item)
            self._wake_getters()


class ByteFifo:
    """Byte-granularity FIFO with capacity and producer back-pressure.

    ``put(n)`` completes once *n* bytes have been accepted (the bytes are
    reserved atomically, FIFO among producers); ``get(n)`` completes once
    *n* bytes have been drained.  ``get_upto(n)`` completes as soon as at
    least one byte is available and takes ``min(level, n)`` bytes; its event
    value is the number of bytes taken.

    A ``put`` larger than the capacity is rejected: the caller must chunk.
    """

    def __init__(self, sim: Simulator, capacity: int, name: str = ""):
        if capacity < 1:
            raise SimulationError("ByteFifo capacity must be >= 1")
        self.sim = sim
        self.capacity = int(capacity)
        self.name = name
        self._level = 0
        self._putters: Deque[tuple[Event, int]] = deque()
        self._getters: Deque[tuple[Event, int, bool]] = deque()
        # Instrumentation
        self.total_in = 0
        self.total_out = 0
        self._peak = 0
        if sim._sanitizer is not None:
            sim._sanitizer.register_container(self)

    @property
    def level(self) -> int:
        """Bytes currently stored."""
        return self._level

    @property
    def free(self) -> int:
        """Bytes of remaining space."""
        return self.capacity - self._level

    @property
    def peak_level(self) -> int:
        """High-water mark of stored bytes."""
        return self._peak

    def put(self, nbytes: int) -> Event:
        """Reserve *nbytes* of space; fires once the bytes are stored."""
        nbytes = int(nbytes)
        if nbytes <= 0:
            raise SimulationError("put() needs a positive byte count")
        if nbytes > self.capacity:
            raise SimulationError(
                f"put({nbytes}) exceeds FIFO capacity {self.capacity}; chunk it"
            )
        ev = Event(self.sim)
        if not self._putters and nbytes <= self.capacity - self._level:
            # Uncontended fast path.  Bit-identical to queuing + _drain():
            # with no producer queued ahead, _drain's first step would
            # admit exactly this request (the head-putter admission is the
            # loop's first action and, by the drain-on-every-transition
            # invariant, a queued head putter can never currently fit), so
            # inlining the admission preserves the succeed order exactly.
            level_before = self._level
            self._level += nbytes
            self.total_in += nbytes
            if self._level > self._peak:
                self._peak = self._level
            ev.succeed(nbytes)
            self._settle(level_before)
            return ev
        self._putters.append((ev, nbytes))
        self._drain()
        return ev

    def get(self, nbytes: int) -> Event:
        """Remove exactly *nbytes*; fires when they have all been taken."""
        nbytes = int(nbytes)
        if nbytes <= 0:
            raise SimulationError("get() needs a positive byte count")
        ev = Event(self.sim)
        if not self._getters and self._level >= nbytes:
            # Uncontended fast path (see put(); the symmetric argument —
            # a queued head putter cannot fit right now, so _drain would
            # serve this consumer first).
            level_before = self._level
            self._level -= nbytes
            self.total_out += nbytes
            ev.succeed(nbytes)
            self._settle(level_before)
            return ev
        self._getters.append((ev, nbytes, False))
        self._drain()
        return ev

    def get_upto(self, nbytes: int) -> Event:
        """Remove up to *nbytes* (at least 1); event value = bytes taken."""
        nbytes = int(nbytes)
        if nbytes <= 0:
            raise SimulationError("get_upto() needs a positive byte count")
        ev = Event(self.sim)
        if not self._getters and self._level > 0:
            # Uncontended fast path (see get()).
            take = min(nbytes, self._level)
            level_before = self._level
            self._level -= take
            self.total_out += take
            ev.succeed(take)
            self._settle(level_before)
            return ev
        self._getters.append((ev, nbytes, True))
        self._drain()
        return ev

    def _drain(self) -> None:
        self._settle(self._level)

    def _settle(self, level_before: int) -> None:
        progressed = True
        while progressed:
            progressed = False
            # Admit head producer if it fits.
            if self._putters:
                ev, n = self._putters[0]
                if n <= self.capacity - self._level:
                    self._putters.popleft()
                    self._level += n
                    self.total_in += n
                    if self._level > self._peak:
                        self._peak = self._level
                    ev.succeed(n)
                    progressed = True
            # Serve head consumer if satisfiable.
            if self._getters:
                ev, n, upto = self._getters[0]
                if upto and self._level > 0:
                    take = min(n, self._level)
                    self._getters.popleft()
                    self._level -= take
                    self.total_out += take
                    ev.succeed(take)
                    progressed = True
                elif not upto and self._level >= n:
                    self._getters.popleft()
                    self._level -= n
                    self.total_out += n
                    ev.succeed(n)
                    progressed = True
        if self._level != level_before:
            obs = self.sim._obs
            if obs is not None and self.name:
                obs.counter("sim", self.name + ".level", float(self._level))


class PacketFifo:
    """FIFO of packet objects bounded by total byte size.

    Packets must expose a ``size`` attribute (bytes).  ``put`` blocks while
    the FIFO lacks space for the whole packet; ``get`` pops the next packet.
    A single packet larger than the capacity is accepted only when the FIFO
    is completely empty (hardware store-and-forward FIFOs cannot do even
    that, but the TX paths in this project always chunk first — the escape
    hatch just keeps toy configurations from deadlocking).
    """

    def __init__(self, sim: Simulator, capacity: int, name: str = ""):
        if capacity < 1:
            raise SimulationError("PacketFifo capacity must be >= 1")
        self.sim = sim
        self.capacity = int(capacity)
        self.name = name
        self._level = 0
        self._items: Deque[Any] = deque()
        self._putters: Deque[tuple[Event, Any]] = deque()
        self._getters: Deque[Event] = deque()
        self.total_packets_in = 0
        self.total_packets_out = 0
        self._peak = 0
        if sim._sanitizer is not None:
            sim._sanitizer.register_container(self)

    def __len__(self) -> int:
        return len(self._items)

    @property
    def level(self) -> int:
        """Bytes currently stored."""
        return self._level

    @property
    def free(self) -> int:
        """Bytes of remaining space."""
        return self.capacity - self._level

    @property
    def peak_level(self) -> int:
        """High-water mark of stored bytes."""
        return self._peak

    def _fits(self, packet: Any) -> bool:
        size = int(packet.size)
        if size <= self.capacity - self._level:
            return True
        return size > self.capacity and self._level == 0

    def put(self, packet: Any) -> Event:
        """Insert *packet*; fires once it is stored."""
        if int(packet.size) < 0:
            raise SimulationError("packet size must be non-negative")
        ev = Event(self.sim)
        if not self._putters and self._fits(packet):
            # Uncontended fast path — same argument as ByteFifo.put: a
            # queued head putter can never currently fit, so _drain would
            # admit this packet first anyway.  Succeed order is identical.
            level_before = self._level
            self._level += int(packet.size)
            self._items.append(packet)
            self.total_packets_in += 1
            if self._level > self._peak:
                self._peak = self._level
            ev.succeed(packet)
            self._settle(level_before)
            return ev
        self._putters.append((ev, packet))
        self._drain()
        return ev

    def get(self) -> Event:
        """Pop the next packet; the event value is the packet."""
        ev = Event(self.sim)
        if not self._getters and self._items:
            # Uncontended fast path (see put()).
            level_before = self._level
            pkt = self._items.popleft()
            self._level -= int(pkt.size)
            self.total_packets_out += 1
            ev.succeed(pkt)
            self._settle(level_before)
            return ev
        self._getters.append(ev)
        self._drain()
        return ev

    def _drain(self) -> None:
        self._settle(self._level)

    def _settle(self, level_before: int) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._putters:
                ev, pkt = self._putters[0]
                if self._fits(pkt):
                    self._putters.popleft()
                    self._level += int(pkt.size)
                    self._items.append(pkt)
                    self.total_packets_in += 1
                    if self._level > self._peak:
                        self._peak = self._level
                    ev.succeed(pkt)
                    progressed = True
            if self._getters and self._items:
                ev = self._getters.popleft()
                pkt = self._items.popleft()
                self._level -= int(pkt.size)
                self.total_packets_out += 1
                ev.succeed(pkt)
                progressed = True
        if self._level != level_before:
            obs = self.sim._obs
            if obs is not None and self.name:
                obs.counter("sim", self.name + ".level", float(self._level))
