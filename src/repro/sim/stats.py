"""Small online-statistics helpers used by benchmarks and traces."""

from __future__ import annotations

import math
from typing import Iterable, Sequence

__all__ = ["OnlineStats", "percentile", "TimeSeries", "FaultStats", "RecoveryStats"]


class OnlineStats:
    """Welford online mean/variance with min/max tracking."""

    def __init__(self):
        self.n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, x: float) -> None:
        """Fold one sample into the statistics."""
        self.n += 1
        delta = x - self._mean
        self._mean += delta / self.n
        self._m2 += delta * (x - self._mean)
        if x < self.minimum:
            self.minimum = x
        if x > self.maximum:
            self.maximum = x

    def extend(self, xs: Iterable[float]) -> None:
        """Fold many samples."""
        for x in xs:
            self.add(x)

    @property
    def mean(self) -> float:
        """Sample mean (0.0 when empty)."""
        return self._mean if self.n else 0.0

    @property
    def variance(self) -> float:
        """Unbiased sample variance."""
        return self._m2 / (self.n - 1) if self.n > 1 else 0.0

    @property
    def stddev(self) -> float:
        """Unbiased sample standard deviation."""
        return math.sqrt(self.variance)

    def __repr__(self) -> str:  # pragma: no cover
        return f"OnlineStats(n={self.n}, mean={self.mean:.3g}, sd={self.stddev:.3g})"


def percentile(samples: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile, q in [0, 100]."""
    if not samples:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q={q} out of [0, 100]")
    xs = sorted(samples)
    if len(xs) == 1:
        return xs[0]
    pos = (len(xs) - 1) * q / 100.0
    lo = int(math.floor(pos))
    hi = int(math.ceil(pos))
    if lo == hi:
        return xs[lo]
    frac = pos - lo
    return xs[lo] * (1 - frac) + xs[hi] * frac


class TimeSeries:
    """Append-only (t, value) series with integration helpers.

    Values are piecewise-constant between samples (step function), which is
    the right semantics for levels like "FIFO occupancy over time".
    """

    def __init__(self):
        self.times: list[float] = []
        self.values: list[float] = []

    def append(self, t: float, value: float) -> None:
        """Record that the level became *value* at time *t*."""
        if self.times and t < self.times[-1]:
            raise ValueError("TimeSeries timestamps must be non-decreasing")
        self.times.append(t)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def time_average(self, until: float) -> float:
        """Time-weighted average of the step function up to *until*."""
        if not self.times:
            return 0.0
        total = 0.0
        for i, (t, v) in enumerate(zip(self.times, self.values)):
            t_next = self.times[i + 1] if i + 1 < len(self.times) else until
            t_next = min(t_next, until)
            if t_next > t:
                total += v * (t_next - t)
        span = until - self.times[0]
        return total / span if span > 0 else 0.0

    def maximum(self) -> float:
        """Largest recorded level."""
        return max(self.values) if self.values else 0.0


class FaultStats:
    """Graceful-degradation accounting for fault-injected runs.

    Filled in by the fault-injection sites (:mod:`repro.faults`); exposes
    the numbers a chaos experiment reports: goodput vs raw wire traffic,
    retransmission counts, recovery latency, and every structured link
    failure.  Lives here (not in ``repro.faults``) so instrumentation
    consumers need only depend on the sim layer.
    """

    def __init__(self):
        # Torus links.
        self.payload_bytes = 0  # goodput numerator: payload delivered intact
        self.wire_bytes = 0  # raw wire traffic, retransmissions included
        self.retransmits = 0
        self.crc_errors = 0
        self.packets_dropped = 0
        self.recovery_latency = OnlineStats()  # ns, per recovered packet
        # PCIe.
        self.tlp_replays = 0
        self.tlp_replay_bytes = 0
        # Nios II.
        self.nios_stalls = 0
        self.nios_stall_time = 0.0
        # Per-site breakdowns, keyed by fault-site name.  The recovery
        # layer's degradation thresholds are per *node*, so aggregate
        # counters alone are not enough.
        self.tlp_replays_by_site: dict[str, int] = {}
        self.nios_stalls_by_site: dict[str, int] = {}
        # Escalations: one record per exhausted retry budget.
        self.link_failures: list[dict] = []

    def record_link_failure(self, **info) -> None:
        """Append one structured failure record (site, attempts, time, kind)."""
        self.link_failures.append(dict(info))

    def goodput_fraction(self) -> float:
        """Delivered payload bytes over raw wire bytes (1.0 when idle)."""
        if self.wire_bytes == 0:
            return 1.0
        return self.payload_bytes / self.wire_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultStats(goodput={self.goodput_fraction():.3f}, "
            f"retx={self.retransmits}, drops={self.packets_dropped}, "
            f"crc={self.crc_errors}, tlp_replays={self.tlp_replays}, "
            f"stalls={self.nios_stalls}, failures={len(self.link_failures)})"
        )


class RecoveryStats:
    """End-to-end recovery accounting (:mod:`repro.recovery`).

    Tracks the systemic-fault-awareness layer above link retransmission:
    dead-link detections, detour routing, end-to-end RDMA replays with
    duplicate suppression, and P2P -> host-staging degradation.  Like
    :class:`FaultStats` it lives in the sim layer so consumers (bench
    experiments, traces) need no dependency on ``repro.recovery``.
    """

    def __init__(self):
        # Failure detection / re-routing.
        self.link_deaths: list[dict] = []
        self.time_to_detect = OnlineStats()  # ns, kill -> marked dead
        self.packets_rerouted = 0
        self.packets_unreachable = 0
        # End-to-end RDMA transaction layer.
        self.replays = 0
        self.put_timeouts = 0
        self.duplicates_suppressed = 0
        self.replay_fragments_suppressed = 0
        self.unreachable_puts = 0
        self.time_to_recover = OnlineStats()  # ns, first post -> delivery, replayed PUTs only
        # P2P -> host-staging degradation.
        self.gpu_puts = 0
        self.degraded_puts = 0
        self.degradations: list[dict] = []

    def record_link_death(self, **info) -> None:
        """Append one dead-link record (site, coords, detect time, ...)."""
        self.link_deaths.append(dict(info))
        if "elapsed_ns" in info:
            self.time_to_detect.add(info["elapsed_ns"])

    def record_degradation(self, **info) -> None:
        """Append one P2P -> host-staging mode-switch record."""
        self.degradations.append(dict(info))

    def degraded_fraction(self) -> float:
        """Fraction of GPU-sourced PUTs that went via host staging."""
        if self.gpu_puts == 0:
            return 0.0
        return self.degraded_puts / self.gpu_puts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RecoveryStats(deaths={len(self.link_deaths)}, "
            f"rerouted={self.packets_rerouted}, replays={self.replays}, "
            f"dups={self.duplicates_suppressed}, "
            f"degraded={self.degraded_fraction():.3f})"
        )
