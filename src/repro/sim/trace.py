"""Instrumentation: bandwidth meters and structured event traces.

In-model measurement helpers (windowed bandwidth meters, per-flow event
logs) that experiments read programmatically to produce their Fig 3/4
curves.  Distinct from :mod:`repro.obs`, the cross-cutting observability
layer: these objects are part of a model's wiring and affect nothing
when unused, while ``repro.obs`` taps existing components externally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

from .core import Simulator

__all__ = ["BandwidthMeter", "TraceRecord", "TraceLog", "kernel_snapshot"]


def kernel_snapshot(sim: Simulator) -> dict[str, Any]:
    """One-shot, backend-neutral snapshot of a simulator's kernel state.

    Cheap enough to call between runs (it does not enumerate pending
    entries); used by the selftest benchmark and by BENCH_kernel.json
    emission to attribute throughput numbers to a backend + pool state.
    """
    pool = sim.pool.stats()
    return {
        "backend": sim.backend,
        "now": sim.now,
        "events_processed": sim.events_processed,
        "pending": sim.pending_count(),
        "pool": pool,
    }


class BandwidthMeter:
    """Records (time, bytes) samples and reports average rates.

    Attach one wherever data crosses a boundary of interest::

        meter.record(packet.size)

    ``average()`` reports total bytes over the full observation span;
    ``average_between(t0, t1)`` restricts to a window (useful to discard
    warm-up).
    """

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name
        self.samples: list[tuple[float, int]] = []
        self.total_bytes = 0
        self._first_t: Optional[float] = None
        self._last_t: Optional[float] = None

    def record(self, nbytes: int) -> None:
        """Record *nbytes* crossing the measured boundary at the current time."""
        t = self.sim.now
        self.samples.append((t, nbytes))
        self.total_bytes += nbytes
        if self._first_t is None:
            self._first_t = t
        self._last_t = t

    @property
    def span(self) -> float:
        """Time between first and last sample."""
        if self._first_t is None or self._last_t is None:
            return 0.0
        return self._last_t - self._first_t

    def average(self, since: float = 0.0) -> float:
        """Average bandwidth (bytes/ns) from *since* until now."""
        duration = self.sim.now - since
        if duration <= 0:
            return 0.0
        nbytes = sum(n for t, n in self.samples if t >= since)
        return nbytes / duration

    def average_between(self, t0: float, t1: float) -> float:
        """Average bandwidth (bytes/ns) over the window [t0, t1]."""
        if t1 <= t0:
            return 0.0
        nbytes = sum(n for t, n in self.samples if t0 <= t <= t1)
        return nbytes / (t1 - t0)

    def steady_state(self, skip_fraction: float = 0.25) -> float:
        """Average after discarding the first *skip_fraction* of samples.

        Used by bandwidth benchmarks to ignore pipeline fill effects.
        """
        if not self.samples:
            return 0.0
        k = int(len(self.samples) * skip_fraction)
        kept = self.samples[k:]
        if len(kept) < 2:
            return self.average()
        t0 = kept[0][0]
        t1 = kept[-1][0]
        if t1 <= t0:
            return self.average()
        nbytes = sum(n for _, n in kept[1:])  # first sample marks window start
        return nbytes / (t1 - t0)


@dataclass
class TraceRecord:
    """One structured trace entry."""

    time: float
    source: str
    kind: str
    info: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        extras = " ".join(f"{k}={v}" for k, v in self.info.items())
        return f"[{self.time:12.1f}ns] {self.source:<20s} {self.kind:<16s} {extras}"


class TraceLog:
    """An append-only structured log; disabled by default (zero-cost)."""

    def __init__(self, sim: Simulator, enabled: bool = False, capacity: int = 1_000_000):
        self.sim = sim
        self.enabled = enabled
        self.capacity = capacity
        self.records: list[TraceRecord] = []

    def emit(self, source: str, kind: str, **info: Any) -> None:
        """Append a record if tracing is enabled."""
        if not self.enabled or len(self.records) >= self.capacity:
            return
        self.records.append(TraceRecord(self.sim.now, source, kind, info))

    def filter(self, source: Optional[str] = None, kind: Optional[str] = None) -> Iterator[TraceRecord]:
        """Iterate records matching the given source and/or kind."""
        for rec in self.records:
            if source is not None and rec.source != source:
                continue
            if kind is not None and rec.kind != kind:
                continue
            yield rec

    def clear(self) -> None:
        """Drop all records."""
        self.records.clear()
