"""Post-run cluster diagnostics: where did the time go?

After any simulation, :func:`cluster_report` summarizes the observable
hardware state — Nios II busy split by task, torus-link utilizations, FIFO
high-water marks, RX drop counters, per-engine byte totals — the view a
hardware engineer would pull from performance counters.  This is how the
paper's own analysis narrative ("the Nios II micro-controller is the main
performance bottleneck") falls out of a run.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..net.cluster import ApenetCluster
from .tables import render_table

__all__ = ["NodeDiagnostics", "cluster_report", "render_report"]


@dataclass
class NodeDiagnostics:
    """Counters harvested from one node."""

    rank: int
    nios_utilization: float
    nios_busy_by_kind: dict[str, float]
    rx_packets: int
    rx_dropped: int
    rx_bytes: int
    tx_host_bytes: int
    tx_gpu_bytes: int
    tx_fifo_peak: int
    rx_fifo_peak: int
    registered_buffers: int

    @property
    def dominant_task(self) -> str:
        """The task kind the Nios II spent the most time on."""
        if not self.nios_busy_by_kind:
            return "idle"
        return max(self.nios_busy_by_kind, key=self.nios_busy_by_kind.get)


def cluster_report(cluster: ApenetCluster) -> list[NodeDiagnostics]:
    """Harvest diagnostics from every node of a finished run."""
    out = []
    for node in cluster.nodes:
        card = node.card
        out.append(
            NodeDiagnostics(
                rank=node.rank,
                nios_utilization=card.nios.utilization(),
                nios_busy_by_kind=dict(card.nios.busy_by_kind),
                rx_packets=card.rx.packets_processed,
                rx_dropped=card.rx.packets_dropped,
                rx_bytes=card.rx.bytes_received,
                tx_host_bytes=card.host_tx.bytes_sent,
                tx_gpu_bytes=card.gpu_tx.bytes_sent,
                tx_fifo_peak=card.router.inject_fifo.peak_level,
                rx_fifo_peak=card.rx.fifo.peak_level,
                registered_buffers=len(card.buflist),
            )
        )
    return out


def render_report(cluster: ApenetCluster) -> str:
    """Human-readable diagnostics tables for a finished run."""
    diags = cluster_report(cluster)
    node_rows = [
        (
            d.rank,
            f"{d.nios_utilization * 100:.0f}%",
            d.dominant_task,
            d.rx_packets,
            d.rx_dropped,
            d.tx_host_bytes + d.tx_gpu_bytes,
            d.tx_fifo_peak,
            d.rx_fifo_peak,
        )
        for d in diags
    ]
    nodes = render_table(
        ["rank", "nios busy", "dominant task", "rx pkts", "dropped",
         "tx bytes", "txfifo peak", "rxfifo peak"],
        node_rows, title="Per-node firmware/engine counters",
    )
    link_rows = [
        (name, f"{util * 100:.1f}%")
        for name, util in sorted(
            cluster.link_utilizations().items(), key=lambda kv: -kv[1]
        )
        if util > 0
    ][:12]
    links = render_table(
        ["link", "wire utilization"],
        link_rows or [("(no traffic)", "-")],
        title="Busiest torus links",
    )
    return nodes + "\n\n" + links
