"""Micro-benchmark primitives: the tests behind every figure.

These implement the paper's synthetic benchmarks (§V.B/C) against the
RDMA API:

* :func:`unidirectional_bandwidth` — "allocates a single receive buffer,
  then enters a tight loop, enqueuing as many RDMA PUT as possible as to
  keep the transmission queue constantly full"; reports steady-state
  delivered bandwidth (Figs 4–7, Table I).
* :func:`pingpong_latency` — latency "estimated as half the round-trip time
  in a ping-pong test" (Figs 8, 9).
* :func:`sender_gap` — per-message sender-side cost under a full queue: the
  LogP *host overhead* o (Fig 10).
* ``staged_*`` variants — the P2P=OFF mode: GPU data staged through host
  bounce buffers with cudaMemcpy, pipelined for bandwidth.

All functions build fresh clusters so results are independent.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..apenet.buflist import BufferKind
from ..apenet.config import DEFAULT_CONFIG, ApenetConfig
from ..cuda.memcpy import memcpy_async, memcpy_sync
from ..cuda.stream import CudaStream
from ..net.cluster import build_apenet_cluster
from ..net.topology import TorusShape
from ..sim import DeadlockError, Simulator
from ..units import KiB, MiB, us

__all__ = [
    "BandwidthResult",
    "LatencyResult",
    "make_cluster",
    "alloc_kind",
    "loopback_read_bandwidth",
    "bar1_read_bandwidth",
    "unidirectional_bandwidth",
    "bidirectional_bandwidth",
    "pingpong_latency",
    "sender_gap",
    "staged_unidirectional_bandwidth",
    "staged_pingpong_latency",
]


@dataclass
class BandwidthResult:
    """One point of a bandwidth sweep."""

    msg_size: int
    bandwidth: float  # bytes/ns == GB/s
    n_messages: int
    duration: float  # ns measured (steady-state window)

    @property
    def MBps(self) -> float:
        """Bandwidth in MB/s, as the paper's plots report."""
        return self.bandwidth * 1000.0


@dataclass
class LatencyResult:
    """One point of a latency sweep."""

    msg_size: int
    half_rtt: float  # ns
    iterations: int

    @property
    def usec(self) -> float:
        """Half round-trip in microseconds."""
        return self.half_rtt / 1000.0


def make_cluster(
    nx: int = 2,
    ny: int = 1,
    nz: int = 1,
    config: Optional[ApenetConfig] = None,
    gpu_spec=None,
    use_plx: bool = False,
    cuda_costs=None,
    faults=None,
    recovery=None,
    **overrides,
):
    """Fresh simulator + cluster, with optional config overrides.

    ``faults`` — a :class:`~repro.faults.FaultPlan` or shared
    :class:`~repro.faults.FaultInjector` (chaos benchmarks); None keeps
    the cluster fault-free and bit-identical to the default build.
    ``recovery`` — a :class:`~repro.recovery.RecoveryPolicy` or prebuilt
    :class:`~repro.recovery.RecoveryManager`; None keeps the cluster
    recovery-free and bit-identical to the default build.
    """
    sim = Simulator()
    cfg = (config or DEFAULT_CONFIG).with_(**overrides) if overrides else (config or DEFAULT_CONFIG)
    shape = TorusShape(nx, ny, nz)
    specs = [gpu_spec] * shape.size if gpu_spec is not None else None
    cluster = build_apenet_cluster(
        sim, shape, cfg, gpu_specs=specs, use_plx=use_plx, cuda_costs=cuda_costs,
        faults=faults, recovery=recovery,
    )
    return sim, cluster


def alloc_kind(node, kind: BufferKind, nbytes: int) -> int:
    """Allocate a host or GPU buffer on *node*; returns its UVA address."""
    if kind is BufferKind.GPU:
        return node.gpu.alloc(nbytes).addr
    return node.runtime.host_alloc(nbytes).addr


def default_message_count(msg_size: int) -> int:
    """Enough messages to reach steady state without wasting events."""
    target_bytes = 8 * MiB
    return max(8, min(96, math.ceil(target_bytes / msg_size)))


# ---------------------------------------------------------------------------
# Loop-back memory-read bandwidth (Table I, Fig 4)
# ---------------------------------------------------------------------------


def bar1_read_bandwidth(gpu_spec, nbytes: int = 1 << 20) -> BandwidthResult:
    """GPU memory read through the BAR1 aperture (Table I's BAR1 rows).

    "BAR1 results taken on an ideal platform, APEnet+ and GPU linked by a
    PLX PCIe switch" — the card issues plain windowed PCIe reads against a
    BAR1-mapped buffer (no mailbox protocol involved).
    """
    sim, cluster = make_cluster(1, 1, gpu_spec=gpu_spec, use_plx=True)
    node = cluster.nodes[0]
    buf = node.gpu.alloc(nbytes)
    mapping = node.gpu.bar1.map(buf)

    def proc():
        yield sim.timeout(node.gpu.spec.bar1_map_cost)  # mapping reconfig
        t0 = sim.now
        yield node.platform.fabric.read_pipelined(
            node.card, mapping.bar1_addr, nbytes, outstanding=8
        )
        return nbytes / (sim.now - t0)

    bw = sim.run_process(proc())
    return BandwidthResult(nbytes, bw, 1, nbytes / bw)


def loopback_read_bandwidth(
    src_kind: BufferKind,
    msg_size: int,
    n_messages: Optional[int] = None,
    config: Optional[ApenetConfig] = None,
    **overrides,
) -> BandwidthResult:
    """Single-board memory-read bandwidth with flushed TX FIFOs.

    "obtained by flushing the packets while traversing APEnet+ internal
    switch logic" — isolates the TX read path from RX processing.
    """
    overrides.setdefault("flush_tx", True)
    sim, cluster = make_cluster(1, 1, config=config, **overrides)
    node = cluster.nodes[0]
    n_messages = n_messages or default_message_count(msg_size)
    src = alloc_kind(node, src_kind, msg_size)
    times: list[float] = []

    def proc():
        if src_kind is BufferKind.GPU:
            yield from node.endpoint.register(src, msg_size)
        pending = []
        for _ in range(n_messages):
            done = yield from node.endpoint.put(
                0, src, 0xDEAD_0000, msg_size, src_kind=src_kind
            )
            done.callbacks.append(lambda _ev: times.append(sim.now))
            pending.append(done)
        for ev in pending:
            if not ev.processed:
                yield ev

    sim.run_process(proc())
    k = max(1, len(times) // 4)
    duration = times[-1] - times[k - 1]
    nbytes = (len(times) - k) * msg_size
    return BandwidthResult(msg_size, nbytes / duration if duration > 0 else 0.0, n_messages, duration)


# ---------------------------------------------------------------------------
# Uni-directional bandwidth (Figs 5, 6, 7; loop-back rows of Table I)
# ---------------------------------------------------------------------------


def unidirectional_bandwidth(
    src_kind: BufferKind,
    dst_kind: BufferKind,
    msg_size: int,
    n_messages: Optional[int] = None,
    loopback: bool = False,
    config: Optional[ApenetConfig] = None,
    faults=None,
    **overrides,
) -> BandwidthResult:
    """Two-node (or loop-back) PUT bandwidth, receiver-side steady state."""
    if loopback:
        sim, cluster = make_cluster(1, 1, config=config, faults=faults, **overrides)
        src_node = dst_node = cluster.nodes[0]
        dst_rank = 0
    else:
        sim, cluster = make_cluster(2, 1, config=config, faults=faults, **overrides)
        src_node, dst_node = cluster.nodes[0], cluster.nodes[1]
        dst_rank = 1
    n_messages = n_messages or default_message_count(msg_size)
    src = alloc_kind(src_node, src_kind, msg_size)
    dst = alloc_kind(dst_node, dst_kind, msg_size)
    completions: list[float] = []

    def receiver():
        yield from dst_node.endpoint.register(dst, msg_size)
        for _ in range(n_messages):
            yield from dst_node.endpoint.wait_event()
            completions.append(sim.now)

    def sender():
        yield sim.timeout(us(10))  # let registration land
        if src_kind is BufferKind.GPU:
            yield from src_node.endpoint.register(src, msg_size)
        for _ in range(n_messages):
            # Tight loop: the descriptor ring provides the backpressure.
            yield from src_node.endpoint.put(
                dst_rank, src, dst, msg_size, src_kind=src_kind
            )

    rx = sim.process(receiver())
    sim.process(sender())
    sim.run()
    if not rx.processed:
        raise DeadlockError("unidirectional receiver never finished")
    k = max(1, len(completions) // 4)
    duration = completions[-1] - completions[k - 1]
    nbytes = (len(completions) - k) * msg_size
    return BandwidthResult(msg_size, nbytes / duration if duration > 0 else 0.0, n_messages, duration)


def bidirectional_bandwidth(
    src_kind: BufferKind,
    dst_kind: BufferKind,
    msg_size: int,
    n_messages: Optional[int] = None,
    config: Optional[ApenetConfig] = None,
    **overrides,
) -> BandwidthResult:
    """Two-node bandwidth with BOTH nodes transmitting simultaneously.

    The paper stops short of reporting this ("the APEnet+ bi-directional
    bandwidth, which is not reported here, will reflect a similar
    behaviour", §IV) — because each card's Nios II then runs its RX task
    AND its TX bookkeeping at once, the aggregate is well below 2x the
    uni-directional figure.  Reported: aggregate delivered bytes/ns.
    """
    sim, cluster = make_cluster(2, 1, config=config, **overrides)
    n_messages = n_messages or default_message_count(msg_size)
    bufs = {}
    for node in cluster.nodes:
        bufs[node.rank] = (
            alloc_kind(node, src_kind, msg_size),
            alloc_kind(node, dst_kind, msg_size),
        )
    completions: list[float] = []

    def receiver(rank):
        node = cluster.nodes[rank]
        yield from node.endpoint.register(bufs[rank][1], msg_size)
        for _ in range(n_messages):
            yield from node.endpoint.wait_event()
            completions.append(sim.now)

    def sender(rank):
        node = cluster.nodes[rank]
        peer = 1 - rank
        yield sim.timeout(us(10))
        if src_kind is BufferKind.GPU:
            yield from node.endpoint.register(bufs[rank][0], msg_size)
        for _ in range(n_messages):
            yield from node.endpoint.put(
                peer, bufs[rank][0], bufs[peer][1], msg_size, src_kind=src_kind
            )

    procs = [sim.process(receiver(r)) for r in (0, 1)]
    for r in (0, 1):
        sim.process(sender(r))
    sim.run()
    if not all(p.processed for p in procs):
        raise DeadlockError("bidirectional receivers never finished")
    completions.sort()
    k = max(1, len(completions) // 4)
    duration = completions[-1] - completions[k - 1]
    nbytes = (len(completions) - k) * msg_size
    return BandwidthResult(
        msg_size, nbytes / duration if duration > 0 else 0.0, 2 * n_messages, duration
    )


# ---------------------------------------------------------------------------
# Ping-pong latency (Figs 8, 9)
# ---------------------------------------------------------------------------


def pingpong_latency(
    src_kind: BufferKind,
    dst_kind: BufferKind,
    msg_size: int,
    iterations: int = 12,
    skip: int = 2,
    config: Optional[ApenetConfig] = None,
    faults=None,
    **overrides,
) -> LatencyResult:
    """Half round-trip of a PUT ping-pong between two nodes.

    The pong travels dst_kind -> src_kind, mirroring the OSU latency test's
    symmetric buffer placement.
    """
    sim, cluster = make_cluster(2, 1, config=config, faults=faults, **overrides)
    a, b = cluster.nodes[0], cluster.nodes[1]
    buf_a = alloc_kind(a, src_kind, msg_size)
    buf_b = alloc_kind(b, dst_kind, msg_size)
    rtts: list[float] = []

    def node_b():
        yield from b.endpoint.register(buf_b, msg_size)
        for _ in range(iterations):
            yield from b.endpoint.wait_event()
            yield from b.endpoint.put(0, buf_b, buf_a, msg_size, src_kind=dst_kind)

    def node_a():
        yield from a.endpoint.register(buf_a, msg_size)
        yield sim.timeout(us(10))
        for _ in range(iterations):
            t0 = sim.now
            yield from a.endpoint.put(1, buf_a, buf_b, msg_size, src_kind=src_kind)
            yield from a.endpoint.wait_event()
            rtts.append(sim.now - t0)

    sim.process(node_b())
    pa = sim.process(node_a())
    sim.run()
    if not pa.processed:
        raise DeadlockError("ping-pong initiator never finished")
    kept = rtts[skip:]
    return LatencyResult(msg_size, sum(kept) / len(kept) / 2.0, len(kept))


# ---------------------------------------------------------------------------
# Sender gap — LogP host overhead (Fig 10)
# ---------------------------------------------------------------------------


def sender_gap(
    src_kind: BufferKind,
    dst_kind: BufferKind,
    msg_size: int,
    n_messages: int = 48,
    staged: bool = False,
    config: Optional[ApenetConfig] = None,
    **overrides,
) -> float:
    """Mean time between successive put() returns under a full queue (ns).

    "In the LogP model, this is the host overhead, i.e. the fraction of the
    whole message send-to-receive time which does not overlap with
    subsequent transmissions."  With ``staged=True`` the sender performs the
    synchronous D2H staging copy before each put (P2P=OFF mode).
    """
    sim, cluster = make_cluster(2, 1, config=config, **overrides)
    src_node, dst_node = cluster.nodes[0], cluster.nodes[1]
    send_kind = BufferKind.HOST if staged else src_kind
    src = alloc_kind(src_node, send_kind, msg_size)
    gpu_src = alloc_kind(src_node, BufferKind.GPU, msg_size) if staged else None
    dst = alloc_kind(dst_node, dst_kind, msg_size)
    returns: list[float] = []

    def receiver():
        yield from dst_node.endpoint.register(dst, msg_size)
        for _ in range(n_messages):
            yield from dst_node.endpoint.wait_event()

    t_start = {}

    def sender():
        yield sim.timeout(us(10))
        if send_kind is BufferKind.GPU:
            yield from src_node.endpoint.register(src, msg_size)
        t_start["t"] = sim.now
        for _ in range(n_messages):
            if staged:
                yield from memcpy_sync(src_node.runtime, src, gpu_src, msg_size)
            yield from src_node.endpoint.put(
                1, src, dst, msg_size, src_kind=send_kind
            )
            returns.append(sim.now)

    rx = sim.process(receiver())
    sim.process(sender())
    sim.run()
    if not rx.processed:
        raise DeadlockError("sender-gap receiver never finished")
    # "Run times of the bandwidth test": first submission to full delivery,
    # per message.
    span = sim.now - t_start["t"]
    return span / n_messages


# ---------------------------------------------------------------------------
# Staging (P2P=OFF) variants
# ---------------------------------------------------------------------------

_STAGE_CHUNK = 256 * KiB


def staged_unidirectional_bandwidth(
    msg_size: int,
    n_messages: Optional[int] = None,
    pipeline_chunk: int = _STAGE_CHUNK,
    config: Optional[ApenetConfig] = None,
    faults=None,
    **overrides,
) -> BandwidthResult:
    """G-G bandwidth through host bounce buffers (P2P=OFF).

    Messages up to *pipeline_chunk* use a single bounce buffer: the sender
    performs one synchronous D2H copy, PUTs, and must wait for the
    receiver's drain credit before reusing the buffer (the buffer would
    otherwise be overwritten in flight).  Larger messages are chunked
    through a double-buffered pipeline — the standard staging optimization,
    which is why staging approaches the full H-H rate for multi-megabyte
    messages (Fig 7) while being badly serialized for small ones.
    """
    sim, cluster = make_cluster(2, 1, config=config, faults=faults, **overrides)
    src_node, dst_node = cluster.nodes[0], cluster.nodes[1]
    n_messages = n_messages or default_message_count(msg_size)
    if msg_size <= pipeline_chunk:
        window, chunk = 1, msg_size
    else:
        window, chunk = 2, pipeline_chunk
    pieces = fragment_pieces(msg_size, chunk)
    gpu_src = alloc_kind(src_node, BufferKind.GPU, msg_size)
    host_src = alloc_kind(src_node, BufferKind.HOST, chunk * window)
    host_dst = alloc_kind(dst_node, BufferKind.HOST, chunk * window)
    gpu_dst = alloc_kind(dst_node, BufferKind.GPU, msg_size)
    credit_buf = alloc_kind(src_node, BufferKind.HOST, 64)
    completions: list[float] = []
    total_pieces = n_messages * len(pieces)

    def receiver():
        yield from dst_node.endpoint.register(host_dst, chunk * window)
        stream = CudaStream(sim, "rx-stage")
        done_pieces = 0
        for _ in range(total_pieces):
            rec = yield from dst_node.endpoint.wait_event()
            ev = yield from memcpy_async(
                dst_node.runtime, gpu_dst, rec.dst_addr, rec.nbytes, stream
            )
            yield ev
            done_pieces += 1
            if done_pieces % len(pieces) == 0:
                completions.append(sim.now)
            # Return the bounce-buffer credit.
            yield from dst_node.endpoint.put(
                0, host_dst, credit_buf, 32, src_kind=BufferKind.HOST, tag="credit"
            )

    def sender():
        yield from src_node.endpoint.register(credit_buf, 64)
        yield sim.timeout(us(10))
        in_flight = 0
        slot_i = 0
        for _ in range(n_messages):
            for off, csize in pieces:
                if in_flight >= window:
                    yield from src_node.endpoint.wait_event()  # credit back
                    in_flight -= 1
                slot = (slot_i % window) * chunk
                slot_i += 1
                yield from memcpy_sync(
                    src_node.runtime, host_src + slot, gpu_src + off, csize
                )
                yield from src_node.endpoint.put(
                    1, host_src + slot, host_dst + slot, csize, src_kind=BufferKind.HOST
                )
                in_flight += 1

    rx = sim.process(receiver())
    sim.process(sender())
    sim.run()
    if not rx.processed:
        raise DeadlockError("staged receiver never finished")
    k = max(1, len(completions) // 4)
    duration = completions[-1] - completions[k - 1]
    nbytes = (len(completions) - k) * msg_size
    return BandwidthResult(msg_size, nbytes / duration if duration > 0 else 0.0, n_messages, duration)


def fragment_pieces(nbytes: int, chunk: int) -> list[tuple[int, int]]:
    """(offset, size) pieces of at most *chunk* bytes covering a message."""
    out = []
    off = 0
    while off < nbytes:
        take = min(chunk, nbytes - off)
        out.append((off, take))
        off += take
    return out


def staged_pingpong_latency(
    msg_size: int,
    iterations: int = 12,
    skip: int = 2,
    config: Optional[ApenetConfig] = None,
    **overrides,
) -> LatencyResult:
    """G-G ping-pong with host staging (P2P=OFF): sync D2H before each send,
    async H2D on receive (the receive side overlaps with event polling)."""
    sim, cluster = make_cluster(2, 1, config=config, **overrides)
    a, b = cluster.nodes[0], cluster.nodes[1]
    ga, ha = alloc_kind(a, BufferKind.GPU, msg_size), alloc_kind(a, BufferKind.HOST, msg_size)
    gb, hb = alloc_kind(b, BufferKind.GPU, msg_size), alloc_kind(b, BufferKind.HOST, msg_size)
    rtts: list[float] = []

    def node_b():
        yield from b.endpoint.register(hb, msg_size)
        sb = CudaStream(sim, "b-stage")
        for _ in range(iterations):
            yield from b.endpoint.wait_event()
            # Drain the bounce buffer asynchronously (enqueue-only cost; the
            # pong uses its own buffer so it need not wait for the copy).
            yield from memcpy_async(b.runtime, gb, hb, msg_size, sb)
            # The pong's own staging copy is synchronous — the ~10 us
            # cudaMemcpy overhead the paper attributes the latency gap to.
            yield from memcpy_sync(b.runtime, hb, gb, msg_size)
            yield from b.endpoint.put(0, hb, ha, msg_size, src_kind=BufferKind.HOST)

    def node_a():
        yield from a.endpoint.register(ha, msg_size)
        yield sim.timeout(us(10))
        sa = CudaStream(sim, "a-stage")
        for _ in range(iterations):
            t0 = sim.now
            yield from memcpy_sync(a.runtime, ha, ga, msg_size)
            yield from a.endpoint.put(1, ha, hb, msg_size, src_kind=BufferKind.HOST)
            yield from a.endpoint.wait_event()
            yield from memcpy_async(a.runtime, ga, ha, msg_size, sa)
            rtts.append(sim.now - t0)

    sim.process(node_b())
    pa = sim.process(node_a())
    sim.run()
    if not pa.processed:
        raise DeadlockError("staged ping-pong initiator never finished")
    kept = rtts[skip:]
    return LatencyResult(msg_size, sum(kept) / len(kept) / 2.0, len(kept))
