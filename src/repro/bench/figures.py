"""Series containers + ASCII plots for figure-style experiments."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..units import fmt_size

__all__ = ["Series", "render_series_table", "ascii_plot", "series_to_csv"]


@dataclass
class Series:
    """One labelled curve: x (message sizes etc.) against y values."""

    label: str
    x: list[float] = field(default_factory=list)
    y: list[float] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        """Append one point."""
        self.x.append(x)
        self.y.append(y)

    def __len__(self) -> int:
        return len(self.x)


def render_series_table(
    series: Sequence[Series],
    x_label: str = "size",
    x_is_size: bool = True,
    title: Optional[str] = None,
) -> str:
    """All curves side by side, one row per x value."""
    from .tables import render_table

    xs = sorted({x for s in series for x in s.x})
    headers = [x_label] + [s.label for s in series]
    rows = []
    for x in xs:
        row = [fmt_size(x) if x_is_size else x]
        for s in series:
            try:
                row.append(s.y[s.x.index(x)])
            except ValueError:
                row.append(None)
        rows.append(row)
    return render_table(headers, rows, title)


def ascii_plot(
    series: Sequence[Series],
    width: int = 68,
    height: int = 18,
    logx: bool = True,
    title: Optional[str] = None,
) -> str:
    """A rough gnuplot-style dot plot (one marker letter per curve)."""
    pts = [(x, y) for s in series for x, y in zip(s.x, s.y) if len(s)]
    if not pts:
        return "(empty plot)"
    xs = [p[0] for p in pts]
    ys = [p[1] for p in pts]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = 0.0, max(ys) * 1.05 or 1.0

    def xpos(x: float) -> int:
        if x_hi == x_lo:
            return 0
        if logx and x_lo > 0:
            f = (math.log(x) - math.log(x_lo)) / (math.log(x_hi) - math.log(x_lo))
        else:
            f = (x - x_lo) / (x_hi - x_lo)
        return min(width - 1, int(f * (width - 1)))

    def ypos(y: float) -> int:
        f = (y - y_lo) / (y_hi - y_lo)
        return min(height - 1, int(f * (height - 1)))

    grid = [[" "] * width for _ in range(height)]
    markers = "ox+*#@%&"
    for si, s in enumerate(series):
        m = markers[si % len(markers)]
        for x, y in zip(s.x, s.y):
            grid[height - 1 - ypos(y)][xpos(x)] = m
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_hi:10.3g} +" + "-" * width)
    for row in grid:
        lines.append(" " * 11 + "|" + "".join(row))
    lines.append(f"{y_lo:10.3g} +" + "-" * width)
    lines.append(" " * 12 + f"{fmt_size(x_lo)}".ljust(width - 8) + f"{fmt_size(x_hi)}")
    legend = "   ".join(
        f"{markers[i % len(markers)]} = {s.label}" for i, s in enumerate(series)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)


def series_to_csv(series: Sequence[Series], x_label: str = "x") -> str:
    """CSV with one column per curve (for external plotting)."""
    xs = sorted({x for s in series for x in s.x})
    out = [",".join([x_label] + [s.label for s in series])]
    for x in xs:
        row = [str(x)]
        for s in series:
            try:
                row.append(repr(s.y[s.x.index(x)]))
            except ValueError:
                row.append("")
        out.append(",".join(row))
    return "\n".join(out)
