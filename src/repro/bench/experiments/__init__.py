"""Experiment modules — importing this package registers all of them."""

from . import (  # noqa: F401
    ablations,
    bfs,
    extensions,
    faults,
    fig3,
    fig45,
    fig67,
    fig8910,
    hsg,
    recovery,
    scale,
    selftest,
    table1,
)
