"""Experiment modules — importing this package registers all of them."""

from . import ablations, bfs, extensions, fig3, fig45, fig67, fig8910, hsg, table1  # noqa: F401
