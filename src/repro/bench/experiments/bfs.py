"""Table IV & Fig 12 — distributed BFS strong scaling and time breakdown."""

from __future__ import annotations

import os

from ...apps.bfs import BfsConfig, run_bfs
from ..harness import ExperimentResult, register
from ..tables import render_table

# Table IV: NP -> (APEnet TEPS, IB TEPS), |V| = 2^20.
PAPER_TABLE4 = {
    1: (6.7e7, 6.2e7),
    2: (9.8e7, 7.8e7),
    4: (1.3e8, 8.2e7),
    8: (1.7e8, 2.0e8),
}
# Fig 12 headline: at NP=4 "the communication time is 50% lower in the
# APEnet+ case" -> IB/APEnet comm-time ratio ~ 2.
PAPER_FIG12_COMM_RATIO = 2.0


def _scale(quick: bool) -> int:
    env = os.environ.get("REPRO_BFS_SCALE")
    if env:
        return int(env)
    return 16 if quick else 20


@register("table4", "BFS TEPS strong scaling, APEnet vs InfiniBand", "Table IV")
def run_table4(quick: bool = True) -> ExperimentResult:
    """Traversed edges per second for both clusters.

    Quick mode runs scale 16 (the paper's |V|=2^20 is scale 20; set
    REPRO_BFS_SCALE=20 or quick=False for the full graph — several minutes
    of wall time).
    """
    scale = _scale(quick)
    rows = []
    comparisons = []
    at_paper_scale = scale == 20
    for np_ in (1, 2, 4, 8):
        ape = run_bfs(BfsConfig(scale=scale, np_=np_, transport="apenet", validate=False))
        ib = run_bfs(BfsConfig(scale=scale, np_=np_, transport="ib", validate=False))
        p_ape, p_ib = PAPER_TABLE4[np_]
        rows.append(
            (np_, f"{ape.teps:.2e}", f"{p_ape:.1e}", f"{ib.teps:.2e}", f"{p_ib:.1e}")
        )
        if at_paper_scale:
            comparisons.append((f"APEnet TEPS NP={np_}", ape.teps, p_ape, "TEPS"))
            comparisons.append((f"IB TEPS NP={np_}", ib.teps, p_ib, "TEPS"))
        else:
            comparisons.append((f"APEnet TEPS NP={np_} (scale {scale})", ape.teps, None, "TEPS"))
            comparisons.append((f"IB TEPS NP={np_} (scale {scale})", ib.teps, None, "TEPS"))
    rendered = render_table(
        ["NP", "APEnet+ TEPS", "(paper)", "OMPI/IB TEPS", "(paper)"],
        rows,
        title=f"Table IV — BFS strong scaling, scale={scale} "
        f"({'paper parameters' if at_paper_scale else 'reduced graph; paper column is scale 20'})",
    )
    return ExperimentResult("table4", "BFS TEPS strong scaling", rendered, comparisons, rows)


@register("fig12", "BFS execution-time breakdown at NP=4", "Fig 12")
def run_fig12(quick: bool = True) -> ExperimentResult:
    """Compute/communication split on one of four tasks, both fabrics."""
    scale = _scale(quick)
    ape = run_bfs(BfsConfig(scale=scale, np_=4, transport="apenet", validate=False))
    ib = run_bfs(BfsConfig(scale=scale, np_=4, transport="ib", validate=False))
    task = 1  # "one out of four tasks"
    rows = []
    for label, res in (("APEnet+", ape), ("OMPI/IB", ib)):
        b = res.breakdown[task]
        rows.append(
            (label, round(b.t_compute_ns / 1e6, 2), round(b.t_comm_ns / 1e6, 2),
             f"{b.comm_fraction * 100:.0f}%")
        )
    ratio = ib.breakdown[task].t_comm_ns / ape.breakdown[task].t_comm_ns
    rendered = render_table(
        ["Fabric", "compute (ms)", "comm (ms)", "comm share"],
        rows,
        title=f"Fig 12 — BFS time breakdown, task {task} of 4 (scale {scale})\n"
        f"IB/APEnet comm-time ratio: {ratio:.2f} (paper: ~{PAPER_FIG12_COMM_RATIO})",
    )
    return ExperimentResult(
        "fig12", "BFS time breakdown", rendered,
        comparisons=[("IB/APEnet comm ratio", ratio, PAPER_FIG12_COMM_RATIO, "x")],
        data={"apenet": ape.breakdown, "ib": ib.breakdown},
    )
