"""Extension experiments: measurements the paper mentions but omits."""

from __future__ import annotations


from ...apenet.buflist import BufferKind
from ...apps.hsg import HsgConfig, run_hsg
from ...cuda.config import CudaCosts
from ...units import kib, mib, us
from ..harness import ExperimentResult, register
from ..microbench import (
    bidirectional_bandwidth,
    pingpong_latency,
    staged_pingpong_latency,
    unidirectional_bandwidth,
)
from ..tables import render_table

H, G = BufferKind.HOST, BufferKind.GPU


@register("ext_bidir", "Bi-directional bandwidth (the measurement §IV omits)", "§IV prediction")
def run_bidir(quick: bool = True) -> ExperimentResult:
    """"the APEnet+ bi-directional bandwidth ... will reflect a similar
    behaviour [to the loop-back plot]" — test the prediction."""
    rows = []
    comparisons = []
    for label, s, d in (("H-H", H, H), ("G-G", G, G)):
        uni = unidirectional_bandwidth(s, d, mib(1), n_messages=5).MBps
        bi = bidirectional_bandwidth(s, d, mib(1), n_messages=5).MBps
        loop = unidirectional_bandwidth(s, d, mib(1), n_messages=5, loopback=True).MBps
        rows.append((label, round(uni), round(bi), round(bi / 2), round(loop)))
        comparisons.append(
            (f"{label} bidir/2 vs loop-back", bi / 2, loop, "MB/s")
        )
    rendered = render_table(
        ["combo", "uni MB/s", "bidir aggregate", "bidir per-direction", "loop-back"],
        rows,
        title="Extension — bi-directional bandwidth\n"
        "(the paper predicts per-direction ~= loop-back: each card then runs\n"
        "its TX and RX tasks simultaneously, exactly as in the loop-back test)",
    )
    return ExperimentResult("ext_bidir", "Bi-directional bandwidth", rendered, comparisons, rows)


@register("ablation_memcpy", "Staging penalty vs cudaMemcpy overhead", "DESIGN §6.3")
def run_memcpy(quick: bool = True) -> ExperimentResult:
    """The P2P-vs-staging latency gap IS the sync-memcpy cost: sweep the
    overhead through the CUDA runtimes and watch staging track it 1:1
    while P2P does not move."""
    rows = []
    p2p = pingpong_latency(G, G, 32).usec  # no memcpy on this path
    for ov_us in (2.0, 5.0, 10.0, 20.0):
        costs = CudaCosts(sync_memcpy_overhead=us(ov_us))
        staged = staged_pingpong_latency(32, cuda_costs=costs).usec
        rows.append((f"{ov_us:.0f} us", round(p2p, 2), round(staged, 2)))
    rendered = render_table(
        ["sync memcpy overhead", "P2P latency us", "staging latency us"],
        rows,
        title="Ablation — the staging penalty IS the memcpy overhead\n"
        "(P2P is memcpy-free and constant; staging tracks the overhead 1:1)",
    )
    return ExperimentResult("ablation_memcpy", "memcpy-overhead ablation", rendered, [], rows)


@register("ablation_cache", "HSG speedup with and without the cache-residency model", "DESIGN §6.5")
def run_cache(quick: bool = True) -> ExperimentResult:
    """Fig 11's super-linear speedup needs the volume-dependent rate."""
    sweeps = 1
    rows = []
    base = run_hsg(HsgConfig(L=256, np_=1, sweeps=sweeps))
    for np_ in (2, 4, 8):
        r = run_hsg(HsgConfig(L=256, np_=np_, sweeps=sweeps))
        measured = base.ttot_ps / r.ttot_ps
        # Flat-rate model: every rank computes at the NP=1 per-spin rate,
        # so the bulk shrinks exactly 1/NP and speedup can never pass NP.
        flat_bulk = 921.0 / np_
        flat_speedup = 921.0 / max(flat_bulk, r.tbnd_tnet_ps)
        rows.append((np_, round(measured, 2), round(min(flat_speedup, np_), 2)))
    rendered = render_table(
        ["NP", "speedup (cache model)", "speedup (flat rate)"],
        rows,
        title="Ablation — cache-residency compute rate\n"
        "(without it, speedup can never exceed NP; with it, smaller slabs\n"
        "run faster per spin and Fig 11's super-linearity appears)",
    )
    return ExperimentResult("ablation_cache", "cache-model ablation", rendered, [], rows)


@register("ext_hsg2d", "Multi-dimensional HSG decomposition (§V.D outlook)", "§V.D prediction")
def run_hsg2d(quick: bool = True) -> ExperimentResult:
    """"This advantage could increase for a multi-dimensional domain-
    decomposition, where the size of the exchanged messages shrinks in the
    strong scaling" — implement it and check."""
    from ...apps.hsg.distributed2d import Hsg2DConfig, run_hsg_2d

    sweeps = 2
    rows = []
    comparisons = []
    for np_ in (4, 8):
        r1 = run_hsg(HsgConfig(L=256, np_=np_, sweeps=sweeps))
        r2 = run_hsg_2d(Hsg2DConfig(L=256, np_=np_, sweeps=sweeps))
        rows.append(
            (np_, round(r1.tnet_ps, 1), round(r2.tnet_ps, 1),
             round(r1.ttot_ps), round(r2.ttot_ps))
        )
        if np_ == 8:
            comparisons.append(
                ("2D/1D Tnet ratio at NP=8", r2.tnet_ps / r1.tnet_ps, None, "x")
            )
    rendered = render_table(
        ["NP", "1-D Tnet ps", "2-D Tnet ps", "1-D Ttot", "2-D Ttot"],
        rows,
        title="Extension — 1-D slabs vs 2-D pencils at L=256\n"
        "(the 2-D faces shrink with NP: the advantage the paper predicts\n"
        "appears at NP=8 and grows with deeper strong scaling)",
    )
    return ExperimentResult("ext_hsg2d", "2-D HSG decomposition", rendered, comparisons, rows)


@register("ext_get", "RDMA GET latency (the read half of the RDMA model)", "§III.B model")
def run_get(quick: bool = True) -> ExperimentResult:
    """GET = request + firmware PUT back: ~ one PUT round trip."""
    from ..microbench import make_cluster

    rows = []
    for label, remote_gpu in (("host source", False), ("GPU source", True)):
        sim, cluster = make_cluster(2, 1)
        a, b = cluster.nodes
        if remote_gpu:
            remote = b.gpu.alloc(kib(8))
        else:
            remote = b.runtime.host_alloc(kib(8))
        local = a.runtime.host_alloc(kib(8))
        out = {}

        def proc():
            yield from b.endpoint.register(remote.addr, kib(8))
            yield from a.endpoint.register(local.addr, kib(8))
            t0 = sim.now
            yield from a.endpoint.get(1, remote.addr, local.addr, 32)
            out["small"] = sim.now - t0
            t0 = sim.now
            yield from a.endpoint.get(1, remote.addr, local.addr, kib(8))
            out["big"] = sim.now - t0

        sim.run_process(proc())
        pp = pingpong_latency(H, G if remote_gpu else H, 32)
        rows.append(
            (label, round(out["small"] / 1000, 2), round(out["big"] / 1000, 2),
             round(2 * pp.usec, 2))
        )
    rendered = render_table(
        ["remote buffer", "GET 32B us", "GET 8KiB us", "2x one-way PUT us"],
        rows,
        title="Extension — RDMA GET latency\n"
        "(a GET costs one round trip: the request one way, the data PUT back)",
    )
    return ExperimentResult("ext_get", "RDMA GET latency", rendered, [], rows)
