"""Figs 8, 9 & 10 — latency and host overhead.

Fig 8: APEnet+ half-RTT for the four buffer combinations (32 B – 4 KB).
Fig 9: G-G latency by method — P2P, staging, MVAPICH2/IB (32 B – 64 KB).
Fig 10: LogP host overhead from the bandwidth-test run times.
"""

from __future__ import annotations

from ...apenet.buflist import BufferKind
from ...mpi.osu import osu_latency
from ...units import kib
from ..figures import Series, ascii_plot, render_series_table
from ..harness import ExperimentResult, register
from ..microbench import pingpong_latency, sender_gap, staged_pingpong_latency

H, G = BufferKind.HOST, BufferKind.GPU

PAPER_FIG8 = {("H-H", 32): 6.3, ("G-G", 32): 8.2}
PAPER_FIG9 = {
    ("P2P=ON", 32): 8.2,
    ("P2P=OFF", 32): 16.8,
    ("IB MVAPICH2", 32): 17.4,
}
PAPER_FIG10 = {("H-H", 128): 5.0, ("G-G P2P", 128): 8.0, ("G-G staged", 128): 17.0}


def _sizes(quick: bool, hi: int) -> list[int]:
    if quick:
        return [s for s in (32, 256, 2048, kib(16), kib(64)) if s <= hi]
    sizes = []
    s = 32
    while s <= hi:
        sizes.append(s)
        s *= 2
    return sizes


@register("fig8", "APEnet+ latency, 4 buffer combinations", "Fig 8")
def run_fig8(quick: bool = True) -> ExperimentResult:
    """Half round-trip for H-H / H-G / G-H / G-G."""
    combos = [("H-H", H, H), ("H-G", H, G), ("G-H", G, H), ("G-G", G, G)]
    series = []
    for label, a, b in combos:
        s = Series(label)
        for size in _sizes(quick, kib(4)):
            s.add(size, pingpong_latency(a, b, size).usec)
        series.append(s)
    comparisons = [
        (f"{s.label} @32B", s.y[0], PAPER_FIG8.get((s.label, 32)), "us")
        for s in series
        if (s.label, 32) in PAPER_FIG8
    ]
    rendered = (
        render_series_table(series, title="Fig 8 — APEnet+ half-RTT latency (us)")
        + "\n\n" + ascii_plot(series, title="Fig 8")
    )
    return ExperimentResult("fig8", "APEnet+ latency", rendered, comparisons, series)


@register("fig9", "G-G latency: P2P vs staging vs InfiniBand", "Fig 9")
def run_fig9(quick: bool = True) -> ExperimentResult:
    """The 50%-less-latency headline comparison."""
    p2p = Series("P2P=ON")
    off = Series("P2P=OFF")
    ib = Series("IB MVAPICH2")
    for size in _sizes(quick, kib(64)):
        p2p.add(size, pingpong_latency(G, G, size).usec)
        off.add(size, staged_pingpong_latency(size).usec)
        ib.add(size, osu_latency(size, gpu_buffers=True) / 1000.0)
    series = [p2p, off, ib]
    comparisons = [
        (f"{s.label} @32B", s.y[0], PAPER_FIG9[(s.label, 32)], "us") for s in series
    ]
    comparisons.append(
        ("P2P/staging latency ratio @32B", p2p.y[0] / off.y[0], 0.49, "x")
    )
    rendered = (
        render_series_table(series, title="Fig 9 — G-G latency by method (us)")
        + "\n\n" + ascii_plot(series, title="Fig 9")
    )
    return ExperimentResult("fig9", "G-G latency by method", rendered, comparisons, series)


@register("fig10", "Host overhead (LogP o) via bandwidth-test run times", "Fig 10")
def run_fig10(quick: bool = True) -> ExperimentResult:
    """Per-message sender cost under a full queue."""
    n = 24 if quick else 48
    hh = Series("H-H")
    gg = Series("G-G P2P")
    st = Series("G-G staged")
    for size in _sizes(quick, kib(4)):
        hh.add(size, sender_gap(H, H, size, n_messages=n) / 1000.0)
        gg.add(size, sender_gap(G, G, size, n_messages=n) / 1000.0)
        st.add(size, sender_gap(G, G, size, n_messages=n, staged=True) / 1000.0)
    series = [hh, gg, st]
    comparisons = []
    for s in series:
        if (s.label, 128) in PAPER_FIG10 and 128 in s.x:
            comparisons.append(
                (f"{s.label} @128B", s.y[s.x.index(128)], PAPER_FIG10[(s.label, 128)], "us")
            )
        elif (s.label, 128) in PAPER_FIG10:
            comparisons.append((f"{s.label} @32B", s.y[0], PAPER_FIG10[(s.label, 128)], "us"))
    rendered = (
        render_series_table(series, title="Fig 10 — host overhead (us/message)")
        + "\n\n" + ascii_plot(series, title="Fig 10")
    )
    return ExperimentResult("fig10", "Host overhead", rendered, comparisons, series)
