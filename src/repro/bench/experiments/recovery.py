"""Recovery experiment: kill a torus link mid-run and measure the cure.

The `faults` experiment shows the link-level ACK/NAK layer absorbing bit
errors; this one exercises the layer above it (:mod:`repro.recovery`,
after the systemic-fault-awareness line of arXiv:1311.1741): what happens
when a link does not merely corrupt frames but *dies*.

Four scenario groups, all seeded and deterministic:

* **Killed-link goodput** — a stream of reliable PUTs over H-H, G-G P2P
  and G-G host-staged paths; one torus link is killed mid-stream.  The
  table reports goodput before the kill, the recovery gap (the one long
  inter-delivery interval spanning detection + replay), goodput after
  recovery (detoured via the reverse ring channel), time-to-detect and
  the replay/reroute counts.
* **HSG across a link kill** — the distributed Heisenberg Spin Glass run
  (validate mode) with a link killed mid-exchange must produce *exactly*
  the physics observables of the fault-free run: same energy, same spins.
* **Partition** — both channels towards the destination killed: the
  layer must report a structured ``unreachable`` verdict, not hang or
  crash.
* **NIC degradation** — Nios-II stalls and PCIe TLP replays past the
  policy thresholds flip the endpoint into host-staging mode; the stream
  completes degraded and the mode switch is recorded.
"""

from __future__ import annotations

import numpy as np

from ...apenet.buflist import BufferKind
from ...apps.hsg.distributed import HsgConfig, run_hsg
from ...cuda.memcpy import memcpy_sync
from ...faults import FaultPlan
from ...recovery import RecoveryPolicy
from ...units import Gbps, kib, us
from ..harness import ExperimentError, ExperimentResult, register
from ..microbench import alloc_kind, make_cluster
from ..tables import render_table

H, G = BufferKind.HOST, BufferKind.GPU

#: Master seed (the arXiv id of the APEnet+ fault-awareness follow-up).
SEED = 20131741

#: The victim: rank 0's +X channel towards rank 1.  On the 2-node ring the
#: detour is the distinct -X channel of the same cable pair.
KILL_SITE = "n0.ape->n1.ape[0,+1]"
#: Killing BOTH X channels out of rank 0 partitions the 2-node torus.
PARTITION_SITES = (KILL_SITE, "n0.ape->n1.ape[0,-1]")

#: Same link-limited regime as the `faults` sweep: at the full 28 Gbps the
#: wire has slack that hides the cost of the recovery window.
OVERRIDES = {"link_bandwidth": Gbps(7)}

MSG = kib(64)
#: Mid-stream kill time for the goodput scenarios (sender starts at 10 us).
KILL_AT = us(700)
#: Mid-exchange kill time for the L=32 NP=2 HSG run.
HSG_KILL_AT = us(150)


def _kill_plan(kill_at: float, sites=(KILL_SITE,)) -> FaultPlan:
    """A plan whose only activity is the scheduled link kill(s): a tight
    retry budget and short ACK timeout so detection is fast."""
    return FaultPlan(
        seed=SEED,
        max_retries=2,
        ack_timeout=us(2),
        link_kills=tuple((site, kill_at) for site in sites),
    )


def _killed_stream(path: str, n_msgs: int, kill_at: float = KILL_AT) -> dict:
    """Reliable-PUT stream with a mid-run link kill; per-delivery timing."""
    sim, cluster = make_cluster(
        2, 1, faults=_kill_plan(kill_at), recovery=RecoveryPolicy(), **OVERRIDES
    )
    src_node, dst_node = cluster.nodes[0], cluster.nodes[1]
    staged = path == "G-G staged"
    src_kind = H if path == "H-H" else G
    put_kind = H if staged else src_kind
    dst_kind = H if path == "H-H" or staged else G
    src = alloc_kind(src_node, src_kind, MSG)
    bounce = alloc_kind(src_node, H, MSG) if staged else None
    dst = alloc_kind(dst_node, dst_kind, MSG)
    deliveries: list[float] = []
    outcomes = []

    def receiver():
        yield from dst_node.endpoint.register(dst, MSG)
        for _ in range(n_msgs):
            yield from dst_node.endpoint.wait_event()
            deliveries.append(sim.now)

    def sender():
        yield sim.timeout(us(10))
        if put_kind is G:
            yield from src_node.endpoint.register(src, MSG)
        for i in range(n_msgs):
            addr = src
            if staged:
                yield from memcpy_sync(src_node.runtime, bounce, src, MSG)
                addr = bounce
            out = yield from src_node.endpoint.reliable_put(
                1, addr, dst, MSG, src_kind=put_kind, tag=i
            )
            outcomes.append(out)

    rx = sim.process(receiver())
    sim.process(sender())
    sim.run()
    st = cluster.recovery.stats
    if not rx.processed:
        raise ExperimentError(f"{path}: receiver never finished after the kill")
    if not all(o.delivered for o in outcomes):
        raise ExperimentError(f"{path}: a reliable PUT failed on a survivable kill")
    if len(st.link_deaths) != 1:
        raise ExperimentError(f"{path}: expected exactly 1 link death, got {st.link_deaths}")
    pre = [t for t in deliveries if t < kill_at]
    post = [t for t in deliveries if t >= kill_at]
    if len(pre) < 2 or len(post) < 2:
        raise ExperimentError(
            f"{path}: kill at {kill_at} ns did not land mid-stream "
            f"({len(pre)} pre / {len(post)} post deliveries)"
        )
    return {
        "pre_MBps": MSG * (len(pre) - 1) / (pre[-1] - pre[0]) * 1000.0,
        "gap_us": (post[0] - pre[-1]) / 1000.0,
        "post_MBps": MSG * (len(post) - 1) / (post[-1] - post[0]) * 1000.0,
        "detect_us": st.link_deaths[0]["elapsed_ns"] / 1000.0,
        "replays": st.replays,
        "rerouted": st.packets_rerouted,
        "stats": st,
    }


def _hsg_across_kill() -> dict:
    """HSG validate run with a mid-exchange link kill vs the clean run."""
    clean = run_hsg(HsgConfig(L=32, np_=2, sweeps=2, validate=True))
    killed = run_hsg(
        HsgConfig(
            L=32, np_=2, sweeps=2, validate=True,
            faults=_kill_plan(HSG_KILL_AT),
            recovery=RecoveryPolicy(),
        )
    )
    st = killed.recovery_stats
    if st is None or not st.link_deaths:
        raise ExperimentError(
            f"HSG kill at {HSG_KILL_AT} ns never fired (run ends at "
            f"{killed.total_time_ns} ns)"
        )
    if killed.energy_after != clean.energy_after:
        raise ExperimentError(
            "HSG physics diverged across the link kill: "
            f"{killed.energy_after} != {clean.energy_after}"
        )
    if not np.array_equal(killed.spins, clean.spins):
        raise ExperimentError("HSG spin lattice diverged across the link kill")
    return {"clean": clean, "killed": killed, "stats": st}


def _partition() -> dict:
    """Both channels dead: puts must fail fast with a structured verdict."""
    n_msgs, msg = 4, kib(8)
    sim, cluster = make_cluster(
        2, 1, faults=_kill_plan(us(50), PARTITION_SITES),
        recovery=RecoveryPolicy(), **OVERRIDES
    )
    src_node, dst_node = cluster.nodes[0], cluster.nodes[1]
    src = alloc_kind(src_node, H, msg)
    dst = alloc_kind(dst_node, H, msg)
    outcomes = []

    def receiver():
        # Registers, then waits; after the partition it can never finish.
        yield from dst_node.endpoint.register(dst, msg)
        for _ in range(n_msgs):
            yield from dst_node.endpoint.wait_event()

    def sender():
        yield sim.timeout(us(10))
        for i in range(n_msgs):
            out = yield from src_node.endpoint.reliable_put(
                1, src, dst, msg, src_kind=H, tag=i
            )
            outcomes.append(out)

    sim.process(receiver())
    tx = sim.process(sender())
    sim.run()
    if not tx.processed:
        raise ExperimentError("partitioned sender hung instead of failing fast")
    verdicts = [o.verdict for o in outcomes]
    if "unreachable" not in verdicts:
        raise ExperimentError(f"partition produced no unreachable verdict: {verdicts}")
    st = cluster.recovery.stats
    return {"verdicts": verdicts, "stats": st}


def _degradation(n_msgs: int) -> dict:
    """Sick NIC (Nios stalls + TLP replays) -> transparent host staging."""
    plan = FaultPlan(seed=SEED, tlp_ber=2e-7, nios_stall_rate=0.2)
    policy = RecoveryPolicy(degrade_nios_stalls=4, degrade_tlp_replays=8)
    sim, cluster = make_cluster(2, 1, faults=plan, recovery=policy, **OVERRIDES)
    src_node, dst_node = cluster.nodes[0], cluster.nodes[1]
    src = alloc_kind(src_node, G, MSG)
    dst = alloc_kind(dst_node, G, MSG)
    completions: list[float] = []

    def receiver():
        yield from dst_node.endpoint.register(dst, MSG)
        for _ in range(n_msgs):
            yield from dst_node.endpoint.wait_event()
            completions.append(sim.now)

    def sender():
        yield sim.timeout(us(10))
        yield from src_node.endpoint.register(src, MSG)
        for _ in range(n_msgs):
            yield from src_node.endpoint.put(1, src, dst, MSG, src_kind=G)

    rx = sim.process(receiver())
    sim.process(sender())
    sim.run()
    st = cluster.recovery.stats
    if not rx.processed:
        raise ExperimentError("degraded-mode receiver never finished")
    if not st.degradations:
        raise ExperimentError(
            "NIC sickness never crossed the degradation threshold "
            f"(stalls={cluster.faults.stats.nios_stalls}, "
            f"replays={cluster.faults.stats.tlp_replays})"
        )
    if st.degraded_puts == 0 or st.degraded_puts == st.gpu_puts:
        raise ExperimentError(
            f"degradation must flip mid-stream: {st.degraded_puts}/{st.gpu_puts}"
        )
    k = max(1, len(completions) // 4)
    duration = completions[-1] - completions[k - 1]
    mbps = (len(completions) - k) * MSG / duration * 1000.0 if duration > 0 else 0.0
    return {"MBps": mbps, "stats": st, "faults": cluster.faults.stats}


@register("recovery", "Recovery: link kill, detour, replay, degradation", "beyond the paper")
def run_recovery(quick: bool = True) -> ExperimentResult:
    """Kill links mid-run; measure detection, re-routing and replay."""
    n_msgs = 16 if quick else 24

    paths = ("H-H", "G-G P2P", "G-G staged")
    rows = []
    comparisons = []
    streams = {}
    for path in paths:
        r = _killed_stream(path, n_msgs)
        streams[path] = r
        rows.append([
            path, r["pre_MBps"], r["gap_us"], r["post_MBps"],
            r["detect_us"], r["replays"], r["rerouted"],
        ])
        comparisons.append((f"{path} goodput pre-kill", r["pre_MBps"], None, "MB/s"))
        comparisons.append((f"{path} recovery gap", r["gap_us"], None, "us"))
        comparisons.append((f"{path} goodput post-recovery", r["post_MBps"], None, "MB/s"))
        comparisons.append((f"{path} time-to-detect", r["detect_us"], None, "us"))
        comparisons.append((f"{path} replays", float(r["replays"]), None, ""))
        comparisons.append((f"{path} packets rerouted", float(r["rerouted"]), None, ""))

    hsg = _hsg_across_kill()
    hsg_st = hsg["stats"]
    comparisons.append(
        ("HSG energy across kill", float(hsg["killed"].energy_after), None, "")
    )
    comparisons.append(
        ("HSG link deaths", float(len(hsg_st.link_deaths)), None, "")
    )
    comparisons.append(("HSG replays", float(hsg_st.replays), None, ""))

    part = _partition()
    comparisons.append(
        ("partition unreachable verdicts",
         float(part["verdicts"].count("unreachable")), None, "")
    )
    comparisons.append(
        ("partition link deaths", float(len(part["stats"].link_deaths)), None, "")
    )

    deg = _degradation(40 if quick else 64)
    deg_st = deg["stats"]
    comparisons.append(("degraded goodput", deg["MBps"], None, "MB/s"))
    comparisons.append(("degraded puts", float(deg_st.degraded_puts), None, ""))
    comparisons.append(("degraded fraction", deg_st.degraded_fraction(), None, ""))
    comparisons.append(("mode switches", float(len(deg_st.degradations)), None, ""))

    rendered = render_table(
        ["Path", "pre MB/s", "gap us", "post MB/s", "detect us",
         "replays", "rerouted"],
        rows,
        title=f"Killed link mid-stream ({n_msgs} x 64 KiB reliable PUTs, "
        f"kill at {KILL_AT / 1000:.0f} us)",
    ) + (
        f"\n\nHSG across kill: energy {hsg['killed'].energy_after:.6f} == clean "
        f"{hsg['clean'].energy_after:.6f}, spins identical "
        f"({len(hsg_st.link_deaths)} death, {hsg_st.replays} replays, "
        f"{hsg_st.packets_rerouted} pkts rerouted)"
        + "\nPartition (both X channels dead): verdicts "
        + ", ".join(part["verdicts"])
        + f" after {len(part['stats'].link_deaths)} detected deaths"
        + f"\nNIC degradation: {deg_st.degraded_puts}/{deg_st.gpu_puts} GPU puts "
        f"staged via host (fraction {deg_st.degraded_fraction():.4f}, "
        f"{len(deg_st.degradations)} mode switch) -> {deg['MBps']:.0f} MB/s"
    )
    return ExperimentResult(
        "recovery",
        "Link kill, fault-aware re-routing, idempotent replay, degradation",
        rendered,
        comparisons,
        data={
            "paths": list(paths),
            "rows": rows,
            "partition_verdicts": part["verdicts"],
            "hsg_energy": float(hsg["killed"].energy_after),
        },
    )
