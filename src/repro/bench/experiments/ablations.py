"""Ablation experiments for the design choices DESIGN.md calls out.

These go beyond the paper's artefacts: each isolates one mechanism the
reproduction depends on, plus the paper's own future-work items
(hardware-accelerated RX, BAR1-based transmission, larger tori).
"""

from __future__ import annotations

from dataclasses import replace

from ...apenet.buflist import BufferKind
from ...apenet.config import GpuTxVersion
from ...apps.hsg import HsgConfig, run_hsg
from ...gpu.specs import FERMI_2050, KEPLER_K20
from ...net.topology import TorusShape
from ...units import KiB, Gbps, mib, us
from ..harness import ExperimentResult, register
from ..microbench import (
    loopback_read_bandwidth,
    pingpong_latency,
    unidirectional_bandwidth,
)
from ..tables import render_table

H, G = BufferKind.HOST, BufferKind.GPU


@register("ablation_window", "Prefetch window vs GPU head latency", "DESIGN §6.1")
def run_window(quick: bool = True) -> ExperimentResult:
    """Fig 4's knee must follow W/(head + W/rate): sweep both knobs."""
    rows = []
    for head_us in (0.6, 1.8, 3.6):
        spec = replace(FERMI_2050, p2p_read_head_latency=us(head_us))
        for w in (4, 8, 32):
            r = loopback_read_bandwidth(
                G, mib(1), n_messages=4, gpu_spec=spec,
                gpu_tx_version=GpuTxVersion.V2, prefetch_window=w * KiB,
            )
            predicted = (w * KiB) / (us(head_us) + (w * KiB) / 1.536) * 1000
            rows.append((f"{head_us}us", f"{w}K", round(r.MBps), round(predicted)))
    rendered = render_table(
        ["head latency", "window", "measured MB/s", "W/(head+W/rate)"],
        rows, title="Ablation — prefetch window vs head latency",
    )
    return ExperimentResult("ablation_window", "Prefetch window ablation", rendered, [], rows)


@register("ablation_nios", "Nios II as the bottleneck (RX HW acceleration)", "DESIGN §6.2 / §V.B future work")
def run_nios(quick: bool = True) -> ExperimentResult:
    """The paper's ending: what do hardware RX blocks buy?"""
    rows = []
    comparisons = []
    for label, kw in (
        ("firmware RX (paper)", {}),
        ("HW-accelerated RX (future work)", {"rx_hw_accel": True}),
    ):
        hh = unidirectional_bandwidth(H, H, mib(1), n_messages=4, loopback=True, **kw)
        gg = unidirectional_bandwidth(G, G, mib(1), n_messages=4, loopback=True, **kw)
        lat = pingpong_latency(H, H, 32, **kw)
        rows.append((label, round(hh.MBps), round(gg.MBps), round(lat.usec, 2)))
        comparisons.append((f"H-H loopback, {label}", hh.MBps, None, "MB/s"))
    rendered = render_table(
        ["RX path", "H-H loop-back MB/s", "G-G loop-back MB/s", "H-H latency us"],
        rows, title="Ablation — RX hardware acceleration",
    )
    return ExperimentResult("ablation_nios", "RX acceleration ablation", rendered, comparisons, rows)


@register("ablation_bar1", "BAR1-based transmission vs the mailbox protocol", "paper conclusions")
def run_bar1(quick: bool = True) -> ExperimentResult:
    """"On Kepler, the BAR1 technique seems more promising"."""
    rows = []
    comparisons = []
    for spec, gen in ((FERMI_2050, "Fermi"), (KEPLER_K20, "Kepler")):
        p2p = loopback_read_bandwidth(
            G, mib(1), n_messages=4, gpu_spec=spec, use_plx=True
        ).MBps
        bar1 = loopback_read_bandwidth(
            G, mib(1), n_messages=4, gpu_spec=spec, use_plx=True, gpu_tx_method="bar1"
        ).MBps
        rows.append((gen, round(p2p), round(bar1)))
        comparisons.append((f"{gen} BAR1-TX", bar1, 150.0 if gen == "Fermi" else 1600.0, "MB/s"))
    rendered = render_table(
        ["GPU", "mailbox P2P MB/s", "BAR1-TX MB/s"],
        rows,
        title="Ablation — TX method by GPU generation\n"
        "(Fermi: BAR1 hopeless; Kepler: BAR1 matches P2P with simpler HW)",
    )
    return ExperimentResult("ablation_bar1", "BAR1 TX ablation", rendered, comparisons, rows)


@register("ablation_torus", "Torus link speed under HSG halo traffic", "DESIGN §6.4")
def run_torus(quick: bool = True) -> ExperimentResult:
    """Sweep the link bitstream: when do wires matter vs the Nios II?"""
    rows = []
    for gbps in (10, 20, 28, 56):
        r = run_hsg(
            HsgConfig(L=256, np_=4, sweeps=2, link_bandwidth=Gbps(gbps))
        )
        rows.append((f"{gbps} Gbps", round(r.ttot_ps), round(r.tnet_ps)))
    rendered = render_table(
        ["link speed", "Ttot ps/spin", "Tnet ps/spin"],
        rows,
        title="Ablation — HSG (L=256, NP=4) vs torus link speed\n"
        "(beyond ~20 Gbps the RX firmware, not the wire, sets Tnet)",
    )
    return ExperimentResult("ablation_torus", "Torus link-speed ablation", rendered, [], rows)


@register("ablation_scaleout", "Beyond 8 nodes: the promised 16/24-node systems", "§VI")
def run_scaleout(quick: bool = True) -> ExperimentResult:
    """"we will be able to scale up to 16/24 nodes" — simulate them now."""
    from ...net.cluster import build_apenet_cluster
    from ...sim import Simulator

    rows = []
    shapes = [(2, 1, 1), (4, 2, 1), (4, 4, 1)] if quick else [
        (2, 1, 1), (4, 2, 1), (4, 4, 1), (4, 3, 2),
    ]
    for dims in shapes:
        shape = TorusShape(*dims)
        # All-pairs mean hop count + the bisection-limited halo estimate.
        n = shape.size
        hops = [
            shape.distance(shape.coord(a), shape.coord(b))
            for a in range(n) for b in range(n) if a != b
        ]
        mean_hops = sum(hops) / len(hops)
        # Measured ping-pong between the two most distant ranks.
        sim = Simulator()
        cluster = build_apenet_cluster(sim, shape)
        far = max(range(n), key=lambda r: shape.distance(shape.coord(0), shape.coord(r)))
        a, b = cluster.nodes[0], cluster.nodes[far]
        ha = a.runtime.host_alloc(64)
        hb = b.runtime.host_alloc(64)
        lat = {}

        def node_b():
            yield from b.endpoint.register(hb.addr, 64)
            yield from b.endpoint.wait_event()
            yield from b.endpoint.put(0, hb.addr, ha.addr, 32, src_kind=BufferKind.HOST)

        def node_a():
            yield from a.endpoint.register(ha.addr, 64)
            yield sim.timeout(us(10))
            t0 = sim.now
            yield from a.endpoint.put(far, ha.addr, hb.addr, 32, src_kind=BufferKind.HOST)
            yield from a.endpoint.wait_event()
            lat["half_rtt"] = (sim.now - t0) / 2

        sim.process(node_b())
        sim.process(node_a())
        sim.run()
        rows.append(
            (f"{dims[0]}x{dims[1]}x{dims[2]}", n, round(mean_hops, 2),
             round(lat["half_rtt"] / 1000, 2))
        )
    rendered = render_table(
        ["torus", "nodes", "mean hops", "max-distance latency us"],
        rows, title="Ablation — scaling the torus to 16/24 nodes",
    )
    return ExperimentResult("ablation_scaleout", "Torus scale-out", rendered, [], rows)
