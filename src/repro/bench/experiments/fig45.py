"""Figs 4 & 5 — GPU-read bandwidth vs message size, per TX engine.

Fig 4: flushed TX (no RX load) — the pure prefetch-pipeline behaviour.
Fig 5: full loop-back — the Nios II shares between GPU_P2P_TX and RX, so
v3's hardware flow control pulls ahead.
"""

from __future__ import annotations

from ...apenet.buflist import BufferKind
from ...apenet.config import GpuTxVersion
from ...units import KiB, kib, mib
from ..figures import Series, ascii_plot, render_series_table
from ..harness import ExperimentResult, register
from ..microbench import loopback_read_bandwidth, unidirectional_bandwidth

ENGINES = [
    ("v1", GpuTxVersion.V1, 4 * KiB),
    ("v2 w=4K", GpuTxVersion.V2, 4 * KiB),
    ("v2 w=8K", GpuTxVersion.V2, 8 * KiB),
    ("v2 w=16K", GpuTxVersion.V2, 16 * KiB),
    ("v2 w=32K", GpuTxVersion.V2, 32 * KiB),
    ("v3 w=64K", GpuTxVersion.V3, 64 * KiB),
    ("v3 w=128K", GpuTxVersion.V3, 128 * KiB),
]

# Plateau reads from the paper's plots (MB/s at 4 MB messages).
PAPER_PLATEAUS_FIG4 = {
    "v1": 600.0,
    "v2 w=4K": 920.0,
    "v2 w=8K": 1150.0,
    "v2 w=16K": 1310.0,
    "v2 w=32K": 1450.0,
    "v3 w=64K": 1500.0,
    "v3 w=128K": 1500.0,
}
PAPER_PLATEAUS_FIG5 = {
    "v1": 550.0,
    "v2 w=32K": 950.0,
    "v3 w=128K": 1100.0,
}


def _sizes(quick: bool) -> list[int]:
    if quick:
        return [kib(4), kib(16), kib(64), kib(256), mib(1)]
    return [kib(4) << i for i in range(11)]  # 4K .. 4M


def _sweep(quick: bool, loopback: bool) -> list[Series]:
    out = []
    engines = ENGINES if not quick else [ENGINES[0], ENGINES[2], ENGINES[4], ENGINES[6]]
    for label, version, window in engines:
        s = Series(label)
        for size in _sizes(quick):
            n = 6 if size >= mib(1) else None
            if loopback:
                r = unidirectional_bandwidth(
                    BufferKind.GPU, BufferKind.GPU, size, n_messages=n, loopback=True,
                    gpu_tx_version=version, prefetch_window=window,
                )
            else:
                r = loopback_read_bandwidth(
                    BufferKind.GPU, size, n_messages=n,
                    gpu_tx_version=version, prefetch_window=window,
                )
            s.add(size, r.MBps)
        out.append(s)
    return out


def _result(exp_id, title, series, paper_plateaus) -> ExperimentResult:
    comparisons = []
    for s in series:
        if s.label in paper_plateaus:
            comparisons.append(
                (f"plateau {s.label}", s.y[-1], paper_plateaus[s.label], "MB/s")
            )
    rendered = (
        render_series_table(series, title=title)
        + "\n\n"
        + ascii_plot(series, title=f"{title} (MB/s vs message size)")
    )
    return ExperimentResult(exp_id, title, rendered, comparisons, data=series)


@register("fig4", "GPU read bandwidth vs prefetch window (flushed)", "Fig 4")
def run_fig4(quick: bool = True) -> ExperimentResult:
    """Reproduce Fig 4's family of curves."""
    series = _sweep(quick, loopback=False)
    return _result("fig4", "Fig 4 — GPU read bandwidth (TX flushed)", series, PAPER_PLATEAUS_FIG4)


@register("fig5", "G-G loop-back bandwidth vs prefetch window", "Fig 5")
def run_fig5(quick: bool = True) -> ExperimentResult:
    """Reproduce Fig 5: same sweep under full loop-back (shared Nios II)."""
    series = _sweep(quick, loopback=True)
    return _result("fig5", "Fig 5 — G-G loop-back bandwidth", series, PAPER_PLATEAUS_FIG5)
