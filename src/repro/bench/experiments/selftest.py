"""DES kernel self-benchmark: measures the simulator's own hot path.

Not a paper artefact — this experiment benchmarks the machinery every
other experiment runs on.  It times one identical workload twice:

* **fast path** — :meth:`Simulator.run`, the inlined drain loop with
  pre-bound queue locals and the dedicated Timeout scheduling path;
* **generic path** — the same workload driven one event at a time through
  :meth:`Simulator.step`, the un-inlined reference implementation (the
  seed kernel's per-event machinery).

Since the kernel became multi-backend it also benchmarks every event-queue
backend (:data:`repro.sim.sched.BACKENDS`) on a procs × steps grid of the
mixed workload plus a timer-heavy retransmission scenario (the dominant
traffic class since the fault/recovery layers landed), reporting events/sec
and speedup-vs-``heap`` rows.  The raw numbers land in the result's
``data["kernel_bench"]`` block, which the runner can export as
``BENCH_kernel.json`` for the CI perf-history gate.

It also quantifies the optional back-to-back TLP batching of
:meth:`PCIeFabric.write` as a simulated-event reduction factor, and
smoke-tests the :mod:`repro.obs` observability layer: a tiny G-G RDMA PUT
plus an MPI exchange run once untraced and once under a local
:class:`~repro.obs.TraceSession`, proving in-sweep that traced runs are
bit-identical and that spans arrive from every stack layer.

Wall-clock numbers (and the speedups) appear only in the rendered output
and the ``data`` block — ``comparisons`` carries exclusively deterministic
quantities (event counts, cross-backend parity checks, reduction factors)
so that cached, serial and parallel sweeps stay bit-identical.
"""

from __future__ import annotations

import gc
import time

from ...apenet import BufferKind
from ...cuda.memcpy import memcpy_sync
from ...ib.cluster import build_ib_cluster
from ...mpi.comm import MpiWorld
from ...obs import TraceSession
from ...pcie.device import HostMemory
from ...pcie.fabric import PCIeFabric
from ...sim import BACKENDS, Channel, Simulator
from ...units import GBps, kib, ns, us
from ..harness import ExperimentError, ExperimentResult, register
from ..microbench import make_cluster
from ..tables import render_table

__all__ = [
    "kernel_workload",
    "timer_workload",
    "time_kernel",
    "time_workload",
    "backend_bench",
    "batching_events",
    "observability_smoke",
]


def kernel_workload(sim: Simulator, n_procs: int, n_steps: int) -> None:
    """A representative mix of timeouts, event waits, and channel traffic.

    Deterministic: delays derive only from loop indices.  Roughly matches
    the real experiments' event profile — mostly Timeouts (firmware costs,
    link serialization) with a sprinkling of triggered Events (completion
    notifications) and Channel transfers.
    """
    ch = Channel(sim, bandwidth=GBps(4.0), latency=ns(120.0), name="selftest-link")
    rendezvous = [sim.event() for _ in range(n_procs // 4 or 1)]

    def worker(i):
        for k in range(n_steps):
            yield sim.timeout((i % 13) + 0.5 * (k % 7))
            # Fire-and-forget notification nobody joins on (posted-write
            # completions, flushed packets): pure kernel dispatch.
            sim.timeout(0.25 * (k % 5))
            if k % 16 == 0:
                yield ch.transfer(512 + 64 * (i % 8))
        ev = rendezvous[i % len(rendezvous)]
        if not ev.triggered:
            ev.succeed(i)

    def waiter(j):
        yield rendezvous[j]

    for j in range(len(rendezvous)):
        sim.process(waiter(j))
    for i in range(n_procs):
        sim.process(worker(i))


def timer_workload(sim: Simulator, n_agents: int, n_rounds: int) -> None:
    """Dense short-horizon timer traffic — the retransmission profile.

    Models what the ACK/NAK and recovery layers do to the event queue:
    every agent repeatedly arms a short replay timer (yield-and-drop) and
    posts a fire-and-forget ack-window timer nobody joins on.  Nearly all
    events are pooled Timeouts landing a few ns out, which is the calendar
    queue's best case and the binary heap's densest sift traffic.
    """
    base = ns(1.0)

    def retry_agent(i):
        for k in range(n_rounds):
            # Replay timer with a deterministic pseudo-backoff spread.
            yield sim.pooled_timeout(base + 0.125 * ((i + k) % 32))
            # Ack-window timer, fire-and-forget.
            sim.pooled_timeout(0.5 * base + 0.0625 * ((i * 3 + k) % 16))

    for i in range(n_agents):
        sim.process(retry_agent(i))


def time_kernel(
    n_procs: int,
    n_steps: int,
    generic: bool,
    repeats: int = 3,
    backend: str = "heap",
):
    """Best-of-*repeats* wall time (s) and event count for the workload."""
    best = float("inf")
    events = 0
    for _ in range(repeats):
        sim = Simulator(backend=backend)
        kernel_workload(sim, n_procs, n_steps)
        gc_was_on = gc.isenabled()
        gc.collect()
        gc.disable()
        try:
            t0 = time.perf_counter()
            if generic:
                while sim.pending_count():
                    sim.step()
            else:
                sim.run()
            best = min(best, time.perf_counter() - t0)
        finally:
            if gc_was_on:
                gc.enable()
        events = sim.events_processed
    return best, events


def time_workload(build, backend: str, repeats: int = 3):
    """Best-of-*repeats* (wall s, events) for ``build(sim)`` on *backend*.

    Cyclic GC is collected then paused around the timed drain so the
    number measures the kernel, not whatever garbage the surrounding
    sweep happens to have accumulated (inside a full ``repro.bench``
    sweep, ambient GC pauses otherwise halve the reported throughput).
    """
    best = float("inf")
    events = 0
    for _ in range(repeats):
        sim = Simulator(backend=backend)
        build(sim)
        gc_was_on = gc.isenabled()
        gc.collect()
        gc.disable()
        try:
            t0 = time.perf_counter()
            sim.run()
            best = min(best, time.perf_counter() - t0)
        finally:
            if gc_was_on:
                gc.enable()
        events = sim.events_processed
    return best, events


def backend_bench(n_procs: int, n_steps: int, repeats: int = 3) -> dict:
    """Benchmark every kernel backend on the grid + timer scenario.

    Returns a dict keyed by backend name; each entry carries per-scenario
    ``{wall_s, events, events_per_s}`` plus aggregate events/sec and
    speedup vs the ``heap`` reference.  Event counts must agree across
    backends (bit-identity) — the caller turns that into a comparison row.

    Repeats are interleaved across backends (round-robin, best-of kept)
    so slow drift in machine speed — thermal throttling, noisy CI
    neighbours — biases every backend equally instead of whichever ran
    last.
    """
    grid = [
        (max(1, n_procs // 2), max(1, n_steps // 2)),
        (n_procs, n_steps),
    ]
    scenarios: list[tuple[str, object]] = [
        (
            f"mixed {p}x{s}",
            (lambda sim, p=p, s=s: kernel_workload(sim, p, s)),
        )
        for p, s in grid
    ]
    scenarios.append(
        (
            f"timers {n_procs}x{n_steps}",
            (lambda sim: timer_workload(sim, n_procs, n_steps)),
        )
    )
    best: dict = {b: {} for b in BACKENDS}
    for _ in range(repeats):
        for backend in BACKENDS:
            for label, build in scenarios:
                wall_s, events = time_workload(build, backend, repeats=1)
                prev = best[backend].get(label)
                if prev is None or wall_s < prev[0]:
                    best[backend][label] = (wall_s, events)
    out: dict = {}
    for backend in BACKENDS:
        per = {}
        total_s = 0.0
        total_events = 0
        for label, _ in scenarios:
            wall_s, events = best[backend][label]
            per[label] = {
                "wall_s": wall_s,
                "events": events,
                "events_per_s": events / wall_s if wall_s > 0 else float("inf"),
            }
            total_s += wall_s
            total_events += events
        out[backend] = {
            "scenarios": per,
            "events": total_events,
            "wall_s": total_s,
            "events_per_s": total_events / total_s if total_s > 0 else float("inf"),
        }
    heap_eps = out["heap"]["events_per_s"]
    for backend in BACKENDS:
        eps = out[backend]["events_per_s"]
        out[backend]["speedup_vs_heap"] = eps / heap_eps if heap_eps > 0 else 1.0
    return out


def batching_events(batch: int, nbytes: int = 1 << 19):
    """(final time, events) for one bulk posted write at *batch*."""
    sim = Simulator()
    fabric = PCIeFabric(sim, write_batch=batch)
    root = fabric.add_root()
    src = HostMemory(sim, base=0x0, size=1 << 20, name="selftest-src")
    dst = HostMemory(sim, base=1 << 30, size=1 << 20, name="selftest-dst")
    fabric.add_endpoint(src, root)
    fabric.add_endpoint(dst, root)
    done = fabric.write(src, 1 << 30, nbytes)
    sim.run()
    if not done.processed or done.value != nbytes:
        raise ExperimentError(
            f"bulk write incomplete: processed={done.processed}, "
            f"value={done.value!r}, expected {nbytes}"
        )
    return sim.now, sim.events_processed


def _obs_smoke_workload():
    """One tiny pass through every stack layer; returns its fingerprint.

    A 16 KiB G-G RDMA PUT over a 2-node torus (exercises cuda/gpu/pcie/
    apenet/sim) followed by a 4 KiB host MPI exchange over InfiniBand
    (exercises mpi).  The returned tuple of (final time, event count) pairs
    is the workload's exact behavioural fingerprint: any divergence between
    a traced and an untraced run shows up as an inequality.
    """
    nbytes = kib(16)

    # -- G-G P2P put over the torus ------------------------------------
    sim, cluster = make_cluster(2, 1, 1)
    a, b = cluster.nodes
    src, dst = a.gpu.alloc(nbytes), b.gpu.alloc(nbytes)
    host_src = a.runtime.host_alloc(nbytes)

    def sender():
        # Stage real bytes into the GPU first so the DMA engines and the
        # CUDA memcpy cost model appear in the trace too.
        yield from memcpy_sync(a.runtime, src.addr, host_src.addr, nbytes)
        yield from a.endpoint.register(src.addr, nbytes)
        done = yield from a.endpoint.put(
            1, src.addr, dst.addr, nbytes, src_kind=BufferKind.GPU
        )
        yield done

    def receiver():
        yield from b.endpoint.register(dst.addr, nbytes)
        yield from b.endpoint.wait_event()

    sim.process(receiver(), name="smoke.rx")
    sim.process(sender(), name="smoke.tx")
    sim.run()
    p2p_fp = (sim.now, sim.events_processed)

    # -- host MPI exchange over IB -------------------------------------
    ib_nbytes = kib(4)
    sim2 = Simulator()
    ib = build_ib_cluster(sim2, 2)
    world = MpiWorld(ib)
    ep0, ep1 = world.endpoint(0), world.endpoint(1)
    buf0 = ib.nodes[0].runtime.host_alloc(ib_nbytes)
    buf1 = ib.nodes[1].runtime.host_alloc(ib_nbytes)

    def mpi_sender():
        yield sim2.timeout(us(1.0))
        yield from ep0.send(1, buf0.addr, ib_nbytes)

    def mpi_receiver():
        yield from ep1.recv(0, buf1.addr, ib_nbytes)

    sim2.process(mpi_receiver(), name="smoke.mpi.rx")
    sim2.process(mpi_sender(), name="smoke.mpi.tx")
    sim2.run()
    return p2p_fp, (sim2.now, sim2.events_processed)


def observability_smoke():
    """Run the smoke workload untraced and traced; report the evidence.

    Returns a dict with the traced/untraced fingerprints, the identity
    verdict, the distinct components that produced spans, and the span
    count.  Runs under a *local* session so the result is the same whether
    or not an outer ``--trace`` session is active (nested sessions fan
    out; see :mod:`repro.obs.session`).
    """
    baseline = _obs_smoke_workload()
    session = TraceSession(label="selftest-smoke")
    with session.activate():
        traced = _obs_smoke_workload()
    return {
        "baseline": baseline,
        "traced": traced,
        "identical": baseline == traced,
        "components": session.components(),
        "spans": session.span_count(),
    }


@register("selftest", "DES kernel self-benchmark (backends, fast vs generic path)", "—")
def run_selftest(quick: bool) -> ExperimentResult:
    """Time the DES kernel's inlined run loop against the generic
    ``step()`` reference, benchmark every event-queue backend on a mixed
    grid plus a timer-heavy retransmission scenario, and quantify the
    event-count reduction of batched TLP write scheduling."""
    n_procs, n_steps = (240, 120) if quick else (600, 400)

    fast_s, fast_events = time_kernel(n_procs, n_steps, generic=False)
    generic_s, generic_events = time_kernel(n_procs, n_steps, generic=True)
    speedup = generic_s / fast_s if fast_s > 0 else float("inf")
    events_per_s = fast_events / fast_s if fast_s > 0 else float("inf")

    bench = backend_bench(n_procs, n_steps)
    backends_agree = (
        len({bench[b]["events"] for b in BACKENDS}) == 1
    )

    t_plain, ev_plain = batching_events(batch=1)
    t_batched, ev_batched = batching_events(batch=8)
    reduction = ev_plain / ev_batched
    time_shift = 100.0 * (t_batched - t_plain) / t_plain

    smoke = observability_smoke()
    expected_components = {"apenet", "cuda", "gpu", "mpi", "pcie", "sim"}
    smoke_cover = len(expected_components & set(smoke["components"]))

    rows = [
        ["fast path (run loop)", f"{fast_s * 1e3:.1f} ms", f"{fast_events}"],
        ["generic path (step loop)", f"{generic_s * 1e3:.1f} ms", f"{generic_events}"],
        ["speedup", f"{speedup:.2f}x", "—"],
        ["throughput (fast)", f"{events_per_s / 1e6:.2f} Mev/s", "—"],
    ]
    for backend in BACKENDS:
        b = bench[backend]
        rows.append(
            [
                f"backend {backend}",
                f"{b['events_per_s'] / 1e6:.2f} Mev/s "
                f"({b['speedup_vs_heap']:.2f}x vs heap)",
                f"{b['events']}",
            ]
        )
        for label, s in b["scenarios"].items():
            rows.append(
                [
                    f"  {backend}: {label}",
                    f"{s['wall_s'] * 1e3:.1f} ms "
                    f"({s['events_per_s'] / 1e6:.2f} Mev/s)",
                    f"{s['events']}",
                ]
            )
    rows += [
        ["backends bit-parity", "yes" if backends_agree else "NO", "—"],
        ["write batch=1", f"t={t_plain:.0f} ns", f"{ev_plain}"],
        ["write batch=8", f"t={t_batched:.0f} ns", f"{ev_batched}"],
        ["batching event reduction", f"{reduction:.2f}x", "—"],
        [
            "obs smoke: traced == untraced",
            "yes" if smoke["identical"] else "NO",
            f"{smoke['traced'][0][1] + smoke['traced'][1][1]}",
        ],
        [
            "obs smoke: traced components",
            ",".join(smoke["components"]),
            f"{smoke['spans']} spans",
        ],
    ]
    rendered = render_table(
        ["measurement", "value", "events"],
        rows,
        title=f"DES kernel selftest ({n_procs} procs x {n_steps} steps)",
    )

    # Deterministic rows only (see module docstring).
    comparisons = [
        ("kernel events, fast path", float(fast_events), None, "events"),
        (
            "fast/generic event parity",
            1.0 if fast_events == generic_events else 0.0,
            1.0,
            "bool",
        ),
        (
            "backend event parity (heap == wheel)",
            1.0 if backends_agree else 0.0,
            1.0,
            "bool",
        ),
        ("TLP batching event reduction (batch=8)", reduction, None, "x"),
        ("TLP batching completion-time shift", time_shift, None, "%"),
        (
            "obs traced == untraced identity",
            1.0 if smoke["identical"] else 0.0,
            1.0,
            "bool",
        ),
        (
            "obs distinct traced components",
            float(smoke_cover),
            float(len(expected_components)),
            "components",
        ),
    ]
    return ExperimentResult(
        experiment_id="selftest",
        title="DES kernel self-benchmark (backends, fast vs generic path)",
        rendered=rendered,
        comparisons=comparisons,
        data={
            "fast_s": fast_s,
            "generic_s": generic_s,
            "speedup": speedup,
            "events_per_s": events_per_s,
            "kernel_bench": bench,
            "batch_events": {"1": ev_plain, "8": ev_batched},
            "obs_smoke": smoke,
        },
    )
