"""Beyond the paper — TEPS-vs-nodes on large tori via the flow model.

The paper's BFS stops at 12 nodes (Table IV / Fig 12); ROADMAP item 1
asks what the interconnect does at 8^3 .. 16^3.  This experiment runs
the :mod:`repro.scale` sharded BFS over a ladder of tori with recovery
enabled (one dead +X link at the origin, traffic detoured exactly as the
recovery router would) and reports the TEPS curve, plus an in-sweep
**parity probe**: a golden bulk-transfer scenario executed through both
the exact per-packet stack and the batched flow engine, with the
byte/route aggregates required to match bit-exactly and completion
times within :data:`PARITY_TIME_RTOL`.

Everything in ``comparisons`` is deterministic (model time, not wall
time), so the golden suite pins every row exactly and ``--jobs 1`` vs
``--jobs 4`` sweeps are bit-identical.  The raw rows land in
``data["scale_bench"]``, which the runner exports as ``BENCH_scale.json``
for the ``scripts/check_bench.py --scale`` gate.

The kernel backend is inherited from the PR-6 switch (``--backend`` /
``REPRO_BACKEND``) — calibration probes and parity references are DES
runs, so CI points them at ``wheel`` to put the timer load on the
calendar queue; backends are bit-identical, so the numbers don't change.
"""

from __future__ import annotations

from dataclasses import asdict

from ...scale import BulkTransfer, FlowNetwork, compare_aggregates, run_exact
from ...scale.bfs import run_scale_bfs
from ...units import us
from ..harness import ExperimentResult, register
from ..tables import render_table

__all__ = ["run_scale", "parity_probe", "CONFIGS_QUICK", "CONFIGS_FULL"]

#: Relative completion-time tolerance for the (staggered, uncontended)
#: parity scenario.  Measured worst case is 1.9e-4; see EXPERIMENTS.md
#: for the full tolerance envelope by traffic class.
PARITY_TIME_RTOL = 2e-3

#: Recovery-enabled fault: one dead +X link at the origin, present in
#: every BFS config and in the parity scenario.
DEAD_LINKS = ((0, 0, 1),)

#: (dims, graph scale) ladder.  Quick stays within the tier-1 CI budget
#: (the 12^3 row is the acceptance config); full extends to 16^3 at
#: graph500-class sizes for the nightly sweep.
CONFIGS_QUICK = (
    ((4, 4, 4), 12),
    ((6, 6, 6), 14),
    ((8, 8, 8), 16),
    ((12, 12, 12), 16),
)
CONFIGS_FULL = (
    ((4, 4, 4), 12),
    ((6, 6, 6), 14),
    ((8, 8, 8), 16),
    ((12, 12, 12), 18),
    ((16, 16, 16), 20),
)

#: Configs small enough that their rows are pinned by golden tests
#: (tests/bench/test_golden_scale.py) and by the committed baseline.
GOLDEN_DIMS = ((4, 4, 4), (6, 6, 6))


def parity_probe(backend=None) -> dict:
    """Exact-vs-flow parity on the golden 3^3 scenario; returns a report.

    Six staggered transfers on a 3x3x3 torus with the standard dead
    link: multi-fragment H-H hauls, a partial last fragment, a small
    single-fragment PUT, and a route that must detour around the dead
    hop.  Staggering keeps flows non-overlapping, which is the traffic
    class where the flow model is tightest (documented tolerance
    :data:`PARITY_TIME_RTOL`); the lossless aggregates (bytes, per-link
    wire bytes and packet counts, delivered set, hop routes) must agree
    bit-exactly.
    """
    from ...apenet.buflist import BufferKind

    dims = (3, 3, 3)
    transfers = [
        BulkTransfer(0, 13, 8192, 0.0),  # detours around the dead +X hop
        BulkTransfer(1, 26, 5000, us(150.0)),  # partial last fragment
        BulkTransfer(
            2, 10, 2048, us(300.0),
            src_kind=BufferKind.GPU, dst_kind=BufferKind.GPU,
        ),
        BulkTransfer(14, 3, 65536, us(450.0)),  # 16-fragment haul
        BulkTransfer(5, 22, 300, us(700.0)),  # sub-fragment payload
        BulkTransfer(9, 4, 12000, us(850.0)),
    ]
    exact = run_exact(dims, transfers, dead_links=DEAD_LINKS, backend=backend)
    net = FlowNetwork(dims, dead_links=DEAD_LINKS, backend=backend)
    flow = net.run_transfers(transfers)
    report = compare_aggregates(exact, flow)
    return {
        "dims": list(dims),
        "n_transfers": len(transfers),
        "lossless_ok": report.lossless_ok(),
        "within_tolerance": report.within(PARITY_TIME_RTOL),
        "completion_max_rel": report.completion_max_rel,
        "busy_max_rel": report.busy_max_rel,
        "makespan_rel": report.makespan_rel,
        "time_rtol": PARITY_TIME_RTOL,
    }


@register("scale", "TEPS-vs-nodes beyond the paper (batched flow mode)", "ROADMAP 1")
def run_scale(quick: bool = True) -> ExperimentResult:
    """TEPS curve on 4^3 .. 16^3 tori with recovery enabled, flow mode.

    Each row is a sharded distributed BFS (R-MAT graph, one rank per
    torus node, 4-way frontier sharding) whose communication cost comes
    from the probe-calibrated flow model; the in-sweep parity probe
    certifies that model against the exact per-packet reference.
    """
    configs = CONFIGS_QUICK if quick else CONFIGS_FULL
    parity = parity_probe()

    rows = []
    bench_rows = []
    comparisons = [
        (
            "parity: lossless aggregates bit-exact",
            1.0 if parity["lossless_ok"] else 0.0,
            1.0,
            "bool",
        ),
        (
            "parity: completions within tolerance",
            1.0 if parity["within_tolerance"] else 0.0,
            1.0,
            "bool",
        ),
        ("parity: completion max rel dev", parity["completion_max_rel"], None, "rel"),
    ]
    for dims, graph_scale in configs:
        res = run_scale_bfs(
            dims, graph_scale, seed=1, dead_links=DEAD_LINKS, shards=4
        )
        label = f"{dims[0]}^3"
        rows.append(
            (
                label,
                res.n_ranks,
                graph_scale,
                res.n_levels,
                res.reached,
                f"{res.teps:.4e}",
                f"{res.total_time_ns / 1e6:.3f}",
                f"{res.comm_bytes / 1e6:.2f}",
            )
        )
        comparisons.append((f"TEPS {label} (scale {graph_scale})", res.teps, None, "TEPS"))
        comparisons.append(
            (f"levels checksum {label}", float(res.levels_checksum), None, "sum")
        )
        bench_rows.append(asdict(res))

    rendered = render_table(
        ["torus", "ranks", "scale", "levels", "reached", "TEPS", "t (ms)", "comm MB"],
        rows,
        title=(
            "TEPS vs nodes, flow mode, recovery enabled "
            f"(1 dead link, detoured) — parity probe: "
            f"lossless={'ok' if parity['lossless_ok'] else 'FAIL'}, "
            f"max completion dev {parity['completion_max_rel']:.2e} "
            f"(tol {PARITY_TIME_RTOL:.0e})"
        ),
    )
    return ExperimentResult(
        "scale",
        "TEPS-vs-nodes beyond the paper (batched flow mode)",
        rendered,
        comparisons,
        data={
            "scale_bench": {
                "rows": bench_rows,
                "parity": parity,
                "dead_links": [list(d) for d in DEAD_LINKS],
                "golden_dims": [list(d) for d in GOLDEN_DIMS],
            }
        },
    )
