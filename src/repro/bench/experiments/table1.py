"""Table I — APEnet+ low-level bandwidths (single-board loop-back)."""

from __future__ import annotations

from ...apenet.buflist import BufferKind
from ...gpu.specs import FERMI_2050, KEPLER_K20
from ...units import mib
from ..harness import ExperimentResult, register
from ..microbench import bar1_read_bandwidth, loopback_read_bandwidth, unidirectional_bandwidth
from ..tables import fmt_ratio, render_table

# (row label, paper MB/s)
PAPER = {
    "Host mem read": 2400.0,
    "GPU mem read (Fermi/P2P)": 1500.0,
    "GPU mem read (Fermi/BAR1)": 150.0,
    "GPU mem read (Kepler/P2P)": 1600.0,
    "GPU mem read (Kepler/BAR1)": 1600.0,
    "GPU-to-GPU loop-back": 1100.0,
    "Host-to-Host loop-back": 1200.0,
}


@register("table1", "APEnet+ low-level bandwidths", "Table I")
def run(quick: bool = True) -> ExperimentResult:
    """Reproduce every row of Table I."""
    n = 4 if quick else 8
    size = mib(1)
    H, G = BufferKind.HOST, BufferKind.GPU
    measured = {
        "Host mem read": loopback_read_bandwidth(H, size, n_messages=n).MBps,
        "GPU mem read (Fermi/P2P)": loopback_read_bandwidth(G, size, n_messages=n).MBps,
        "GPU mem read (Fermi/BAR1)": bar1_read_bandwidth(FERMI_2050).MBps,
        "GPU mem read (Kepler/P2P)": loopback_read_bandwidth(
            G, size, n_messages=n, gpu_spec=KEPLER_K20
        ).MBps,
        "GPU mem read (Kepler/BAR1)": bar1_read_bandwidth(KEPLER_K20).MBps,
        "GPU-to-GPU loop-back": unidirectional_bandwidth(
            G, G, size, n_messages=n, loopback=True
        ).MBps,
        "Host-to-Host loop-back": unidirectional_bandwidth(
            H, H, size, n_messages=n, loopback=True
        ).MBps,
    }
    rows = [
        (label, round(measured[label]), PAPER[label], fmt_ratio(measured[label], PAPER[label]))
        for label in PAPER
    ]
    rendered = render_table(
        ["Test", "Measured MB/s", "Paper MB/s", "dev"], rows,
        title="Table I — low-level bandwidths",
    )
    return ExperimentResult(
        "table1",
        "APEnet+ low-level bandwidths",
        rendered,
        comparisons=[(k, measured[k], PAPER[k], "MB/s") for k in PAPER],
        data=measured,
    )
