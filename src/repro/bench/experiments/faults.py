"""Chaos experiment: BER sweep with link-level retransmission (`faults`).

Not a paper artefact — the paper assumes an error-free fabric — but the
follow-up APEnet+ work (arXiv:1311.1741, arXiv:2201.01088) is about
exactly this: link error management, CRC/retransmission, systemic fault
awareness.  This experiment sweeps the torus-link bit-error rate and
reports how gracefully each transfer path degrades when the
ACK/NAK-retransmission layer (:mod:`repro.faults`) is absorbing faults:

* delivered **goodput** (MB/s at the receiver) for the H-H, G-G P2P and
  G-G host-staged paths — degrading monotonically with BER while every
  payload byte still arrives intact;
* **goodput fraction** (payload bytes over raw wire bytes, retransmitted
  frames included) and retransmit counts;
* ping-pong **latency** under faults (the NAK round trips and replay
  timeouts land directly on the critical path);
* a **retry-budget exhaustion** demo: a lossy enough link escalates to a
  structured :class:`~repro.faults.LinkFailure`, observable in
  :class:`~repro.sim.stats.FaultStats`;
* a combined PCIe-TLP-replay + Nios-II-stall scenario exercising the
  other injection sites.

Everything is seeded and deterministic: the same plan produces the same
degradation numbers in serial, parallel and cached sweeps.
"""

from __future__ import annotations

from ...apenet.buflist import BufferKind
from ...faults import FaultInjector, FaultPlan, LinkFailure
from ...units import Gbps, kib
from ..harness import ExperimentError, ExperimentResult, register
from ..microbench import (
    pingpong_latency,
    staged_unidirectional_bandwidth,
    unidirectional_bandwidth,
)
from ..tables import render_table

H, G = BufferKind.HOST, BufferKind.GPU

#: Master seed for the sweep (every point derives per-site streams from it).
SWEEP_SEED = 20130827  # the paper's arXiv submission date

#: The sweep runs the torus links at 7 Gbps instead of the default 28: at
#: full rate the link has ~3x headroom over the PCIe/Nios bottleneck and
#: retransmissions are absorbed by idle wire slack, invisible in delivered
#: goodput.  A link-limited regime is where reliability actually costs
#: bandwidth — the regime the degradation curves are about.  (The staged
#: path's own bottleneck sits below the derated link, so it keeps slack and
#: degrades later: graceful degradation made visible.)
SWEEP_OVERRIDES = {"link_bandwidth": Gbps(7)}


def _sweep_bers(quick: bool) -> list[float]:
    if quick:
        return [0.0, 1e-7, 1e-6, 1e-5]
    return [0.0, 1e-9, 1e-8, 1e-7, 1e-6, 1e-5]


@register("faults", "Chaos: goodput/latency degradation vs link BER", "beyond the paper")
def run_faults(quick: bool = True) -> ExperimentResult:
    """Sweep link BER; report degradation for P2P vs host-staged paths."""
    msg = kib(256)
    n_msgs = 12 if quick else 24
    bers = _sweep_bers(quick)

    rows = []
    comparisons = []
    fraction_at_worst = {}
    retx_at_worst = {}
    recovery_at_worst = {}
    for ber in bers:
        row = [f"{ber:.0e}" if ber else "0"]
        for label, runner in (
            ("H-H", lambda f: unidirectional_bandwidth(
                H, H, msg, n_messages=n_msgs, faults=f, **SWEEP_OVERRIDES)),
            ("G-G P2P", lambda f: unidirectional_bandwidth(
                G, G, msg, n_messages=n_msgs, faults=f, **SWEEP_OVERRIDES)),
            ("G-G staged", lambda f: staged_unidirectional_bandwidth(
                msg, n_messages=n_msgs, faults=f, **SWEEP_OVERRIDES)),
        ):
            inj = FaultInjector(FaultPlan(seed=SWEEP_SEED, link_ber=ber))
            bw = runner(inj).MBps
            row.append(bw)
            comparisons.append((f"{label} goodput @BER={ber:.0e}", bw, None, "MB/s"))
            if ber == bers[-1]:
                fraction_at_worst[label] = inj.stats.goodput_fraction()
                retx_at_worst[label] = inj.stats.retransmits
                recovery_at_worst[label] = inj.stats.recovery_latency.mean
        for label, s_kind, d_kind in (("H-H", H, H), ("G-G P2P", G, G)):
            inj = FaultInjector(FaultPlan(seed=SWEEP_SEED, link_ber=ber))
            lat = pingpong_latency(
                s_kind, d_kind, kib(4), faults=inj, **SWEEP_OVERRIDES
            ).usec
            row.append(lat)
            comparisons.append((f"{label} latency @BER={ber:.0e}", lat, None, "us"))
        rows.append(row)

    for label in ("H-H", "G-G P2P", "G-G staged"):
        comparisons.append(
            (f"{label} goodput fraction @BER={bers[-1]:.0e}",
             fraction_at_worst[label], None, "")
        )
        comparisons.append(
            (f"{label} retransmits @BER={bers[-1]:.0e}",
             float(retx_at_worst[label]), None, "")
        )
    comparisons.append(
        ("mean recovery latency @BER={:.0e} (H-H)".format(bers[-1]),
         recovery_at_worst["H-H"] / 1000.0, None, "us")
    )

    # ------------------------------------------------------------------
    # Retry-budget exhaustion: a link lossy beyond its budget escalates.
    # ------------------------------------------------------------------
    exhaust_inj = FaultInjector(
        FaultPlan(seed=SWEEP_SEED, link_ber=5e-4, max_retries=2)
    )
    failure = None
    try:
        unidirectional_bandwidth(H, H, kib(64), n_messages=4, faults=exhaust_inj)
    except LinkFailure as exc:
        failure = exc
    if failure is None:
        raise ExperimentError("5e-4 BER with a 2-retry budget must escalate")
    if not exhaust_inj.stats.link_failures:
        raise ExperimentError("escalation must be recorded in FaultStats")
    comparisons.append(
        ("link-failure attempts (budget 2)", float(failure.attempts), None, "")
    )

    # ------------------------------------------------------------------
    # The other injection sites: PCIe TLP replays + Nios II stalls.
    # ------------------------------------------------------------------
    site_inj = FaultInjector(
        FaultPlan(seed=SWEEP_SEED, tlp_ber=1e-7, nios_stall_rate=0.02)
    )
    site_bw = unidirectional_bandwidth(H, H, msg, n_messages=n_msgs, faults=site_inj).MBps
    comparisons.append(("H-H goodput, TLP+Nios faults", site_bw, None, "MB/s"))
    comparisons.append(("TLP replays", float(site_inj.stats.tlp_replays), None, ""))
    comparisons.append(("Nios stalls", float(site_inj.stats.nios_stalls), None, ""))

    rendered = render_table(
        ["BER", "H-H MB/s", "G-G P2P MB/s", "G-G staged MB/s",
         "H-H lat us", "G-G lat us"],
        rows,
        title="Fault sweep — goodput and latency vs link bit-error rate",
    ) + (
        f"\n\nAt BER={bers[-1]:.0e}: goodput fraction "
        + ", ".join(f"{k}={v:.4f}" for k, v in fraction_at_worst.items())
        + f"\nRetry-budget exhaustion at BER=5e-4, budget 2: LinkFailure after "
        f"{failure.attempts} attempts on {failure.site}"
        + (
            f" ({failure.src_coord}->{failure.dst_coord} "
            f"[{'XYZ'[failure.dim]}{'+' if failure.direction > 0 else '-'}])"
            if failure.located and failure.dim is not None
            else ""
        )
        + f"\nTLP+Nios scenario: {site_inj.stats.tlp_replays} TLP replays, "
        f"{site_inj.stats.nios_stalls} Nios stalls -> {site_bw:.0f} MB/s"
    )
    return ExperimentResult(
        "faults",
        "Goodput/latency degradation vs link BER",
        rendered,
        comparisons,
        data={"bers": bers, "rows": rows},
    )
