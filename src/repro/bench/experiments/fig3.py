"""Fig 3 — PCIe bus-analyzer timing of one GPU-buffer transmission.

An interposer (bus analyzer) on the GPU's PCIe link while the card
transmits a 4 MB GPU buffer with the v2 engine and a 32 KB prefetch
window: the paper reads off the engine's initial overhead (~3 µs to the
first read request), the GPU's head latency (1.8 µs), the sustained
1536 MB/s response stream, and the steady request rate.
"""

from __future__ import annotations

from ...apenet.buflist import BufferKind
from ...apenet.config import GpuTxVersion
from ...gpu.p2p import REQUEST_DESCRIPTOR_BYTES
from ...pcie.analyzer import BusAnalyzer
from ...units import KiB, mib
from ..harness import ExperimentResult, register
from ..microbench import make_cluster
from ..tables import fmt_ratio, render_table

PAPER = {
    "initial delay to first request (us)": 3.0,
    "GPU head latency (us)": 1.8,
    "sustained data rate (MB/s)": 1536.0,
    "request interval (us)": 2.67,  # one 4 KB chunk per 4096/1536 us
}


@register("fig3", "PCIe bus-analyzer timings (GPU TX, v2/32K)", "Fig 3")
def run(quick: bool = True) -> ExperimentResult:
    """Capture and analyse the transaction trace of a 4 MB GPU put."""
    size = mib(1) if quick else mib(4)
    sim, cluster = make_cluster(
        1, 1, use_plx=True, flush_tx=True,
        gpu_tx_version=GpuTxVersion.V2, prefetch_window=32 * KiB,
    )
    node = cluster.nodes[0]
    analyzer = BusAnalyzer(sim)
    analyzer.attach(node.platform.fabric.link_of(node.gpu.name))
    card_tap = BusAnalyzer(sim, "card-tap")
    card_tap.attach(node.platform.fabric.link_of(node.card.name))
    src = node.gpu.alloc(size).addr
    t_post = {}

    def proc():
        yield from node.endpoint.register(src, size)
        t_post["t"] = sim.now
        done = yield from node.endpoint.put(
            0, src, 0xDEAD_0000, size, src_kind=BufferKind.GPU
        )
        yield done

    sim.run_process(proc())

    # Requests: descriptor-sized writes toward the GPU ("down" direction);
    # responses: data writes from the GPU ("up").
    requests = [
        r for r in analyzer.records
        if r.direction == "down" and r.payload_bytes == REQUEST_DESCRIPTOR_BYTES
    ]
    responses = [r for r in analyzer.records if r.direction == "up" and r.payload_bytes]
    # "Transaction 1 to 2": from the descriptor doorbell crossing the
    # card's link to the first read request toward the GPU.
    doorbell = next(r for r in card_tap.records if r.direction == "down")
    initial_delay = (requests[0].time - doorbell.time) / 1000.0
    head_latency = (responses[0].time - requests[0].time) / 1000.0
    data_bytes = sum(r.payload_bytes for r in responses[1:])
    data_rate = data_bytes / (responses[-1].time - responses[0].time) * 1000.0
    gaps = [b.time - a.time for a, b in zip(requests, requests[1:])]
    # Steady-state request interval: skip the initial window burst.
    tail = gaps[len(gaps) // 2 :]
    req_interval = sum(tail) / len(tail) / 1000.0

    measured = {
        "initial delay to first request (us)": initial_delay,
        "GPU head latency (us)": head_latency,
        "sustained data rate (MB/s)": data_rate,
        "request interval (us)": req_interval,
    }
    rows = [
        (k, measured[k], PAPER[k], fmt_ratio(measured[k], PAPER[k])) for k in PAPER
    ]
    rendered = render_table(
        ["Quantity", "Measured", "Paper", "dev"], rows,
        title=f"Fig 3 — bus-analyzer trace of a {size // mib(1)} MB GPU transmission "
        f"({len(requests)} read requests observed)",
    )
    return ExperimentResult(
        "fig3", "PCIe bus-analyzer timings", rendered,
        comparisons=[(k, measured[k], PAPER[k], "") for k in PAPER],
        data={"requests": len(requests), "responses": len(responses)},
    )
