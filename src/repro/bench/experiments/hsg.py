"""Tables II & III and Fig 11 — Heisenberg Spin Glass strong scaling."""

from __future__ import annotations

from ...apps.hsg import HsgConfig, run_hsg
from ..figures import Series, render_series_table
from ..harness import ExperimentResult, register
from ..tables import render_table

# Table II (L=256, P2P=ON): NP -> (Ttot, Tbnd+Tnet, Tnet) in ps/spin.
PAPER_TABLE2 = {1: (921, 11, None), 2: (416, 108, 97), 4: (202, 119, 113), 8: (148, 148, 141)}
# Table III (L=256, NP=2): variant -> (Ttot, Tbnd+Tnet, Tnet).
PAPER_TABLE3 = {
    "P2P=ON": (416, 108, 97),
    "P2P=RX": (416, 97, 91),
    "P2P=OFF": (416, 122, 114),
    "OMPI/IB": (416, 108, 101),
}
# Fig 11 speedups (visual reads): (L, NP) -> speedup.
PAPER_FIG11 = {
    (256, 2): 2.21, (256, 4): 4.56, (256, 8): 6.22,
    (512, 2): 2.35,
    (128, 2): 1.9,
}


@register("table2", "HSG strong scaling, L=256, P2P=ON", "Table II")
def run_table2(quick: bool = True) -> ExperimentResult:
    """Single-spin update times vs node count."""
    sweeps = 2 if quick else 4
    rows = []
    comparisons = []
    for np_ in (1, 2, 4, 8):
        r = run_hsg(HsgConfig(L=256, np_=np_, p2p_mode="on", sweeps=sweeps))
        p = PAPER_TABLE2[np_]
        rows.append(
            (np_, round(r.ttot_ps), p[0], round(r.tbnd_tnet_ps), p[1],
             round(r.tnet_ps) if np_ > 1 else None, p[2])
        )
        comparisons.append((f"Ttot NP={np_}", r.ttot_ps, p[0], "ps/spin"))
        if p[2] is not None:
            comparisons.append((f"Tnet NP={np_}", r.tnet_ps, p[2], "ps/spin"))
    rendered = render_table(
        ["NP", "Ttot", "(paper)", "Tbnd+Tnet", "(paper)", "Tnet", "(paper)"],
        rows, title="Table II — HSG strong scaling, L=256 (ps per spin)",
    )
    return ExperimentResult("table2", "HSG strong scaling", rendered, comparisons, rows)


@register("table3", "HSG two-node breakdown by P2P mode", "Table III")
def run_table3(quick: bool = True) -> ExperimentResult:
    """P2P=ON / RX-only / staging / OpenMPI-over-IB at L=256, NP=2."""
    sweeps = 2 if quick else 4
    rows = []
    comparisons = []
    variants = [
        ("P2P=ON", dict(transport="apenet", p2p_mode="on")),
        ("P2P=RX", dict(transport="apenet", p2p_mode="rx")),
        ("P2P=OFF", dict(transport="apenet", p2p_mode="off")),
        ("OMPI/IB", dict(transport="mpi")),
    ]
    for label, kw in variants:
        r = run_hsg(HsgConfig(L=256, np_=2, sweeps=sweeps, **kw))
        p = PAPER_TABLE3[label]
        rows.append(
            (label, round(r.ttot_ps), p[0], round(r.tbnd_tnet_ps), p[1],
             round(r.tnet_ps), p[2])
        )
        comparisons.append((f"Tnet {label}", r.tnet_ps, p[2], "ps/spin"))
    rendered = render_table(
        ["Variant", "Ttot", "(paper)", "Tbnd+Tnet", "(paper)", "Tnet", "(paper)"],
        rows, title="Table III — HSG two-node breakdown, L=256 (ps per spin)",
    )
    return ExperimentResult("table3", "HSG breakdown by mode", rendered, comparisons, rows)


@register("fig11", "HSG speedup vs nodes, by lattice size and P2P mode", "Fig 11")
def run_fig11(quick: bool = True) -> ExperimentResult:
    """Strong-scaling speedups incl. the L=512 super-linear regime."""
    sweeps = 1 if quick else 2
    Ls = [128, 256] if quick else [128, 256, 512]
    modes = ["on"] if quick else ["off", "rx", "on"]
    series = []
    comparisons = []
    for L in Ls:
        base = {m: run_hsg(HsgConfig(L=L, np_=1, p2p_mode=m, sweeps=sweeps)) for m in modes}
        for m in modes:
            s = Series(f"L={L} P2P={m.upper()}")
            s.add(1, 1.0)
            for np_ in (2, 4, 8):
                if L % np_:
                    continue
                r = run_hsg(HsgConfig(L=L, np_=np_, p2p_mode=m, sweeps=sweeps))
                sp = r.speedup_vs(base[m])
                s.add(np_, sp)
                if m == "on" and (L, np_) in PAPER_FIG11:
                    comparisons.append(
                        (f"speedup L={L} NP={np_}", sp, PAPER_FIG11[(L, np_)], "x")
                    )
            series.append(s)
    rendered = render_series_table(
        series, x_label="NP", x_is_size=False,
        title="Fig 11 — HSG strong-scaling speedup",
    )
    return ExperimentResult("fig11", "HSG speedup scaling", rendered, comparisons, series)
