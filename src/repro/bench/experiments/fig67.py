"""Figs 6 & 7 — two-node uni-directional bandwidth.

Fig 6: the four source/destination buffer combinations on APEnet+.
Fig 7: G-G by method — APEnet+ P2P, APEnet+ staging (P2P=OFF), and the
MVAPICH2/InfiniBand OSU reference.
"""

from __future__ import annotations

from ...apenet.buflist import BufferKind
from ...mpi.osu import osu_bandwidth
from ...units import kib, mib
from ..figures import Series, ascii_plot, render_series_table
from ..harness import ExperimentResult, register
from ..microbench import staged_unidirectional_bandwidth, unidirectional_bandwidth

H, G = BufferKind.HOST, BufferKind.GPU

# Curve reads from the paper's plots (MB/s).
PAPER_FIG6 = {
    ("H-H", mib(4)): 1200.0,
    ("G-G", mib(4)): 1050.0,
    ("H-H", kib(8)): 950.0,
    ("G-G", kib(8)): 475.0,
}
PAPER_FIG7 = {
    ("P2P=ON", kib(8)): 475.0,
    ("P2P=OFF", kib(8)): 300.0,
    ("P2P=ON", mib(4)): 1050.0,
    ("P2P=OFF", mib(4)): 1200.0,
    ("IB MVAPICH2", mib(4)): 3000.0,
}


def _sizes(quick: bool, lo=32) -> list[int]:
    if quick:
        return [32, 512, kib(8), kib(64), kib(512), mib(4)]
    sizes = []
    s = lo
    while s <= mib(4):
        sizes.append(s)
        s *= 4
    return sizes


@register("fig6", "Two-node bandwidth, 4 buffer combinations", "Fig 6")
def run_fig6(quick: bool = True) -> ExperimentResult:
    """H-H / H-G / G-H / G-G PUT bandwidth vs message size."""
    combos = [("H-H", H, H), ("H-G", H, G), ("G-H", G, H), ("G-G", G, G)]
    series = []
    for label, s_kind, d_kind in combos:
        s = Series(label)
        for size in _sizes(quick):
            n = 5 if size >= mib(1) else None
            r = unidirectional_bandwidth(s_kind, d_kind, size, n_messages=n)
            s.add(size, r.MBps)
        series.append(s)
    comparisons = []
    for s in series:
        for (label, size), paper in PAPER_FIG6.items():
            if s.label == label and size in s.x:
                comparisons.append(
                    (f"{label} @{size}B", s.y[s.x.index(size)], paper, "MB/s")
                )
    rendered = (
        render_series_table(series, title="Fig 6 — two-node bandwidth (MB/s)")
        + "\n\n" + ascii_plot(series, title="Fig 6")
    )
    return ExperimentResult("fig6", "Two-node bandwidth", rendered, comparisons, series)


@register("fig7", "G-G bandwidth: P2P vs staging vs InfiniBand", "Fig 7")
def run_fig7(quick: bool = True) -> ExperimentResult:
    """The method comparison with the ~32 KB crossover."""
    series = []
    p2p = Series("P2P=ON")
    off = Series("P2P=OFF")
    ib = Series("IB MVAPICH2")
    for size in _sizes(quick):
        n = 5 if size >= mib(1) else None
        p2p.add(size, unidirectional_bandwidth(G, G, size, n_messages=n).MBps)
        off.add(size, staged_unidirectional_bandwidth(size, n_messages=n).MBps)
        ib.add(size, osu_bandwidth(size, gpu_buffers=True, window=8, iterations=2) * 1000.0)
    series = [p2p, off, ib]
    comparisons = []
    for s in series:
        for (label, size), paper in PAPER_FIG7.items():
            if s.label == label and size in s.x:
                comparisons.append(
                    (f"{label} @{size}B", s.y[s.x.index(size)], paper, "MB/s")
                )
    rendered = (
        render_series_table(series, title="Fig 7 — G-G bandwidth by method (MB/s)")
        + "\n\n" + ascii_plot(series, title="Fig 7")
    )
    return ExperimentResult("fig7", "G-G bandwidth by method", rendered, comparisons, series)
