"""CLI: ``python -m repro.bench [experiment-id ...] [--full]``.

Runs the named experiments (default: all) and prints their rendered
tables/plots plus a paper-vs-measured summary.
"""

from __future__ import annotations

import argparse
import sys
import time

from .harness import all_ids, run
from .tables import fmt_ratio, render_table


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Reproduce the paper's tables and figures.",
    )
    parser.add_argument("ids", nargs="*", help="experiment ids (default: all)")
    parser.add_argument(
        "--full", action="store_true",
        help="run the paper's full parameters (slower; default is quick mode)",
    )
    parser.add_argument("--list", action="store_true", help="list experiment ids")
    args = parser.parse_args(argv)

    if args.list:
        for i in all_ids():
            print(i)
        return 0

    ids = args.ids or all_ids()
    summary = []
    for exp_id in ids:
        t0 = time.time()
        result = run(exp_id, quick=not args.full)
        dt = time.time() - t0
        print(f"\n{'#' * 72}\n# {exp_id}: {result.title}  ({dt:.1f}s)\n{'#' * 72}")
        print(result.rendered)
        for name, measured, paper, unit in result.comparisons:
            summary.append((exp_id, name, measured, paper, fmt_ratio(measured, paper)))
    if summary:
        print("\n" + render_table(
            ["experiment", "quantity", "measured", "paper", "dev"],
            summary, title="Paper-vs-measured summary",
        ))
    return 0


if __name__ == "__main__":
    sys.exit(main())
