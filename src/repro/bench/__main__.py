"""CLI: ``python -m repro.bench [experiment-id ...] [options]``.

Runs the named experiments (default: all) through the parallel runner
(:mod:`repro.bench.runner`) and prints their rendered tables/plots plus a
paper-vs-measured summary.

Options:

* ``--jobs N`` — fan out over N worker processes (default 1);
* ``--no-cache`` — ignore and do not update the on-disk result cache;
* ``--json PATH`` — also write the JSON results artifact to PATH;
* ``--backend NAME`` — run every experiment on the given kernel backend
  (sets ``REPRO_BACKEND``; backends are bit-identical by contract);
* ``--bench-json PATH`` — write the kernel-benchmark artifact
  (``BENCH_kernel.json``) from the ``selftest`` experiment's data
  (implies ``--no-cache`` so the numbers are freshly measured);
* ``--scale-json PATH`` — write the large-torus scaling artifact
  (``BENCH_scale.json``) from the ``scale`` experiment's data
  (implies ``--no-cache``);
* ``--trace PATH`` — record every experiment under :mod:`repro.obs` and
  write one merged Chrome ``trace_event`` file (implies ``--no-cache``);
* ``--full`` / ``--quick`` — paper's exact parameters vs trimmed sweeps.
"""

from __future__ import annotations

import argparse
import os
import sys

from .harness import all_ids, get
from .runner import (
    default_cache_dir,
    run_experiments,
    write_json,
    write_kernel_bench,
    write_scale_bench,
)
from .tables import fmt_ratio, render_table


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Reproduce the paper's tables and figures.",
    )
    parser.add_argument("ids", nargs="*", help="experiment ids (default: all)")
    parser.add_argument(
        "--all", action="store_true",
        help="run every registered experiment (the default when no ids are given)",
    )
    parser.add_argument(
        "--full", action="store_true",
        help="run the paper's full parameters (slower; default is quick mode)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="trimmed sweeps that finish in minutes (the default)",
    )
    parser.add_argument(
        "-j", "--jobs", type=int, default=1, metavar="N",
        help="worker processes to fan experiments out over (default: 1)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="ignore and do not update the on-disk result cache",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help=f"result cache location (default: {default_cache_dir()})",
    )
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the JSON results artifact to PATH",
    )
    parser.add_argument(
        "--backend", default=None, metavar="NAME",
        help="kernel backend for every experiment (heap|wheel; sets "
        "REPRO_BACKEND, default: inherit environment or heap)",
    )
    parser.add_argument(
        "--bench-json", default=None, metavar="PATH",
        help="write the kernel benchmark artifact (BENCH_kernel.json) from "
        "the selftest experiment's data (implies --no-cache)",
    )
    parser.add_argument(
        "--scale-json", default=None, metavar="PATH",
        help="write the large-torus scaling artifact (BENCH_scale.json) from "
        "the scale experiment's data (implies --no-cache)",
    )
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="write a Chrome trace_event JSON of the sweep to PATH "
        "(open in Perfetto; implies --no-cache)",
    )
    parser.add_argument("--list", action="store_true", help="list experiment ids")
    args = parser.parse_args(argv)

    if args.list:
        for i in all_ids():
            print(i)
        return 0
    if args.full and args.quick:
        parser.error("--full and --quick are mutually exclusive")
    if args.all and args.ids:
        parser.error("--all cannot be combined with explicit experiment ids")

    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")

    if args.backend is not None:
        from ..sim.sched import BACKEND_ENV, resolve_backend

        try:
            os.environ[BACKEND_ENV] = resolve_backend(args.backend)
        except ValueError as exc:
            parser.error(str(exc))

    ids = args.ids or all_ids()
    if args.bench_json is not None and "selftest" not in ids:
        parser.error("--bench-json needs the 'selftest' experiment in the sweep")
    if args.scale_json is not None and "scale" not in ids:
        parser.error("--scale-json needs the 'scale' experiment in the sweep")
    try:
        for exp_id in ids:
            get(exp_id)
    except KeyError as exc:
        parser.error(exc.args[0])
    quick = not args.full

    def progress(record):
        tag = "cached" if record.cached else f"{record.wall_s:.1f}s"
        status = "" if record.status != "error" else "  FAILED"
        print(f"[{record.experiment_id}] {tag}, {record.events} events{status}",
              file=sys.stderr)

    records = run_experiments(
        ids,
        quick=quick,
        jobs=args.jobs,
        use_cache=not (
            args.no_cache
            or args.bench_json is not None
            or args.scale_json is not None
        ),
        cache_dir=args.cache_dir,
        progress=progress,
        trace=args.trace is not None,
    )

    summary = []
    failed = []
    for record in records:
        if record.status == "error":
            failed.append(record)
            print(f"\n{'#' * 72}\n# {record.experiment_id}: FAILED\n{'#' * 72}")
            print(record.error)
            continue
        origin = "cached" if record.cached else f"{record.wall_s:.1f}s"
        print(
            f"\n{'#' * 72}\n# {record.experiment_id}: {record.title}"
            f"  ({origin}, {record.events} events)\n{'#' * 72}"
        )
        print(record.rendered)
        for name, measured, paper, unit in record.comparisons:
            summary.append(
                (record.experiment_id, name, measured, paper, fmt_ratio(measured, paper))
            )
    if summary:
        print("\n" + render_table(
            ["experiment", "quantity", "measured", "paper", "dev"],
            summary, title="Paper-vs-measured summary",
        ))

    if args.json:
        path = write_json(records, args.json, quick=quick, jobs=args.jobs)
        print(f"\nwrote {path}", file=sys.stderr)

    if args.bench_json:
        try:
            path = write_kernel_bench(records, args.bench_json, quick=quick)
        except ValueError as exc:
            print(f"bench-json: {exc}", file=sys.stderr)
            return 1
        print(f"wrote {path}", file=sys.stderr)

    if args.scale_json:
        try:
            path = write_scale_bench(records, args.scale_json, quick=quick)
        except ValueError as exc:
            print(f"scale-json: {exc}", file=sys.stderr)
            return 1
        print(f"wrote {path}", file=sys.stderr)

    if args.trace:
        from ..obs import write_chrome_trace

        traces = {r.experiment_id: r.trace for r in records if r.trace is not None}
        path = write_chrome_trace(args.trace, traces)
        n_records = sum(len(p["events"]) for p in traces.values())
        print(
            f"wrote {path} ({len(traces)} experiment(s), {n_records} trace records)",
            file=sys.stderr,
        )

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
