"""Experiment registry: one entry per table/figure of the paper.

Each experiment module registers a runner returning an
:class:`ExperimentResult`; ``python -m repro.bench <id>`` (see
``__main__.py``) or the pytest-benchmark targets under ``benchmarks/``
execute them.  ``quick=True`` trims sweep points and problem sizes so the
full set finishes in minutes; ``quick=False`` runs the paper's exact
parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

__all__ = [
    "ExperimentError",
    "ExperimentResult",
    "Experiment",
    "register",
    "get",
    "all_ids",
    "run",
]


class ExperimentError(RuntimeError):
    """An experiment's internal invariant failed (explicit, -O-proof
    replacement for the load-bearing asserts the SIM001 lint rule bans)."""


@dataclass
class ExperimentResult:
    """Everything an experiment produced."""

    experiment_id: str
    title: str
    rendered: str  # human-readable output (tables / plots)
    # (quantity, measured, paper, unit) comparison rows for EXPERIMENTS.md.
    comparisons: list[tuple[str, float, Optional[float], str]] = field(
        default_factory=list
    )
    data: Any = None  # raw series/rows for programmatic use

    def deviations(self) -> dict[str, float]:
        """Relative deviation per compared quantity (measured vs paper)."""
        out = {}
        for name, measured, paper, _unit in self.comparisons:
            if paper:
                out[name] = (measured - paper) / paper
        return out


@dataclass
class Experiment:
    """Registry entry."""

    id: str
    title: str
    paper_ref: str  # "Table I", "Fig 4", ...
    runner: Callable[[bool], ExperimentResult]  # runner(quick)


_REGISTRY: dict[str, Experiment] = {}


def register(id: str, title: str, paper_ref: str):
    """Decorator: register ``runner(quick: bool) -> ExperimentResult``."""

    def wrap(fn):
        if id in _REGISTRY:
            raise ValueError(f"duplicate experiment id {id!r}")
        _REGISTRY[id] = Experiment(id, title, paper_ref, fn)
        return fn

    return wrap


def _ensure_loaded() -> None:
    from . import experiments  # noqa: F401 - side-effect registration


def get(id: str) -> Experiment:
    """Look up one experiment."""
    _ensure_loaded()
    try:
        return _REGISTRY[id]
    except KeyError:
        raise KeyError(f"unknown experiment {id!r}; known: {sorted(_REGISTRY)}") from None


def all_ids() -> list[str]:
    """Every registered experiment id, in paper order."""
    _ensure_loaded()
    order = [
        "table1", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
        "fig10", "table2", "table3", "fig11", "table4", "fig12",
    ]
    known = [i for i in order if i in _REGISTRY]
    extra = sorted(set(_REGISTRY) - set(known))
    return known + extra


def run(id: str, quick: bool = True) -> ExperimentResult:
    """Execute one experiment."""
    return get(id).runner(quick)
