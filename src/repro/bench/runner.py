"""Parallel experiment execution with on-disk result caching.

The registry in :mod:`repro.bench.harness` holds fully independent
experiments (each builds its own :class:`~repro.sim.Simulator`), so a full
reproduction sweep is embarrassingly parallel.  This module provides:

* :func:`run_experiments` — fan the requested experiments out over worker
  processes (``jobs > 1``) or run them in-process (``jobs == 1``), with
  per-experiment wall-clock and simulated-event telemetry;
* :class:`ResultCache` — an on-disk JSON cache keyed by a hash of the
  experiment id, quick/full flag, every calibration constant, and the
  package version, so unchanged experiments are skipped on re-runs;
* :func:`write_json` — the ``results/run-<id>.json`` artifact consumed by
  CI.

Determinism: the simulation is seedless and deterministic, so a given
(experiment, quick, calibration, version) tuple always produces identical
``comparisons`` rows — which is what makes the cache sound and lets CI
assert that parallel and serial sweeps agree bit-for-bit.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import tempfile
import time
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import Callable, Optional, Sequence

from .. import __version__
from ..apenet.config import DEFAULT_CONFIG
from ..sim.sched import resolve_backend
from . import harness
from .engine import ENGINE, pool_worker

__all__ = [
    "RunRecord",
    "ResultCache",
    "cache_key",
    "calibration_hash",
    "default_cache_dir",
    "run_experiments",
    "write_json",
    "write_kernel_bench",
    "write_scale_bench",
]

#: Default location of the cache, relative to the working directory.
DEFAULT_CACHE_DIR = Path("results") / "cache"

#: Keys a cached payload must carry to be considered intact.
_REQUIRED_PAYLOAD_KEYS = frozenset(
    {"experiment_id", "title", "rendered", "comparisons", "wall_s", "events"}
)


@dataclass
class RunRecord:
    """Outcome + telemetry of one experiment in a sweep."""

    experiment_id: str
    title: str = ""
    status: str = "ok"  # "ok" | "cached" | "error"
    wall_s: float = 0.0  # wall-clock of the (original) execution
    events: int = 0  # simulated events processed by the execution
    cached: bool = False
    comparisons: list = field(default_factory=list)
    rendered: str = ""
    error: Optional[str] = None
    error_class: Optional[str] = None  # exception class name for "error" records
    trace: Optional[dict] = None  # obs session payload when traced
    data: Optional[dict] = None  # experiment's free-form data block (may be None)

    def to_dict(self) -> dict:
        """JSON-ready representation (tuples normalised to lists).

        The trace payload is excluded — it can be millions of records and
        has its own export path (``repro.obs.write_chrome_trace``).
        """
        d = asdict(replace(self, trace=None))
        d.pop("trace", None)
        d["comparisons"] = [list(row) for row in self.comparisons]
        return d


# ---------------------------------------------------------------------------
# Cache
# ---------------------------------------------------------------------------


# DEFAULT_CONFIG is a frozen dataclass, so its dict form — walked for
# every cache key and every artifact stamp — is computed once per
# process, not once per experiment (or, before the hoist, once per
# selftest backend-grid repeat).  The derived hash values are unchanged.
_calibration_dict_memo: Optional[dict] = None
_calibration_hash_memo: Optional[str] = None


def _calibration_dict() -> dict:
    """Memoised ``asdict(DEFAULT_CONFIG)`` (treat as read-only)."""
    global _calibration_dict_memo
    if _calibration_dict_memo is None:
        _calibration_dict_memo = asdict(DEFAULT_CONFIG)
    return _calibration_dict_memo


def cache_key(experiment_id: str, quick: bool, backend: Optional[str] = None) -> str:
    """Content hash identifying one experiment execution.

    Covers the experiment id, the quick/full flag, every calibration
    constant of :data:`~repro.apenet.config.DEFAULT_CONFIG`, the active
    kernel backend, and the package version — any change to model
    constants, backend selection or code version invalidates all cached
    results.  (Backends are bit-identical by contract, but the payload's
    telemetry — wall time, kernel bench data — is backend-specific, so
    sharing entries would serve stale numbers.)

    *backend* defaults to the process-wide selection (``REPRO_BACKEND``);
    ``repro.serve`` passes the request's backend explicitly so one service
    process can key cache entries for several backends.
    """
    ident = {
        "experiment": experiment_id,
        "quick": bool(quick),
        "calibration": _calibration_dict(),
        "backend": resolve_backend(backend),
        "version": __version__,
    }
    blob = json.dumps(ident, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def calibration_hash() -> str:
    """Short content hash of every calibration constant.

    Stamped into bench artifacts (``BENCH_kernel.json``,
    ``BENCH_scale.json``) so a perf number can never be compared across
    different model calibrations unnoticed.  Computed once per process
    (``tests/bench/test_calibration_once.py`` pins this).
    """
    global _calibration_hash_memo
    if _calibration_hash_memo is None:
        blob = json.dumps(
            _calibration_dict(), sort_keys=True, separators=(",", ":")
        )
        _calibration_hash_memo = hashlib.sha256(blob.encode()).hexdigest()[:12]
    return _calibration_hash_memo


def default_cache_dir() -> Path:
    """The cache location (overridable via ``REPRO_CACHE_DIR``)."""
    return Path(os.environ.get("REPRO_CACHE_DIR", str(DEFAULT_CACHE_DIR)))


class ResultCache:
    """On-disk JSON store of experiment payloads, one file per key.

    Corrupted or truncated files (interrupted writers, disk trouble) are
    treated as misses and silently overwritten by the next store.
    """

    def __init__(self, root: Path | str = DEFAULT_CACHE_DIR):
        self.root = Path(root)

    def path(self, key: str) -> Path:
        """Where *key*'s payload lives."""
        return self.root / f"{key}.json"

    def get(self, key: str) -> Optional[dict]:
        """The cached payload for *key*, or None on miss/corruption."""
        path = self.path(key)
        try:
            with open(path) as fh:
                payload = json.load(fh)
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict) or not _REQUIRED_PAYLOAD_KEYS <= payload.keys():
            return None
        return payload

    def put(self, key: str, payload: dict) -> None:
        """Store *payload* under *key*, crash-safely.

        The payload is written to a private temp file in the cache
        directory, flushed and fsync'ed, then moved into place with the
        atomic ``os.replace`` — so a reader can only ever observe either
        the old complete entry or the new complete entry.  A writer killed
        mid-``put`` (the serve worker supervisor does exactly this) leaves
        at worst an orphaned ``*.tmp`` file, never a torn JSON that would
        poison later ``get``\\ s; concurrent writers race benignly (last
        rename wins, both payloads are identical by determinism).
        """
        self.root.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.path(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------


# The execution core lives in repro.bench.engine (shared with repro.serve);
# these aliases keep the runner's historical entry points stable.
_execute = ENGINE.execute
_worker = pool_worker


def _pool_context():
    """Fork where available: workers inherit the loaded registry (including
    experiments registered at runtime, e.g. by tests)."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _record_from_payload(payload: dict, cached: bool) -> RunRecord:
    if payload.get("error"):
        return RunRecord(
            experiment_id=payload["experiment_id"],
            status="error",
            wall_s=payload.get("wall_s", 0.0),
            events=payload.get("events", 0),
            error=payload["error"],
            error_class=payload.get("error_class"),
        )
    return RunRecord(
        experiment_id=payload["experiment_id"],
        title=payload["title"],
        status="cached" if cached else "ok",
        wall_s=payload["wall_s"],
        events=payload["events"],
        cached=cached,
        comparisons=[tuple(row) for row in payload["comparisons"]],
        rendered=payload["rendered"],
        trace=payload.get("trace"),
        data=payload.get("data"),
    )


def run_experiments(
    ids: Sequence[str],
    quick: bool = True,
    jobs: int = 1,
    use_cache: bool = True,
    cache_dir: Optional[Path | str] = None,
    progress: Optional[Callable[[RunRecord], None]] = None,
    trace: bool = False,
) -> list[RunRecord]:
    """Run *ids*, fanning out over *jobs* worker processes.

    Cache hits are resolved up front (never shipped to workers); the
    remaining experiments run in-process for ``jobs == 1`` or through a
    ``multiprocessing.Pool`` otherwise.  Results come back in the order of
    *ids* regardless of *jobs*.  *progress*, if given, is called with each
    :class:`RunRecord` as it lands.

    With ``trace=True`` every experiment executes under its own
    :class:`~repro.obs.TraceSession` and each ok record carries the session
    payload in ``record.trace``.  Tracing disables the cache for the sweep
    (cached payloads carry no trace, and trace payloads are too large to
    store), but the comparison rows are bit-identical either way.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if trace:
        use_cache = False
    for exp_id in ids:
        harness.get(exp_id)  # fail fast on unknown ids
    cache = ResultCache(cache_dir if cache_dir is not None else default_cache_dir())

    records: dict[str, RunRecord] = {}
    pending: list[str] = []
    for exp_id in ids:
        payload = cache.get(cache_key(exp_id, quick)) if use_cache else None
        if payload is not None:
            records[exp_id] = _record_from_payload(payload, cached=True)
            if progress:
                progress(records[exp_id])
        else:
            pending.append(exp_id)

    if pending:
        work = [(exp_id, quick, trace) for exp_id in pending]
        if jobs == 1 or len(pending) == 1:
            payloads = (_execute(*item) for item in work)
            for payload in payloads:
                _land(payload, records, cache, use_cache, quick, progress)
        else:
            ctx = _pool_context()
            with ctx.Pool(processes=min(jobs, len(pending))) as pool:
                for payload in pool.imap(_worker, work):
                    _land(payload, records, cache, use_cache, quick, progress)

    return [records[exp_id] for exp_id in ids]


def _land(payload, records, cache, use_cache, quick, progress) -> None:
    record = _record_from_payload(payload, cached=False)
    records[record.experiment_id] = record
    if use_cache and record.status == "ok":
        # Belt and braces: run_experiments never caches traced sweeps, but
        # strip the trace anyway so a stored payload can never carry one.
        stored = {k: v for k, v in payload.items() if k != "trace"}
        cache.put(cache_key(record.experiment_id, quick), stored)
    if progress:
        progress(record)


# ---------------------------------------------------------------------------
# Artifact
# ---------------------------------------------------------------------------


def default_run_id() -> str:
    """A timestamp-based id for the results artifact."""
    return time.strftime("%Y%m%d-%H%M%S")


def write_json(
    records: Sequence[RunRecord],
    path: Path | str,
    quick: bool = True,
    jobs: int = 1,
    run_id: Optional[str] = None,
) -> Path:
    """Write the sweep's JSON artifact to *path* and return it."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    doc = {
        "run_id": run_id or default_run_id(),
        "repro_version": __version__,
        "mode": "quick" if quick else "full",
        "jobs": jobs,
        "total_wall_s": sum(r.wall_s for r in records if not r.cached),
        "n_cached": sum(1 for r in records if r.cached),
        "n_errors": sum(1 for r in records if r.status == "error"),
        "records": [r.to_dict() for r in records],
    }
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2)
    return path


def write_kernel_bench(
    records: Sequence[RunRecord],
    path: Path | str,
    quick: bool = True,
    run_id: Optional[str] = None,
) -> Path:
    """Write the machine-readable kernel-benchmark artifact to *path*.

    Extracts the per-backend numbers that the ``selftest`` experiment
    leaves in ``data["kernel_bench"]`` and stamps them with the package
    version and calibration hash — the ``BENCH_kernel.json`` consumed by
    the CI ``bench-history`` job and ``scripts/check_bench.py``.  Raises
    :class:`ValueError` when no record carries kernel-bench data (e.g.
    ``selftest`` was not part of the sweep or errored).
    """
    bench = None
    for record in records:
        if record.status != "error" and record.data and "kernel_bench" in record.data:
            bench = record.data["kernel_bench"]
            break
    if bench is None:
        raise ValueError(
            "no kernel-bench data in this sweep: run the 'selftest' "
            "experiment (uncached) to produce BENCH_kernel.json"
        )
    backends = {
        name: {
            "events": b["events"],
            "wall_s": b["wall_s"],
            "events_per_s": b["events_per_s"],
            "speedup_vs_heap": b["speedup_vs_heap"],
            "scenarios": b["scenarios"],
        }
        for name, b in bench.items()
    }
    doc = {
        "run_id": run_id or default_run_id(),
        "repro_version": __version__,
        "calibration_hash": calibration_hash(),
        "mode": "quick" if quick else "full",
        "backends": backends,
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2)
    return path


def write_scale_bench(
    records: Sequence[RunRecord],
    path: Path | str,
    quick: bool = True,
    run_id: Optional[str] = None,
) -> Path:
    """Write the machine-readable scaling artifact to *path*.

    Extracts the TEPS rows and the exact-vs-flow parity report that the
    ``scale`` experiment leaves in ``data["scale_bench"]`` and stamps
    them with the package version and calibration hash — the
    ``BENCH_scale.json`` consumed by ``scripts/check_bench.py --scale``.
    Raises :class:`ValueError` when no record carries scale-bench data
    (e.g. ``scale`` was not part of the sweep or errored).
    """
    bench = None
    for record in records:
        if record.status != "error" and record.data and "scale_bench" in record.data:
            bench = record.data["scale_bench"]
            break
    if bench is None:
        raise ValueError(
            "no scale-bench data in this sweep: run the 'scale' "
            "experiment (uncached) to produce BENCH_scale.json"
        )
    doc = {
        "run_id": run_id or default_run_id(),
        "repro_version": __version__,
        "calibration_hash": calibration_hash(),
        "mode": "quick" if quick else "full",
        "rows": bench["rows"],
        "parity": bench["parity"],
        "dead_links": bench.get("dead_links", []),
        "golden_dims": bench.get("golden_dims", []),
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2)
    return path
