"""Console table rendering for experiment output.

Formats the reproduction's paper-vs-measured rows (the Fig 3/4/6-style
results) as aligned ASCII tables, including the deviation-ratio column
the golden-number tests and the CI summary print.  Pure string
formatting — deliberately free of simulation imports.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

__all__ = ["render_table", "fmt_ratio"]


def _fmt(value: Any) -> str:
    if value is None:
        return "n.a."
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-2:
            return f"{value:.2e}"
        if abs(value) >= 100:
            return f"{value:.0f}"
        return f"{value:.2f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: Optional[str] = None,
) -> str:
    """Aligned monospace table."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    sep = "-+-".join("-" * w for w in widths)
    out = []
    if title:
        out.append(title)
        out.append("=" * len(sep))
    out.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    out.append(sep)
    for row in cells:
        out.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(out)


def fmt_ratio(measured: float, paper: Optional[float]) -> str:
    """'+12.3%' deviation string (empty when no reference)."""
    if paper is None or paper == 0:
        return ""
    return f"{(measured - paper) / paper * 100:+.1f}%"
