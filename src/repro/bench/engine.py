"""The shared execution core behind the CLI sweeps and ``repro.serve``.

Exactly one place in the tree knows how to turn ``(experiment_id, quick,
trace)`` into a result payload: :class:`ExecutionEngine`.  The parallel
runner (:mod:`repro.bench.runner`) drives it from worker processes of a
``multiprocessing.Pool``; the always-on service (:mod:`repro.serve`)
drives it from supervised single-shot worker processes.  Both therefore
produce byte-identical payloads for the same request — which is what lets
the two front ends share one on-disk :class:`~repro.bench.runner.ResultCache`
and lets the service promise that a retried execution (after a worker
crash) returns a payload bit-identical to an undisturbed run.

The payload contract (``engine.execute`` never raises for experiment
failures):

* success — ``{"experiment_id", "title", "rendered", "comparisons",
  "wall_s", "events", "data"}`` plus ``"trace"`` when traced;
* failure — ``{"experiment_id", "error", "error_class", "args",
  "wall_s", "events"}`` (the traceback string, the exception class name,
  and the original request arguments).

``comparisons``/``rendered``/``data`` are deterministic (the simulation is
seedless); ``wall_s``/``events`` are telemetry and vary run to run —
consumers that need bit-identity (the service's result bodies, the cache
parity tests) compare :func:`deterministic_view` of a payload.
"""

from __future__ import annotations

import dataclasses
import time
import traceback

from ..sim import kernel_event_count
from . import harness

__all__ = ["ExecutionEngine", "deterministic_view", "pool_worker"]

#: Payload keys that are pure functions of (experiment, quick, calibration,
#: version) — everything except wall-clock/event telemetry and traces.
DETERMINISTIC_KEYS = ("experiment_id", "title", "rendered", "comparisons", "data")


def _jsonable(obj):
    """Recursively coerce an experiment ``data`` block to JSON-safe types.

    Payloads cross a JSON boundary twice (the result cache and the
    ``--json`` artifact), but experiments are free to stash richer
    objects — dataclasses (e.g. figure ``Series``), tuples, sets — in
    ``ExperimentResult.data``.  Dataclasses become dicts, tuples/sets
    become lists, dict keys become strings, and anything else falls back
    to ``repr`` rather than failing the whole sweep.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return _jsonable(dataclasses.asdict(obj))
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple, set, frozenset)):
        seq = sorted(obj, key=repr) if isinstance(obj, (set, frozenset)) else obj
        return [_jsonable(v) for v in seq]
    return repr(obj)


def deterministic_view(payload: dict) -> dict:
    """The bit-identical subset of a result payload.

    Strips the telemetry (``wall_s``, ``events``) and trace data that
    legitimately differ between two executions of the same request, keeping
    only the keys that the determinism contract covers.  The service's
    crash-retry acceptance gate compares these views byte for byte.
    """
    return {k: payload[k] for k in DETERMINISTIC_KEYS if k in payload}


class ExecutionEngine:
    """Runs registered experiments and renders their outcome as payloads.

    Stateless by design — an engine can be constructed per process, per
    request, or once and shared; every behaviour lives in
    :meth:`execute`'s arguments so CLI and service cannot drift apart.
    """

    def execute(self, experiment_id: str, quick: bool, trace: bool = False) -> dict:
        """Run one experiment in this process; always returns a payload dict.

        With ``trace=True`` the experiment runs under a fresh
        :class:`~repro.obs.TraceSession` and the payload gains a ``"trace"``
        key (the session payload).  Tracing is observation-only, so the
        comparison rows are identical either way; each experiment gets its
        own session, so trace content is independent of worker scheduling.
        """
        session = None
        session_cm = None
        if trace:
            from ..obs import TraceSession

            session = TraceSession(label=experiment_id)
            session_cm = session.activate()
            session_cm.__enter__()
        t0 = time.perf_counter()
        ev0 = kernel_event_count()
        try:
            result = harness.run(experiment_id, quick=quick)
        except (KeyboardInterrupt, SystemExit):
            # Ctrl-C / interpreter shutdown must tear the sweep down, not be
            # folded into an error payload.
            raise
        except Exception as exc:  # repro: noqa-SIM001 — execution isolation
            # boundary: one failing experiment becomes an "error" payload
            # instead of killing the other workers; the class, args and
            # traceback are all preserved so nothing is swallowed.
            return {
                "experiment_id": experiment_id,
                "error": traceback.format_exc(),
                "error_class": type(exc).__name__,
                "args": {"experiment_id": experiment_id, "quick": bool(quick)},
                "wall_s": time.perf_counter() - t0,
                "events": kernel_event_count() - ev0,
            }
        finally:
            if session_cm is not None:
                session_cm.__exit__(None, None, None)
        payload = {
            "experiment_id": experiment_id,
            "title": result.title,
            "rendered": result.rendered,
            "comparisons": [list(row) for row in result.comparisons],
            "wall_s": time.perf_counter() - t0,
            "events": kernel_event_count() - ev0,
            "data": _jsonable(getattr(result, "data", None)),
        }
        if session is not None:
            payload["trace"] = session.payload()
        return payload


#: Process-wide engine used by the picklable pool/worker entry points.
ENGINE = ExecutionEngine()


def pool_worker(args: tuple) -> dict:
    """``multiprocessing.Pool`` entry point (module-level for picklability)."""
    experiment_id, quick, trace = args
    return ENGINE.execute(experiment_id, quick, trace)
