"""Benchmark harness: experiments reproducing every table and figure."""

from .figures import Series, ascii_plot, render_series_table, series_to_csv
from .harness import Experiment, ExperimentResult, all_ids, get, register, run
from .runner import ResultCache, RunRecord, cache_key, run_experiments, write_json
from .tables import fmt_ratio, render_table

__all__ = [
    "Experiment",
    "ExperimentResult",
    "register",
    "get",
    "run",
    "all_ids",
    "RunRecord",
    "ResultCache",
    "cache_key",
    "run_experiments",
    "write_json",
    "render_table",
    "fmt_ratio",
    "Series",
    "render_series_table",
    "ascii_plot",
    "series_to_csv",
]
