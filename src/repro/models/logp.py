"""LogP parameter extraction (the model behind Fig 10).

The paper frames its host-overhead measurement in the LogP model
[Culler et al., PPoPP'93]: a message costs the sender an overhead **o**
(CPU time that cannot overlap with other sends), the network imposes a
gap **g** (minimum inter-message interval, the reciprocal of the
small-message rate), and delivery adds a latency **L**.

:func:`extract_logp` drives the micro-benchmarks to fit the triple for a
given buffer combination; :class:`LogPParameters.predict_exchange` then
estimates simple communication patterns, giving a closed-form sanity
check against the simulated applications.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..apenet.buflist import BufferKind
from ..bench.microbench import pingpong_latency, sender_gap, unidirectional_bandwidth

__all__ = ["LogPParameters", "extract_logp"]


@dataclass(frozen=True)
class LogPParameters:
    """The fitted LogP triple plus the long-message bandwidth (all ns/B)."""

    L: float  # wire+switch+RX latency, ns
    o: float  # sender overhead per message, ns
    g: float  # minimum gap between messages, ns
    G: float  # per-byte gap for long messages (1/bandwidth), ns per byte
    msg_size: int

    def predict_send_time(self, nbytes: int) -> float:
        """End-to-end time of one isolated message."""
        return self.o + self.L + nbytes * self.G

    def predict_stream_rate(self, nbytes: int) -> float:
        """Steady-state bytes/ns for back-to-back messages."""
        per_msg = max(self.g, nbytes * self.G)
        return nbytes / per_msg

    def predict_exchange(self, nbytes: int, n_messages: int) -> float:
        """Duration of a one-way burst of *n_messages* messages."""
        per_msg = max(self.g, nbytes * self.G)
        return self.o + self.L + n_messages * per_msg


def extract_logp(
    src_kind: BufferKind = BufferKind.HOST,
    dst_kind: BufferKind = BufferKind.HOST,
    small: int = 128,
    big: int = 1 << 20,
    **overrides,
) -> LogPParameters:
    """Fit (L, o, g, G) for a buffer combination on a fresh 2-node torus.

    * **o** — the Fig 10 measurement: per-message run time of the
      bandwidth test at a small size;
    * **g** — reciprocal of the small-message streaming rate;
    * **G** — reciprocal of the large-message bandwidth;
    * **L** — half-RTT minus the sender overhead.
    """
    o = sender_gap(src_kind, dst_kind, small, n_messages=32, **overrides)
    small_bw = unidirectional_bandwidth(
        src_kind, dst_kind, small, n_messages=48, **overrides
    ).bandwidth
    g = small / small_bw
    big_bw = unidirectional_bandwidth(
        src_kind, dst_kind, big, n_messages=6, **overrides
    ).bandwidth
    G = 1.0 / big_bw
    half_rtt = pingpong_latency(src_kind, dst_kind, small, **overrides).half_rtt
    L = max(half_rtt - o, 0.0)
    return LogPParameters(L=L, o=o, g=g, G=G, msg_size=small)
