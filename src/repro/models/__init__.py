"""Analytical models fitted from the simulated micro-benchmarks.

Closes the loop on the paper's latency/bandwidth discussion (§V): LogP
parameter extraction from the simulated ping-pong sweeps, so the
reproduction can report o/g/L figures comparable to the host-vs-GPU
breakdowns the paper derives from its hardware measurements.
"""

from .logp import LogPParameters, extract_logp

__all__ = ["LogPParameters", "extract_logp"]
