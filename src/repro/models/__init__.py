"""Analytical models fitted from the simulated micro-benchmarks."""

from .logp import LogPParameters, extract_logp

__all__ = ["LogPParameters", "extract_logp"]
