"""Unified observability layer: spans, counters, Chrome-trace export.

The paper's analysis leans on *seeing into* the stack — a PCIe bus analyzer
decomposing the Fig 3 G-G transfer into request/completion phases, and
per-block timing of the ``GPU_P2P_TX`` engines and the Nios II RX path
(§IV-§V).  This package is the reproduction's equivalent instrument: a
zero-overhead-when-off tracing layer threaded through every simulated
component (DES kernel channels and FIFOs, the PCIe fabric, the APEnet+
TX/Nios/RX/torus pipeline, GPU DMA engines and the MPI shims).

Activate a :class:`TraceSession`, run any workload, and export the recorded
spans/counters as Chrome ``trace_event`` JSON loadable in Perfetto or
``chrome://tracing``.  Observation is *observation-only*: traced runs are
bit-identical to untraced ones (same golden numbers, same event counts) —
see ``docs/OBSERVABILITY.md`` and DESIGN.md §9.
"""

from .chrome import chrome_trace_doc, validate_chrome_trace, write_chrome_trace
from .report import diff_traces, summarize_trace
from .session import Span, TraceSession

__all__ = [
    "TraceSession",
    "Span",
    "chrome_trace_doc",
    "write_chrome_trace",
    "validate_chrome_trace",
    "summarize_trace",
    "diff_traces",
]
