"""Trace sessions: the recording half of :mod:`repro.obs`.

A :class:`TraceSession` collects *span*, *counter* and *instant* records
from every :class:`~repro.sim.core.Simulator` constructed while the session
is active (``with session.activate(): ...``).  Components never talk to the
session directly — each simulator gets a small per-run *scope*
(``sim._obs``) that stamps records with the simulator's run index and reads
timestamps from ``sim.now``, mirroring the paper's methodology of timing
each pipeline block (TX engine, Nios II firmware, RX DMA — §IV-§V) in situ.

The discipline that keeps traced runs bit-identical to untraced ones:

* probe sites only *read* simulation state (``sim.now``, queue depths) and
  never create events, acquire resources, or advance time;
* span ends ride existing completion events (``done.callbacks.append``) or
  use completion times the model already computed (:meth:`_SimScope.span_at`),
  so the event heap and sequence numbers are untouched;
* when no session is active ``sim._obs`` is ``None`` and every probe site
  reduces to one attribute load and an is-None test.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator, Optional

from ..sim import core as _kernel

__all__ = ["TraceSession", "Span"]

# A bounded record buffer so a runaway full-parameter sweep cannot eat the
# heap: beyond the cap new records are counted in ``dropped`` and discarded
# (never silently — exports and summaries surface the drop count).
DEFAULT_MAX_EVENTS = 2_000_000


class Span:
    """An open interval on one component's timeline.

    Returned by ``scope.span(component, name)``; closed by :meth:`end`,
    by using it as a context manager, or by appending :meth:`end_event`
    to an existing completion event's callbacks.  Ending twice is a no-op
    so spans can safely ride events with multiple observers.
    """

    __slots__ = ("_scope", "component", "name", "begin", "args", "_open")

    def __init__(self, scope: "_SimScope", component: str, name: str, args: dict):
        self._scope = scope
        self.component = component
        self.name = name
        self.begin = scope.sim.now
        self.args = args
        self._open = True

    def end(self) -> None:
        """Close the span at the simulator's current time."""
        if not self._open:
            return
        self._open = False
        scope = self._scope
        scope._emit_span(self.component, self.name, self.begin, scope.sim.now, self.args)

    def end_event(self, _event=None) -> None:
        """Event-callback adapter: ``done.callbacks.append(span.end_event)``."""
        self.end()

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.end()


class _SimScope:
    """One simulator's view into a session (stamps the run index)."""

    __slots__ = ("session", "sim", "run")

    def __init__(self, session: "TraceSession", sim, run: int):
        self.session = session
        self.sim = sim
        self.run = run

    # -- recording ----------------------------------------------------------

    def span(self, component: str, name: str, **args: Any) -> Span:
        """Open a span starting now; close it with ``.end()``."""
        return Span(self, component, name, args)

    def span_at(
        self, component: str, name: str, begin: float, end: float, **args: Any
    ) -> None:
        """Record a completed span from times the model already computed.

        This is the zero-event path for components like
        :class:`~repro.sim.channel.Channel` that know their completion time
        up front: no callback, no state, just a record.
        """
        self._emit_span(component, name, begin, end, args)

    def counter(self, component: str, track: str, value: float) -> None:
        """Sample *track* (a named value series, e.g. queue depth) at now."""
        session = self.session
        events = session.events
        if len(events) >= session.max_events:
            session.dropped += 1
            return
        events.append(
            {
                "ph": "C",
                "run": self.run,
                "comp": component,
                "name": track,
                "ts": self.sim.now,
                "value": value,
            }
        )

    def instant(self, component: str, name: str, **args: Any) -> None:
        """Record a point-in-time marker (e.g. a dropped RX packet)."""
        session = self.session
        events = session.events
        if len(events) >= session.max_events:
            session.dropped += 1
            return
        rec = {
            "ph": "i",
            "run": self.run,
            "comp": component,
            "name": name,
            "ts": self.sim.now,
        }
        if args:
            rec["args"] = args
        events.append(rec)

    # -- internal -----------------------------------------------------------

    def _emit_span(
        self, component: str, name: str, begin: float, end: float, args: dict
    ) -> None:
        session = self.session
        events = session.events
        if len(events) >= session.max_events:
            session.dropped += 1
            return
        rec = {
            "ph": "X",
            "run": self.run,
            "comp": component,
            "name": name,
            "ts": begin,
            "dur": end - begin,
        }
        if args:
            rec["args"] = args
        events.append(rec)


class _FanoutSpan:
    """A span mirrored into several sessions (nested activations)."""

    __slots__ = ("_spans",)

    def __init__(self, spans: list):
        self._spans = spans

    def end(self) -> None:
        for sp in self._spans:
            sp.end()

    def end_event(self, _event=None) -> None:
        self.end()

    def __enter__(self) -> "_FanoutSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.end()


class _FanoutScope:
    """Forwards one simulator's records to every active session.

    Only exists while sessions are *nested* (e.g. the selftest smoke phase
    opening a local session under a global ``--trace``); the common case is
    a single session and a plain :class:`_SimScope`.
    """

    __slots__ = ("scopes", "sim")

    def __init__(self, scopes: list):
        self.scopes = scopes
        self.sim = scopes[0].sim

    def span(self, component: str, name: str, **args: Any) -> _FanoutSpan:
        return _FanoutSpan([s.span(component, name, **args) for s in self.scopes])

    def span_at(
        self, component: str, name: str, begin: float, end: float, **args: Any
    ) -> None:
        for s in self.scopes:
            s.span_at(component, name, begin, end, **args)

    def counter(self, component: str, track: str, value: float) -> None:
        for s in self.scopes:
            s.counter(component, track, value)

    def instant(self, component: str, name: str, **args: Any) -> None:
        for s in self.scopes:
            s.instant(component, name, **args)


class TraceSession:
    """Recording context for one traced run (or one experiment).

    Usage::

        session = TraceSession(label="selftest")
        with session.activate():
            ...  # build Simulators, run workloads
        doc = chrome_trace_doc({"selftest": session.payload()})

    Each ``Simulator()`` constructed while active registers with the session
    and gets a run index (construction order — deterministic, so traces are
    identical across ``--jobs`` values and across processes).
    """

    def __init__(self, label: str = "", max_events: int = DEFAULT_MAX_EVENTS):
        self.label = label
        self.max_events = max_events
        self.events: list[dict] = []
        self.dropped = 0
        self.runs = 0

    # -- kernel hooks --------------------------------------------------------

    def scope_for(self, sim) -> _SimScope:
        """Called by ``Simulator.__init__``: bind *sim* to this session."""
        run = self.runs
        self.runs += 1
        return _SimScope(self, sim, run)

    def fanout_scope(self, sim, sessions: tuple) -> _FanoutScope:
        """Bind *sim* to every active session (nested activations)."""
        return _FanoutScope([s.scope_for(sim) for s in sessions])

    # -- activation ----------------------------------------------------------

    @contextmanager
    def activate(self) -> Iterator["TraceSession"]:
        """Make this session receive records from new Simulators."""
        _kernel.push_observer(self)
        try:
            yield self
        finally:
            _kernel.pop_observer(self)

    # -- inspection ----------------------------------------------------------

    def components(self) -> list[str]:
        """Sorted distinct component names seen so far."""
        return sorted({rec["comp"] for rec in self.events})

    def span_count(self) -> int:
        """Number of completed spans recorded so far."""
        return sum(1 for rec in self.events if rec["ph"] == "X")

    def payload(self, label: Optional[str] = None) -> dict:
        """JSON-ready dict for export / shipping across worker processes."""
        return {
            "label": self.label if label is None else label,
            "runs": self.runs,
            "dropped": self.dropped,
            "events": self.events,
        }
