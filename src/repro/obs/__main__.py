"""CLI for the observability layer: ``python -m repro.obs <command>``.

Three subcommands close the loop from simulation to analysis without
leaving the terminal, mirroring how the paper instruments one transfer at a
time (§IV's microbenchmarks, Fig 3's analyzer capture):

* ``export EXPERIMENT... -o trace.json`` — run registered experiments under
  a fresh :class:`~repro.obs.TraceSession` each and write one merged Chrome
  trace (open it in https://ui.perfetto.dev);
* ``summary trace.json`` — per-component span statistics, latency
  histograms and queue-occupancy counter extrema;
* ``diff a.json b.json`` — per-pipeline-stage comparison of two traces
  (P2P vs staged, clean vs faulty, before vs after a change).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .chrome import validate_chrome_trace, write_chrome_trace
from .report import diff_traces, summarize_trace


def _load(path: str) -> dict:
    with Path(path).open(encoding="utf-8") as fh:
        return json.load(fh)


def _cmd_summary(args: argparse.Namespace) -> int:
    doc = _load(args.trace)
    problems = validate_chrome_trace(doc)
    if problems:
        print(f"note: {len(problems)} schema problem(s); first: {problems[0]}")
    print(summarize_trace(doc))
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    print(
        diff_traces(
            _load(args.trace_a),
            _load(args.trace_b),
            label_a=Path(args.trace_a).stem,
            label_b=Path(args.trace_b).stem,
        )
    )
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from ..bench import runner

    records = runner.run_experiments(
        args.experiments,
        quick=not args.full,
        jobs=args.jobs,
        use_cache=False,
        trace=True,
    )
    failed = [rec.experiment_id for rec in records if rec.status == "error"]
    traces = {rec.experiment_id: rec.trace for rec in records if rec.trace is not None}
    if failed:
        print(f"error: experiment(s) failed: {', '.join(failed)}", file=sys.stderr)
        return 1
    out = write_chrome_trace(args.output, traces)
    n_events = sum(len(p["events"]) for p in traces.values())
    print(f"wrote {out} ({len(traces)} experiment(s), {n_events} records)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect and export simulation traces (Chrome trace_event JSON).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_summary = sub.add_parser("summary", help="per-component span/counter statistics")
    p_summary.add_argument("trace", help="exported trace JSON file")
    p_summary.set_defaults(fn=_cmd_summary)

    p_diff = sub.add_parser("diff", help="compare two exported traces")
    p_diff.add_argument("trace_a")
    p_diff.add_argument("trace_b")
    p_diff.set_defaults(fn=_cmd_diff)

    p_export = sub.add_parser("export", help="run experiments and export a trace")
    p_export.add_argument("experiments", nargs="+", help="registered experiment ids")
    p_export.add_argument("-o", "--output", default="trace.json")
    p_export.add_argument("--full", action="store_true", help="paper parameters")
    p_export.add_argument("-j", "--jobs", type=int, default=1)
    p_export.set_defaults(fn=_cmd_export)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    try:
        code = main()
        sys.stdout.flush()
    except BrokenPipeError:
        # Downstream pager/head closed the pipe: normal CLI termination,
        # not an error worth a traceback.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        code = 0
    raise SystemExit(code)
