"""Chrome ``trace_event`` export for :mod:`repro.obs` sessions.

Converts the flat per-session record lists into the JSON Object Format the
Chrome tracing ecosystem understands (Perfetto, ``chrome://tracing``,
``trace_processor``): complete events (``ph: "X"``) for spans, counter
events (``ph: "C"``) for queue-occupancy timelines, instant events
(``ph: "i"``) for markers, and metadata events naming each track.  This is
the reproduction's stand-in for the paper's PCIe bus-analyzer screenshots
(Fig 3): load the exported file in Perfetto and the request/completion
phases of a G-G transfer appear as nested spans per component.

Track model: one *process* (pid) per (experiment, simulator-run, component)
triple, named ``experiment/component``; spans within a process are packed
onto the fewest *thread* (tid) lanes such that overlapping spans never share
a lane — assignment is deterministic (spans sorted by begin time with record
order as tie-break, first free lane wins), so exports are byte-identical
across ``--jobs`` values.  Timestamps convert from simulated nanoseconds to
the format's microseconds.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

__all__ = ["chrome_trace_doc", "write_chrome_trace", "validate_chrome_trace"]

# Spans and instants go on lanes 1..N; lane 0 is reserved for counters and
# instants so value tracks do not interleave with duration lanes.
_META_LANE = 0


def _lane_allocate(spans: list[tuple[int, dict]]) -> list[tuple[int, dict]]:
    """Assign each span a lane so overlapping spans never share one.

    *spans* is ``[(record_index, record), ...]``; returns ``[(lane, record)]``
    in the same deterministic order.  Greedy first-fit over lanes ordered by
    index: a lane is free when its last span ended at or before this span's
    begin (exact float comparison — simulated time is exact).
    """
    ordered = sorted(spans, key=lambda item: (item[1]["ts"], item[0]))
    lane_free_at: list[float] = []
    out: list[tuple[int, dict]] = []
    for _, rec in ordered:
        begin = rec["ts"]
        end = begin + rec["dur"]
        for lane, free_at in enumerate(lane_free_at):
            if free_at <= begin:
                lane_free_at[lane] = end
                out.append((lane + 1, rec))
                break
        else:
            lane_free_at.append(end)
            out.append((len(lane_free_at), rec))
    return out


def chrome_trace_doc(traces: dict) -> dict:
    """Build a Chrome trace document from session payloads.

    *traces* maps a label (experiment id) to a session payload as returned
    by :meth:`~repro.obs.session.TraceSession.payload`.  Iteration order of
    *traces* fixes pid assignment, so pass an ordered mapping (e.g. sorted
    by experiment id) for reproducible output.
    """
    trace_events: list[dict] = []
    pid = 0
    total_dropped = 0
    for label, payload in traces.items():
        total_dropped += payload.get("dropped", 0)
        multi_run = payload.get("runs", 1) > 1
        # Group records by (run, component) in first-appearance order.
        tracks: dict[tuple, list[tuple[int, dict]]] = {}
        for idx, rec in enumerate(payload["events"]):
            tracks.setdefault((rec["run"], rec["comp"]), []).append((idx, rec))
        for (run, comp), recs in tracks.items():
            pid += 1
            proc_name = f"{label}/{comp}"
            if multi_run:
                proc_name += f"#sim{run}"
            trace_events.append(
                {
                    "ph": "M",
                    "pid": pid,
                    "tid": _META_LANE,
                    "name": "process_name",
                    "args": {"name": proc_name},
                }
            )
            trace_events.append(
                {
                    "ph": "M",
                    "pid": pid,
                    "tid": _META_LANE,
                    "name": "process_sort_index",
                    "args": {"sort_index": pid},
                }
            )
            spans = [(idx, rec) for idx, rec in recs if rec["ph"] == "X"]
            lanes_used = 0
            for lane, rec in _lane_allocate(spans):
                lanes_used = max(lanes_used, lane)
                ev = {
                    "ph": "X",
                    "pid": pid,
                    "tid": lane,
                    "name": rec["name"],
                    "ts": rec["ts"] / 1e3,
                    "dur": rec["dur"] / 1e3,
                }
                if "args" in rec:
                    ev["args"] = rec["args"]
                trace_events.append(ev)
            for lane in range(1, lanes_used + 1):
                trace_events.append(
                    {
                        "ph": "M",
                        "pid": pid,
                        "tid": lane,
                        "name": "thread_name",
                        "args": {"name": f"lane {lane}"},
                    }
                )
            for _, rec in recs:
                if rec["ph"] == "C":
                    trace_events.append(
                        {
                            "ph": "C",
                            "pid": pid,
                            "tid": _META_LANE,
                            "name": rec["name"],
                            "ts": rec["ts"] / 1e3,
                            "args": {"value": rec["value"]},
                        }
                    )
                elif rec["ph"] == "i":
                    ev = {
                        "ph": "i",
                        "pid": pid,
                        "tid": _META_LANE,
                        "name": rec["name"],
                        "ts": rec["ts"] / 1e3,
                        "s": "p",
                    }
                    if "args" in rec:
                        ev["args"] = rec["args"]
                    trace_events.append(ev)
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ns",
        "otherData": {
            "generator": "repro.obs",
            "experiments": list(traces.keys()),
            "dropped": total_dropped,
        },
    }


def write_chrome_trace(path: Union[str, Path], traces: dict) -> Path:
    """Export *traces* (see :func:`chrome_trace_doc`) to *path* as JSON."""
    doc = chrome_trace_doc(traces)
    out = Path(path)
    if out.parent and str(out.parent) not in ("", "."):
        out.parent.mkdir(parents=True, exist_ok=True)
    with out.open("w", encoding="utf-8") as fh:
        json.dump(doc, fh, sort_keys=True, separators=(",", ":"))
        fh.write("\n")
    return out


def validate_chrome_trace(doc: dict) -> list[str]:
    """Schema-check a trace document; returns a list of problems (empty = ok).

    Checks the subset of the trace_event format this exporter emits: the
    top-level shape, per-phase required keys, non-negative timestamps and
    durations, and that every pid referenced by an event carries a
    ``process_name`` metadata record.
    """
    problems: list[str] = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    named_pids = set()
    used_pids = set()
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in ("X", "C", "i", "M"):
            problems.append(f"{where}: unknown phase {ph!r}")
            continue
        for key in ("pid", "tid", "name"):
            if key not in ev:
                problems.append(f"{where}: missing {key!r}")
        if ph == "M":
            if ev.get("name") == "process_name":
                named_pids.add(ev.get("pid"))
            continue
        if "pid" in ev:
            used_pids.add(ev["pid"])
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: bad ts {ts!r}")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: bad dur {dur!r}")
        elif ph == "C":
            value = ev.get("args", {}).get("value")
            if not isinstance(value, (int, float)):
                problems.append(f"{where}: counter without numeric args.value")
        elif ph == "i":
            if ev.get("s") not in ("g", "p", "t"):
                problems.append(f"{where}: instant scope {ev.get('s')!r}")
    for pid in sorted(used_pids - named_pids, key=str):
        problems.append(f"pid {pid} has events but no process_name metadata")
    return problems
