"""Text summaries and A/B diffs of exported Chrome traces.

The analysis half of :mod:`repro.obs`: where the paper reads latency
breakdowns off a bus analyzer (Fig 3) and per-block timing tables (§IV-§V),
this module reads them back out of an exported trace file — per-component
span statistics (count, total, mean, p50/p99, a log₂ duration histogram),
counter extrema for queue-occupancy tracks, and a side-by-side diff of two
traces (e.g. P2P vs staged, or clean vs fault-injected) showing where the
time went.

Everything here consumes the *exported document* (not live sessions), so
``python -m repro.obs summary`` works on any trace file, including ones
produced on another machine or downloaded from a CI artifact.
"""

from __future__ import annotations

import math
from typing import Optional

from ..bench.tables import render_table
from ..sim.stats import percentile

__all__ = ["span_stats", "summarize_trace", "diff_traces"]

_HIST_GLYPHS = " ▁▂▃▄▅▆▇█"


def _process_names(doc: dict) -> dict:
    names = {}
    for ev in doc.get("traceEvents", []):
        if ev.get("ph") == "M" and ev.get("name") == "process_name":
            names[ev["pid"]] = ev["args"]["name"]
    return names


def _component_of(process_name: str) -> str:
    # Process names are "experiment/component[#simN]" (see chrome.py).
    comp = process_name.split("/", 1)[1] if "/" in process_name else process_name
    return comp.split("#", 1)[0]


def span_stats(doc: dict) -> dict:
    """Aggregate span durations by (component, span name).

    Returns ``{(component, name): [durations_us...]}`` pulled from an
    exported trace document.  Durations are in microseconds (the trace
    format's native unit).
    """
    names = _process_names(doc)
    stats: dict = {}
    for ev in doc.get("traceEvents", []):
        if ev.get("ph") != "X":
            continue
        comp = _component_of(names.get(ev["pid"], str(ev["pid"])))
        stats.setdefault((comp, ev["name"]), []).append(ev["dur"])
    return stats


def _histogram(durations: list, buckets: int = 8) -> str:
    """A compact log₂ histogram sparkline over span durations."""
    if not durations:
        return ""
    exps = [max(0, int(math.log2(d)) if d >= 1.0 else 0) for d in durations]
    lo, hi = min(exps), max(exps)
    span = max(1, hi - lo + 1)
    counts = [0] * min(buckets, span)
    scale = len(counts) / span
    for e in exps:
        counts[min(len(counts) - 1, int((e - lo) * scale))] += 1
    peak = max(counts)
    return "".join(
        _HIST_GLYPHS[min(len(_HIST_GLYPHS) - 1, (c * (len(_HIST_GLYPHS) - 1) + peak - 1) // peak)]
        if c
        else _HIST_GLYPHS[0]
        for c in counts
    )


def _counter_rows(doc: dict) -> list:
    names = _process_names(doc)
    tracks: dict = {}
    for ev in doc.get("traceEvents", []):
        if ev.get("ph") != "C":
            continue
        comp = _component_of(names.get(ev["pid"], str(ev["pid"])))
        key = (comp, ev["name"])
        value = ev["args"]["value"]
        entry = tracks.setdefault(key, [0, value, value])
        entry[0] += 1
        entry[1] = max(entry[1], value)
        entry[2] = value  # records arrive in emission order: last sample
    return [
        [comp, name, n, peak, last]
        for (comp, name), (n, peak, last) in sorted(tracks.items())
    ]


def summarize_trace(doc: dict) -> str:
    """Render per-component span statistics and counter tracks as text."""
    stats = span_stats(doc)
    rows = []
    for (comp, name), durs in sorted(stats.items()):
        rows.append(
            [
                comp,
                name,
                len(durs),
                sum(durs),
                sum(durs) / len(durs),
                percentile(durs, 50),
                percentile(durs, 99),
                _histogram(durs),
            ]
        )
    out = [
        render_table(
            ["component", "span", "count", "total µs", "mean µs", "p50 µs", "p99 µs", "log2 hist"],
            rows,
            title="Span latency by component",
        )
    ]
    counter_rows = _counter_rows(doc)
    if counter_rows:
        out.append("")
        out.append(
            render_table(
                ["component", "track", "samples", "peak", "last"],
                counter_rows,
                title="Counter tracks (queue occupancy)",
            )
        )
    dropped = doc.get("otherData", {}).get("dropped", 0)
    if dropped:
        out.append("")
        out.append(f"WARNING: {dropped} records dropped at the session cap")
    return "\n".join(out)


def diff_traces(doc_a: dict, doc_b: dict, label_a: str = "A", label_b: str = "B") -> str:
    """Side-by-side per-(component, span) comparison of two traces.

    Useful for the paper's central comparisons — P2P vs staged (§V.A),
    clean vs fault-injected — the diff shows, per pipeline stage, how span
    counts and total time shift between the two runs.
    """
    stats_a = span_stats(doc_a)
    stats_b = span_stats(doc_b)
    rows = []
    for key in sorted(set(stats_a) | set(stats_b)):
        comp, name = key
        durs_a = stats_a.get(key, [])
        durs_b = stats_b.get(key, [])
        total_a = sum(durs_a)
        total_b = sum(durs_b)
        delta: Optional[float] = None
        if total_a > 0:
            delta = (total_b - total_a) / total_a * 100.0
        rows.append(
            [
                comp,
                name,
                len(durs_a),
                len(durs_b),
                total_a,
                total_b,
                "n.a." if delta is None else f"{delta:+.1f}%",
            ]
        )
    return render_table(
        [
            "component",
            "span",
            f"count {label_a}",
            f"count {label_b}",
            f"total µs {label_a}",
            f"total µs {label_b}",
            "Δ total",
        ],
        rows,
        title=f"Trace diff: {label_a} vs {label_b}",
    )
