"""Exact per-packet golden reference for the batched flow engine.

:func:`run_exact` drives a batch of :class:`~repro.scale.flow.
BulkTransfer`\\ s through the full per-packet APEnet+ stack — driver
descriptor feed, TX engine, torus links with credit flow control, RX
Nios II buffer-list walk — and reports the same
:class:`~repro.scale.flow.TransferAggregates` shape the flow engine
emits, so the parity harness can diff the two modes field by field.

The canonical setup keeps both modes on the same code path:

* a :class:`~repro.recovery.manager.RecoveryManager` is always attached
  (dormant managers are bit-identical to none, proven by the PR-5
  suites), with any dead links pre-marked before traffic starts;
* one landing buffer per (destination, kind) is registered up front, all
  inbound transfers landing at distinct offsets, and GPU source buffers
  are pre-registered — registration costs never bleed into transfer
  timing (a *settle* phase runs to quiescence before the epoch);
* transfers whose destination is unreachable under the dead-link set are
  not posted (mirroring ``reliable_put``'s unreachable verdict), in both
  modes;
* completion times are read from :class:`~repro.apenet.rx.RxCompletion`
  records (stamped at RX event-post time), so they are independent of
  receiver polling order.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..apenet.buflist import BufferKind
from ..apenet.config import DEFAULT_CONFIG, ApenetConfig
from ..gpu import FERMI_2050
from ..net.cluster import build_apenet_cluster
from ..net.topology import TorusShape
from ..recovery import RecoveryManager
from ..sim import Simulator
from .flow import BulkTransfer, TransferAggregates, hop_route, normalize_dead_links

__all__ = ["run_exact"]


def _alloc(node, kind: BufferKind, nbytes: int) -> int:
    if kind is BufferKind.GPU:
        return node.gpu.alloc(nbytes).addr
    return node.runtime.host_alloc(nbytes).addr


def run_exact(
    dims: Tuple[int, int, int],
    transfers: Sequence[BulkTransfer],
    config: Optional[ApenetConfig] = None,
    dead_links: Iterable = (),
    backend: Optional[str] = None,
) -> TransferAggregates:
    """Run *transfers* through the per-packet stack on a *dims* torus."""
    config = config or DEFAULT_CONFIG
    shape = TorusShape(*dims)
    dead = normalize_dead_links(shape, dead_links)

    sim = Simulator(backend=backend)
    manager = RecoveryManager(sim, shape)
    for coord, dim, direction in sorted(dead):
        manager.mark_dead(coord, dim, direction, site="scale.exact")
    cluster = build_apenet_cluster(
        sim,
        shape,
        config,
        gpu_specs=[FERMI_2050] * shape.size,
        recovery=manager,
    )

    # Reachability under the (static) dead-link set decides what is posted.
    reachable = [
        hop_route(shape, tr.src, tr.dst, dead) is not None for tr in transfers
    ]

    # -- allocation: one pooled buffer per (node, kind) role, transfers at
    # distinct offsets.  Pooling keeps buffer-list/V2P table sizes
    # independent of the transfer count, so the per-fragment scan costs
    # match the (small) calibration probes exactly.
    def _pool(role_key):  # (rank, kind) -> (base_addr, running_total)
        inbound_total: Dict[Tuple[int, BufferKind], int] = {}
        offsets: List[int] = []
        for tr in transfers:
            key = role_key(tr)
            offsets.append(inbound_total.get(key, 0))
            inbound_total[key] = inbound_total.get(key, 0) + tr.nbytes
        base = {
            key: _alloc(cluster.nodes[key[0]], key[1], max(total, 64))
            for key, total in sorted(
                inbound_total.items(), key=lambda kv: (kv[0][0], kv[0][1].value)
            )
        }
        return base, inbound_total, offsets

    landing_base, inbound_total, dst_offsets = _pool(lambda tr: (tr.dst, tr.dst_kind))
    source_base, outbound_total, src_offsets = _pool(lambda tr: (tr.src, tr.src_kind))
    dst_addrs = [
        landing_base[(tr.dst, tr.dst_kind)] + off
        for tr, off in zip(transfers, dst_offsets)
    ]
    src_addrs = [
        source_base[(tr.src, tr.src_kind)] + off
        for tr, off in zip(transfers, src_offsets)
    ]

    # -- settle phase: register everything, then drain to quiescence --------
    def _register(node, addr, nbytes):
        yield from node.endpoint.register(addr, nbytes)

    for key in sorted(landing_base, key=lambda kv: (kv[0], kv[1].value)):
        node = cluster.nodes[key[0]]
        sim.process(_register(node, landing_base[key], max(inbound_total[key], 64)))
    for key in sorted(source_base, key=lambda kv: (kv[0], kv[1].value)):
        if key[1] is BufferKind.GPU:
            node = cluster.nodes[key[0]]
            sim.process(_register(node, source_base[key], max(outbound_total[key], 64)))
    sim.run()
    epoch = sim.now

    # -- traffic phase ------------------------------------------------------
    completions: List[Optional[float]] = [None] * len(transfers)

    def sender(node, items):
        for idx, tr in items:
            target = epoch + tr.start
            if sim.now < target:
                yield sim.timeout(target - sim.now)
            yield from node.endpoint.put(
                tr.dst,
                src_addrs[idx],
                dst_addrs[idx],
                tr.nbytes,
                src_kind=tr.src_kind,
                tag=("bulk", idx),
            )

    def receiver(node, expected):
        got = 0
        while got < expected:
            rec = yield from node.endpoint.wait_event()
            tag = rec.tag
            if isinstance(tag, tuple) and tag and tag[0] == "bulk":
                completions[tag[1]] = rec.time - epoch
                got += 1

    by_src: Dict[int, List[Tuple[int, BulkTransfer]]] = {}
    expected_at: Dict[int, int] = {}
    for i, tr in enumerate(transfers):
        if not reachable[i]:
            continue
        by_src.setdefault(tr.src, []).append((i, tr))
        expected_at[tr.dst] = expected_at.get(tr.dst, 0) + 1
    for src in sorted(by_src):
        items = sorted(by_src[src], key=lambda it: (it[1].start, it[0]))
        sim.process(sender(cluster.nodes[src], items))
    for dst in sorted(expected_at):
        sim.process(receiver(cluster.nodes[dst], expected_at[dst]))
    sim.run()

    # -- aggregates ---------------------------------------------------------
    link_bytes: Dict[Tuple[int, int, int], int] = {}
    link_packets: Dict[Tuple[int, int, int], int] = {}
    link_busy: Dict[Tuple[int, int, int], float] = {}
    for key in sorted(cluster.links):
        link = cluster.links[key]
        if link.packets_sent:
            link_bytes[key] = link.bytes_sent
            link_packets[key] = link.packets_sent
            link_busy[key] = link.channel._busy_time

    finished = [c for c in completions if c is not None]
    return TransferAggregates(
        bytes_delivered=sum(
            tr.nbytes for tr, c in zip(transfers, completions) if c is not None
        ),
        completions=tuple(completions),
        link_bytes=link_bytes,
        link_packets=link_packets,
        link_busy=link_busy,
        makespan=max(finished) if finished else 0.0,
    )
