"""Batched bulk-flow engine: the NumPy/analytic twin of the per-packet path.

Large RDMA PUTs are simulated as *flow records* instead of per-packet
events: fragment fan-out, wire bytes and per-link byte/packet/busy
accounting are computed analytically (these aggregates are **lossless**
— bit-identical to the exact per-packet driver in
:mod:`repro.scale.exact` by construction), while completion *times* come
from a probe-calibrated piecewise-affine latency model.

Calibration (:func:`calibrate`) runs a handful of tiny exact-DES probes
through the golden per-packet stack and fits

* a piecewise-linear base latency over fragment-count knots (exact at the
  knots, slope beyond the last knot equal to the steady per-fragment
  service time of the RX Nios II — the pipeline bottleneck, §IV.C),
* a per-hop term (pipelined link+router traversal),
* per-byte sensitivities for a partial last fragment, and
* back-to-back *occupancy* knots (the steady-state gap between
  consecutive same-path messages, the LogP ``g`` of the flow model).

Because the exact simulator is deterministic and backend-bit-identical,
calibration is a pure function of the :class:`~repro.apenet.config.
ApenetConfig` and the buffer kinds; it is memoised module-wide.

Contention between concurrent flows is modelled with per-resource
*free times* (TX endpoint, RX endpoint, every traversed link): a flow
begins service when every resource on its path is free
(``begin = max(start, max_r free_r)``), completes at ``begin + T_lat``,
and holds each resource for its own occupancy (``free_r = begin +
O_r``).  This reproduces the probed back-to-back gap exactly for
same-path sequences and degrades gracefully for overlapping
cross-traffic (each contender pushes later flows back by its
serialisation load, not by its full latency); the parity suite in
``tests/scale/`` measures and pins the documented tolerances.

Routing mirrors :class:`~repro.recovery.manager.RecoveryManager` hop by
hop: with dead links present every hop re-runs
:meth:`~repro.net.topology.TorusShape.route_avoiding` from the current
node, so flow paths are bit-identical to the per-packet router's.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..apenet.buflist import BufferKind
from ..apenet.config import DEFAULT_CONFIG, ApenetConfig
from ..net.packet import MAX_PACKET_PAYLOAD, PACKET_HEADER_BYTES
from ..net.topology import TorusShape

__all__ = [
    "BulkTransfer",
    "TransferAggregates",
    "FlowCalibration",
    "FlowRecord",
    "FlowNetwork",
    "ParityReport",
    "calibrate",
    "compare_aggregates",
    "fragment_count",
    "last_fragment_bytes",
    "wire_bytes",
    "hop_route",
]

#: Fragment-count knots probed during calibration.  Base latency is exact
#: at every knot and linearly interpolated between them; beyond the last
#: knot the slope is the steady per-fragment RX service time, taken from
#: the last two (deep-pipeline) knots.
LATENCY_KNOTS: Tuple[int, ...] = (1, 2, 3, 4, 6, 9, 13, 17, 25, 33, 49, 65, 97, 129)

#: Payload-byte knots for single-fragment PUTs (the sub-4-KiB path is
#: visibly nonlinear: host-read request chunking, pipeline fill).
SINGLE_BYTE_KNOTS: Tuple[int, ...] = (64, 512, 1024, 2048, 3072, MAX_PACKET_PAYLOAD)

#: Last-fragment payload knots for multi-fragment PUTs (delta vs full,
#: probed at both a shallow (n=2) and a deep (n=9) pipeline and blended).
MULTI_LAST_KNOTS: Tuple[int, ...] = (64, 512, 1024, 2048, 3072, MAX_PACKET_PAYLOAD)

#: Fragment-count knots for the back-to-back occupancy probes.
OCCUPANCY_KNOTS: Tuple[int, ...] = (1, 9, 33)


# ---------------------------------------------------------------------------
# Shared transfer / aggregate types (used by both the flow and exact drivers)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BulkTransfer:
    """One bulk RDMA PUT: *nbytes* from rank *src* to rank *dst*.

    ``start`` is the requested post time in ns after the common epoch
    (same-source transfers post sequentially, never earlier than this).
    """

    src: int
    dst: int
    nbytes: int
    start: float = 0.0
    src_kind: BufferKind = BufferKind.HOST
    dst_kind: BufferKind = BufferKind.HOST


@dataclass
class TransferAggregates:
    """Aggregate outcome of a batch of bulk transfers, mode-agnostic.

    The integer fields (``bytes_delivered``, ``link_bytes``,
    ``link_packets``) are the *lossless* aggregates: flow mode reproduces
    them bit-exactly.  ``completions`` (ns after the epoch, ``None`` for
    undeliverable transfers) and ``link_busy`` carry the documented
    tolerance.  Link keys are ``(src_rank, dim, direction)``.
    """

    bytes_delivered: int
    completions: Tuple[Optional[float], ...]
    link_bytes: Dict[Tuple[int, int, int], int]
    link_packets: Dict[Tuple[int, int, int], int]
    link_busy: Dict[Tuple[int, int, int], float]
    makespan: float


# ---------------------------------------------------------------------------
# Fragment arithmetic (shared, lossless)
# ---------------------------------------------------------------------------


def fragment_count(nbytes: int) -> int:
    """Number of wire packets a *nbytes* PUT fragments into (§IV.A)."""
    return max(1, math.ceil(nbytes / MAX_PACKET_PAYLOAD))


def last_fragment_bytes(nbytes: int) -> int:
    """Payload bytes of the final (possibly partial) fragment."""
    rem = nbytes % MAX_PACKET_PAYLOAD
    return MAX_PACKET_PAYLOAD if rem == 0 and nbytes > 0 else rem


def wire_bytes(nbytes: int) -> int:
    """Total bytes on every traversed link: payload + per-packet headers."""
    return nbytes + fragment_count(nbytes) * PACKET_HEADER_BYTES


# ---------------------------------------------------------------------------
# Routing (mirrors RecoveryManager._lookup hop by hop)
# ---------------------------------------------------------------------------


def normalize_dead_links(
    shape: TorusShape, dead_links: Iterable
) -> frozenset:
    """Canonicalise dead-link specs to ``(src_coord, dim, direction)``.

    Accepts either coordinates or ranks for the source endpoint, so test
    generators can speak ranks while the recovery layer speaks coords.
    """
    out = set()
    for src, dim, direction in dead_links:
        coord = shape.coord(src) if isinstance(src, int) else tuple(src)
        out.add((coord, int(dim), int(direction)))
    return frozenset(out)


def hop_route(
    shape: TorusShape,
    src: int,
    dst: int,
    dead: frozenset = frozenset(),
) -> Optional[Tuple[Tuple[int, int, int], ...]]:
    """Hop list ``((src_rank, dim, direction), ...)`` from *src* to *dst*.

    Fault-free this is the dimension-ordered :meth:`TorusShape.route`.
    With dead links it re-runs ``route_avoiding`` from every intermediate
    node and takes the *first* hop each time — exactly what the
    per-packet router does via ``RecoveryManager.next_hop``, so detours
    match the exact driver hop for hop.  Returns ``None`` when *dst* is
    unreachable (partition verdict).
    """
    cur = shape.coord(src)
    goal = shape.coord(dst)
    hops: List[Tuple[int, int, int]] = []
    while cur != goal:
        if dead:
            path = shape.route_avoiding(cur, goal, dead)
            if not path:
                return None
            dim, direction = path[0]
        else:
            dim, direction = shape.route(cur, goal)[0]
        hops.append((shape.rank(cur), dim, direction))
        cur = shape.neighbor(cur, dim, direction)
    return tuple(hops)


# ---------------------------------------------------------------------------
# Calibration
# ---------------------------------------------------------------------------


def _interp(knots: Sequence[int], values: Sequence[float], x: float, tail_slope: float) -> float:
    """Piecewise-linear through (knots, values); linear tail beyond the end."""
    if x >= knots[-1]:
        return values[-1] + (x - knots[-1]) * tail_slope
    if x <= knots[0]:
        return values[0]
    i = bisect.bisect_left(knots, x)
    if knots[i] == x:
        return values[i]
    lo, hi = knots[i - 1], knots[i]
    frac = (x - lo) / (hi - lo)
    return values[i - 1] + frac * (values[i] - values[i - 1])


@dataclass(frozen=True)
class FlowCalibration:
    """Probe-fitted latency/occupancy model for one (src_kind, dst_kind).

    All times in ns.  ``knot_times[i]`` is the exact one-hop completion
    latency of a ``LATENCY_KNOTS[i]``-fragment PUT with a full last
    fragment; ``single_byte_times`` covers the sub-4-KiB single-fragment
    curve, ``multi_last_delta`` the partial-last-fragment correction, and
    ``occ_times`` the back-to-back message gap.  ``hop_base`` is the
    store-and-forward constant per extra hop (link + router latency); the
    last fragment's wire serialisation is added per hop at evaluation
    time, which is what makes the probed n=9 hop gap reproduce exactly.
    """

    src_kind: BufferKind
    dst_kind: BufferKind
    bandwidth: float  # link bandwidth, bytes/ns (for hop serialisation)
    knots: Tuple[int, ...]
    knot_times: Tuple[float, ...]
    single_byte_knots: Tuple[int, ...]
    single_byte_times: Tuple[float, ...]
    multi_last_knots: Tuple[int, ...]
    multi_last_delta_shallow: Tuple[float, ...]  # probed at n=2
    multi_last_delta: Tuple[float, ...]  # probed at n=9 (deep pipeline)
    occ_knots: Tuple[int, ...]
    occ_times: Tuple[float, ...]
    occ_single_small: float  # back-to-back gap, n=1 at 512 B payload
    occ_tx_times: Tuple[float, ...]  # TX feed gap (same src, distinct dsts)
    occ_tx_single_small: float  # TX feed gap, n=1 at 512 B payload
    per_fragment: float  # steady RX service time per extra fragment
    hop_base: float  # per-extra-hop constant (link + router latency)

    # -- scalar model -------------------------------------------------------

    def _hop_cost(self, n: int, last: int) -> float:
        # Store-and-forward pacing: with n >= 2 fragments the *full* head
        # fragments pace every extra hop (the partial tail rides behind
        # them); a lone fragment paces itself.
        serial = MAX_PACKET_PAYLOAD if n > 1 else last
        return self.hop_base + (serial + PACKET_HEADER_BYTES) / self.bandwidth

    def completion_latency(self, n: int, last: int, hops: int) -> float:
        """Uncontended post-to-RX-completion latency of one PUT."""
        if n == 1:
            base = _interp(self.single_byte_knots, self.single_byte_times, last, 0.0)
        else:
            base = _interp(self.knots, self.knot_times, n, self.per_fragment)
            base += self._last_delta(n, last)
        return base + (hops - 1) * self._hop_cost(n, last)

    def _last_delta(self, n, last):
        deep = _interp(self.multi_last_knots, self.multi_last_delta, last, 0.0)
        shallow = _interp(self.multi_last_knots, self.multi_last_delta_shallow, last, 0.0)
        w = min(max((n - 2) / 7.0, 0.0), 1.0)
        return shallow + w * (deep - shallow)

    def occupancy(self, n: int, last: int) -> float:
        """Steady back-to-back gap between same-path PUTs (LogP ``g``)."""
        occ = _interp(self.occ_knots, self.occ_times, n, self.per_fragment)
        if n == 1:
            full = MAX_PACKET_PAYLOAD
            slope = (self.occ_times[0] - self.occ_single_small) / (full - 512)
            occ -= (full - last) * slope
        else:
            occ += self._last_delta(n, last)
        return max(occ, self.per_fragment)

    def tx_occupancy(self, n: int, last: int) -> float:
        """Source-side feed occupancy: the gap one PUT imposes on the next
        PUT from the same source (probed with distinct destinations, so
        downstream pacing is excluded)."""
        tx_tail = (self.occ_tx_times[-1] - self.occ_tx_times[-2]) / (
            self.occ_knots[-1] - self.occ_knots[-2]
        )
        occ = _interp(self.occ_knots, self.occ_tx_times, n, tx_tail)
        if n == 1:
            full = MAX_PACKET_PAYLOAD
            slope = (self.occ_tx_times[0] - self.occ_tx_single_small) / (full - 512)
            occ -= (full - last) * slope
        else:
            occ -= (MAX_PACKET_PAYLOAD - last) / self.bandwidth
        return max(occ, (last + PACKET_HEADER_BYTES) / self.bandwidth)

    # -- vectorised model (BFS alltoall batches) ----------------------------

    def completion_latency_array(
        self, nbytes: np.ndarray, hops: np.ndarray
    ) -> np.ndarray:
        """Vectorised :meth:`completion_latency` over payload/hop arrays."""
        nbytes = np.asarray(nbytes, dtype=np.int64)
        hops = np.asarray(hops, dtype=np.float64)
        n = np.maximum(1, -(-nbytes // MAX_PACKET_PAYLOAD))
        last = nbytes - (n - 1) * MAX_PACKET_PAYLOAD
        multi = np.interp(n, self.knots, self.knot_times)
        over = n > self.knots[-1]
        if np.any(over):
            multi = np.where(
                over,
                self.knot_times[-1] + (n - self.knots[-1]) * self.per_fragment,
                multi,
            )
        deep = np.interp(last, self.multi_last_knots, self.multi_last_delta)
        shallow = np.interp(last, self.multi_last_knots, self.multi_last_delta_shallow)
        w = np.clip((n - 2) / 7.0, 0.0, 1.0)
        multi = multi + shallow + w * (deep - shallow)
        single = np.interp(last, self.single_byte_knots, self.single_byte_times)
        base = np.where(n == 1, single, multi)
        serial = np.where(n > 1, MAX_PACKET_PAYLOAD, last)
        hop_cost = self.hop_base + (serial + PACKET_HEADER_BYTES) / self.bandwidth
        return base + (hops - 1) * hop_cost


_CAL_CACHE: Dict[tuple, FlowCalibration] = {}


def _config_blob(config: ApenetConfig) -> str:
    import dataclasses
    import json

    return json.dumps(
        dataclasses.asdict(config), sort_keys=True, separators=(",", ":"), default=str
    )


def calibrate(
    config: Optional[ApenetConfig] = None,
    src_kind: BufferKind = BufferKind.HOST,
    dst_kind: BufferKind = BufferKind.HOST,
    backend: Optional[str] = None,
) -> FlowCalibration:
    """Fit a :class:`FlowCalibration` by probing the exact per-packet stack.

    Deterministic (the DES is seedless and backend-bit-identical), so the
    result is memoised per ``(config, kinds)``.  Probes run on 2- and
    4-node line tori and take a few tiny simulations each.
    """
    config = config or DEFAULT_CONFIG
    key = (_config_blob(config), src_kind, dst_kind)
    cached = _CAL_CACHE.get(key)
    if cached is not None:
        return cached

    from .exact import run_exact  # lazy: exact.py imports this module's types

    full = MAX_PACKET_PAYLOAD
    half = MAX_PACKET_PAYLOAD // 2

    def probe(dims, transfers):
        agg = run_exact(dims, transfers, config=config, backend=backend)
        return agg.completions

    def one(dims, src, dst, nbytes):
        (t,) = probe(
            dims, [BulkTransfer(src, dst, nbytes, src_kind=src_kind, dst_kind=dst_kind)]
        )
        return t

    knot_times = tuple(one((2, 1, 1), 0, 1, n * full) for n in LATENCY_KNOTS)
    per_fragment = (knot_times[-1] - knot_times[-2]) / (
        LATENCY_KNOTS[-1] - LATENCY_KNOTS[-2]
    )

    # Single-fragment byte curve (shares its 4-KiB endpoint with knot 1).
    single_byte_times = tuple(
        one((2, 1, 1), 0, 1, b) if b != full else knot_times[0]
        for b in SINGLE_BYTE_KNOTS
    )

    # Partial-last-fragment correction for multi-fragment PUTs: deltas
    # against the full-last-fragment knots at a shallow (n=2) and a deep
    # (n=9) pipeline; intermediate depths blend linearly.
    base2 = knot_times[LATENCY_KNOTS.index(2)]
    base9 = knot_times[LATENCY_KNOTS.index(9)]
    multi_last_delta_shallow = tuple(
        (one((2, 1, 1), 0, 1, full + b) - base2) if b != full else 0.0
        for b in MULTI_LAST_KNOTS
    )
    multi_last_delta = tuple(
        (one((2, 1, 1), 0, 1, 8 * full + b) - base9) if b != full else 0.0
        for b in MULTI_LAST_KNOTS
    )

    # Hop term from the 2-hop vs 3-hop gap on line tori (intercept is the
    # 1-hop knot, so linearity across 1->2->3 hops is probed, not assumed).
    # The measured gap is latency + last-fragment store-and-forward; keep
    # the constant part and re-add the size-dependent serialisation at
    # evaluation time.
    t_h2 = one((4, 1, 1), 0, 2, 9 * full)
    t_h3 = one((6, 1, 1), 0, 3, 9 * full)
    hop_base = (t_h3 - t_h2) - (full + PACKET_HEADER_BYTES) / config.link_bandwidth


    # Back-to-back occupancy: two identical PUTs posted immediately after
    # one another; the completion gap is the steady per-message spacing.
    def back_to_back(nbytes):
        pair = [
            BulkTransfer(0, 1, nbytes, src_kind=src_kind, dst_kind=dst_kind),
            BulkTransfer(0, 1, nbytes, src_kind=src_kind, dst_kind=dst_kind),
        ]
        c0, c1 = probe((2, 1, 1), pair)
        return c1 - c0

    occ_times = tuple(back_to_back(n * full) for n in OCCUPANCY_KNOTS)
    occ_single_small = back_to_back(512)

    # TX feed occupancy: same source, *distinct* destinations (both one
    # hop on a 2x2 mesh), so the completion gap isolates the sender-side
    # feed cost from any downstream pacing.
    def tx_gap(nbytes):
        pair = [
            BulkTransfer(0, 1, nbytes, src_kind=src_kind, dst_kind=dst_kind),
            BulkTransfer(0, 2, nbytes, src_kind=src_kind, dst_kind=dst_kind),
        ]
        c0, c1 = probe((2, 2, 1), pair)
        return c1 - c0

    occ_tx_times = tuple(tx_gap(n * full) for n in OCCUPANCY_KNOTS)
    occ_tx_single_small = tx_gap(512)

    cal = FlowCalibration(
        src_kind=src_kind,
        dst_kind=dst_kind,
        bandwidth=config.link_bandwidth,
        knots=LATENCY_KNOTS,
        knot_times=knot_times,
        single_byte_knots=SINGLE_BYTE_KNOTS,
        single_byte_times=single_byte_times,
        multi_last_knots=MULTI_LAST_KNOTS,
        multi_last_delta_shallow=multi_last_delta_shallow,
        multi_last_delta=multi_last_delta,
        occ_knots=OCCUPANCY_KNOTS,
        occ_times=occ_times,
        occ_single_small=occ_single_small,
        occ_tx_times=occ_tx_times,
        occ_tx_single_small=occ_tx_single_small,
        per_fragment=per_fragment,
        hop_base=hop_base,
    )
    _CAL_CACHE[key] = cal
    return cal


# ---------------------------------------------------------------------------
# The flow engine
# ---------------------------------------------------------------------------


@dataclass
class FlowRecord:
    """One bulk PUT as the flow engine saw it."""

    src: int
    dst: int
    nbytes: int
    start: float
    completion: Optional[float]
    n_fragments: int
    wire_bytes: int
    route: Tuple[Tuple[int, int, int], ...]

    @property
    def delivered(self) -> bool:
        return self.completion is not None


class FlowNetwork:
    """Batched bulk-transfer simulator over one torus.

    Feed it :meth:`bulk_put` calls (in post order) and read
    :meth:`aggregates`; byte/packet/route aggregates are bit-identical
    to the exact driver, completion times carry the calibrated model's
    documented tolerance.  No DES events are created — a 16^3 torus costs
    dictionary updates, not packets.
    """

    def __init__(
        self,
        dims: Tuple[int, int, int],
        config: Optional[ApenetConfig] = None,
        dead_links: Iterable = (),
        backend: Optional[str] = None,
    ):
        self.shape = TorusShape(*dims)
        self.config = config or DEFAULT_CONFIG
        self.dead = normalize_dead_links(self.shape, dead_links)
        self.backend = backend
        self.records: List[FlowRecord] = []
        self.link_bytes: Dict[Tuple[int, int, int], int] = {}
        self.link_packets: Dict[Tuple[int, int, int], int] = {}
        self.link_busy: Dict[Tuple[int, int, int], float] = {}
        self._tx_free: Dict[int, float] = {}  # src rank -> TX feed free
        self._free: Dict[tuple, float] = {}  # rx/link resource -> free time
        self._routes: Dict[Tuple[int, int], Optional[tuple]] = {}
        self._cals: Dict[Tuple[BufferKind, BufferKind], FlowCalibration] = {}
        self._obs_sim = None

    # -- plumbing -----------------------------------------------------------

    def _route(self, src: int, dst: int):
        key = (src, dst)
        if key not in self._routes:
            self._routes[key] = hop_route(self.shape, src, dst, self.dead)
        return self._routes[key]

    def calibration(
        self, src_kind: BufferKind = BufferKind.HOST, dst_kind: BufferKind = BufferKind.HOST
    ) -> FlowCalibration:
        """The (memoised) calibration used for this network's config."""
        key = (src_kind, dst_kind)
        if key not in self._cals:
            self._cals[key] = calibrate(
                self.config, src_kind, dst_kind, backend=self.backend
            )
        return self._cals[key]

    def _obs_scope(self):
        # Flow spans: when a TraceSession is active, anchor a (zero-event)
        # simulator so span_at() can record flow timelines with the model's
        # own computed times.  Costs one attribute test when tracing is off.
        from ..sim import core as _kernel

        if not _kernel.active_observers():
            return None
        if self._obs_sim is None:
            from ..sim import Simulator

            self._obs_sim = Simulator(backend=self.backend)
        return self._obs_sim._obs

    # -- the engine ---------------------------------------------------------
    #
    # Two-phase schedule, mirroring the hardware's structure:
    #
    #   phase 1 (TX feed): each source's PUTs post sequentially; a PUT
    #   starts *injecting* once the source's previous feed finished
    #   (``inj = max(start, tx_free[src])``), holding the TX for its
    #   probed feed occupancy — much shorter than the end-to-end latency.
    #
    #   phase 2 (fabric/RX): flows are served in deterministic injection
    #   order.  Each RX endpoint and link is an independent FIFO queue:
    #   completion = max(inj + T_lat,
    #                    rx_free + O_rx,
    #                    max(link_free, inj) + O_link + t_frag).
    #   The RX stays busy with this flow until its completion; links free
    #   after their serialisation share.
    #
    # Back-to-back same-path sequences reproduce the probed gap exactly;
    # crossing traffic queues by load, not by full latency, so cascades
    # cannot build transitively the way a naive critical-path model would.

    def _admit(self, tr: BulkTransfer, seq: int):
        """Phase 1 for one transfer: route, accounting, TX injection time."""
        route = self._route(tr.src, tr.dst)
        if route is None:
            return None
        n = fragment_count(tr.nbytes)
        last = last_fragment_bytes(tr.nbytes)
        wire = wire_bytes(tr.nbytes)
        link_occ = wire / self.config.link_bandwidth
        for hop in route:
            self.link_bytes[hop] = self.link_bytes.get(hop, 0) + wire
            self.link_packets[hop] = self.link_packets.get(hop, 0) + n
            self.link_busy[hop] = self.link_busy.get(hop, 0.0) + link_occ
        cal = self.calibration(tr.src_kind, tr.dst_kind)
        inj = max(tr.start, self._tx_free.get(tr.src, 0.0))
        self._tx_free[tr.src] = inj + cal.tx_occupancy(n, last)
        return (inj, seq, tr, route, cal, n, last, wire, link_occ)

    def _serve(self, admitted) -> FlowRecord:
        """Phase 2 for one admitted transfer: fabric/RX queues, completion."""
        inj, _seq, tr, route, cal, n, last, wire, link_occ = admitted
        latency = cal.completion_latency(n, last, len(route))
        completion = inj + latency
        rx_key = ("rx", tr.dst)
        rx_free = self._free.get(rx_key)
        if rx_free is not None:
            completion = max(completion, rx_free + cal.occupancy(n, last))
        tail = cal.per_fragment
        for hop in route:
            link_free = self._free.get(("link", hop), 0.0)
            completion = max(completion, max(link_free, inj) + link_occ + tail)
            self._free[("link", hop)] = max(link_free, inj) + link_occ
        self._free[rx_key] = completion
        rec = FlowRecord(
            tr.src, tr.dst, tr.nbytes, tr.start, completion, n, wire, route
        )
        scope = self._obs_scope()
        if scope is not None:
            scope.span_at(
                "flow",
                "bulk_put",
                inj,
                completion,
                src=tr.src,
                dst=tr.dst,
                nbytes=tr.nbytes,
                fragments=n,
                hops=len(route),
            )
        return rec

    def bulk_put(
        self,
        src: int,
        dst: int,
        nbytes: int,
        start: float = 0.0,
        src_kind: BufferKind = BufferKind.HOST,
        dst_kind: BufferKind = BufferKind.HOST,
    ) -> FlowRecord:
        """Post one bulk PUT as a flow record; returns its outcome.

        Incremental form: the flow is admitted and served immediately, so
        call in post order.  For batches with overlapping lifetimes prefer
        :meth:`run_transfers`, which serves in injection order like the
        fabric does.
        """
        tr = BulkTransfer(src, dst, nbytes, start, src_kind, dst_kind)
        admitted = self._admit(tr, len(self.records))
        if admitted is None:
            rec = FlowRecord(src, dst, nbytes, start, None, 0, 0, ())
        else:
            rec = self._serve(admitted)
        self.records.append(rec)
        return rec

    def run_transfers(self, transfers: Sequence[BulkTransfer]) -> TransferAggregates:
        """Schedule a batch (posted like the exact driver posts) and aggregate.

        Sources post in ``(start, index)`` order; the fabric serves in
        deterministic ``(injection time, post index)`` order.
        """
        post_order = sorted(
            range(len(transfers)), key=lambda i: (transfers[i].start, i)
        )
        admitted = []
        recs: List[Optional[FlowRecord]] = [None] * len(transfers)
        for seq, i in enumerate(post_order):
            tr = transfers[i]
            item = self._admit(tr, seq)
            if item is None:
                recs[i] = FlowRecord(tr.src, tr.dst, tr.nbytes, tr.start, None, 0, 0, ())
            else:
                admitted.append((item, i))
        for item, i in sorted(admitted, key=lambda pair: (pair[0][0], pair[0][1])):
            recs[i] = self._serve(item)
        self.records.extend(recs[i] for i in post_order)
        return self._aggregate(recs)

    def _aggregate(self, recs) -> TransferAggregates:
        completions = tuple(r.completion for r in recs)
        delivered = sum(r.nbytes for r in recs if r.delivered)
        finished = [c for c in completions if c is not None]
        return TransferAggregates(
            bytes_delivered=delivered,
            completions=completions,
            link_bytes=dict(self.link_bytes),
            link_packets=dict(self.link_packets),
            link_busy=dict(self.link_busy),
            makespan=max(finished) if finished else 0.0,
        )

    def aggregates(self) -> TransferAggregates:
        """Aggregates over every flow posted so far (post order)."""
        return self._aggregate(self.records)


# ---------------------------------------------------------------------------
# Parity comparison
# ---------------------------------------------------------------------------


@dataclass
class ParityReport:
    """Exact-vs-flow comparison of two :class:`TransferAggregates`.

    The boolean fields are the lossless contract (must be exactly True);
    the ``*_rel`` fields are the worst relative deviations of the
    toleranced quantities.
    """

    bytes_exact: bool
    link_bytes_exact: bool
    link_packets_exact: bool
    delivered_set_exact: bool
    completion_max_rel: float
    busy_max_rel: float
    makespan_rel: float

    def lossless_ok(self) -> bool:
        return (
            self.bytes_exact
            and self.link_bytes_exact
            and self.link_packets_exact
            and self.delivered_set_exact
        )

    def within(self, time_rtol: float, busy_rtol: float = 1e-6) -> bool:
        return (
            self.lossless_ok()
            and self.completion_max_rel <= time_rtol
            and self.busy_max_rel <= busy_rtol
            and abs(self.makespan_rel) <= time_rtol
        )


def _max_rel(pairs) -> float:
    worst = 0.0
    for a, b in pairs:
        denom = max(abs(a), abs(b), 1e-12)
        worst = max(worst, abs(a - b) / denom)
    return worst


def compare_aggregates(
    exact: TransferAggregates, flow: TransferAggregates
) -> ParityReport:
    """Build the parity report: exact driver vs flow engine aggregates."""
    exact_links = {k: v for k, v in exact.link_bytes.items() if v}
    flow_links = {k: v for k, v in flow.link_bytes.items() if v}
    exact_pkts = {k: v for k, v in exact.link_packets.items() if v}
    flow_pkts = {k: v for k, v in flow.link_packets.items() if v}
    delivered_e = tuple(c is not None for c in exact.completions)
    delivered_f = tuple(c is not None for c in flow.completions)
    completion_pairs = [
        (a, b)
        for a, b in zip(exact.completions, flow.completions)
        if a is not None and b is not None
    ]
    busy_pairs = [
        (exact.link_busy.get(k, 0.0), flow.link_busy.get(k, 0.0))
        for k in set(exact_links) | set(flow_links)
    ]
    makespan_rel = (
        (flow.makespan - exact.makespan) / exact.makespan if exact.makespan else 0.0
    )
    return ParityReport(
        bytes_exact=exact.bytes_delivered == flow.bytes_delivered,
        link_bytes_exact=exact_links == flow_links,
        link_packets_exact=exact_pkts == flow_pkts,
        delivered_set_exact=delivered_e == delivered_f,
        completion_max_rel=_max_rel(completion_pairs),
        busy_max_rel=_max_rel(busy_pairs),
        makespan_rel=makespan_rel,
    )
