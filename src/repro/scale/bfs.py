"""Sharded large-torus distributed BFS on the batched flow model.

Scales the paper's Fig. 12 BFS (``repro.apps.bfs``) from 12 nodes to
16^3 = 4096-node tori by replacing the per-packet alltoall simulation
with the :mod:`repro.scale.flow` latency/occupancy model plus NumPy
link-load decomposition:

* **Vertices** are partitioned contiguously across ranks (one rank per
  torus node, the same ``chunk = ceil(V/R)`` rule as
  ``repro.apps.bfs.distributed``).
* **Expansion is sharded**: the sorted global frontier is split into
  contiguous rank bands and expanded per shard — on the bench runner's
  fork pool when available — then merged by concatenating shard results
  in shard order.  A contiguous split of a sorted array plus an
  order-preserving ``pool.map`` makes the merged candidate stream
  byte-identical for *any* shard count, which is what keeps ``--jobs 1``
  and ``--jobs 4`` sweeps bit-identical.
* **Communication** per level uses a *sparse count protocol*: each rank
  sends one 8-byte count message plus one packed candidate message to
  each peer it actually has candidates for.  (The per-packet
  ``_ApenetComm`` broadcasts counts to *all* peers — O(R^2) control
  messages per level, ~3M at 12^3 — a documented deviation, see
  EXPERIMENTS.md.)  Per-link wire loads come from the dimension-ordered
  routes via per-ring incidence tensors (one ``einsum`` per dimension,
  never an R x R dense matrix), with dead-link detours patched in
  pair-by-pair from a vectorised next-hop table (:class:`_DetourTable`)
  that reproduces ``route_avoiding`` hop for hop.
* **Level time** = max per-rank expand kernel + comm (max pair latency +
  max link serialisation + max RX fragment service) + max per-rank
  filter kernel + a tree-allreduce frontier vote; every term is a
  deterministic function of the aggregates, so TEPS numbers are
  machine-independent and golden-testable.

The traversal itself (levels, parents, reached counts) is validated
against :func:`repro.apps.bfs.serial.serial_bfs` in ``tests/scale/``.
"""

from __future__ import annotations

import math
import multiprocessing
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from ..apenet.buflist import BufferKind
from ..apenet.config import DEFAULT_CONFIG, ApenetConfig
from ..apps.bfs.csr import CSRGraph
from ..apps.bfs.perf import BfsKernelModel
from ..apps.bfs.rmat import rmat_edges
from ..apps.bfs.serial import UNVISITED, traversed_edges
from ..gpu import FERMI_2050
from ..net.packet import MAX_PACKET_PAYLOAD, PACKET_HEADER_BYTES
from ..net.topology import TorusShape
from .flow import FlowCalibration, calibrate, normalize_dead_links

__all__ = ["ScaleBfsResult", "run_scale_bfs"]

#: Bytes per transmitted candidate pair — matches ``repro.apps.bfs``.
PAIR_BYTES = 8

#: Bytes of the per-peer candidate-count message (sparse protocol).
COUNT_BYTES = 8

#: Allreduce payload (one 8-byte frontier vote) per butterfly stage.
VOTE_BYTES = 8

# Worker-side graph for the shard pool: assigned before forking so
# workers inherit the CSR arrays by address instead of pickling them on
# every call.
_SHARD_GRAPH: Optional[CSRGraph] = None


def _expand_shard(frontier_slice: np.ndarray):
    """Expand one shard's frontier slice against the inherited graph."""
    return _SHARD_GRAPH.neighbors_of_set(frontier_slice)


def _incidence(extent: int) -> np.ndarray:
    """Directed ring-edge incidence of shortest wrapped paths.

    ``inc[a, b, e, s]`` is True when the shortest wrapped path from ring
    position *a* to *b* (ties toward +1, mirroring
    ``TorusShape._step``) traverses the directed edge whose source
    position is *e* in direction ``(+1, -1)[s]``.
    """
    inc = np.zeros((extent, extent, extent, 2), dtype=bool)
    for a in range(extent):
        for b in range(extent):
            delta = (b - a) % extent
            step = delta if delta * 2 <= extent else delta - extent
            direction = 1 if step > 0 else -1
            pos = a
            for _ in range(abs(step)):
                # A hop's directed-edge key is its *source* position,
                # matching hop_route's ``(src_rank, dim, direction)``.
                inc[a, b, pos, 0 if direction == 1 else 1] = True
                pos = (pos + direction) % extent
    return inc


class _DetourTable:
    """All-pairs next-hop table reproducing ``route_avoiding`` exactly.

    ``route_avoiding`` is an ordered breadth-first search (FIFO layers,
    neighbors in dims-ascending/+1-first order), so the route it returns
    is the *lexicographically smallest* shortest path: from any node *v*
    the next hop toward *g* is the first neighbor slot whose dead-graph
    distance to *g* is ``d(v, g) - 1``.  That rule is computed here for
    all (node, goal) pairs at once with a level-synchronous NumPy BFS —
    identical hops to :func:`repro.scale.flow.hop_route` (proven in
    ``tests/scale/``) at a tiny fraction of the per-pair Python cost.
    """

    def __init__(self, shape: TorusShape, dead: frozenset):
        R = shape.size
        ranks = np.arange(R, dtype=np.int64)
        x = ranks % shape.nx
        y = (ranks // shape.nx) % shape.ny
        z = ranks // (shape.nx * shape.ny)
        coords = (x, y, z)
        extents = (shape.nx, shape.ny, shape.nz)
        strides = (1, shape.nx, shape.nx * shape.ny)

        # Slot order mirrors TorusShape.neighbors: dims ascending, +1
        # before -1, extent-1 dims skipped.
        self.slots = [
            (dim, direction)
            for dim, extent in enumerate(extents)
            if extent > 1
            for direction in (1, -1)
        ]
        n_slots = len(self.slots)
        self.nbr = np.empty((R, n_slots), dtype=np.int64)
        alive = np.ones((R, n_slots), dtype=bool)
        for s, (dim, direction) in enumerate(self.slots):
            stepped = (coords[dim] + direction) % extents[dim]
            self.nbr[:, s] = ranks + (stepped - coords[dim]) * strides[dim]
        for coord, dim, direction in sorted(dead):
            s = self.slots.index((dim, direction))
            alive[shape.rank(coord), s] = False
        self.alive = alive

        # D[v, g]: dead-graph hop distance v -> g (-1 = unreachable),
        # via reverse level-synchronous BFS vectorised over all goals.
        D = np.full((R, R), -1, dtype=np.int16)
        D[ranks, ranks] = 0
        frontier = np.eye(R, dtype=bool)
        level = 0
        while True:
            nxt = np.zeros((R, R), dtype=bool)
            for s in range(n_slots):
                nxt |= frontier[self.nbr[:, s], :] & alive[:, s][:, None]
            nxt &= D < 0
            if not nxt.any():
                break
            level += 1
            D[nxt] = level
            frontier = nxt
        self.dist = D

        # next_slot[v, g]: first alive slot decreasing the distance.
        S = np.full((R, R), -1, dtype=np.int8)
        for s in range(n_slots):
            cond = (
                (S < 0)
                & (D > 0)
                & alive[:, s][:, None]
                & (D[self.nbr[:, s], :] == D - 1)
            )
            S[cond] = s
        self.next_slot = S

    def path(self, src: int, dst: int):
        """Hop list ``((rank, dim, dir), ...)`` or None when partitioned."""
        if self.dist[src, dst] < 0:
            return None
        hops = []
        cur = src
        while cur != dst:
            s = int(self.next_slot[cur, dst])
            hops.append((cur, *self.slots[s]))
            cur = int(self.nbr[cur, s])
        return tuple(hops)


@dataclass(frozen=True)
class ScaleBfsResult:
    """Outcome of one sharded flow-mode BFS run (all fields deterministic)."""

    dims: Tuple[int, int, int]
    n_ranks: int
    scale: int
    n_vertices: int
    n_edges: int
    root: int
    shards: int
    n_levels: int
    reached: int
    traversed: int
    levels_checksum: int
    total_time_ns: float
    teps: float
    comm_bytes: int
    max_link_load: int
    frontier_peak: int
    dead_links: int


class _CommModel:
    """Per-level communication timing and link-load model for one torus."""

    def __init__(
        self,
        shape: TorusShape,
        config: ApenetConfig,
        cal: FlowCalibration,
        dead: frozenset,
    ):
        self.shape = shape
        self.config = config
        self.cal = cal
        self.dead = dead
        self.inc = (
            _incidence(shape.nx),
            _incidence(shape.ny),
            _incidence(shape.nz),
        )
        self._ext = (shape.nx, shape.ny, shape.nz)
        self._detours: Dict[Tuple[int, int], tuple] = {}
        self._table: Optional[_DetourTable] = None

    def _coords(self, ranks: np.ndarray):
        nx, ny = self.shape.nx, self.shape.ny
        return ranks % nx, (ranks // nx) % ny, ranks // (nx * ny)

    def _distance(self, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        """Fault-free dimension-ordered hop counts, vectorised."""
        total = np.zeros(src.shape, dtype=np.int64)
        for ext, a, b in zip(self._ext, self._coords(src), self._coords(dst)):
            d = (b - a) % ext
            total += np.minimum(d, ext - d)
        return total

    def _affected(self, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        """Mask of pairs whose dimension-ordered route crosses a dead edge."""
        x1, y1, z1 = self._coords(src)
        x2, y2, z2 = self._coords(dst)
        mask = np.zeros(src.shape, dtype=bool)
        for (cx, cy, cz), dim, direction in sorted(self.dead):
            s = 0 if direction == 1 else 1
            if dim == 0:
                mask |= (y1 == cy) & (z1 == cz) & self.inc[0][x1, x2, cx, s]
            elif dim == 1:
                mask |= (x2 == cx) & (z1 == cz) & self.inc[1][y1, y2, cy, s]
            else:
                mask |= (x2 == cx) & (y2 == cy) & self.inc[2][z1, z2, cz, s]
        return mask

    def _detour(self, src: int, dst: int) -> tuple:
        """Recovery-route hop list for an affected pair (memoised)."""
        key = (src, dst)
        path = self._detours.get(key)
        if path is None:
            if self._table is None:
                self._table = _DetourTable(self.shape, self.dead)
            path = self._table.path(src, dst)
            if path is None:
                raise ValueError(
                    f"torus partitioned: rank {src} cannot reach rank {dst} "
                    f"under {len(self.dead)} dead link(s)"
                )
            self._detours[key] = path
        return path

    def level_time(
        self, src: np.ndarray, dst: np.ndarray, counts: np.ndarray
    ) -> Tuple[float, int, int]:
        """Comm time + wire/load aggregates for one level's pair traffic.

        ``src``/``dst``/``counts`` are the unique remote (src_rank,
        dst_rank) pairs and candidate counts.  Returns ``(time_ns,
        wire_bytes_total, max_link_load_bytes)``.
        """
        if src.size == 0:
            return 0.0, 0, 0
        nx, ny, nz = self._ext

        data_bytes = counts * PAIR_BYTES
        data_frags = np.maximum(1, -(-data_bytes // MAX_PACKET_PAYLOAD))
        # Per-pair wire bytes: packed data message + 8-byte count message.
        wire = (
            data_bytes
            + data_frags * PACKET_HEADER_BYTES
            + COUNT_BYTES
            + PACKET_HEADER_BYTES
        )

        affected = (
            self._affected(src, dst) if self.dead else np.zeros(src.shape, dtype=bool)
        )
        clean = ~affected
        hops = self._distance(src, dst).astype(np.float64)

        # Per-link loads via per-ring decomposition: dimension-ordered
        # routes cross X at (y1, z1), Y at (x2, z1), Z at (x2, y2).
        x1, y1, z1 = self._coords(src)
        x2, y2, z2 = self._coords(dst)
        w = wire[clean].astype(np.float64)
        specs = (
            (0, y1, z1, ny, nz, x1, x2),
            (1, x2, z1, nx, nz, y1, y2),
            (2, x2, y2, nx, ny, z1, z2),
        )
        per_dim_loads = []
        for dim, ring_a, ring_b, ring_ext, ring_ext2, a, b in specs:
            ext = self._ext[dim]
            ring = (ring_a[clean] + ring_ext * ring_b[clean]).astype(np.int64)
            wmat = np.zeros((ring_ext * ring_ext2, ext, ext))
            np.add.at(wmat, (ring, a[clean], b[clean]), w)
            per_dim_loads.append(
                np.einsum("rab,abes->res", wmat, self.inc[dim].astype(np.float64))
            )

        # Affected pairs were excluded from the decomposition; walk their
        # recovery route hop by hop and merge the bytes back into the same
        # per-link load arrays, so shared links sum exactly.
        for i in np.nonzero(affected)[0]:
            path = self._detour(int(src[i]), int(dst[i]))
            hops[i] = float(len(path))
            wi = float(wire[i])
            for rank, dim, direction in path:
                hx, hy, hz = self.shape.coord(rank)
                if dim == 0:
                    ring, pos = hy + ny * hz, hx
                elif dim == 1:
                    ring, pos = hx + nx * hz, hy
                else:
                    ring, pos = hx + nx * hy, hz
                per_dim_loads[dim][ring, pos, 0 if direction == 1 else 1] += wi
        max_link_load = max(
            float(arr.max()) if arr.size else 0.0 for arr in per_dim_loads
        )

        latency = float(
            self.cal.completion_latency_array(data_bytes + COUNT_BYTES, hops).max()
        )
        serialisation = max_link_load / self.config.link_bandwidth
        rx_frags = np.zeros(self.shape.size, dtype=np.int64)
        np.add.at(rx_frags, dst, data_frags + 1)
        rx_busy = float(rx_frags.max()) * self.cal.per_fragment
        return latency + serialisation + rx_busy, int(wire.sum()), int(max_link_load)


def run_scale_bfs(
    dims: Tuple[int, int, int],
    scale: int,
    edgefactor: int = 16,
    seed: int = 1,
    root: Optional[int] = None,
    config: Optional[ApenetConfig] = None,
    dead_links: Iterable = (),
    shards: int = 1,
    backend: Optional[str] = None,
    gpu_spec=FERMI_2050,
    src_kind: BufferKind = BufferKind.GPU,
    dst_kind: BufferKind = BufferKind.GPU,
) -> ScaleBfsResult:
    """Run one sharded flow-mode BFS over a ``dims`` torus.

    ``scale``/``edgefactor``/``seed`` parameterise the R-MAT graph
    (``2**scale`` vertices).  ``shards`` splits frontier expansion
    across fork-pool workers; any shard count produces bit-identical
    results.  ``dead_links`` routes traffic around failures
    recovery-style; a partitioned torus raises ``ValueError``.
    ``root=None`` picks the first vertex with nonzero degree.
    """
    config = config or DEFAULT_CONFIG
    shape = TorusShape(*dims)
    R = shape.size
    dead = normalize_dead_links(shape, dead_links)
    cal = calibrate(config, src_kind, dst_kind, backend=backend)
    kernel = BfsKernelModel(gpu_spec)

    n_vertices = 1 << scale
    graph = CSRGraph.from_edges(n_vertices, rmat_edges(scale, edgefactor, seed=seed))
    degrees = np.diff(graph.row_ptr).astype(np.int64)
    if root is None:
        root = int(np.nonzero(degrees > 0)[0][0])

    chunk = -(-n_vertices // R)
    shards = max(1, min(int(shards), R))
    # Shard boundaries: contiguous rank bands -> contiguous vertex ranges.
    band_edges = [min(s * R // shards * chunk, n_vertices) for s in range(shards)]
    band_edges.append(n_vertices)

    levels = np.full(n_vertices, UNVISITED, dtype=np.int64)
    parents = np.full(n_vertices, UNVISITED, dtype=np.int64)
    levels[root] = 0
    parents[root] = root
    frontier = np.array([root], dtype=np.int64)

    global _SHARD_GRAPH
    _SHARD_GRAPH = graph
    pool = None
    # Inside a bench-runner worker (daemonic) nested pools are illegal;
    # the serial fallback's concat merge is bit-identical to the pooled
    # one, which is exactly why `--jobs N` sweeps stay deterministic.
    if shards > 1 and not multiprocessing.current_process().daemon:
        from ..bench.runner import _pool_context

        pool = _pool_context().Pool(processes=shards)

    comm = _CommModel(shape, config, cal, dead)
    total_ns = 0.0
    comm_bytes = 0
    max_link_load = 0
    frontier_peak = 0
    n_levels = 0
    allreduce_stages = 2 * math.ceil(math.log2(R)) if R > 1 else 0
    diameter = max(1, shape.nx // 2 + shape.ny // 2 + shape.nz // 2)
    allreduce_ns = allreduce_stages * cal.completion_latency(1, VOTE_BYTES, diameter)

    try:
        while frontier.size:
            frontier_peak = max(frontier_peak, int(frontier.size))

            # -- expand (sharded, order-preserving merge) -------------------
            cuts = np.searchsorted(frontier, band_edges)
            slices = [
                frontier[cuts[s] : cuts[s + 1]]
                for s in range(shards)
                if cuts[s + 1] > cuts[s]
            ]
            if pool is not None and len(slices) > 1:
                parts = pool.map(_expand_shard, slices)
            else:
                parts = [_expand_shard(fs) for fs in slices]
            if parts:
                neighbors = np.concatenate([p[0] for p in parts])
                cand_parents = np.concatenate([p[1] for p in parts])
            else:
                neighbors = np.empty(0, dtype=np.int64)
                cand_parents = np.empty(0, dtype=np.int64)

            # -- per-rank kernel terms --------------------------------------
            edges_per_rank = np.bincount(
                frontier // chunk, weights=degrees[frontier].astype(np.float64),
                minlength=R,
            )
            expand_ns = kernel.expand_ns(float(edges_per_rank.max()))

            n_owner = neighbors // chunk
            if neighbors.size:
                cand_per_rank = np.bincount(n_owner, minlength=R)
                filter_ns = kernel.filter_ns(int(cand_per_rank.max()))
            else:
                filter_ns = kernel.filter_ns(0)

            # -- comm: unique remote (src, dst) rank pairs ------------------
            p_owner = cand_parents // chunk
            remote = p_owner != n_owner
            pair_keys = p_owner[remote] * R + n_owner[remote]
            uniq, counts = np.unique(pair_keys, return_counts=True)
            comm_ns, wire, peak = comm.level_time(
                uniq // R, uniq % R, counts.astype(np.int64)
            )
            comm_bytes += wire
            max_link_load = max(max_link_load, peak)

            n_levels += 1
            total_ns += expand_ns + comm_ns + filter_ns + allreduce_ns

            # -- absorb (first-occurrence parent, like _BfsRank.absorb) -----
            if neighbors.size:
                fresh = levels[neighbors] == UNVISITED
                cand_v = neighbors[fresh]
                uniq_v, first = np.unique(cand_v, return_index=True)
                levels[uniq_v] = n_levels
                parents[uniq_v] = cand_parents[fresh][first]
                frontier = uniq_v
            else:
                frontier = np.empty(0, dtype=np.int64)
    finally:
        if pool is not None:
            pool.close()
            pool.join()
        _SHARD_GRAPH = None

    reached = int((levels != UNVISITED).sum())
    traversed = int(traversed_edges(graph, levels))
    teps = traversed / (total_ns / 1e9) if total_ns else 0.0
    return ScaleBfsResult(
        dims=(shape.nx, shape.ny, shape.nz),
        n_ranks=R,
        scale=scale,
        n_vertices=n_vertices,
        n_edges=graph.n_directed_edges,
        root=root,
        shards=shards,
        n_levels=n_levels,
        reached=reached,
        traversed=traversed,
        levels_checksum=int(levels[levels != UNVISITED].sum()),
        total_time_ns=total_ns,
        teps=teps,
        comm_bytes=comm_bytes,
        max_link_load=max_link_load,
        frontier_peak=frontier_peak,
        dead_links=len(dead),
    )
