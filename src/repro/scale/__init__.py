"""Large-torus scaling layer: batched flows, exact parity, sharded BFS.

The paper's clusters stop at 12 nodes; ROADMAP item 1 asks for 8^3 ->
16^3 tori inside CI time.  Per-packet Python events are the wall, so
this package adds a **flow/packet duality** (DESIGN.md §12):

* :mod:`repro.scale.flow` — bulk PUTs as NumPy/analytic flow records;
  byte/packet/route aggregates are lossless (bit-identical to the
  per-packet stack), completion times come from a probe-calibrated
  piecewise-affine model with documented tolerance.
* :mod:`repro.scale.exact` — the per-packet golden reference driver the
  parity harness (``tests/scale/``) diffs flow mode against.
* :mod:`repro.scale.bfs` — a sharded large-torus distributed BFS whose
  communication rides the flow model; shard fan-out reuses the bench
  runner's worker pool with a deterministic merge.
"""

from .flow import (
    BulkTransfer,
    FlowCalibration,
    FlowNetwork,
    FlowRecord,
    ParityReport,
    TransferAggregates,
    calibrate,
    compare_aggregates,
    fragment_count,
    hop_route,
    last_fragment_bytes,
    wire_bytes,
)
from .exact import run_exact
from .bfs import ScaleBfsResult, run_scale_bfs

__all__ = [
    "BulkTransfer",
    "FlowCalibration",
    "FlowNetwork",
    "FlowRecord",
    "ParityReport",
    "ScaleBfsResult",
    "TransferAggregates",
    "calibrate",
    "compare_aggregates",
    "fragment_count",
    "hop_route",
    "last_fragment_bytes",
    "run_exact",
    "run_scale_bfs",
    "wire_bytes",
]
