"""The ConnectX-2 HCA model.

Send path (RDMA-write semantics, which is what MVAPICH2's eager and
rendezvous protocols reduce to):

1. the host posts a work request (doorbell write, small host cost),
2. the HCA DMA-reads the source out of host memory (deeply pipelined
   MRRS reads; ceiling set by the PCIe slot — the x4 slot of Cluster I's
   motherboards is faithfully supported),
3. 64 KiB quanta stream through the switch,
4. the destination HCA DMA-writes the user/eager buffer and raises a
   completion that the MPI progress engine consumes.

No GPUDirect: ConnectX-2 cannot touch GPU memory (the entire point of the
paper) — GPU pointers must be staged by the MPI layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

import itertools

import numpy as np

from ..pcie.device import PCIeDevice, ReadBehavior, WriteBehavior
from ..sim import Event, RateLimiter, Simulator
from ..units import GBps, KiB, us
from .fabric import IBFabric, IBPort

__all__ = ["IBCard", "IBMessage"]

_SEND_QUANTUM = 64 * KiB
_CARD_BASE = 0x500_0000_0000


@dataclass
class IBMessage:
    """One wire message: RDMA-write to ``dst_addr`` at the target node."""

    src_lid: int
    dst_lid: int
    dst_addr: int
    nbytes: int
    meta: Any = None
    data: Optional[np.ndarray] = field(default=None, repr=False)
    # Fragmentation bookkeeping for multi-quantum sends.
    seq: int = 0
    is_last: bool = True
    offset: int = 0
    wire_id: int = 0  # groups the quanta of one rdma_write
    total_bytes: int = 0  # whole-message size


class IBCard(PCIeDevice):
    """One HCA on a node's PCIe fabric."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        ib_fabric: IBFabric,
        pcie_read_rate: Optional[float] = None,
        base: int = _CARD_BASE,
    ):
        super().__init__(sim, name)
        self.regs_window = self.add_window(base, 64 * KiB, "regs")
        self.ib = ib_fabric
        self.port: IBPort = ib_fabric.attach(self._on_wire_arrival)
        # DMA-read ceiling; defaults by slot width are set by the cluster
        # builder (x8 ≈ 3.2 GB/s, x4 ≈ 1.55 GB/s effective).
        self.read_limiter = RateLimiter(
            sim, pcie_read_rate if pcie_read_rate is not None else GBps(3.2),
            f"{name}.rd",
        )
        # Called with (IBMessage) when a full message has landed in host
        # memory; the MPI progress engine registers here.
        self.on_receive: Optional[Callable[[IBMessage], None]] = None
        # Per-message landed-byte accounting: completion fires only when
        # every quantum's host write has finished (quanta writes interleave
        # on the PCIe path, so "last sent" is not "last landed").
        self._landed: dict[int, int] = {}
        self.bytes_sent = 0
        self.bytes_received = 0
        # Post + completion host-side costs (verbs + driver).
        self.post_cost = us(0.25)
        self.completion_cost = us(0.25)

    @property
    def lid(self) -> int:
        """This HCA's LID on the switch."""
        return self.port.lid

    def describe_write(self, addr: int) -> WriteBehavior:
        return WriteBehavior()  # doorbells only; dispatch is via rdma_write

    def describe_read(self, addr: int) -> ReadBehavior:
        raise PermissionError(f"{self.name}: HCA windows are write-only")

    # ------------------------------------------------------------------
    # Send path
    # ------------------------------------------------------------------

    def rdma_write(
        self,
        dst_lid: int,
        src_addr: int,
        dst_addr: int,
        nbytes: int,
        meta: Any = None,
        data: Optional[np.ndarray] = None,
    ) -> Event:
        """Post one RDMA write; fires at LOCAL completion (data on wire).

        ``data`` optionally carries the real bytes end-to-end.  Remote
        arrival is signalled through the destination card's ``on_receive``.
        """
        if nbytes <= 0:
            raise ValueError("rdma_write needs a positive size")
        done = Event(self.sim)
        self.sim.process(
            self._send_proc(dst_lid, src_addr, dst_addr, nbytes, meta, data, done),
            name=f"{self.name}.send",
        )
        return done

    _wire_ids = itertools.count(1)

    def _send_proc(self, dst_lid, src_addr, dst_addr, nbytes, meta, data, done):
        # Stream the message in quanta: DMA read and wire overlap.
        off = 0
        seq = 0
        wire_id = next(self._wire_ids)
        wire_events = []
        while off < nbytes:
            csize = min(_SEND_QUANTUM, nbytes - off)
            # Pull from host memory: engine ceiling + PCIe transaction.
            rate_ev = self.read_limiter.consume(csize)
            read_ev = self.fabric.read_pipelined(
                self, src_addr + off, csize, outstanding=16
            )
            yield self.sim.all_of([rate_ev, read_ev])
            msg = IBMessage(
                src_lid=self.lid,
                dst_lid=dst_lid,
                dst_addr=dst_addr + off,
                nbytes=csize,
                meta=meta,
                # Snapshot: the quantum was DMA-read just now; the source
                # buffer may legitimately be reused before wire delivery.
                data=None if data is None else np.array(data[off : off + csize]),
                seq=seq,
                is_last=(off + csize >= nbytes),
                offset=off,
                wire_id=wire_id,
                total_bytes=nbytes,
            )
            wire_events.append(self.ib.send(self.lid, dst_lid, csize, msg))
            off += csize
            seq += 1
        self.bytes_sent += nbytes
        # Local completion: last quantum handed to the wire.
        done.succeed(nbytes)

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------

    def _on_wire_arrival(self, msg: IBMessage) -> None:
        self.sim.process(self._rx_proc(msg), name=f"{self.name}.rx")

    def _rx_proc(self, msg: IBMessage):
        # DMA-write the quantum into host memory.
        yield self.fabric.write(self, msg.dst_addr, msg.nbytes, payload=msg.data)
        self.bytes_received += msg.nbytes
        landed = self._landed.get(msg.wire_id, 0) + msg.nbytes
        if landed < msg.total_bytes:
            self._landed[msg.wire_id] = landed
            return
        self._landed.pop(msg.wire_id, None)
        if self.on_receive is not None:
            self.on_receive(msg)
