"""InfiniBand baseline: ConnectX-2 HCAs around a crossbar switch."""

from .card import IBCard, IBMessage
from .cluster import IBCluster, IBClusterNode, build_ib_cluster
from .fabric import IB_QDR_BANDWIDTH, IBFabric, IBPort

__all__ = [
    "IBCard",
    "IBMessage",
    "IBFabric",
    "IBPort",
    "IB_QDR_BANDWIDTH",
    "IBCluster",
    "IBClusterNode",
    "build_ib_cluster",
]
