"""InfiniBand fabric: a central crossbar switch with point-to-point links.

Models the Mellanox MTS3600 (Cluster I) / IS5030 (Cluster II) switches: one
full-crossbar stage, per-port full-duplex links.  Unlike the APEnet+ torus,
there is no path sharing between distinct source-destination pairs — the
reason IB shrugs off the BFS all-to-all that congests the 4×2 torus
(Table IV).

QDR 4X: 40 Gbit/s signalling, 32 Gbit/s data (8b/10b) = 4 GB/s per
direction per port.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..sim import Channel, Event, Simulator
from ..units import Gbps, us

__all__ = ["IBFabric", "IBPort", "IB_QDR_BANDWIDTH"]

IB_QDR_BANDWIDTH = Gbps(32)  # 4 GB/s data per direction


class IBPort:
    """One switch port: an up (host->switch) and down (switch->host) wire."""

    def __init__(self, sim: Simulator, lid: int, bandwidth: float, latency: float):
        self.lid = lid
        self.up = Channel(sim, bandwidth, latency, name=f"lid{lid}.up")
        self.down = Channel(sim, bandwidth, latency, name=f"lid{lid}.down")
        # The attached HCA's delivery hook (set on attach).
        self.deliver: Optional[Callable[[Any], None]] = None


class IBFabric:
    """Crossbar switch + attached ports, addressed by LID."""

    def __init__(
        self,
        sim: Simulator,
        bandwidth: float = IB_QDR_BANDWIDTH,
        port_latency: float = 250.0,  # serdes + cable per direction
        switch_latency: float = us(0.1),  # crossbar forwarding
        name: str = "ib",
    ):
        self.sim = sim
        self.bandwidth = bandwidth
        self.port_latency = port_latency
        self.switch_latency = switch_latency
        self.name = name
        self.ports: dict[int, IBPort] = {}

    def attach(self, deliver: Callable[[Any], None]) -> IBPort:
        """Plug an HCA in; returns its port (LID assigned sequentially)."""
        lid = len(self.ports)
        port = IBPort(self.sim, lid, self.bandwidth, self.port_latency)
        port.deliver = deliver
        self.ports[lid] = port
        return port

    def send(self, src_lid: int, dst_lid: int, nbytes: int, payload: Any) -> Event:
        """Move *nbytes* from src port to dst port; fires at delivery.

        Serializes on the source's up wire and the destination's down wire
        (the crossbar itself is non-blocking); the payload is handed to the
        destination HCA's delivery hook on arrival.
        """
        if src_lid not in self.ports or dst_lid not in self.ports:
            raise KeyError(f"{self.name}: unknown LID {src_lid}->{dst_lid}")
        done = Event(self.sim)
        self.sim.process(
            self._send_proc(src_lid, dst_lid, nbytes, payload, done),
            name=f"{self.name}.{src_lid}->{dst_lid}",
        )
        return done

    def _send_proc(self, src_lid, dst_lid, nbytes, payload, done):
        src = self.ports[src_lid]
        dst = self.ports[dst_lid]
        if src_lid != dst_lid:
            yield src.up.transfer(nbytes)
            yield self.sim.timeout(self.switch_latency)
            yield dst.down.transfer(nbytes)
        else:
            # HCA-internal loop-back.
            yield src.up.transfer(nbytes)
        if dst.deliver is not None:
            dst.deliver(payload)
        done.succeed(nbytes)
