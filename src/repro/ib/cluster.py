"""Builder for the InfiniBand comparison clusters.

* Cluster I (``pcie_lanes=4``): "a Mellanox ConnectX-2 board, plugged in a
  PCIe X4 slot (due to motherboard constraints)" — the handicap the paper
  notes for its own IB numbers.
* Cluster II (``pcie_lanes=8``): 12 Westmere nodes, two M2075 per node,
  ConnectX-2 on x8 — where the MVAPICH2/OSU reference numbers come from.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cuda.runtime import CudaRuntime
from ..gpu.device import GPUDevice
from ..gpu.specs import FERMI_2075, GPUSpec
from ..pcie.tlp import LinkParams
from ..pcie.topology import Platform, westmere_platform
from ..sim import Simulator
from ..units import GBps
from .card import IBCard
from .fabric import IBFabric

__all__ = ["IBClusterNode", "IBCluster", "build_ib_cluster"]


@dataclass
class IBClusterNode:
    """Everything on one IB-cluster node."""

    rank: int
    platform: Platform
    runtime: CudaRuntime
    gpus: list[GPUDevice]
    hca: IBCard

    @property
    def gpu(self) -> GPUDevice:
        """The node's (first) GPU."""
        return self.gpus[0]


@dataclass
class IBCluster:
    """A built switched-fabric cluster."""

    sim: Simulator
    fabric: IBFabric
    nodes: list[IBClusterNode] = field(default_factory=list)

    def node(self, rank: int) -> IBClusterNode:
        """Node by rank (== LID by construction)."""
        return self.nodes[rank]

    def __len__(self) -> int:
        return len(self.nodes)


# Effective HCA DMA-read ceilings by slot width (Gen2, after protocol
# overheads): the x4 slot roughly halves achievable IB bandwidth.
_READ_RATE_BY_LANES = {8: GBps(3.2), 4: GBps(1.55)}


def build_ib_cluster(
    sim: Simulator,
    n_nodes: int,
    pcie_lanes: int = 8,
    gpu_spec: GPUSpec = FERMI_2075,
    gpus_per_node: int = 1,
) -> IBCluster:
    """Build *n_nodes* Westmere nodes around one IB switch."""
    if pcie_lanes not in _READ_RATE_BY_LANES:
        raise ValueError(f"unsupported HCA slot width x{pcie_lanes}")
    fabric = IBFabric(sim)
    cluster = IBCluster(sim, fabric)
    hca_link = LinkParams(gen=2, lanes=pcie_lanes)
    gpu_link = LinkParams(gen=2, lanes=16)
    for rank in range(n_nodes):
        plat = westmere_platform(sim, name=f"ib{rank}")
        runtime = CudaRuntime(sim, plat, name=f"ib{rank}.cuda")
        gpus = []
        for g in range(gpus_per_node):
            gpu = GPUDevice(sim, f"ib{rank}.gpu{g}", gpu_spec, index=g)
            plat.attach(gpu, "gpu", gpu_link)
            runtime.add_device(gpu)
            gpus.append(gpu)
        hca = IBCard(
            sim,
            f"ib{rank}.hca",
            fabric,
            pcie_read_rate=_READ_RATE_BY_LANES[pcie_lanes],
        )
        plat.attach(hca, "nic", hca_link)
        cluster.nodes.append(IBClusterNode(rank, plat, runtime, gpus, hca))
    return cluster
