"""OSU micro-benchmark equivalents (OMB v3.6 style).

* :func:`osu_latency` — ping-pong, reports half round-trip (the paper's
  Fig 9 MVAPICH2 reference curve).
* :func:`osu_bandwidth` — windowed uni-directional bandwidth (64
  back-to-back isends per iteration, then a tiny ack — Fig 7's curve).

Buffers may live on the host or the GPU ("D D" mode in OMB terms).
"""

from __future__ import annotations


from ..ib.cluster import build_ib_cluster
from ..sim import DeadlockError, Simulator
from ..units import us
from .comm import MpiWorld

__all__ = ["osu_latency", "osu_bandwidth", "make_mpi_pair"]


def make_mpi_pair(
    pcie_lanes: int = 8,
    protocol_factory=None,
    n_nodes: int = 2,
):
    """Fresh two-node (default) IB cluster + MPI world."""
    sim = Simulator()
    cluster = build_ib_cluster(sim, n_nodes, pcie_lanes=pcie_lanes)
    world = MpiWorld(cluster, protocol_factory=protocol_factory)
    return sim, cluster, world


def _alloc(node, gpu: bool, nbytes: int) -> int:
    if gpu:
        return node.gpu.alloc(nbytes).addr
    return node.runtime.host_alloc(nbytes).addr


def osu_latency(
    msg_size: int,
    gpu_buffers: bool = True,
    iterations: int = 12,
    skip: int = 2,
    pcie_lanes: int = 8,
    protocol_factory=None,
) -> float:
    """Half round-trip time in ns for *msg_size* messages."""
    sim, cluster, world = make_mpi_pair(pcie_lanes, protocol_factory)
    a, b = world.endpoint(0), world.endpoint(1)
    buf_a = _alloc(cluster.node(0), gpu_buffers, msg_size)
    buf_b = _alloc(cluster.node(1), gpu_buffers, msg_size)
    rtts: list[float] = []

    def rank0():
        yield sim.timeout(us(5))
        for i in range(iterations):
            t0 = sim.now
            yield from a.send(1, buf_a, msg_size, tag=("pp", i))
            yield from a.recv(1, buf_a, msg_size, tag=("pp", i, "r"))
            rtts.append(sim.now - t0)

    def rank1():
        for i in range(iterations):
            yield from b.recv(0, buf_b, msg_size, tag=("pp", i))
            yield from b.send(0, buf_b, msg_size, tag=("pp", i, "r"))

    p0 = sim.process(rank0())
    sim.process(rank1())
    sim.run()
    if not p0.processed:
        raise DeadlockError("OSU latency rank 0 never finished")
    kept = rtts[skip:]
    return sum(kept) / len(kept) / 2.0


def osu_bandwidth(
    msg_size: int,
    gpu_buffers: bool = True,
    window: int = 16,
    iterations: int = 4,
    pcie_lanes: int = 8,
    protocol_factory=None,
) -> float:
    """Uni-directional bandwidth in bytes/ns (== GB/s)."""
    sim, cluster, world = make_mpi_pair(pcie_lanes, protocol_factory)
    a, b = world.endpoint(0), world.endpoint(1)
    buf_a = _alloc(cluster.node(0), gpu_buffers, msg_size)
    buf_b = _alloc(cluster.node(1), gpu_buffers, msg_size)
    span = {}

    def rank0():
        yield sim.timeout(us(5))
        t0 = sim.now
        for it in range(iterations):
            reqs = []
            for w in range(window):
                r = yield from a.isend(1, buf_a, msg_size, tag=("bw", it, w))
                reqs.append(r)
            yield from a.wait_all(reqs)
            # Tiny ack closes the iteration.
            yield from a.recv(1, world.scratch(0), 4, tag=("ack", it))
        span["t"] = sim.now - t0

    def rank1():
        for it in range(iterations):
            reqs = []
            for w in range(window):
                r = yield from b.irecv(0, buf_b, msg_size, tag=("bw", it, w))
                reqs.append(r)
            yield from b.wait_all(reqs)
            yield from b.send(0, world.scratch(1), 4, tag=("ack", it))

    p0 = sim.process(rank0())
    sim.process(rank1())
    sim.run()
    if not p0.processed:
        raise DeadlockError("OSU bandwidth rank 0 never finished")
    total = msg_size * window * iterations
    return total / span["t"]
