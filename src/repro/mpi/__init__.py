"""MPI-like message passing over the InfiniBand baseline fabric."""

from .comm import EAGER_THRESHOLD, MpiEndpoint, MpiRequest, MpiWorld
from .gpu_aware import GpuProtocol, MVAPICH2Protocol, OpenMPIProtocol
from .osu import make_mpi_pair, osu_bandwidth, osu_latency

__all__ = [
    "MpiWorld",
    "MpiEndpoint",
    "MpiRequest",
    "EAGER_THRESHOLD",
    "GpuProtocol",
    "MVAPICH2Protocol",
    "OpenMPIProtocol",
    "osu_latency",
    "osu_bandwidth",
    "make_mpi_pair",
]
