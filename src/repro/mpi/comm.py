"""An MPI point-to-point layer over the InfiniBand fabric.

Implements the protocol structure that determines MVAPICH2/OpenMPI
performance in the paper:

* **eager** — small messages are RDMA-written into a pre-registered
  per-peer bounce ring at the receiver and copied out on match;
* **rendezvous** — large messages handshake (RTS → CTS) and then
  RDMA-write straight into the posted receive buffer;
* **GPU awareness** — device pointers are staged through host vbufs,
  synchronously for small messages and through a chunked *single-stream*
  pipeline for large ones (see :mod:`repro.mpi.gpu_aware`), reproducing
  the behaviour the paper contrasts against P2P.

All caller-facing operations are generators (``yield from``); ``isend`` /
``irecv`` return :class:`MpiRequest` handles with ``.done`` events.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Optional

from ..ib.cluster import IBCluster, IBClusterNode
from ..sim import Event, Simulator
from ..units import KiB, us
from .gpu_aware import GpuProtocol, MVAPICH2Protocol

__all__ = ["MpiWorld", "MpiEndpoint", "MpiRequest", "EAGER_THRESHOLD"]

EAGER_THRESHOLD = 12 * KiB
_EAGER_SLOTS = 16  # bounce slots per peer (credit-managed vbufs)
_HOST_COPY_RATE = 6.0  # bytes/ns, eager copy-out

_req_ids = itertools.count(1)


@dataclass
class MpiRequest:
    """Handle for a non-blocking operation."""

    kind: str  # "send" | "recv"
    peer: int
    tag: Any
    nbytes: int
    done: Event = None

    def __post_init__(self):
        if self.done is None:
            raise ValueError("request needs a done event")


@dataclass
class _PostedRecv:
    src: int  # peer rank or -1 for ANY_SOURCE
    tag: Any
    addr: int
    nbytes: int
    req: MpiRequest = None


@dataclass
class _Envelope:
    """Metadata riding on every wire message."""

    kind: str  # "eager" | "rts" | "cts" | "data"
    src: int
    tag: Any
    nbytes: int
    req_id: int = 0
    dst_addr: int = 0  # CTS: where the sender should write


class MpiEndpoint:
    """Per-rank progress engine + communication calls."""

    def __init__(self, world: "MpiWorld", node: IBClusterNode):
        self.world = world
        self.node = node
        self.sim: Simulator = world.sim
        self.rank = node.rank
        node.hca.on_receive = self._on_receive
        self._posted: list[_PostedRecv] = []
        self._unexpected: list[tuple[_Envelope, int]] = []  # (env, eager_addr)
        # Per-peer eager bounce rings (several slots so back-to-back eager
        # sends from one peer don't overwrite each other before copy-out)
        # and a control-message landing zone.
        n = len(world.cluster)
        self._eager_rx = node.runtime.host_alloc(
            EAGER_THRESHOLD * _EAGER_SLOTS * max(1, n)
        )
        self._eager_seq_tx: dict[int, int] = {}  # per-destination counter
        self._ctrl = node.runtime.host_alloc(4096)
        # Rendezvous state: sender req_id -> (src_addr, CTS event);
        # receiver req_id -> posted recv awaiting the data message.
        self._rdv_waiting_cts: dict[int, tuple[int, Event]] = {}
        self._rdv_posted: dict[int, _PostedRecv] = {}
        self.gpu: GpuProtocol = world.protocol_factory(self)

    # ------------------------------------------------------------------
    # Address helpers
    # ------------------------------------------------------------------

    def _eager_slot(self, src_rank: int, seq: int) -> int:
        base = self._eager_rx.addr + src_rank * _EAGER_SLOTS * EAGER_THRESHOLD
        return base + (seq % _EAGER_SLOTS) * EAGER_THRESHOLD

    def _is_device(self, addr: int) -> bool:
        return self.node.runtime.pointer_attributes(addr).is_device

    def _host_data(self, addr: int, nbytes: int):
        buf = self.node.runtime.host_buffer_at(addr)
        if buf._data is None:
            return None
        off = addr - buf.addr
        return buf.data[off : off + nbytes]

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def isend(self, dst: int, addr: int, nbytes: int, tag: Any = 0):
        """Generator: start a send; returns an MpiRequest."""
        req = MpiRequest("send", dst, tag, nbytes, done=Event(self.sim))
        obs = self.sim._obs
        if obs is not None:
            span = obs.span("mpi", "send", dst=dst, nbytes=nbytes)
            req.done.callbacks.append(span.end_event)
        if self._is_device(addr):
            yield from self.gpu.send(dst, addr, nbytes, tag, req)
        else:
            yield from self._host_isend(dst, addr, nbytes, tag, req)
        return req

    def send(self, dst: int, addr: int, nbytes: int, tag: Any = 0):
        """Generator: blocking send (returns when the buffer is reusable)."""
        req = yield from self.isend(dst, addr, nbytes, tag)
        yield req.done
        return req

    def irecv(self, src: int, addr: int, nbytes: int, tag: Any = 0):
        """Generator: post a receive; returns an MpiRequest."""
        req = MpiRequest("recv", src, tag, nbytes, done=Event(self.sim))
        obs = self.sim._obs
        if obs is not None:
            span = obs.span("mpi", "recv", src=src, nbytes=nbytes)
            req.done.callbacks.append(span.end_event)
        if self._is_device(addr):
            yield from self.gpu.recv(src, addr, nbytes, tag, req)
        else:
            yield from self._host_irecv(src, addr, nbytes, tag, req)
        return req

    def recv(self, src: int, addr: int, nbytes: int, tag: Any = 0):
        """Generator: blocking receive."""
        req = yield from self.irecv(src, addr, nbytes, tag)
        yield req.done
        return req

    def sendrecv(self, dst, send_addr, src, recv_addr, nbytes, tag: Any = 0):
        """Generator: simultaneous send + receive (halo-exchange staple)."""
        rreq = yield from self.irecv(src, recv_addr, nbytes, tag)
        sreq = yield from self.isend(dst, send_addr, nbytes, tag)
        yield self.sim.all_of([rreq.done, sreq.done])
        return rreq, sreq

    def wait_all(self, requests):
        """Generator: wait for every request in *requests*."""
        pending = [r.done for r in requests if not r.done.processed]
        if pending:
            yield self.sim.all_of(pending)

    # ------------------------------------------------------------------
    # Host-pointer protocol
    # ------------------------------------------------------------------

    def _host_isend(self, dst, addr, nbytes, tag, req):
        hca = self.node.hca
        yield self.sim.timeout(hca.post_cost)
        data = self._host_data(addr, nbytes)
        env = _Envelope("eager", self.rank, tag, nbytes, req_id=next(_req_ids))
        dst_ep = self.world.endpoint(dst)
        if nbytes <= EAGER_THRESHOLD:
            seq = self._eager_seq_tx.get(dst, 0)
            self._eager_seq_tx[dst] = seq + 1
            env.dst_addr = dst_ep._eager_slot(self.rank, seq)
            ev = hca.rdma_write(
                dst, addr, env.dst_addr, nbytes, meta=env, data=data
            )
            # Eager: the local buffer is reusable once the HCA has read it.
            ev.callbacks.append(lambda _e: req.done.succeed(req))
        else:
            env.kind = "rts"
            cts_ev = Event(self.sim)
            self._rdv_waiting_cts[env.req_id] = (addr, cts_ev)
            hca.rdma_write(dst, addr, dst_ep._ctrl.addr, 64, meta=env)
            # Progress continues in _on_cts once the receiver matches.
            cts_ev.callbacks.append(
                lambda ev, e=env, a=addr, n=nbytes, r=req, d=dst: self._rdv_send_data(
                    d, a, n, e, ev.value, r
                )
            )

    def _rdv_send_data(self, dst, addr, nbytes, env, dst_addr, req):
        data = self._host_data(addr, nbytes)
        denv = _Envelope("data", self.rank, env.tag, nbytes, req_id=env.req_id)
        ev = self.node.hca.rdma_write(dst, addr, dst_addr, nbytes, meta=denv, data=data)
        ev.callbacks.append(lambda _e: req.done.succeed(req))

    def _host_irecv(self, src, addr, nbytes, tag, req):
        yield self.sim.timeout(self.node.hca.completion_cost)
        posted = _PostedRecv(src, tag, addr, nbytes, req)
        # Check the unexpected queue first.
        for i, (env, eager_addr) in enumerate(self._unexpected):
            if self._matches(posted, env):
                del self._unexpected[i]
                if env.kind == "rts":
                    self._send_cts(env, posted)
                else:
                    self._complete_eager(posted, env, eager_addr)
                return
        self._posted.append(posted)

    # ------------------------------------------------------------------
    # Progress engine (HCA receive callbacks)
    # ------------------------------------------------------------------

    @staticmethod
    def _matches(posted: _PostedRecv, env: _Envelope) -> bool:
        return (posted.src in (-1, env.src)) and posted.tag == env.tag

    def _find_posted(self, env: _Envelope) -> Optional[_PostedRecv]:
        for i, p in enumerate(self._posted):
            if self._matches(p, env):
                return self._posted.pop(i)
        return None

    def _on_receive(self, msg) -> None:
        env: _Envelope = msg.meta
        if env.kind == "eager":
            posted = self._find_posted(env)
            if posted is None:
                self._unexpected.append((env, env.dst_addr))
            else:
                self._complete_eager(posted, env, env.dst_addr)
        elif env.kind == "rts":
            posted = self._find_posted(env)
            if posted is None:
                self._unexpected.append((env, 0))
            else:
                self._send_cts(env, posted)
        elif env.kind == "cts":
            entry = self._rdv_waiting_cts.pop(env.req_id, None)
            if entry is None:
                raise RuntimeError(f"rank {self.rank}: stray CTS {env.req_id}")
            _addr, cts_ev = entry
            cts_ev.succeed(env.dst_addr)
        elif env.kind == "data":
            # Rendezvous payload landed directly in the posted buffer.
            pending = self._rdv_posted.pop(env.req_id)
            pending.req.done.succeed(pending.req)
        else:  # pragma: no cover - protocol error
            raise RuntimeError(f"unknown envelope kind {env.kind!r}")

    def _send_cts(self, env: _Envelope, posted: _PostedRecv) -> None:
        self._rdv_posted[env.req_id] = posted
        cts = _Envelope(
            "cts", self.rank, env.tag, env.nbytes, req_id=env.req_id,
            dst_addr=posted.addr,
        )
        src_ep = self.world.endpoint(env.src)
        self.node.hca.rdma_write(env.src, posted.addr, src_ep._ctrl.addr, 64, meta=cts)

    def _complete_eager(self, posted: _PostedRecv, env: _Envelope, eager_addr: int) -> None:
        # Copy out of the bounce ring into the user buffer.
        def copier():
            obs = self.sim._obs
            span = None
            if obs is not None:
                span = obs.span("mpi", "eager_copy", nbytes=env.nbytes)
            yield self.sim.timeout(env.nbytes / _HOST_COPY_RATE + us(0.2))
            if span is not None:
                span.end()
            src_buf = self.node.runtime.host_buffer_at(eager_addr)
            if src_buf._data is not None:
                data = src_buf.read_bytes(eager_addr, env.nbytes)
                dst_buf = self.node.runtime.host_buffer_at(posted.addr)
                dst_buf.write_bytes(posted.addr, data)
            posted.req.done.succeed(posted.req)

        self.sim.process(copier(), name=f"mpi{self.rank}.eagercp")

    # ------------------------------------------------------------------
    # Collectives (linear implementations — cluster sizes are ≤ 12)
    # ------------------------------------------------------------------

    def barrier(self, tag: Any = "_barrier"):
        """Generator: linear fan-in to rank 0, fan-out back."""
        n = len(self.world.cluster)
        if n == 1:
            return
        scratch = self.world.scratch(self.rank)
        if self.rank == 0:
            for src in range(1, n):
                yield from self.recv(src, scratch, 1, tag=(tag, "in"))
            for dst in range(1, n):
                yield from self.send(dst, scratch, 1, tag=(tag, "out"))
        else:
            yield from self.send(0, scratch, 1, tag=(tag, "in"))
            yield from self.recv(0, scratch, 1, tag=(tag, "out"))

    def allreduce(self, value, op=None, tag: Any = "_allreduce"):
        """Generator: reduce a Python value with *op* (default sum) to all.

        Values ride the envelope tag (control-plane data, not simulated
        payload bytes beyond a small message).
        """
        import operator

        op = op or operator.add
        n = len(self.world.cluster)
        if n == 1:
            return value
        scratch = self.world.scratch(self.rank)
        if self.rank == 0:
            acc = value
            for src in range(1, n):
                yield from self.recv(src, scratch, 8, tag=(tag, "v", src))
                acc = op(acc, self.world._collect_box.pop((tag, src)))
            for dst in range(1, n):
                self.world._collect_box[(tag, "r", dst)] = acc
                yield from self.send(dst, scratch, 8, tag=(tag, "res", dst))
            return acc
        else:
            self.world._collect_box[(tag, self.rank)] = value
            yield from self.send(0, scratch, 8, tag=(tag, "v", self.rank))
            yield from self.recv(0, scratch, 8, tag=(tag, "res", self.rank))
            return self.world._collect_box.pop((tag, "r", self.rank))


class MpiWorld:
    """All endpoints of one MPI job."""

    def __init__(self, cluster: IBCluster, protocol_factory=None):
        self.sim = cluster.sim
        self.cluster = cluster
        self.protocol_factory = protocol_factory or MVAPICH2Protocol
        self._endpoints: list[MpiEndpoint] = []
        self._scratch: list[int] = []
        self._collect_box: dict = {}
        for node in cluster.nodes:
            ep = MpiEndpoint(self, node)
            self._endpoints.append(ep)
            self._scratch.append(node.runtime.host_alloc(256).addr)

    def endpoint(self, rank: int) -> MpiEndpoint:
        """The endpoint for *rank*."""
        return self._endpoints[rank]

    def scratch(self, rank: int) -> int:
        """A small host scratch address on *rank* (collectives plumbing)."""
        return self._scratch[rank]

    @property
    def size(self) -> int:
        """Number of ranks."""
        return len(self._endpoints)
