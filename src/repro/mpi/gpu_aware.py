"""GPU-aware MPI protocols: staging pipelines over host vbufs.

"Both OpenMPI and MVAPICH2 rely on a software approach ... [that] can
increase communication performance for mid-to-large-size messages, thanks
to pipelining implemented at the MPI library level.  On the other hand,
this approach can even hurt performance for medium-size messages, due to
them not using independent CUDA STREAMs, thereby introducing an implicit
synchronization" (§II).

Mechanics modelled here:

* device pointers detected via the UVA registry (cudaMemcpyDefault-style);
* **small** device messages: one synchronous D2H into a vbuf, then the
  normal host path; the receiver drains its vbuf to the GPU with an
  async-copy + event-sync sequence;
* **large** device messages: chunked double-vbuf pipeline — but all copies
  of an endpoint share ONE stream (the implicit-synchronization caveat).
"""

from __future__ import annotations

import math
from typing import Any

from ..cuda.memcpy import memcpy_device_work, memcpy_sync
from ..cuda.stream import CudaStream
from ..sim import Event
from ..units import KiB, us

__all__ = ["GpuProtocol", "MVAPICH2Protocol", "OpenMPIProtocol"]


class _VbufPool:
    """Round-robin pool of bounce buffers with reuse guards."""

    def __init__(self, ep, slot_size: int, n_slots: int):
        self.sim = ep.sim
        buf = ep.node.runtime.host_alloc(slot_size * n_slots)
        self.slots = [buf.addr + i * slot_size for i in range(n_slots)]
        self.busy: list[Event] = [None] * n_slots
        self._next = 0

    def acquire(self):
        """Generator: returns (slot_addr, release) once a slot is free."""
        i = self._next
        self._next = (self._next + 1) % len(self.slots)
        prev = self.busy[i]
        if prev is not None and not prev.processed:
            yield prev
        done = Event(self.sim)
        self.busy[i] = done
        return self.slots[i], done


class GpuProtocol:
    """Base staging protocol bound to one MPI endpoint."""

    #: above this, messages go through the chunked pipeline
    pipeline_threshold = 32 * KiB
    #: pipeline chunk (vbuf) size
    chunk_size = 256 * KiB
    #: extra per-message protocol bookkeeping on the host
    protocol_overhead = us(1.0)

    def __init__(self, ep):
        self.ep = ep
        self.sim = ep.sim
        self.runtime = ep.node.runtime
        # ONE stream for everything — the implicit-synchronization caveat.
        self.stream = CudaStream(self.sim, f"mpi{ep.rank}.gpustream")
        # Small-message vbuf pools: concurrent small sends/recvs each hold a
        # slot until their request completes (a single shared bounce would
        # be corrupted by overlapping operations).
        self._small_send = _VbufPool(ep, self.pipeline_threshold, 8)
        self._small_recv = _VbufPool(ep, self.pipeline_threshold, 8)

    # -- helpers -----------------------------------------------------------

    def _chunks(self, nbytes: int) -> list[tuple[int, int]]:
        n = math.ceil(nbytes / self.chunk_size)
        return [
            (i * self.chunk_size, min(self.chunk_size, nbytes - i * self.chunk_size))
            for i in range(n)
        ]

    def _async_copy(self, dst: int, src: int, nbytes: int) -> Event:
        """Enqueue a copy on the shared stream; returns its completion."""
        return self.stream.enqueue(
            lambda: memcpy_device_work(self.runtime, dst, src, nbytes),
            f"gpumpi:{nbytes}",
        )

    # -- send ----------------------------------------------------------------

    def send(self, dst: int, addr: int, nbytes: int, tag: Any, req):
        """Generator: stage a device buffer out and send it."""
        yield self.sim.timeout(self.protocol_overhead)
        if nbytes <= self.pipeline_threshold:
            # Blocking staging copy (the ~10 us cudaMemcpy cost).
            slot, release = yield from self._small_send.acquire()
            yield from memcpy_sync(self.runtime, slot, addr, nbytes)
            yield from self.ep._host_isend(dst, slot, nbytes, tag, req)
            req.done.callbacks.append(lambda _e: release.succeed())
            return
        # Chunked pipeline through double vbufs on the single stream.
        # Vbufs are per-invocation: concurrent pipelines must not share.
        vbufs = self.runtime.host_alloc(2 * self.chunk_size)
        chunks = self._chunks(nbytes)
        sub_done: list[Event] = []

        def pipeline():
            for i, (off, csize) in enumerate(chunks):
                # Double buffering: chunk i reuses chunk i-2's vbuf, which
                # must have been fully pulled by the HCA first.
                if i >= 2 and not sub_done[i - 2].processed:
                    yield sub_done[i - 2]
                vbuf = vbufs.addr + (i % 2) * self.chunk_size
                copy_ev = self._async_copy(vbuf, addr + off, csize)
                yield copy_ev
                sub = type(req)("send", dst, (tag, "_c", i), csize, done=Event(self.sim))
                sub_done.append(sub.done)
                yield from self.ep._host_isend(dst, vbuf, csize, (tag, "_c", i), sub)
            yield self.sim.all_of([e for e in sub_done if not e.processed])
            req.done.succeed(req)

        self.sim.process(pipeline(), name=f"mpi{self.ep.rank}.gpusend")

    # -- recv ----------------------------------------------------------------

    def recv(self, src: int, addr: int, nbytes: int, tag: Any, req):
        """Generator: receive into a device buffer through host vbufs."""
        yield self.sim.timeout(self.protocol_overhead)
        if nbytes <= self.pipeline_threshold:
            slot, release = yield from self._small_recv.acquire()
            inner = type(req)("recv", src, tag, nbytes, done=Event(self.sim))
            yield from self.ep._host_irecv(src, slot, nbytes, tag, inner)

            def finish():
                yield inner.done
                # Async H2D + event synchronization (cheaper than a fully
                # synchronous cudaMemcpy, which is why MVAPICH2's receive
                # side costs less than its send side).
                yield self.sim.timeout(self.runtime.costs.async_enqueue_cost)
                yield self._async_copy(addr, slot, nbytes)
                yield self.sim.timeout(self.runtime.costs.sync_call_cost)
                req.done.succeed(req)
                release.succeed()

            self.sim.process(finish(), name=f"mpi{self.ep.rank}.gpurecv")
            return
        vbufs = self.runtime.host_alloc(2 * self.chunk_size)
        chunks = self._chunks(nbytes)

        def pipeline():
            copies: list[Event] = []
            for i, (off, csize) in enumerate(chunks):
                # The vbuf being reused must have been drained to the GPU.
                if i >= 2 and not copies[i - 2].processed:
                    yield copies[i - 2]
                vbuf = vbufs.addr + (i % 2) * self.chunk_size
                inner = type(req)("recv", src, (tag, "_c", i), csize, done=Event(self.sim))
                yield from self.ep._host_irecv(src, vbuf, csize, (tag, "_c", i), inner)
                yield inner.done
                copies.append(self._async_copy(addr + off, vbuf, csize))
            pend = [e for e in copies if not e.processed]
            if pend:
                yield self.sim.all_of(pend)
            req.done.succeed(req)

        self.sim.process(pipeline(), name=f"mpi{self.ep.rank}.gpurecv")


class MVAPICH2Protocol(GpuProtocol):
    """MVAPICH2 1.9a2 constants (the paper's IB reference stack)."""

    pipeline_threshold = 32 * KiB
    chunk_size = 256 * KiB
    protocol_overhead = us(1.0)


class OpenMPIProtocol(GpuProtocol):
    """CUDA-aware OpenMPI: same structure, slightly laxer constants."""

    pipeline_threshold = 64 * KiB
    chunk_size = 128 * KiB
    protocol_overhead = us(1.4)
