"""Units and constants used throughout the simulation.

The simulation clock runs in **nanoseconds**, stored as ``float``.  With that
choice, a bandwidth expressed in GB/s is *numerically equal* to bytes per
nanosecond (1 GB/s = 1e9 B / 1e9 ns = 1 B/ns), which keeps every
``bytes / bandwidth`` expression free of conversion factors.

Sizes are in bytes.  Binary prefixes (KiB/MiB/GiB) are used for buffer and
message sizes because the paper's "4KB", "32KB", "4MB" message sizes are
powers of two; decimal GB/s is used for bandwidths because that is how PCIe
and the paper quote rates.
"""

from __future__ import annotations

# --------------------------------------------------------------------------
# Time (simulation unit = 1 ns)
# --------------------------------------------------------------------------

NS = 1.0
US = 1_000.0
MS = 1_000_000.0
S = 1_000_000_000.0


def ns(x: float) -> float:
    """Return *x* nanoseconds in simulation time units."""
    return x * NS


def us(x: float) -> float:
    """Return *x* microseconds in simulation time units."""
    return x * US


def ms(x: float) -> float:
    """Return *x* milliseconds in simulation time units."""
    return x * MS


def seconds(x: float) -> float:
    """Return *x* seconds in simulation time units."""
    return x * S


def to_us(t: float) -> float:
    """Convert simulation time to microseconds."""
    return t / US


def to_ms(t: float) -> float:
    """Convert simulation time to milliseconds."""
    return t / MS


def to_seconds(t: float) -> float:
    """Convert simulation time to seconds."""
    return t / S


# --------------------------------------------------------------------------
# Sizes (bytes)
# --------------------------------------------------------------------------

B = 1
KiB = 1024
MiB = 1024 * 1024
GiB = 1024 * 1024 * 1024


def kib(x: float) -> int:
    """Return *x* KiB in bytes."""
    return int(x * KiB)


def mib(x: float) -> int:
    """Return *x* MiB in bytes."""
    return int(x * MiB)


# --------------------------------------------------------------------------
# Bandwidth (bytes per ns; numerically equal to GB/s)
# --------------------------------------------------------------------------


def GBps(x: float) -> float:
    """Bandwidth of *x* GB/s expressed in bytes/ns (identity by design)."""
    return x


def MBps(x: float) -> float:
    """Bandwidth of *x* MB/s expressed in bytes/ns."""
    return x / 1000.0


def Gbps(x: float) -> float:
    """Bandwidth of *x* Gbit/s expressed in bytes/ns."""
    return x / 8.0


def bw_to_MBps(bw: float) -> float:
    """Convert a bytes/ns bandwidth back to MB/s (for reporting)."""
    return bw * 1000.0


def bw_to_GBps(bw: float) -> float:
    """Convert a bytes/ns bandwidth back to GB/s (for reporting)."""
    return bw


# --------------------------------------------------------------------------
# Formatting helpers
# --------------------------------------------------------------------------

_SIZE_SUFFIXES = ["B", "KiB", "MiB", "GiB", "TiB"]


def fmt_size(nbytes: float) -> str:
    """Human-readable binary size, e.g. ``fmt_size(32768) == '32KiB'``."""
    value = float(nbytes)
    for suffix in _SIZE_SUFFIXES:
        if value < 1024 or suffix == _SIZE_SUFFIXES[-1]:
            if value == int(value):
                return f"{int(value)}{suffix}"
            return f"{value:.1f}{suffix}"
        value /= 1024.0
    raise AssertionError("unreachable")


def fmt_time(t: float) -> str:
    """Human-readable simulation time, e.g. ``fmt_time(1800) == '1.80us'``."""
    if t < US:
        return f"{t:.0f}ns"
    if t < MS:
        return f"{t / US:.2f}us"
    if t < S:
        return f"{t / MS:.3f}ms"
    return f"{t / S:.4f}s"


def fmt_bw(bw: float) -> str:
    """Human-readable bandwidth from bytes/ns, e.g. ``'1536 MB/s'``."""
    mbps = bw_to_MBps(bw)
    if mbps < 1000:
        return f"{mbps:.0f} MB/s"
    return f"{mbps / 1000.0:.2f} GB/s"


def parse_size(text: str) -> int:
    """Parse a size string like ``'4K'``, ``'32KB'``, ``'4MiB'`` into bytes.

    Accepts the loose suffixes used in the paper's figures (K/M/G treated as
    binary multipliers, matching the power-of-two sweep points).
    """
    s = text.strip().upper()
    multipliers = {
        "K": KiB,
        "KB": KiB,
        "KIB": KiB,
        "M": MiB,
        "MB": MiB,
        "MIB": MiB,
        "G": GiB,
        "GB": GiB,
        "GIB": GiB,
        "B": 1,
        "": 1,
    }
    idx = len(s)
    while idx > 0 and not s[idx - 1].isdigit():
        idx -= 1
    number, suffix = s[:idx], s[idx:].strip()
    if not number:
        raise ValueError(f"no numeric part in size string {text!r}")
    if suffix not in multipliers:
        raise ValueError(f"unknown size suffix {suffix!r} in {text!r}")
    return int(float(number) * multipliers[suffix])
