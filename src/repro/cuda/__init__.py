"""CUDA-like host runtime: UVA pointers, streams, memcpy cost model."""

from .config import DEFAULT_COSTS, CudaCosts
from .memcpy import MemcpyKind, classify, memcpy_async, memcpy_device_work, memcpy_sync
from .pointer import MemoryType, P2PTokens, PointerAttributes
from .runtime import CudaRuntime, HostBuffer
from .stream import CudaEvent, CudaStream

__all__ = [
    "CudaCosts",
    "DEFAULT_COSTS",
    "CudaRuntime",
    "HostBuffer",
    "CudaStream",
    "CudaEvent",
    "MemcpyKind",
    "classify",
    "memcpy_sync",
    "memcpy_async",
    "memcpy_device_work",
    "MemoryType",
    "PointerAttributes",
    "P2PTokens",
]
