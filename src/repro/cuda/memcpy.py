"""``cudaMemcpy`` paths: classification, device work, and host-side costs.

The copy *kind* is inferred from the UVA pointers (cudaMemcpyDefault
semantics).  Device-side work runs on the GPU DMA engines
(:mod:`repro.gpu.dma`); this module adds the host-visible behaviour:

* **sync** copies block the caller for ``sync_memcpy_overhead`` (~10 µs,
  §V.C) plus the full transfer — the cost that makes staging expensive;
* **async** copies charge only an enqueue cost and run on a
  :class:`~repro.cuda.stream.CudaStream`.

Real data moves whenever both sides have materialized backing arrays.
"""

from __future__ import annotations

import enum

from ..sim import Event
from .runtime import CudaRuntime
from .stream import CudaStream

__all__ = ["MemcpyKind", "classify", "memcpy_device_work", "memcpy_sync", "memcpy_async"]

# Plain host memcpy bandwidth (bytes/ns) for H2H staging copies.
_HOST_MEMCPY_RATE = 6.0


class MemcpyKind(enum.Enum):
    """Transfer direction, as in the cudaMemcpyKind enum."""

    H2H = "HostToHost"
    H2D = "HostToDevice"
    D2H = "DeviceToHost"
    D2D = "DeviceToDevice"  # same GPU
    P2P = "PeerToPeer"  # different GPUs


def classify(rt: CudaRuntime, dst: int, src: int) -> MemcpyKind:
    """Infer the copy kind from two UVA pointers."""
    d = rt.pointer_attributes(dst)
    s = rt.pointer_attributes(src)
    if s.is_device and d.is_device:
        if s.device_index == d.device_index:
            return MemcpyKind.D2D
        return MemcpyKind.P2P
    if s.is_device:
        return MemcpyKind.D2H
    if d.is_device:
        return MemcpyKind.H2D
    return MemcpyKind.H2H


def memcpy_device_work(rt: CudaRuntime, dst: int, src: int, nbytes: int) -> Event:
    """Start the device-side transfer; returns its completion event.

    No host cost is charged here — callers wrap this with sync/async
    semantics.
    """
    if nbytes <= 0:
        raise ValueError("memcpy needs a positive size")
    kind = classify(rt, dst, src)
    sim = rt.sim

    if kind is MemcpyKind.D2H:
        gpu = rt.owner_gpu(src)
        host = rt.host_buffer_at(dst)
        array = host.data if (host._data is not None or _gpu_has_data(gpu, src)) else None
        return gpu.dma.device_to_host(
            src, dst, nbytes, host_array=array, host_offset=dst - host.addr
        )

    if kind is MemcpyKind.H2D:
        gpu = rt.owner_gpu(dst)
        host = rt.host_buffer_at(src)
        array = host.data if host._data is not None else None
        return gpu.dma.host_to_device(
            src, dst, nbytes, host_array=array, host_offset=src - host.addr
        )

    if kind is MemcpyKind.D2D:
        gpu = rt.owner_gpu(src)
        done = Event(sim)

        def _d2d():
            # On-device copy: read + write against device memory bandwidth.
            yield sim.timeout(nbytes / (gpu.spec.mem_bandwidth / 2))
            src_buf = gpu.allocator.buffer_at(src)
            if src_buf._data is not None:
                data = src_buf.read_bytes(src, nbytes)
                gpu.allocator.buffer_at(dst).write_bytes(dst, data)
            done.succeed(nbytes)

        sim.process(_d2d(), name=f"{gpu.name}.d2d")
        return done

    if kind is MemcpyKind.P2P:
        gpu = rt.owner_gpu(src)
        return gpu.dma.device_to_peer(src, dst, nbytes)

    # H2H
    done = Event(sim)

    def _h2h():
        yield sim.timeout(nbytes / _HOST_MEMCPY_RATE)
        src_buf = rt.host_buffer_at(src)
        if src_buf._data is not None:
            data = src_buf.read_bytes(src, nbytes)
            rt.host_buffer_at(dst).write_bytes(dst, data)
        done.succeed(nbytes)

    sim.process(_h2h(), name="h2h")
    return done


def _gpu_has_data(gpu, addr: int) -> bool:
    try:
        return gpu.allocator.buffer_at(addr)._data is not None
    except KeyError:
        return False


def memcpy_sync(rt: CudaRuntime, dst: int, src: int, nbytes: int):
    """Synchronous cudaMemcpy (generator: ``yield from``).

    Blocks the calling host process for the ~10 µs call overhead plus the
    entire transfer — "fully synchronous with respect to the host,
    therefore it does not overlap" (§V.C).
    """
    obs = rt.sim._obs
    span = None
    if obs is not None:
        span = obs.span("cuda", "memcpy_sync", nbytes=nbytes)
    yield rt.sim.timeout(rt.costs.sync_memcpy_overhead)
    yield memcpy_device_work(rt, dst, src, nbytes)
    if span is not None:
        span.end()
    return nbytes


def memcpy_async(
    rt: CudaRuntime, dst: int, src: int, nbytes: int, stream: CudaStream
):
    """cudaMemcpyAsync on *stream* (generator; returns completion event).

    The caller pays only the enqueue cost; the transfer runs in stream
    order.  ``ev = yield from memcpy_async(...)`` then later ``yield ev``.
    """
    yield rt.sim.timeout(rt.costs.async_enqueue_cost)
    return stream.enqueue(
        lambda: memcpy_device_work(rt, dst, src, nbytes), f"memcpy:{nbytes}"
    )
