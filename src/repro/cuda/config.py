"""CUDA runtime cost model constants.

The paper's staging-vs-P2P results hinge on host-side CUDA call overheads:

* a synchronous ``cudaMemcpy`` costs ~10 µs of non-overlappable host time
  ("the single cudaMemcpy overhead can be estimated around 10 µs, which was
  confirmed by doing simple CUDA tests on the same hosts", §V.C);
* asynchronous copies on independent streams only pay an enqueue cost, which
  is how MVAPICH2-style pipelining hides transfer time for large messages;
* ``cuPointerGetAttribute`` "is possibly expensive, at least on early CUDA 4
  releases" (§IV.A) — the APEnet+ PUT API's compile-time buffer-type flag
  exists precisely to avoid it on the critical path.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..units import us

__all__ = ["CudaCosts", "DEFAULT_COSTS"]


@dataclass(frozen=True)
class CudaCosts:
    """Host-visible costs of CUDA runtime operations (ns)."""

    # Synchronous cudaMemcpy: driver entry + DMA setup + completion spin.
    sync_memcpy_overhead: float = us(10.0)
    # cudaMemcpyAsync enqueue (host returns immediately after this).
    async_enqueue_cost: float = us(1.2)
    # cudaEventRecord / cudaStreamWaitEvent bookkeeping.
    event_record_cost: float = us(0.5)
    # cudaStreamSynchronize / cudaEventSynchronize entry cost.
    sync_call_cost: float = us(1.0)
    # cuPointerGetAttribute(CU_POINTER_ATTRIBUTE_P2P_TOKENS, ...) query.
    attribute_query_cost: float = us(1.0)
    # Kernel launch (host side).
    kernel_launch_cost: float = us(5.0)
    # cudaMalloc / cudaFree (not on any critical path we model).
    malloc_cost: float = us(50.0)


DEFAULT_COSTS = CudaCosts()
