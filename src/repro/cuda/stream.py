"""CUDA streams and events: in-order queues over the device engines.

Work items enqueued on one stream execute strictly in order; different
streams proceed independently — the property MPI pipelining implementations
get wrong at their peril: "this approach can even hurt performance for
medium-size messages, due to them not using independent CUDA STREAMs,
thereby introducing an implicit synchronization that ruins the
computation-communication overlap" (§II).

A work item is a thunk returning a device-side completion
:class:`~repro.sim.core.Event`; the stream worker awaits each in turn.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..sim import Event, Simulator, Store

__all__ = ["CudaStream", "CudaEvent"]


class CudaEvent:
    """cudaEvent: marks a point in a stream; query/synchronize on it."""

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name
        self._fired = Event(sim)
        self.record_time: Optional[float] = None

    @property
    def completed(self) -> bool:
        """True once the stream has passed the recorded point."""
        return self._fired.triggered

    @property
    def elapsed_since(self) -> Optional[float]:
        """Completion timestamp (None until recorded and passed)."""
        return self.record_time

    def wait(self) -> Event:
        """Simulation event to ``yield`` on (cudaEventSynchronize)."""
        return self._fired

    def _complete(self) -> None:
        self.record_time = self.sim.now
        self._fired.succeed(self.sim.now)


class CudaStream:
    """One in-order execution queue bound to a GPU."""

    def __init__(self, sim: Simulator, name: str = "stream"):
        self.sim = sim
        self.name = name
        self._queue: Store = Store(sim)
        self._pending = 0
        self._idle_waiters: list[Event] = []
        self.ops_completed = 0
        sim.process(self._worker(), name=f"{name}.worker")

    def enqueue(self, thunk: Callable[[], Event], label: str = "") -> Event:
        """Queue a work item; returns its per-item completion event."""
        done = Event(self.sim)
        self._pending += 1
        self._queue.put((thunk, done, label))
        return done

    def record_event(self, event: Optional[CudaEvent] = None) -> CudaEvent:
        """cudaEventRecord: completes when prior work on the stream drains."""
        ev = event or CudaEvent(self.sim, f"{self.name}.ev")

        def marker() -> Event:
            t = self.sim.timeout(0)
            return t

        done = self.enqueue(marker, "event-record")
        done.callbacks.append(lambda _: ev._complete())
        return ev

    def wait_event(self, ev: CudaEvent) -> None:
        """cudaStreamWaitEvent: stall this stream until *ev* completes."""
        self.enqueue(lambda: ev.wait(), "wait-event")

    @property
    def idle(self) -> bool:
        """True when nothing is queued or executing."""
        return self._pending == 0

    def synchronize(self) -> Event:
        """Event firing when all currently-enqueued work has completed."""
        ev = Event(self.sim)
        if self.idle:
            ev.succeed()
        else:
            self._idle_waiters.append(ev)
        return ev

    def _worker(self):
        while True:
            thunk, done, label = yield self._queue.get()
            try:
                completion = thunk()
                if completion is not None:
                    result = yield completion
                else:
                    result = None
            except GeneratorExit:  # worker GC'd at simulation teardown
                raise
            except BaseException as exc:  # repro: noqa-SIM001 — crash boundary:
                # the failure is re-raised through the waiter's event.
                self._pending -= 1
                done.fail(exc)
                continue
            self.ops_completed += 1
            self._pending -= 1
            done.succeed(result)
            if self._pending == 0 and self._idle_waiters:
                waiters, self._idle_waiters = self._idle_waiters, []
                for w in waiters:
                    w.succeed()
