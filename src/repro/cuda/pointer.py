"""UVA pointer attributes — the ``cuPointerGetAttribute`` surface.

With Unified Virtual Addressing, "GPU buffers are assigned unique 64-bit
addresses, and they can be distinguished from plain host memory pointers by
using the cuPointerGetAttribute() call, which also returns other important
buffer properties like the GPU index and the CUDA context" (§IV.A).

In this model the UVA space *is* the PCIe fabric address space, so the
runtime resolves a pointer by routing its address.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

__all__ = ["MemoryType", "PointerAttributes", "P2PTokens"]


class MemoryType(enum.Enum):
    """What a UVA pointer refers to."""

    HOST = "host"
    DEVICE = "device"


@dataclass(frozen=True)
class P2PTokens:
    """The opaque handle pair from CU_POINTER_ATTRIBUTE_P2P_TOKENS."""

    p2p_token: int
    va_space_token: int


@dataclass(frozen=True)
class PointerAttributes:
    """Resolved properties of a UVA pointer."""

    addr: int
    memory_type: MemoryType
    device_index: Optional[int]  # None for host memory
    device_name: Optional[str]
    buffer_base: int
    buffer_size: int

    @property
    def is_device(self) -> bool:
        """True for GPU global-memory pointers."""
        return self.memory_type is MemoryType.DEVICE


def make_p2p_tokens(addr: int, device_index: int) -> P2PTokens:
    """Deterministic opaque tokens for a device buffer."""
    return P2PTokens(
        p2p_token=(addr >> 16) ^ (0xD0D0 + device_index),
        va_space_token=0x5A5A_0000 | device_index,
    )
