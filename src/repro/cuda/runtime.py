"""The CUDA-like host runtime over the simulated platform.

One :class:`CudaRuntime` per host (node).  It owns:

* the node's GPUs (``add_device``),
* a pinned-host-buffer allocator carved out of the host-memory window,
* the UVA pointer registry (:meth:`pointer_attributes` resolves any fabric
  address to host/device + owning buffer — the ``cuPointerGetAttribute``
  equivalent),
* memcpy entry points (see :mod:`repro.cuda.memcpy`).

Convention: every method that costs *host* time is a **generator** the
calling simulation process drives with ``yield from``; its return value is
either a result object or a completion :class:`~repro.sim.core.Event` for
the device-side work it started.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..gpu.device import GPUDevice
from ..pcie.topology import Platform
from ..sim import Simulator
from .config import DEFAULT_COSTS, CudaCosts
from .pointer import MemoryType, PointerAttributes, make_p2p_tokens

__all__ = ["HostBuffer", "CudaRuntime"]

# Pinned host allocations live here inside the DRAM window (4 GiB up).
_HOST_HEAP_BASE = 0x1_0000_0000


@dataclass
class HostBuffer:
    """A (pinned) host-memory allocation with lazy real backing."""

    addr: int
    size: int
    pinned: bool = True
    _data: Optional[np.ndarray] = field(default=None, repr=False)

    @property
    def end(self) -> int:
        """One past the last byte."""
        return self.addr + self.size

    @property
    def data(self) -> np.ndarray:
        """Lazily-created byte view of the buffer contents."""
        if self._data is None:
            self._data = np.zeros(self.size, dtype=np.uint8)
        return self._data

    def contains(self, addr: int, nbytes: int = 1) -> bool:
        """True if [addr, addr+nbytes) falls inside the buffer."""
        return self.addr <= addr and addr + nbytes <= self.end

    def write_bytes(self, addr: int, payload: np.ndarray) -> None:
        """Copy *payload* into the buffer at fabric address *addr*."""
        off = addr - self.addr
        if off < 0 or off + len(payload) > self.size:
            raise IndexError("write outside host buffer bounds")
        self.data[off : off + len(payload)] = payload

    def read_bytes(self, addr: int, nbytes: int) -> np.ndarray:
        """Copy *nbytes* out of the buffer from fabric address *addr*."""
        off = addr - self.addr
        if off < 0 or off + nbytes > self.size:
            raise IndexError("read outside host buffer bounds")
        return self.data[off : off + nbytes].copy()


class CudaRuntime:
    """Host-side CUDA runtime for one node."""

    def __init__(
        self,
        sim: Simulator,
        platform: Platform,
        costs: CudaCosts = DEFAULT_COSTS,
        name: str = "cuda",
    ):
        self.sim = sim
        self.platform = platform
        self.costs = costs
        self.name = name
        self.devices: list[GPUDevice] = []
        self._host_brk = platform.host_memory.windows[0].base + _HOST_HEAP_BASE
        # Sorted host-buffer index for address resolution.
        self._host_bufs: list[HostBuffer] = []
        self._host_starts: list[int] = []
        # Inbound DMA writes (NIC RX, GPU pushes) land in our buffers.
        platform.host_memory.delivery_hooks.append(self._on_dma_write)

    def _on_dma_write(self, addr: int, nbytes: int, payload) -> None:
        buf = self._find_host(addr)
        if buf is None:
            return  # write outside the CUDA heap (e.g. event-queue-less spots)
        data = np.asarray(payload, dtype=np.uint8)
        buf.write_bytes(addr, data[:nbytes])

    # ------------------------------------------------------------------
    # Device management
    # ------------------------------------------------------------------

    def add_device(self, gpu: GPUDevice) -> int:
        """Register *gpu* with this runtime; returns its device index."""
        self.devices.append(gpu)
        return len(self.devices) - 1

    def device(self, index: int) -> GPUDevice:
        """The GPU with device index *index*."""
        return self.devices[index]

    # ------------------------------------------------------------------
    # Allocation (setup-time, no simulated cost)
    # ------------------------------------------------------------------

    def host_alloc(self, nbytes: int, pinned: bool = True) -> HostBuffer:
        """Allocate a host buffer (cudaMallocHost equivalent)."""
        if nbytes <= 0:
            raise ValueError("host allocation must be positive")
        # 4 KB alignment like the host page size.
        size = (nbytes + 4095) // 4096 * 4096
        buf = HostBuffer(self._host_brk, nbytes, pinned)
        self._host_brk += size
        idx = bisect.bisect(self._host_starts, buf.addr)
        self._host_starts.insert(idx, buf.addr)
        self._host_bufs.insert(idx, buf)
        return buf

    def device_alloc(self, device_index: int, nbytes: int):
        """Allocate device memory (cudaMalloc equivalent)."""
        return self.devices[device_index].alloc(nbytes)

    # ------------------------------------------------------------------
    # UVA pointer resolution
    # ------------------------------------------------------------------

    def _find_host(self, addr: int) -> Optional[HostBuffer]:
        idx = bisect.bisect(self._host_starts, addr) - 1
        if idx >= 0 and self._host_bufs[idx].contains(addr):
            return self._host_bufs[idx]
        return None

    def pointer_attributes(self, addr: int) -> PointerAttributes:
        """Resolve a UVA pointer (no simulated cost — internal use)."""
        for i, gpu in enumerate(self.devices):
            if gpu.gmem_window.contains(addr):
                buf = gpu.allocator.buffer_at(addr)
                return PointerAttributes(
                    addr=addr,
                    memory_type=MemoryType.DEVICE,
                    device_index=i,
                    device_name=gpu.name,
                    buffer_base=buf.addr,
                    buffer_size=buf.size,
                )
        host = self._find_host(addr)
        if host is not None:
            return PointerAttributes(
                addr=addr,
                memory_type=MemoryType.HOST,
                device_index=None,
                device_name=None,
                buffer_base=host.addr,
                buffer_size=host.size,
            )
        raise KeyError(f"{self.name}: UVA pointer 0x{addr:x} is unknown")

    def pointer_get_attributes(self, addr: int):
        """``cuPointerGetAttribute`` with its (possibly expensive) call cost.

        Generator: ``attrs = yield from rt.pointer_get_attributes(p)``.
        """
        yield self.sim.timeout(self.costs.attribute_query_cost)
        return self.pointer_attributes(addr)

    def get_p2p_tokens(self, addr: int):
        """CU_POINTER_ATTRIBUTE_P2P_TOKENS query (generator, charged)."""
        yield self.sim.timeout(self.costs.attribute_query_cost)
        attrs = self.pointer_attributes(addr)
        if not attrs.is_device:
            raise ValueError("P2P tokens exist only for device pointers")
        return make_p2p_tokens(addr, attrs.device_index)

    # ------------------------------------------------------------------
    # Data access helpers used by the copy paths
    # ------------------------------------------------------------------

    def host_buffer_at(self, addr: int) -> HostBuffer:
        """The host buffer containing *addr* (raises if none)."""
        buf = self._find_host(addr)
        if buf is None:
            raise KeyError(f"{self.name}: no host buffer at 0x{addr:x}")
        return buf

    def owner_gpu(self, addr: int) -> Optional[GPUDevice]:
        """The registered GPU whose gmem window contains *addr*, if any."""
        for gpu in self.devices:
            if gpu.gmem_window.contains(addr):
                return gpu
        return None
