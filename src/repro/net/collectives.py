"""Collective operations over the APEnet+ RDMA API.

The paper's applications hand-roll their collectives (halo exchanges in
HSG, count+data all-to-alls and termination reductions in BFS).  This
module factors the recurring patterns into a small reusable library a
downstream user would expect:

* :class:`Collective` — a per-rank handle bound to a cluster, with
  pre-registered scratch buffers;
* :meth:`barrier` — linear fan-in/fan-out through rank 0;
* :meth:`broadcast` — binomial tree;
* :meth:`allreduce` — reduce-to-root + broadcast of a Python value;
* :meth:`alltoallv` — the BFS pattern: per-peer byte counts first, then
  exactly-sized payloads;
* :meth:`ring_exchange` — the HSG pattern: simultaneous send to both ring
  neighbours, wait for both arrivals.

All operations are generators (``yield from``) and must be invoked
collectively (every rank calls with matching ``tag``).  Payloads may be
``None`` (timing-only) or numpy byte arrays (moved for real through the
simulated network).
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from ..apenet.buflist import BufferKind
from ..units import us
from .cluster import ApenetCluster

__all__ = ["Collective", "make_collectives"]


class Collective:
    """Per-rank collective-operations handle."""

    def __init__(self, cluster: ApenetCluster, rank: int, scratch_bytes: int = 1 << 20):
        self.cluster = cluster
        self.rank = rank
        self.node = cluster.nodes[rank]
        self.sim = cluster.sim
        self.n = len(cluster)
        self.scratch_bytes = scratch_bytes
        rt = self.node.runtime
        # Per-peer landing zones + send staging, all host memory.
        self._recv = {
            p: rt.host_alloc(scratch_bytes) for p in range(self.n) if p != rank
        }
        self._send = {
            p: rt.host_alloc(scratch_bytes) for p in range(self.n) if p != rank
        }
        self._ctrl = rt.host_alloc(64 * max(self.n, 1))
        self._registered = False
        self._deferred: list = []
        self._peers: list["Collective"] = []

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------

    def _link(self, peers: list["Collective"]) -> None:
        self._peers = peers

    def setup(self):
        """Generator: register all landing zones (call once per rank)."""
        ep = self.node.endpoint
        for buf in self._recv.values():
            yield from ep.register(buf.addr, buf.size)
        yield from ep.register(self._ctrl.addr, self._ctrl.size)
        self._registered = True
        yield self.sim.timeout(us(10))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _wait(self, pred):
        """Generator: next completion matching *pred* (others deferred)."""
        for i, rec in enumerate(self._deferred):
            if pred(rec.tag):
                return self._deferred.pop(i)
        ep = self.node.endpoint
        while True:
            rec = yield from ep.wait_event()
            if pred(rec.tag):
                return rec
            self._deferred.append(rec)

    def _put(self, dst: int, data: Optional[np.ndarray], nbytes: int, tag: Any):
        """Generator: stage + PUT *nbytes* to peer *dst*'s landing zone."""
        if nbytes > self.scratch_bytes:
            raise ValueError(
                f"collective payload {nbytes} exceeds scratch {self.scratch_bytes}"
            )
        ep = self.node.endpoint
        peer = self._peers[dst]
        control = data is None and nbytes <= 64
        if control:
            dst_addr = peer._ctrl.addr + self.rank * 64
            src_addr = self._ctrl.addr
        else:
            staging = self._send[dst]
            if data is not None:
                staging.data[:nbytes] = data[:nbytes]
            dst_addr = peer._recv[self.rank].addr
            src_addr = staging.addr
        done = yield from ep.put(
            dst, src_addr, dst_addr, max(nbytes, 1), src_kind=BufferKind.HOST, tag=tag
        )
        return done

    def _recv_payload(self, src: int, nbytes: int) -> np.ndarray:
        return np.array(self._recv[src].data[:nbytes])

    # ------------------------------------------------------------------
    # Collectives
    # ------------------------------------------------------------------

    def barrier(self, tag: Any = "bar"):
        """Generator: no rank leaves before every rank has entered."""
        if self.n == 1:
            return
        if self.rank == 0:
            for _ in range(self.n - 1):
                yield from self._wait(lambda t: t == (tag, "in"))
            for peer in range(1, self.n):
                yield from self._put(peer, None, 1, (tag, "out"))
        else:
            yield from self._put(0, None, 1, (tag, "in"))
            yield from self._wait(lambda t: t == (tag, "out"))

    def broadcast(self, value: Any, root: int = 0, tag: Any = "bc"):
        """Generator: binomial-tree broadcast of a small Python value.

        The value itself travels through an in-process side channel (it is
        control-plane data); the 64-byte control messages pay the real
        network cost.
        """
        vrank = (self.rank - root) % self.n
        mask = 1
        key = ("bcast", tag)
        if not hasattr(self, "_boxes"):
            self._boxes: dict = {}
        if vrank == 0:
            self._boxes[key] = value
        while mask < self.n:
            if vrank < mask:
                partner = vrank + mask
                if partner < self.n:
                    actual = (partner + root) % self.n
                    peer = self._peers[actual]
                    if not hasattr(peer, "_boxes"):
                        peer._boxes = {}
                    peer._boxes[key] = self._boxes[key]
                    yield from self._put(actual, None, 1, (tag, "bc", mask))
            elif vrank < 2 * mask:
                yield from self._wait(lambda t: t == (tag, "bc", mask))
            mask <<= 1
        return self._boxes.pop(key)

    def allreduce(self, value, op=None, tag: Any = "ar"):
        """Generator: reduce a Python value with *op* (default +) to all."""
        import operator

        op = op or operator.add
        if self.n == 1:
            return value
        if self.rank == 0:
            acc = value
            for _ in range(self.n - 1):
                rec = yield from self._wait(lambda t: t[:2] == (tag, "v"))
                acc = op(acc, rec.tag[2])
            result = yield from self.broadcast(acc, root=0, tag=(tag, "res"))
            return result
        yield from self._put(0, None, 1, (tag, "v", value))
        result = yield from self.broadcast(None, root=0, tag=(tag, "res"))
        return result

    def alltoallv(self, payloads: dict[int, Optional[np.ndarray]], sizes: dict[int, int], tag: Any = "a2a"):
        """Generator: exchange per-peer byte buffers; returns {src: bytes}.

        ``sizes[p]`` is the byte count for peer ``p`` (payloads may be
        None for timing-only runs, in which case the returned arrays are
        zero-filled of the right length).
        """
        # Phase 1: counts.
        for peer, nbytes in sizes.items():
            yield from self._put(peer, None, 1, (tag, "cnt", self.rank, nbytes))
        counts: dict[int, int] = {}
        while len(counts) < self.n - 1:
            rec = yield from self._wait(lambda t: t[:2] == (tag, "cnt"))
            counts[rec.tag[2]] = rec.tag[3]
        # Phase 2: data.
        for peer, nbytes in sizes.items():
            if nbytes > 0:
                yield from self._put(
                    peer, payloads.get(peer), nbytes, (tag, "data", self.rank)
                )
        got: set[int] = set()
        need = {p for p, n in counts.items() if n > 0}
        while got < need:
            rec = yield from self._wait(lambda t: t[:2] == (tag, "data"))
            got.add(rec.tag[2])
        out = {}
        for p, n in counts.items():
            out[p] = self._recv_payload(p, n) if n > 0 else np.empty(0, dtype=np.uint8)
        return out

    def ring_exchange(self, down_data, up_data, nbytes: int, tag: Any = "halo"):
        """Generator: simultaneous exchange with both ring neighbours.

        Sends *down_data* to rank-1 and *up_data* to rank+1; returns
        (from_down, from_up) byte arrays.  The HSG halo pattern.
        """
        if self.n == 1:
            raise ValueError("ring exchange needs at least two ranks")
        down = (self.rank - 1) % self.n
        up = (self.rank + 1) % self.n
        yield from self._put(down, down_data, nbytes, (tag, "d", self.rank))
        yield from self._put(up, up_data, nbytes, (tag, "u", self.rank))
        # Expect one message from each neighbour.
        yield from self._wait(lambda t: t == (tag, "u", down))
        yield from self._wait(lambda t: t == (tag, "d", up))
        return self._recv_payload(down, nbytes), self._recv_payload(up, nbytes)


def make_collectives(cluster: ApenetCluster, scratch_bytes: int = 1 << 20) -> list[Collective]:
    """One linked :class:`Collective` per rank."""
    handles = [Collective(cluster, r, scratch_bytes) for r in range(len(cluster))]
    for h in handles:
        h._link(handles)
    return handles
