"""Cluster-level plumbing: torus topology, packets, node composition."""

from .cluster import ApenetCluster, ClusterNode, build_apenet_cluster
from .collectives import Collective, make_collectives
from .packet import MAX_PACKET_PAYLOAD, PACKET_HEADER_BYTES, ApePacket, MessageInfo
from .topology import DIMS, Coord, TorusShape

__all__ = [
    "TorusShape",
    "Coord",
    "DIMS",
    "ApePacket",
    "MessageInfo",
    "PACKET_HEADER_BYTES",
    "MAX_PACKET_PAYLOAD",
    "ApenetCluster",
    "ClusterNode",
    "build_apenet_cluster",
    "Collective",
    "make_collectives",
]
