"""Cluster-level plumbing: torus topology, packets, node composition.

Assembles the paper's §II system picture: the 3D-torus coordinate math
and dimension-order routes, the APEnet+ packet framing (header/footer
plus bounded payload), and the per-node composition of host, GPU, PCIe
fabric and NIC into a cluster the experiments drive.
"""

from .cluster import ApenetCluster, ClusterNode, build_apenet_cluster
from .collectives import Collective, make_collectives
from .packet import MAX_PACKET_PAYLOAD, PACKET_HEADER_BYTES, ApePacket, MessageInfo
from .topology import DIMS, Coord, TorusShape

__all__ = [
    "TorusShape",
    "Coord",
    "DIMS",
    "ApePacket",
    "MessageInfo",
    "PACKET_HEADER_BYTES",
    "MAX_PACKET_PAYLOAD",
    "ApenetCluster",
    "ClusterNode",
    "build_apenet_cluster",
    "Collective",
    "make_collectives",
]
