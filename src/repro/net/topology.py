"""3D torus topology math: coordinates, ranks, dimension-ordered routes.

APEnet+ "implements a dimension-ordered static routing algorithm" (§III.B)
over a 3D torus with six links per node (X±, Y±, Z±).  The paper's
Cluster I is a 4×2 torus (8 nodes; the Z dimension is size 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

__all__ = ["TorusShape", "Coord", "DIMS", "OPPOSITE"]

Coord = tuple[int, int, int]

# Port naming: (dimension index, direction). "X+" = (0, +1), etc.
DIMS = ("X", "Y", "Z")


def OPPOSITE(direction: int) -> int:
    """The reverse link direction."""
    return -direction


@dataclass(frozen=True)
class TorusShape:
    """Dimensions of a 3D torus (any dimension may be 1)."""

    nx: int
    ny: int
    nz: int = 1

    def __post_init__(self):
        if min(self.nx, self.ny, self.nz) < 1:
            raise ValueError("torus dimensions must be >= 1")

    @property
    def size(self) -> int:
        """Number of nodes."""
        return self.nx * self.ny * self.nz

    @property
    def dims(self) -> tuple[int, int, int]:
        """(nx, ny, nz)."""
        return (self.nx, self.ny, self.nz)

    def coords(self) -> Iterator[Coord]:
        """All coordinates in rank order."""
        for z in range(self.nz):
            for y in range(self.ny):
                for x in range(self.nx):
                    yield (x, y, z)

    def rank(self, coord: Coord) -> int:
        """Linear rank of *coord* (x fastest)."""
        x, y, z = self.wrap(coord)
        return x + self.nx * (y + self.ny * z)

    def coord(self, rank: int) -> Coord:
        """Coordinate of linear *rank*."""
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} out of range for {self.size} nodes")
        x = rank % self.nx
        y = (rank // self.nx) % self.ny
        z = rank // (self.nx * self.ny)
        return (x, y, z)

    def wrap(self, coord: Coord) -> Coord:
        """Apply periodic boundary conditions."""
        return (coord[0] % self.nx, coord[1] % self.ny, coord[2] % self.nz)

    def neighbor(self, coord: Coord, dim: int, direction: int) -> Coord:
        """The adjacent coordinate along *dim* in *direction* (±1)."""
        if direction not in (1, -1):
            raise ValueError("direction must be +1 or -1")
        delta = [0, 0, 0]
        delta[dim] = direction
        return self.wrap(tuple(c + d for c, d in zip(coord, delta)))

    def _step(self, delta: int, extent: int) -> int:
        """Shortest-path direction for a signed offset on a ring."""
        if delta == 0:
            return 0
        # Wrap to (-extent/2, extent/2]; ties go positive (deterministic).
        delta %= extent
        if delta * 2 > extent:
            delta -= extent
        return 1 if delta > 0 else -1

    def route(self, src: Coord, dst: Coord) -> list[tuple[int, int]]:
        """Dimension-ordered hop list [(dim, direction), ...] src -> dst.

        Corrects X fully, then Y, then Z, taking the shorter way around
        each ring (static, deterministic).
        """
        src = self.wrap(src)
        dst = self.wrap(dst)
        hops: list[tuple[int, int]] = []
        cur = list(src)
        for dim, extent in enumerate(self.dims):
            while cur[dim] != dst[dim]:
                step = self._step(dst[dim] - cur[dim], extent)
                hops.append((dim, step))
                cur[dim] = (cur[dim] + step) % extent
        return hops

    def distance(self, src: Coord, dst: Coord) -> int:
        """Hop count of the dimension-ordered route."""
        return len(self.route(src, dst))

    def neighbors(self, coord: Coord) -> Iterator[tuple[int, int, Coord]]:
        """Outgoing links of *coord* as (dim, direction, neighbor).

        Deterministic order (dims ascending, +1 before -1) — the detour
        BFS below ties its tie-breaks to this order, so routes are stable
        run to run.  Extent-1 dimensions have no links.
        """
        for dim, extent in enumerate(self.dims):
            if extent == 1:
                continue
            for direction in (1, -1):
                yield dim, direction, self.neighbor(coord, dim, direction)

    def route_avoiding(
        self, src: Coord, dst: Coord, dead: "frozenset | set"
    ) -> list[tuple[int, int]] | None:
        """Shortest detour route src -> dst avoiding dead directed links.

        *dead* is a collection of ``(src_coord, dim, direction)`` triples
        (the sender-side identity of a directed link; on an extent-2 ring
        the +1 and -1 channels are distinct and can die independently).
        Returns a ``[(dim, direction), ...]`` hop list, or None when every
        surviving path is severed (the explicit "unreachable" verdict).

        Deterministic breadth-first search: nodes expand in FIFO order and
        neighbors in :meth:`neighbors` order, so among equal-length detours
        the same one is always chosen.  Because every router derives its
        hop from the same dead-link set, per-hop forwarding along these
        routes decreases the remaining BFS distance by exactly one — the
        detour scheme is loop-free even though it abandons dimension order.
        """
        src = self.wrap(src)
        dst = self.wrap(dst)
        if src == dst:
            return []
        parent: dict[Coord, tuple[Coord, int, int] | None] = {src: None}
        frontier = [src]
        while frontier:
            next_frontier: list[Coord] = []
            for cur in frontier:
                for dim, direction, nxt in self.neighbors(cur):
                    if (cur, dim, direction) in dead or nxt in parent:
                        continue
                    parent[nxt] = (cur, dim, direction)
                    if nxt == dst:
                        hops: list[tuple[int, int]] = []
                        node = dst
                        while node != src:
                            prev, d, s = parent[node]
                            hops.append((d, s))
                            node = prev
                        hops.reverse()
                        return hops
                    next_frontier.append(nxt)
            frontier = next_frontier
        return None

    def links(self) -> Iterator[tuple[Coord, int, int, Coord]]:
        """Every directed link as (src, dim, direction, dst).

        Skips dimensions of extent 1 (no self-links) and emits each
        physical direction once per node; for extent-2 rings the +1 and -1
        links connect the same pair but are distinct channels (as on the
        real hardware, where all six cables exist).
        """
        for coord in self.coords():
            for dim, extent in enumerate(self.dims):
                if extent == 1:
                    continue
                for direction in (1, -1):
                    yield coord, dim, direction, self.neighbor(coord, dim, direction)
