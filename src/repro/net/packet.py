"""Network packet format for the APEnet+ torus.

"Network packets carry the 64-bit destination virtual memory address in the
header, so when they land onto the destination card, the BUF_LIST is used to
distinguish GPU from host buffers" (§IV.A).

Packets are at most 4 KiB of payload plus a fixed header/footer envelope.
The optional ``data`` field carries real bytes for integrity tests.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from .topology import Coord

__all__ = ["ApePacket", "PACKET_HEADER_BYTES", "MAX_PACKET_PAYLOAD", "MessageInfo"]

# Header + footer envelope (routing info, 64-bit dst vaddr, CRC).
PACKET_HEADER_BYTES = 32
# APEnet+ fragments messages into 4 KiB packets (the RX figure "1.2 GB/s for
# 4 KB packets" and the TX "single packet request of up to 4KB" both use it).
MAX_PACKET_PAYLOAD = 4096

_msg_ids = itertools.count(1)


def next_message_id() -> int:
    """Fresh message id for fragmentation bookkeeping."""
    return next(_msg_ids)


@dataclass
class MessageInfo:
    """Per-message metadata shared by its fragments."""

    msg_id: int
    total_bytes: int
    src_rank: int
    dst_rank: int
    dst_addr: int
    tag: Any = None


@dataclass
class ApePacket:
    """One fragment on the wire."""

    dst_coord: Coord
    src_coord: Coord
    dst_addr: int  # 64-bit destination virtual address of THIS fragment
    nbytes: int  # payload bytes in this fragment
    message: MessageInfo
    seq: int = 0
    is_last: bool = False
    data: Optional[Any] = field(default=None, repr=False)

    def __post_init__(self):
        if self.nbytes <= 0:
            raise ValueError("packet payload must be positive")
        if self.nbytes > MAX_PACKET_PAYLOAD:
            raise ValueError(
                f"packet payload {self.nbytes} exceeds {MAX_PACKET_PAYLOAD}"
            )

    @property
    def size(self) -> int:
        """Wire footprint (payload + envelope) for FIFO/link accounting."""
        return self.nbytes + PACKET_HEADER_BYTES
