"""Cluster builders: whole multi-node systems in one call.

:func:`build_apenet_cluster` reproduces Cluster I: dual-socket Westmere
nodes, one Fermi GPU each (all C2050 but one C2070 — kept faithfully), an
APEnet+ card on PCIe Gen2 x8, nodes arranged in a 3D torus (4×2 for the
paper's eight nodes).

Each node gets its own PCIe fabric and CUDA runtime; the single global
:class:`~repro.sim.core.Simulator` ties everything together.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from ..apenet.card import ApenetCard
    from ..apenet.config import ApenetConfig
    from ..apenet.rdma import ApenetEndpoint
    from ..apenet.torus import TorusLink
    from ..faults import FaultInjector, FaultPlan
    from ..recovery import RecoveryManager, RecoveryPolicy

from ..cuda.runtime import CudaRuntime
from ..gpu.device import GPUDevice
from ..gpu.specs import FERMI_2050, FERMI_2070, GPUSpec
from ..pcie.tlp import LinkParams
from ..pcie.topology import Platform, plx_platform, westmere_platform
from ..sim import Simulator
from .topology import Coord, TorusShape

__all__ = ["ClusterNode", "ApenetCluster", "build_apenet_cluster"]


@dataclass
class ClusterNode:
    """Everything living on one cluster node."""

    rank: int
    coord: Coord
    platform: Platform
    runtime: CudaRuntime
    gpus: list[GPUDevice]
    card: ApenetCard
    endpoint: ApenetEndpoint

    @property
    def gpu(self) -> GPUDevice:
        """The node's (first) GPU."""
        return self.gpus[0]


@dataclass
class ApenetCluster:
    """A built torus of APEnet+ nodes."""

    sim: Simulator
    shape: TorusShape
    config: ApenetConfig
    nodes: list[ClusterNode] = field(default_factory=list)
    links: dict[tuple[int, int, int], TorusLink] = field(default_factory=dict)
    # The shared fault injector, when the cluster was built with one
    # (``faults=...``); its ``.stats`` carries the degradation accounting.
    faults: Optional[FaultInjector] = None
    # The recovery manager, when the cluster was built with systemic fault
    # awareness (``recovery=...``); its ``.stats`` carries the end-to-end
    # recovery accounting (link deaths, replays, degraded-mode fraction).
    recovery: Optional["RecoveryManager"] = None

    def node(self, rank: int) -> ClusterNode:
        """The node with linear rank *rank*."""
        return self.nodes[rank]

    def __len__(self) -> int:
        return len(self.nodes)

    def link_utilizations(self) -> dict[str, float]:
        """Wire busy fraction of every directed torus link (diagnostics)."""
        return {link.name: link.utilization() for link in self.links.values()}


def build_apenet_cluster(
    sim: Simulator,
    shape: TorusShape,
    config: "ApenetConfig" = None,
    gpu_specs: Optional[list[GPUSpec]] = None,
    gpus_per_node: int = 1,
    use_plx: bool = False,
    cuda_costs=None,
    faults: "FaultPlan | FaultInjector | None" = None,
    recovery: "RecoveryPolicy | RecoveryManager | None" = None,
) -> ApenetCluster:
    """Build a torus of APEnet+ nodes.

    ``gpu_specs`` — per-rank GPU spec; defaults to the paper's Cluster I
    (C2050 everywhere except a C2070 on the last rank).
    ``use_plx`` — put GPU and card behind a PLX switch (the "ideal
    platform" of Table I) instead of separate root-complex ports.
    ``faults`` — a :class:`~repro.faults.FaultPlan` (or a prebuilt
    :class:`~repro.faults.FaultInjector` to share across clusters):
    attaches fault injection + link-level retransmission to every torus
    link, PCIe fabric and Nios II.  None (the default) builds the
    fault-free cluster, bit-identical to a build without this argument.
    ``recovery`` — a :class:`~repro.recovery.RecoveryPolicy` (or prebuilt
    :class:`~repro.recovery.RecoveryManager`): attaches the systemic
    recovery layer — LinkFailure-consuming health monitor, dead-link
    detour routing, reliable PUT transactions, P2P->staging degradation.
    None (the default) keeps every code path bit-identical to a build
    without this argument.
    """
    from ..apenet.card import ApenetCard
    from ..apenet.config import DEFAULT_CONFIG
    from ..apenet.rdma import ApenetEndpoint
    from ..apenet.torus import TorusLink

    injector = None
    if faults is not None:
        from ..faults import FaultInjector, FaultPlan

        if isinstance(faults, FaultPlan):
            injector = FaultInjector(faults)
        elif isinstance(faults, FaultInjector):
            injector = faults
        else:
            raise TypeError(f"faults must be a FaultPlan or FaultInjector, got {faults!r}")

    manager = None
    if recovery is not None:
        from ..recovery import RecoveryManager, RecoveryPolicy

        if isinstance(recovery, RecoveryPolicy):
            manager = RecoveryManager(sim, shape, policy=recovery)
        elif isinstance(recovery, RecoveryManager):
            manager = recovery
        else:
            raise TypeError(
                f"recovery must be a RecoveryPolicy or RecoveryManager, got {recovery!r}"
            )
        if injector is not None and manager.fault_stats is None:
            manager.fault_stats = injector.stats

    if config is None:
        config = DEFAULT_CONFIG
    n = shape.size
    if gpu_specs is None:
        gpu_specs = [FERMI_2050] * n
        if n > 1:
            gpu_specs[n - 1] = FERMI_2070
    if len(gpu_specs) != n:
        raise ValueError(f"need {n} GPU specs, got {len(gpu_specs)}")

    cluster = ApenetCluster(sim, shape, config, faults=injector)
    card_link = LinkParams(gen=config.pcie_gen, lanes=config.pcie_lanes)
    gpu_link = LinkParams(gen=2, lanes=16)

    for rank, coord in enumerate(shape.coords()):
        builder = plx_platform if use_plx else westmere_platform
        plat = builder(sim, name=f"n{rank}")
        if cuda_costs is not None:
            runtime = CudaRuntime(sim, plat, costs=cuda_costs, name=f"n{rank}.cuda")
        else:
            runtime = CudaRuntime(sim, plat, name=f"n{rank}.cuda")
        gpus = []
        for g in range(gpus_per_node):
            gpu = GPUDevice(sim, f"n{rank}.gpu{g}", gpu_specs[rank], index=g)
            plat.attach(gpu, "gpu", gpu_link)
            runtime.add_device(gpu)
            gpus.append(gpu)
        card = ApenetCard(sim, f"n{rank}.ape", coord, shape, config)
        plat.attach(card, "nic", card_link)
        for gpu in gpus:
            card.register_gpu(gpu)
        endpoint = ApenetEndpoint(card, runtime)
        cluster.nodes.append(
            ClusterNode(rank, coord, plat, runtime, gpus, card, endpoint)
        )

    # Enable cross-endpoint operations (RDMA GET needs the peer table).
    endpoints = [n.endpoint for n in cluster.nodes]
    for ep in endpoints:
        ep.link_peers(endpoints)

    # Wire the torus: the (dim, direction) output of each card connects to
    # the opposite-direction input port of the neighbour.
    for coord, dim, direction, dst_coord in shape.links():
        src = cluster.nodes[shape.rank(coord)]
        dst = cluster.nodes[shape.rank(dst_coord)]
        port = dst.card.router.port(dim, -direction)
        link = TorusLink(
            sim,
            config.link_bandwidth,
            config.link_latency,
            port,
            name=f"{src.card.name}->{dst.card.name}[{dim},{direction:+d}]",
            src_coord=coord,
            dst_coord=dst_coord,
            dim=dim,
            direction=direction,
        )
        src.card.router.wire(dim, direction, link)
        cluster.links[(src.rank, dim, direction)] = link

    if injector is not None:
        for link in cluster.links.values():
            link.faults = injector
        for node in cluster.nodes:
            node.card.nios.faults = injector
            node.platform.fabric.faults = injector

    if manager is not None:
        cluster.recovery = manager
        for link in cluster.links.values():
            link.recovery = manager
        for node in cluster.nodes:
            node.card.router.recovery = manager
            node.endpoint.recovery = manager

    return cluster
