"""The GPUDirect peer-to-peer *read* protocol engine (GPU side).

Reading GPU memory from a third-party device is "designed around a two-way
protocol between the initiator and the target" (§III.A): the initiator
(e.g. the APEnet+ ``GPU_P2P_TX`` block) posts small *read-request
descriptors* into a GPU mailbox via ordinary PCIe writes; the GPU fetches
the data internally and **pushes** it back to a reply address with posted
writes.  This works around chipset bugs with peer read completions and is
why a NIC can sustain GPU-read traffic at all.

Externally visible constants (paper, Fig 3 / Table I):

* head latency ≈ 1.8 µs from request to first data (Fermi);
* sustained response rate ≈ 1536 MB/s (Fermi), 1600 MB/s (Kepler);
* each descriptor covers up to one 4 KB chunk; descriptor traffic is a
  small fixed-size write (~13% request-side link utilization at full rate).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional


from ..sim import Event, RateLimiter, Simulator

__all__ = ["P2PReadRequest", "P2PReadEngine", "GPU_READ_CHUNK", "REQUEST_DESCRIPTOR_BYTES"]

# Maximum data covered by one read-request descriptor.
GPU_READ_CHUNK = 4096
# Wire payload of one descriptor write (mailbox + doorbell traffic).
REQUEST_DESCRIPTOR_BYTES = 256


@dataclass
class P2PReadRequest:
    """One mailbox read-request descriptor.

    ``reply_addr`` — fabric address the GPU pushes the data to (e.g. the
    NIC's TX-FIFO window).
    ``carry_data`` — when True, the response write carries the actual bytes
    from device memory (for data-integrity tests).
    ``on_complete`` — optional callback run when the response write has been
    absorbed by the reply target.
    """

    src_addr: int
    nbytes: int
    reply_addr: int
    carry_data: bool = False
    context: Any = None
    on_complete: Optional[Callable[["P2PReadRequest"], None]] = None

    def __post_init__(self):
        if self.nbytes <= 0:
            raise ValueError("read request needs a positive size")
        if self.nbytes > GPU_READ_CHUNK:
            raise ValueError(
                f"read request of {self.nbytes} exceeds the {GPU_READ_CHUNK}-byte "
                "protocol chunk; the initiator must fragment"
            )


class P2PReadEngine:
    """GPU-side server for mailbox read requests.

    Requests pipeline: each waits the fixed head latency (pipeline depth)
    while the shared rate limiter serializes data production, so the
    sustained rate is ``p2p_read_rate`` and a cold start costs
    ``p2p_read_head_latency`` — exactly the two constants the paper
    measured on the bus analyzer.
    """

    # The response streams onto the bus while the internal fetch proceeds:
    # after the first TLP's worth of data exists, wire time and fetch time
    # overlap (they only serialize for the leading fragment).
    _FIRST_TLP = 256

    def __init__(self, sim: Simulator, gpu: "Any"):
        self.sim = sim
        self.gpu = gpu
        spec = gpu.spec
        self.head_latency = spec.p2p_read_head_latency
        self.limiter = RateLimiter(sim, spec.p2p_read_rate, f"{gpu.name}.p2p-rd")
        self.requests_served = 0
        self.bytes_served = 0
        from ..sim import Store

        self._queue = Store(sim, name=f"{gpu.name}.p2p-q")
        sim.process(self._server(), name=f"{gpu.name}.p2p")

    def submit(self, req: P2PReadRequest) -> Event:
        """Accept one descriptor; returns the response-delivered event."""
        done = Event(self.sim)
        self._queue.put((req, self.sim.now, done))
        return done

    def _server(self):
        """Serial protocol engine: one read-chunk response at a time.

        The fixed head latency is measured from request arrival but
        pipelines across back-to-back requests, so a cold request pays the
        full 1.8 µs while a saturated stream runs at the sustained rate.
        """
        while True:
            req, t_submit, done = yield self._queue.get()
            ready = t_submit + self.head_latency
            if ready > self.sim.now:
                yield self.sim.timeout(ready - self.sim.now)
            head = min(self._FIRST_TLP, req.nbytes)
            yield self.limiter.consume(head)
            rest_ev = (
                self.limiter.consume(req.nbytes - head)
                if req.nbytes > head
                else None
            )
            payload = None
            if req.carry_data:
                buf = self.gpu.allocator.buffer_at(req.src_addr)
                payload = buf.read_bytes(req.src_addr, req.nbytes)
            # Push the data to the initiator with a posted write; the wire
            # time overlaps the remaining internal fetch.
            write_ev = self.gpu.fabric.write(
                self.gpu, req.reply_addr, req.nbytes, payload=payload
            )
            if rest_ev is not None:
                yield self.sim.all_of([rest_ev, write_ev])
            else:
                yield write_ev
            self.requests_served += 1
            self.bytes_served += req.nbytes
            obs = self.sim._obs
            if obs is not None:
                # Retroactive span from mailbox submission to response done:
                # the Fig 3 "GPU read" phase, head latency included.
                obs.span_at(
                    "gpu", "p2p_read", t_submit, self.sim.now, nbytes=req.nbytes
                )
            if req.on_complete is not None:
                req.on_complete(req)
            done.succeed(req)
