"""GPU kernel execution timing model.

Kernels are timed, not emulated: the *effects* of application kernels are
computed for real in NumPy by the app layer, while this engine accounts for
how long the GPU is busy.  One :class:`ComputeEngine` per GPU serializes
kernels (Fermi-era concurrent-kernel support was limited and the paper's
applications never rely on it); CUDA-stream ordering on top of the engine
is handled by :mod:`repro.cuda.stream`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim import Event, Resource, Simulator
from ..units import us

__all__ = ["KernelLaunch", "ComputeEngine", "KERNEL_LAUNCH_OVERHEAD"]

# Host-side launch overhead of a kernel (driver + PCIe doorbell), ~Fermi era.
KERNEL_LAUNCH_OVERHEAD = us(5.0)


@dataclass
class KernelLaunch:
    """One kernel invocation: a name and a modelled duration."""

    name: str
    duration: float  # ns of GPU busy time

    def __post_init__(self):
        if self.duration < 0:
            raise ValueError("negative kernel duration")


class ComputeEngine:
    """Execution resource for one GPU's SM array."""

    def __init__(self, sim: Simulator, gpu_name: str = "gpu"):
        self.sim = sim
        self.gpu_name = gpu_name
        self._busy = Resource(sim, 1, f"{gpu_name}.sm")
        self.kernels_run = 0
        self.busy_ns = 0.0

    def execute(self, kernel: KernelLaunch) -> Event:
        """Run *kernel*; fires when the GPU finishes it."""
        done = Event(self.sim)
        self.sim.process(self._run(kernel, done), name=f"{self.gpu_name}.k:{kernel.name}")
        return done

    def _run(self, kernel: KernelLaunch, done: Event):
        yield self._busy.acquire()
        try:
            yield self.sim.timeout(kernel.duration)
            self.kernels_run += 1
            self.busy_ns += kernel.duration
        finally:
            self._busy.release()
        done.succeed(kernel)

    def utilization(self) -> float:
        """Fraction of simulated time this GPU was computing."""
        if self.sim.now <= 0:
            return 0.0
        return self.busy_ns / self.sim.now
