"""The GPU as a PCIe device: memory windows, protocol engines, DMA.

Address layout (one contiguous region per GPU, assigned by the platform):

* ``[base, base+vram)`` — device global memory, reachable by peers through
  the GPUDirect P2P write path (posted writes land directly in buffers) and
  by the mailbox read protocol (:mod:`repro.gpu.p2p`).  Plain PCIe reads of
  this window model peer-initiated pulls and share the same internal read
  limiter.
* BAR1 aperture — standard memory-mapped access, mapped per-buffer
  (:mod:`repro.gpu.bar1`); reads are catastrophically slow on Fermi.
* mailbox — where initiators post P2P read-request descriptors.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from ..pcie.device import PCIeDevice, ReadBehavior, WriteBehavior
from ..sim import RateLimiter, Simulator
from .bar1 import Bar1Aperture
from .dma import DmaEngine
from .kernels import ComputeEngine
from .memory import DeviceMemoryAllocator, GpuPageTable
from .p2p import P2PReadEngine, P2PReadRequest
from .specs import GPU_PAGE_SIZE, GPUSpec

__all__ = ["GPUDevice", "gpu_base_address"]

# 64 GiB of address space per GPU keeps windows comfortably apart.
_GPU_REGION_STRIDE = 1 << 36
_GPU_REGION_BASE = 0x200_0000_0000


def gpu_base_address(index: int) -> int:
    """Canonical fabric base address for GPU number *index*."""
    return _GPU_REGION_BASE + index * _GPU_REGION_STRIDE


class GPUDevice(PCIeDevice):
    """One NVIDIA GPU on the fabric."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        spec: GPUSpec,
        base: Optional[int] = None,
        index: int = 0,
    ):
        super().__init__(sim, name)
        self.spec = spec
        self.index = index
        base = gpu_base_address(index) if base is None else base
        self.gmem_window = self.add_window(base, spec.vram, "gmem")
        bar1_base = base + ((spec.vram + GPU_PAGE_SIZE) // GPU_PAGE_SIZE) * GPU_PAGE_SIZE
        self.bar1_window = self.add_window(bar1_base, spec.bar1_size, "bar1")
        mailbox_base = bar1_base + spec.bar1_size
        self.mailbox_window = self.add_window(mailbox_base, GPU_PAGE_SIZE, "mailbox")

        self.allocator = DeviceMemoryAllocator(base, spec.vram, name)
        self.bar1 = Bar1Aperture(bar1_base, spec.bar1_size, spec.bar1_map_cost, name)
        self.page_table = GpuPageTable(name)

        # Shared internal read path: mailbox protocol and peer pulls contend.
        self._read_limiter = RateLimiter(sim, spec.p2p_read_rate, f"{name}.rd")
        self._bar1_read_limiter = RateLimiter(sim, spec.bar1_read_rate, f"{name}.bar1rd")
        self._write_limiter = (
            RateLimiter(sim, spec.p2p_write_rate, f"{name}.wr")
            if spec.p2p_write_rate is not None
            else None
        )

        self.p2p_engine = P2PReadEngine(sim, self)
        self.p2p_engine.limiter = self._read_limiter  # share one internal path
        self.dma_engines = [DmaEngine(sim, self, i) for i in range(spec.copy_engines)]
        self.compute = ComputeEngine(sim, name)

        self._gmem_read = ReadBehavior(
            latency=spec.p2p_read_head_latency, limiter=self._read_limiter
        )
        self._bar1_read = ReadBehavior(
            latency=spec.bar1_read_latency, limiter=self._bar1_read_limiter
        )
        self._gmem_write = WriteBehavior(
            limiter=self._write_limiter, on_write=self._on_mem_write
        )
        self._bar1_write = WriteBehavior(
            limiter=self._write_limiter, on_write=self._on_bar1_write
        )
        self._mailbox_write = WriteBehavior(on_write=self._on_mailbox_write)

        # Stats
        self.inbound_write_bytes = 0

    # ------------------------------------------------------------------
    # PCIe target behaviour
    # ------------------------------------------------------------------

    def describe_read(self, addr: int) -> ReadBehavior:
        if self.gmem_window.contains(addr):
            return self._gmem_read
        if self.bar1_window.contains(addr):
            return self._bar1_read
        raise PermissionError(f"{self.name}: mailbox window is write-only")

    def describe_write(self, addr: int) -> WriteBehavior:
        if self.gmem_window.contains(addr):
            return self._gmem_write
        if self.bar1_window.contains(addr):
            return self._bar1_write
        if self.mailbox_window.contains(addr):
            return self._mailbox_write
        raise KeyError(f"{self.name}: write outside any window: 0x{addr:x}")

    def _on_mem_write(self, addr: int, nbytes: int, payload: Any) -> None:
        self.inbound_write_bytes += nbytes
        if payload is None:
            return
        data = np.asarray(payload, dtype=np.uint8)
        buf = self.allocator.buffer_at(addr)  # raises if nothing is there
        buf.write_bytes(addr, data[:nbytes])

    def _on_bar1_write(self, addr: int, nbytes: int, payload: Any) -> None:
        self.inbound_write_bytes += nbytes
        if payload is None:
            return
        buf, dev_addr = self.bar1.translate(addr)
        data = np.asarray(payload, dtype=np.uint8)
        buf.write_bytes(dev_addr, data[:nbytes])

    def _on_mailbox_write(self, addr: int, nbytes: int, payload: Any) -> None:
        if payload is None:
            return  # doorbell-only traffic
        requests = payload if isinstance(payload, (list, tuple)) else [payload]
        for req in requests:
            if not isinstance(req, P2PReadRequest):
                raise TypeError(
                    f"{self.name}: mailbox expects P2PReadRequest, got {type(req)!r}"
                )
            self.p2p_engine.submit(req)

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------

    def alloc(self, nbytes: int):
        """Allocate device memory (see :class:`DeviceMemoryAllocator`)."""
        return self.allocator.alloc(nbytes)

    def free(self, buf) -> None:
        """Free device memory."""
        self.allocator.free(buf)

    @property
    def dma(self) -> DmaEngine:
        """The first copy engine (sufficient for single-stream use)."""
        return self.dma_engines[0]
