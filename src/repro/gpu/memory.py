"""GPU device-memory allocator, buffers, and page descriptors.

Buffers are allocated from the device's VRAM with a first-fit free-list
allocator.  Each buffer can lazily attach a real NumPy backing array so
data-integrity tests can move actual bytes end to end; simulations that only
need timing never touch the array.

The GPUDirect P2P protocol hands out one *page descriptor* per 64 KB page
(§III.A): :func:`page_descriptors` produces them, and
:class:`GpuPageTable` models the 4-level table the APEnet+ firmware keeps
per GPU (constant-depth walks, matching "constant traversal time thanks to
the 4-level page table").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

import numpy as np

from .specs import GPU_PAGE_SIZE

__all__ = [
    "GpuBuffer",
    "DeviceMemoryAllocator",
    "PageDescriptor",
    "page_descriptors",
    "GpuPageTable",
    "OutOfMemoryError",
]


class OutOfMemoryError(MemoryError):
    """Device memory exhausted."""


@dataclass
class GpuBuffer:
    """One allocation in GPU global memory.

    ``addr`` is the device-virtual address (also used as the physical
    address in this model — the GPU V2P indirection is modelled separately
    by :class:`GpuPageTable` walk costs, not by actually relocating pages).
    """

    addr: int
    size: int
    gpu_name: str
    _data: Optional[np.ndarray] = field(default=None, repr=False)
    freed: bool = False

    @property
    def end(self) -> int:
        """One past the last byte."""
        return self.addr + self.size

    @property
    def data(self) -> np.ndarray:
        """Lazily-created byte view of the buffer contents."""
        if self.freed:
            raise ValueError("use-after-free of GPU buffer")
        if self._data is None:
            self._data = np.zeros(self.size, dtype=np.uint8)
        return self._data

    def contains(self, addr: int, nbytes: int = 1) -> bool:
        """True if [addr, addr+nbytes) falls inside the buffer."""
        return self.addr <= addr and addr + nbytes <= self.end

    def write_bytes(self, addr: int, payload: np.ndarray) -> None:
        """Copy *payload* into the buffer at device address *addr*."""
        off = addr - self.addr
        if off < 0 or off + len(payload) > self.size:
            raise IndexError("write outside buffer bounds")
        self.data[off : off + len(payload)] = payload

    def read_bytes(self, addr: int, nbytes: int) -> np.ndarray:
        """Copy *nbytes* out of the buffer starting at device address *addr*."""
        off = addr - self.addr
        if off < 0 or off + nbytes > self.size:
            raise IndexError("read outside buffer bounds")
        return self.data[off : off + nbytes].copy()


class DeviceMemoryAllocator:
    """First-fit free-list allocator over [base, base + vram).

    Allocations are page-aligned (64 KB) because the P2P protocol maps
    whole pages.
    """

    def __init__(self, base: int, vram: int, gpu_name: str = "gpu"):
        if vram <= 0:
            raise ValueError("vram must be positive")
        self.base = base
        self.vram = vram
        self.gpu_name = gpu_name
        # Free list of (addr, size), sorted by addr, coalesced.
        self._free: list[tuple[int, int]] = [(base, vram)]
        self._live: dict[int, GpuBuffer] = {}

    @staticmethod
    def _round_up(n: int) -> int:
        return (n + GPU_PAGE_SIZE - 1) // GPU_PAGE_SIZE * GPU_PAGE_SIZE

    @property
    def used(self) -> int:
        """Bytes currently allocated (page-rounded)."""
        return self.vram - sum(size for _, size in self._free)

    @property
    def free_bytes(self) -> int:
        """Bytes currently free."""
        return sum(size for _, size in self._free)

    def alloc(self, nbytes: int) -> GpuBuffer:
        """Allocate *nbytes* (rounded up to the 64 KB page size)."""
        if nbytes <= 0:
            raise ValueError("allocation size must be positive")
        need = self._round_up(nbytes)
        for i, (addr, size) in enumerate(self._free):
            if size >= need:
                if size == need:
                    del self._free[i]
                else:
                    self._free[i] = (addr + need, size - need)
                buf = GpuBuffer(addr, nbytes, self.gpu_name)
                self._live[addr] = buf
                return buf
        raise OutOfMemoryError(
            f"{self.gpu_name}: cannot allocate {nbytes} bytes "
            f"({self.free_bytes} free of {self.vram})"
        )

    def free(self, buf: GpuBuffer) -> None:
        """Return *buf* to the free list (coalescing neighbours)."""
        if buf.freed:
            raise ValueError("double free of GPU buffer")
        if buf.addr not in self._live:
            raise ValueError("buffer does not belong to this allocator")
        del self._live[buf.addr]
        buf.freed = True
        size = self._round_up(buf.size)
        self._free.append((buf.addr, size))
        self._free.sort()
        merged: list[tuple[int, int]] = []
        for addr, sz in self._free:
            if merged and merged[-1][0] + merged[-1][1] == addr:
                merged[-1] = (merged[-1][0], merged[-1][1] + sz)
            else:
                merged.append((addr, sz))
        self._free = merged

    def buffer_at(self, addr: int) -> GpuBuffer:
        """The live buffer containing device address *addr*."""
        for buf in self._live.values():
            if buf.contains(addr):
                return buf
        raise KeyError(f"{self.gpu_name}: no live buffer at 0x{addr:x}")

    def live_buffers(self) -> Iterator[GpuBuffer]:
        """All live buffers, in address order."""
        return iter(sorted(self._live.values(), key=lambda b: b.addr))


@dataclass(frozen=True)
class PageDescriptor:
    """One 64 KB P2P page descriptor: physical address + protocol tokens."""

    virtual_addr: int
    physical_addr: int
    token: int  # opaque low-level protocol token


def page_descriptors(buf: GpuBuffer) -> list[PageDescriptor]:
    """The P2P page descriptors covering *buf* (one per 64 KB page)."""
    first_page = buf.addr // GPU_PAGE_SIZE * GPU_PAGE_SIZE
    descriptors = []
    page = first_page
    while page < buf.end:
        descriptors.append(
            PageDescriptor(
                virtual_addr=page,
                physical_addr=page,  # identity in this model
                token=(page >> 16) ^ 0xA9E,
            )
        )
        page += GPU_PAGE_SIZE
    return descriptors


class GpuPageTable:
    """The 4-level per-GPU V2P table kept by the APEnet+ firmware.

    Lookups are constant-depth (4 node visits).  The table is sparse:
    only registered pages resolve; unregistered lookups raise ``KeyError``
    (the firmware would drop the packet).
    """

    LEVELS = 4
    # 64 KB pages, 9 bits per level above the page offset.
    _BITS_PER_LEVEL = 9
    _PAGE_SHIFT = 16

    def __init__(self, gpu_name: str = "gpu"):
        self.gpu_name = gpu_name
        self._root: dict = {}
        self.pages_mapped = 0

    def _indices(self, vaddr: int) -> list[int]:
        page = vaddr >> self._PAGE_SHIFT
        idx = []
        for level in range(self.LEVELS):
            shift = (self.LEVELS - 1 - level) * self._BITS_PER_LEVEL
            idx.append((page >> shift) & ((1 << self._BITS_PER_LEVEL) - 1))
        return idx

    def map_page(self, desc: PageDescriptor) -> None:
        """Install one page descriptor."""
        node = self._root
        idx = self._indices(desc.virtual_addr)
        for i in idx[:-1]:
            node = node.setdefault(i, {})
        if idx[-1] not in node:
            self.pages_mapped += 1
        node[idx[-1]] = desc

    def map_buffer(self, buf: GpuBuffer) -> int:
        """Install descriptors for every page of *buf*; returns page count."""
        descs = page_descriptors(buf)
        for d in descs:
            self.map_page(d)
        return len(descs)

    def lookup(self, vaddr: int) -> PageDescriptor:
        """Translate *vaddr*; constant-depth (4 visits) by construction."""
        node = self._root
        visits = 0
        for i in self._indices(vaddr):
            visits += 1
            if i not in node:
                raise KeyError(
                    f"{self.gpu_name}: unmapped GPU vaddr 0x{vaddr:x}"
                )
            node = node[i]
        if visits != self.LEVELS:
            raise RuntimeError(
                f"{self.gpu_name}: page-table walk took {visits} levels, "
                f"expected {self.LEVELS} — corrupted radix tree"
            )
        return node

    def is_mapped(self, vaddr: int) -> bool:
        """True if *vaddr* translates."""
        try:
            self.lookup(vaddr)
            return True
        except KeyError:
            return False
