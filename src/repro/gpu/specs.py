"""Spec sheets for the GPUs used in the paper's evaluation.

All externally-observable protocol constants come from the paper:

* Fermi P2P read: 1.8 µs head latency, 1536 MB/s sustained (Fig 3);
* Fermi BAR1 read: 150 MB/s (Table I);
* Kepler P2P / BAR1 read: 1.6 GB/s (Table I, pre-release K20 with ECC on);
* GPU DMA engine (cudaMemcpy) D2H ~5.5 GB/s on Gen2 x16 (§V.B);
* P2P writes: the GPU "has no problem sustaining the PCIe X8 Gen2 traffic"
  (§V.A), so the write sink is link-limited (``None`` rate).

The memory-page granularity of the P2P protocol is 64 KB (§III.A).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..units import GBps, GiB, KiB, MBps, MiB, us

__all__ = [
    "GPUSpec",
    "FERMI_2050",
    "FERMI_2070",
    "FERMI_2075",
    "KEPLER_K10",
    "KEPLER_K20",
    "GPU_PAGE_SIZE",
]

# GPUDirect P2P page granularity ("one page descriptor for each 64 KB page").
GPU_PAGE_SIZE = 64 * KiB


@dataclass(frozen=True)
class GPUSpec:
    """Static parameters of one GPU model."""

    name: str
    arch: str  # "fermi" | "kepler"
    vram: int  # device memory bytes
    # --- GPUDirect P2P protocol, as seen by a third-party device ---
    p2p_read_head_latency: float  # first-data latency of the mailbox protocol
    p2p_read_rate: float  # sustained response rate, bytes/ns
    p2p_write_rate: Optional[float]  # None = link-limited
    # --- BAR1 aperture ---
    bar1_size: int
    bar1_read_latency: float
    bar1_read_rate: float
    bar1_map_cost: float  # "expensive... full reconfiguration of the GPU"
    # --- DMA copy engines (cudaMemcpy) ---
    dma_d2h_rate: float
    dma_h2d_rate: float
    copy_engines: int
    # --- misc ---
    ecc: bool = False
    # Internal memory bandwidth (kernels); only used by app perf models.
    mem_bandwidth: float = GBps(120.0)

    def with_ecc(self, ecc: bool) -> "GPUSpec":
        """A copy of this spec with ECC toggled (ECC trims ~12% internal BW)."""
        scale = 0.88 if ecc and not self.ecc else (1 / 0.88 if not ecc and self.ecc else 1.0)
        return replace(self, ecc=ecc, mem_bandwidth=self.mem_bandwidth * scale)


FERMI_2050 = GPUSpec(
    name="Tesla C2050",
    arch="fermi",
    vram=3 * GiB,
    p2p_read_head_latency=us(1.8),
    p2p_read_rate=MBps(1536),
    p2p_write_rate=None,
    bar1_size=256 * MiB,
    bar1_read_latency=us(1.3),
    bar1_read_rate=MBps(150),
    bar1_map_cost=us(500),
    dma_d2h_rate=GBps(5.5),
    dma_h2d_rate=GBps(5.7),
    copy_engines=2,
    ecc=False,
    mem_bandwidth=GBps(144.0),
)

FERMI_2070 = GPUSpec(
    name="Tesla C2070",
    arch="fermi",
    vram=6 * GiB,
    p2p_read_head_latency=us(1.8),
    p2p_read_rate=MBps(1536),
    p2p_write_rate=None,
    bar1_size=256 * MiB,
    bar1_read_latency=us(1.3),
    bar1_read_rate=MBps(150),
    bar1_map_cost=us(500),
    dma_d2h_rate=GBps(5.5),
    dma_h2d_rate=GBps(5.7),
    copy_engines=2,
    ecc=False,
    mem_bandwidth=GBps(144.0),
)

FERMI_2075 = GPUSpec(
    name="Tesla M2075",
    arch="fermi",
    vram=6 * GiB,
    p2p_read_head_latency=us(1.8),
    p2p_read_rate=MBps(1536),
    p2p_write_rate=None,
    bar1_size=256 * MiB,
    bar1_read_latency=us(1.3),
    bar1_read_rate=MBps(150),
    bar1_map_cost=us(500),
    dma_d2h_rate=GBps(5.5),
    dma_h2d_rate=GBps(5.7),
    copy_engines=2,
    ecc=False,
    mem_bandwidth=GBps(150.0),
)

KEPLER_K10 = GPUSpec(
    name="Tesla K10",
    arch="kepler",
    vram=4 * GiB,
    p2p_read_head_latency=us(1.5),
    p2p_read_rate=MBps(1600),
    p2p_write_rate=None,
    bar1_size=256 * MiB,
    bar1_read_latency=us(0.9),
    bar1_read_rate=MBps(1600),
    bar1_map_cost=us(400),
    dma_d2h_rate=GBps(5.8),
    dma_h2d_rate=GBps(6.0),
    copy_engines=2,
    ecc=False,
    mem_bandwidth=GBps(160.0),
)

KEPLER_K20 = GPUSpec(
    name="Tesla K20 (pre-release GK110)",
    arch="kepler",
    vram=5 * GiB,
    p2p_read_head_latency=us(1.5),
    p2p_read_rate=MBps(1600),
    p2p_write_rate=None,
    bar1_size=256 * MiB,
    bar1_read_latency=us(0.9),
    bar1_read_rate=MBps(1600),
    bar1_map_cost=us(400),
    dma_d2h_rate=GBps(6.0),
    dma_h2d_rate=GBps(6.2),
    copy_engines=2,
    ecc=True,  # "Kepler results are for a pre-release K20 ... with ECC enabled"
    mem_bandwidth=GBps(180.0),
)
