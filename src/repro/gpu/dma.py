"""GPU DMA copy engines — the hardware behind ``cudaMemcpy``.

Fermi Teslas have two copy engines, so one D2H and one H2D stream can
overlap.  Engine throughput is the spec's ``dma_*_rate`` (≈5.5 GB/s D2H on
the paper's platforms); each copy also moves real bytes when both sides
have backing arrays.

The per-call *host-side* overhead of ``cudaMemcpy`` (~10 µs for synchronous
calls, §V.C) belongs to the CUDA runtime layer, not the engine.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from ..sim import Event, RateLimiter, Resource, Simulator

__all__ = ["DmaEngine"]


class DmaEngine:
    """One GPU copy engine: serialized, rate-limited bulk transfers."""

    def __init__(self, sim: Simulator, gpu: Any, index: int):
        self.sim = sim
        self.gpu = gpu
        self.index = index
        self.busy = Resource(sim, 1, f"{gpu.name}.ce{index}")
        spec = gpu.spec
        self._d2h = RateLimiter(sim, spec.dma_d2h_rate, f"{gpu.name}.d2h{index}")
        self._h2d = RateLimiter(sim, spec.dma_h2d_rate, f"{gpu.name}.h2d{index}")
        self.bytes_d2h = 0
        self.bytes_h2d = 0

    # The engine moves data over PCIe in large bursts; the fabric accounts
    # TLP overhead, the limiter accounts the engine's own ceiling.

    def device_to_host(
        self,
        device_addr: int,
        host_addr: int,
        nbytes: int,
        host_array: Optional[np.ndarray] = None,
        host_offset: int = 0,
    ) -> Event:
        """DMA *nbytes* of device memory to host memory; fires when done."""
        done = Event(self.sim)
        self.sim.process(
            self._d2h_proc(device_addr, host_addr, nbytes, host_array, host_offset, done)
        )
        return done

    def _d2h_proc(self, device_addr, host_addr, nbytes, host_array, host_offset, done):
        obs = self.sim._obs
        span = None
        if obs is not None:
            # Spans include time queued behind the engine's other copies.
            span = obs.span("gpu", "dma_d2h", nbytes=nbytes)
        yield self.busy.acquire()
        try:
            payload = None
            if host_array is not None:
                buf = self.gpu.allocator.buffer_at(device_addr)
                payload = buf.read_bytes(device_addr, nbytes)
            # Engine ceiling and PCIe wire time overlap; the slower wins.
            rate_ev = self._d2h.consume(nbytes)
            wire_ev = self.gpu.fabric.write(self.gpu, host_addr, nbytes)
            yield self.sim.all_of([rate_ev, wire_ev])
            if payload is not None:
                host_array[host_offset : host_offset + nbytes] = payload
            self.bytes_d2h += nbytes
        finally:
            self.busy.release()
        if span is not None:
            span.end()
        done.succeed(nbytes)

    def host_to_device(
        self,
        host_addr: int,
        device_addr: int,
        nbytes: int,
        host_array: Optional[np.ndarray] = None,
        host_offset: int = 0,
    ) -> Event:
        """DMA *nbytes* of host memory into device memory; fires when done."""
        done = Event(self.sim)
        self.sim.process(
            self._h2d_proc(host_addr, device_addr, nbytes, host_array, host_offset, done)
        )
        return done

    def _h2d_proc(self, host_addr, device_addr, nbytes, host_array, host_offset, done):
        obs = self.sim._obs
        span = None
        if obs is not None:
            span = obs.span("gpu", "dma_h2d", nbytes=nbytes)
        yield self.busy.acquire()
        try:
            rate_ev = self._h2d.consume(nbytes)
            # The engine reads host memory with deep request pipelining
            # (GPU DMA engines keep dozens of reads in flight).
            wire_ev = self.gpu.fabric.read_pipelined(
                self.gpu, host_addr, nbytes, outstanding=32
            )
            yield self.sim.all_of([rate_ev, wire_ev])
            if host_array is not None:
                buf = self.gpu.allocator.buffer_at(device_addr)
                chunk = np.asarray(
                    host_array[host_offset : host_offset + nbytes], dtype=np.uint8
                )
                buf.write_bytes(device_addr, chunk)
            self.bytes_h2d += nbytes
        finally:
            self.busy.release()
        if span is not None:
            span.end()
        done.succeed(nbytes)

    def device_to_peer(self, device_addr: int, peer_addr: int, nbytes: int) -> Event:
        """Push device memory into a peer GPU's memory window (P2P write)."""
        done = Event(self.sim)
        self.sim.process(self._d2p_proc(device_addr, peer_addr, nbytes, done))
        return done

    def _d2p_proc(self, device_addr, peer_addr, nbytes, done):
        obs = self.sim._obs
        span = None
        if obs is not None:
            span = obs.span("gpu", "dma_d2p", nbytes=nbytes)
        yield self.busy.acquire()
        try:
            payload = None
            buf = None
            try:
                buf = self.gpu.allocator.buffer_at(device_addr)
            except KeyError:
                buf = None
            if buf is not None and buf._data is not None:
                payload = buf.read_bytes(device_addr, nbytes)
            rate_ev = self._d2h.consume(nbytes)
            wire_ev = self.gpu.fabric.write(self.gpu, peer_addr, nbytes, payload=payload)
            yield self.sim.all_of([rate_ev, wire_ev])
        finally:
            self.busy.release()
        if span is not None:
            span.end()
        done.succeed(nbytes)
