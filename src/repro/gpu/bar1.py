"""The BAR1 access method: a mapped window into device memory.

BAR1 exposes a region of device memory on the GPU's second PCIe
memory-mapped address space, readable/writable with *standard* PCIe memory
operations (§III).  Constraints modelled from the paper:

* the aperture is small ("a few hundreds of megabytes ... a scarce
  resource") — allocation fails when it is exhausted;
* mapping "is an expensive operation, which requires a full reconfiguration
  of the GPU" — a fixed time cost charged to the caller;
* Fermi reads through BAR1 are extremely slow (150 MB/s, Table I);
  Kepler fixes this (1.6 GB/s).

The rate asymmetry lives in the GPU device's ``describe_read`` for the
BAR1 window; this module only manages the address-space bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .memory import GpuBuffer
from .specs import GPU_PAGE_SIZE

__all__ = ["Bar1Mapping", "Bar1Aperture", "Bar1Error"]


class Bar1Error(RuntimeError):
    """BAR1 aperture misuse or exhaustion."""


@dataclass
class Bar1Mapping:
    """An active window: BAR1 addresses <-> one device buffer."""

    bar1_addr: int
    buffer: GpuBuffer
    size: int
    active: bool = True

    @property
    def bar1_end(self) -> int:
        """One past the last mapped BAR1 byte."""
        return self.bar1_addr + self.size

    def device_addr(self, bar1_addr: int) -> int:
        """Translate a BAR1 address to the underlying device address."""
        if not self.active:
            raise Bar1Error("access through an unmapped BAR1 window")
        if not self.bar1_addr <= bar1_addr < self.bar1_end:
            raise Bar1Error(f"BAR1 address 0x{bar1_addr:x} outside mapping")
        return self.buffer.addr + (bar1_addr - self.bar1_addr)


class Bar1Aperture:
    """Allocator for the BAR1 address window of one GPU."""

    def __init__(self, base: int, size: int, map_cost: float, gpu_name: str = "gpu"):
        self.base = base
        self.size = size
        self.map_cost = map_cost
        self.gpu_name = gpu_name
        self._free: list[tuple[int, int]] = [(base, size)]
        self._mappings: list[Bar1Mapping] = []

    @property
    def used(self) -> int:
        """Mapped bytes."""
        return self.size - sum(s for _, s in self._free)

    @property
    def free_bytes(self) -> int:
        """Unmapped aperture bytes."""
        return sum(s for _, s in self._free)

    @staticmethod
    def _round_up(n: int) -> int:
        return (n + GPU_PAGE_SIZE - 1) // GPU_PAGE_SIZE * GPU_PAGE_SIZE

    def map(self, buf: GpuBuffer) -> Bar1Mapping:
        """Map *buf* into the aperture.

        The *time* cost (``map_cost``, a full GPU reconfiguration) must be
        charged by the caller — typically the CUDA runtime layer yields it.
        """
        need = self._round_up(buf.size)
        for i, (addr, size) in enumerate(self._free):
            if size >= need:
                if size == need:
                    del self._free[i]
                else:
                    self._free[i] = (addr + need, size - need)
                mapping = Bar1Mapping(addr, buf, buf.size)
                self._mappings.append(mapping)
                return mapping
        raise Bar1Error(
            f"{self.gpu_name}: BAR1 aperture exhausted "
            f"({self.free_bytes} free, {buf.size} requested) — "
            "BAR1 is a scarce resource (32-bit BIOS limit)"
        )

    def unmap(self, mapping: Bar1Mapping) -> None:
        """Tear down *mapping* and return its aperture range."""
        if not mapping.active:
            raise Bar1Error("double unmap")
        mapping.active = False
        self._mappings.remove(mapping)
        size = self._round_up(mapping.size)
        self._free.append((mapping.bar1_addr, size))
        self._free.sort()
        merged: list[tuple[int, int]] = []
        for addr, sz in self._free:
            if merged and merged[-1][0] + merged[-1][1] == addr:
                merged[-1] = (merged[-1][0], merged[-1][1] + sz)
            else:
                merged.append((addr, sz))
        self._free = merged

    def translate(self, bar1_addr: int) -> tuple[GpuBuffer, int]:
        """Resolve a BAR1 address to (buffer, device_addr)."""
        for m in self._mappings:
            if m.bar1_addr <= bar1_addr < m.bar1_end:
                return m.buffer, m.device_addr(bar1_addr)
        raise Bar1Error(f"{self.gpu_name}: BAR1 address 0x{bar1_addr:x} not mapped")

    def mapping_of(self, buf: GpuBuffer) -> Optional[Bar1Mapping]:
        """The active mapping of *buf*, if any."""
        for m in self._mappings:
            if m.buffer is buf:
                return m
        return None
