"""NVIDIA GPU device model: memory, GPUDirect P2P, BAR1, DMA, kernels."""

from .bar1 import Bar1Aperture, Bar1Error, Bar1Mapping
from .device import GPUDevice, gpu_base_address
from .dma import DmaEngine
from .kernels import KERNEL_LAUNCH_OVERHEAD, ComputeEngine, KernelLaunch
from .memory import (
    DeviceMemoryAllocator,
    GpuBuffer,
    GpuPageTable,
    OutOfMemoryError,
    PageDescriptor,
    page_descriptors,
)
from .p2p import GPU_READ_CHUNK, REQUEST_DESCRIPTOR_BYTES, P2PReadEngine, P2PReadRequest
from .specs import (
    FERMI_2050,
    FERMI_2070,
    FERMI_2075,
    GPU_PAGE_SIZE,
    KEPLER_K10,
    KEPLER_K20,
    GPUSpec,
)

__all__ = [
    "GPUDevice",
    "gpu_base_address",
    "GPUSpec",
    "FERMI_2050",
    "FERMI_2070",
    "FERMI_2075",
    "KEPLER_K10",
    "KEPLER_K20",
    "GPU_PAGE_SIZE",
    "DeviceMemoryAllocator",
    "GpuBuffer",
    "GpuPageTable",
    "PageDescriptor",
    "page_descriptors",
    "OutOfMemoryError",
    "P2PReadEngine",
    "P2PReadRequest",
    "GPU_READ_CHUNK",
    "REQUEST_DESCRIPTOR_BYTES",
    "Bar1Aperture",
    "Bar1Mapping",
    "Bar1Error",
    "DmaEngine",
    "ComputeEngine",
    "KernelLaunch",
    "KERNEL_LAUNCH_OVERHEAD",
]
