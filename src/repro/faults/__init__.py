"""Deterministic fault injection + recovery for the simulated stack.

The paper's measurements assume an error-free fabric; the follow-up
APEnet+ work (arXiv:1311.1741, arXiv:2201.01088) is largely about link
error management — CRC/retransmission and systemic fault awareness.
This package adds that robustness layer to the reproduction:

* :class:`FaultPlan` — a frozen, seeded description of what goes wrong
  (link BER / packet drops, PCIe TLP errors, Nios II stalls) and of the
  recovery policy (retry budget, ACK timeout, backoff);
* :class:`FaultInjector` — the per-run oracle with deterministic
  per-site random streams and degradation bookkeeping
  (:class:`~repro.sim.stats.FaultStats`);
* :class:`LinkFailure` — the structured escalation raised when a retry
  budget is exhausted.

Wire a plan into a cluster with
``build_apenet_cluster(..., faults=FaultPlan(link_ber=1e-7))`` — or pass
an injector to share one across clusters.  With no plan (the default)
every code path is bit-identical to the fault-free simulator: the hooks
are not merely "zero-rate", they are absent.

``python -m repro.bench faults`` sweeps BER and reports the degradation
curves (goodput vs raw bandwidth, retransmits, recovery latency) for the
P2P and host-staged paths.
"""

from .injector import FaultInjector, corruption_probability
from .plan import FaultPlan, LinkFailure

__all__ = [
    "FaultPlan",
    "FaultInjector",
    "LinkFailure",
    "corruption_probability",
]
