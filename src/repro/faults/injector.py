"""Seeded fault sampling, shared by every injection site of a run.

One :class:`FaultInjector` serves a whole cluster.  Each *site* (a torus
link, a PCIe channel, a Nios II instance — identified by name) draws from
its own :class:`random.Random` stream seeded by ``(plan.seed, site)``, so:

* sampling is independent of global event interleaving — two sites never
  share a stream, and adding a site does not shift another site's draws;
* a given (plan, site, draw index) always yields the same fault, which is
  what makes fault-injected sweeps bit-identical across ``--jobs`` counts
  and across runs.

The injector only *decides* faults and keeps the books
(:class:`~repro.sim.stats.FaultStats`); the recovery behaviour lives at
the sites themselves (retransmission in :class:`~repro.apenet.torus.TorusLink`,
replay in :class:`~repro.pcie.fabric.PCIeFabric`, inflation in
:class:`~repro.apenet.nios.NiosII`).
"""

from __future__ import annotations

import hashlib
import math
import random
from typing import Optional

from ..sim.stats import FaultStats
from .plan import FaultPlan, LinkFailure

__all__ = ["FaultInjector", "corruption_probability"]


def corruption_probability(ber: float, nbytes: int) -> float:
    """P(at least one bit error) over *nbytes* at bit-error rate *ber*."""
    if ber <= 0.0 or nbytes <= 0:
        return 0.0
    if ber >= 1.0:
        return 1.0
    # 1 - (1-ber)^(8n), computed stably for the tiny BERs that matter.
    return -math.expm1(8.0 * nbytes * math.log1p(-ber))


class FaultInjector:
    """Per-run fault oracle with deterministic per-site streams."""

    def __init__(self, plan: FaultPlan, stats: Optional[FaultStats] = None):
        self.plan = plan
        self.stats = stats if stats is not None else FaultStats()
        self._streams: dict[str, random.Random] = {}

    # ------------------------------------------------------------------
    # Streams
    # ------------------------------------------------------------------

    def stream(self, site: str) -> random.Random:
        """The site's private RNG (created on first use)."""
        rng = self._streams.get(site)
        if rng is None:
            digest = hashlib.sha256(f"{self.plan.seed}:{site}".encode()).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[site] = rng
        return rng

    # ------------------------------------------------------------------
    # Torus links
    # ------------------------------------------------------------------

    def link_killed(self, site: str, now: float) -> bool:
        """True once a scheduled hard kill of *site* has taken effect.

        Pure schedule lookup — consumes no random draws, so compiling a
        kill into a plan perturbs no other site's stream.
        """
        for kill_site, kill_at in self.plan.link_kills:
            if kill_site == site and now >= kill_at:
                return True
        return False

    def link_packet_fate(self, site: str, wire_bytes: int) -> str:
        """Outcome of one wire traversal: ``"ok" | "drop" | "corrupt"``.

        Zero-rate fault classes never consume a draw, so enabling one
        class does not perturb another's stream.
        """
        plan = self.plan
        if plan.link_drop_rate > 0.0 and self.stream(site).random() < plan.link_drop_rate:
            return "drop"
        p = corruption_probability(plan.link_ber, wire_bytes)
        if p > 0.0 and self.stream(site).random() < p:
            return "corrupt"
        return "ok"

    # ------------------------------------------------------------------
    # PCIe TLPs
    # ------------------------------------------------------------------

    def tlp_extra_wire(self, site: str, wire_bytes: int) -> int:
        """Extra wire bytes from LCRC-triggered replays of one transfer.

        Each corrupted transmission is replayed in full (the data-link
        layer's retry buffer); more than ``plan.max_retries`` consecutive
        corruptions is an uncorrectable link error and raises
        :class:`LinkFailure`.
        """
        plan = self.plan
        p = corruption_probability(plan.tlp_ber, wire_bytes)
        if p <= 0.0:
            return 0
        rng = self.stream(site)
        replays = 0
        while rng.random() < p:
            replays += 1
            if replays > plan.max_retries:
                self.stats.record_link_failure(
                    site=site, attempts=replays, time=None, kind="tlp-replay"
                )
                raise LinkFailure(site, replays, 0.0, kind="tlp-replay")
        if replays:
            self.stats.tlp_replays += replays
            self.stats.tlp_replay_bytes += replays * wire_bytes
            by_site = self.stats.tlp_replays_by_site
            by_site[site] = by_site.get(site, 0) + replays
        return replays * wire_bytes

    # ------------------------------------------------------------------
    # Nios II
    # ------------------------------------------------------------------

    def nios_inflate(self, site: str, kind: str, duration: float) -> float:
        """The (possibly inflated) service time for one firmware task."""
        plan = self.plan
        duration *= plan.nios_slowdown
        if plan.nios_stall_rate > 0.0 and self.stream(site).random() < plan.nios_stall_rate:
            self.stats.nios_stalls += 1
            self.stats.nios_stall_time += plan.nios_stall_ns
            by_site = self.stats.nios_stalls_by_site
            by_site[site] = by_site.get(site, 0) + 1
            duration += plan.nios_stall_ns
        return duration
