"""Fault plans and the structured failure escalation type.

A :class:`FaultPlan` is a frozen value object describing *what* can go
wrong in a run — bit-error rates, drop probabilities, firmware stalls —
plus the recovery policy (retry budget, retransmission timeout, backoff).
Being frozen and hashable, a plan can participate in cache keys and be
shipped to worker processes; the mutable sampling state lives in
:class:`~repro.faults.injector.FaultInjector`.

Rates follow the APEnet+ follow-up papers' error-management work
(arXiv:1311.1741, arXiv:2201.01088): link errors are modelled per bit
(CRC detects them at the receiving port), PCIe TLP errors per wire byte
(LCRC triggers a transparent replay), and the Nios II can be stalled or
slowed to model firmware pathologies.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..units import us

__all__ = ["FaultPlan", "LinkFailure"]


class LinkFailure(RuntimeError):
    """A link gave up on a packet after exhausting its retry budget.

    Structured: carries the failing site, the attempt count, the time
    spent recovering, and the last observed fault kind — the fields a
    systemic fault-awareness layer would escalate.  The same record is
    appended to :class:`~repro.sim.stats.FaultStats` before raising, so
    the failure is observable even if the exception is swallowed.
    """

    def __init__(
        self,
        site: str,
        attempts: int,
        elapsed_ns: float,
        kind: str = "",
        src_coord=None,
        dst_coord=None,
        dim=None,
        direction=None,
    ):
        self.site = site
        self.attempts = attempts
        self.elapsed_ns = elapsed_ns
        self.kind = kind
        self.src_coord = src_coord
        self.dst_coord = dst_coord
        self.dim = dim
        self.direction = direction
        where = ""
        if src_coord is not None and dst_coord is not None:
            where = f" at {src_coord}->{dst_coord}"
            if dim is not None and direction is not None:
                # "XYZ" indexing kept local to avoid a faults -> net import.
                where += f" [{'XYZ'[dim]}{'+' if direction > 0 else '-'}]"
        super().__init__(
            f"{site}: packet abandoned after {attempts} attempts"
            f"{where} ({elapsed_ns:.0f} ns spent, last fault: {kind or 'unknown'})"
        )

    @property
    def located(self) -> bool:
        """True when the failure carries torus coordinates."""
        return self.src_coord is not None and self.dst_coord is not None


@dataclass(frozen=True)
class FaultPlan:
    """Deterministic, seeded description of the faults to inject."""

    #: Master seed; every injection site derives an independent stream
    #: from (seed, site name), so sampling is independent of event order.
    seed: int = 0

    # ------------------------------------------------------------------
    # Torus links: per-bit error rate (CRC failure at the receiver) and
    # whole-packet loss (e.g. a desynchronised serdes eating a frame).
    # ------------------------------------------------------------------
    link_ber: float = 0.0
    link_drop_rate: float = 0.0

    # ------------------------------------------------------------------
    # PCIe: TLP bit errors; LCRC-detected, recovered by the data-link
    # layer's transparent replay (the TLP re-occupies the wire).
    # ------------------------------------------------------------------
    tlp_ber: float = 0.0

    # ------------------------------------------------------------------
    # Nios II firmware: occasional stalls (interrupt storms, queue-scan
    # pathologies) and a uniform slowdown factor.
    # ------------------------------------------------------------------
    nios_stall_rate: float = 0.0
    nios_stall_ns: float = us(5)
    nios_slowdown: float = 1.0

    # ------------------------------------------------------------------
    # Recovery policy (link-level ACK/NAK retransmission).
    # ------------------------------------------------------------------
    max_retries: int = 8
    ack_timeout: float = us(1)  # replay timer for lost (un-NAKed) packets
    backoff: float = 2.0  # exponential backoff factor on the replay timer

    # ------------------------------------------------------------------
    # Hard link kills: ((site_name, time_ns), ...).  From *time_ns* on,
    # every traversal of the named link is eaten — the retransmission
    # machinery exhausts its budget deterministically and escalates, which
    # is what the recovery layer's failure detector consumes.
    # ------------------------------------------------------------------
    link_kills: tuple = ()

    def __post_init__(self):
        for name in ("link_ber", "link_drop_rate", "tlp_ber", "nios_stall_rate"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name}={v!r} must be a probability in [0, 1]")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.ack_timeout <= 0:
            raise ValueError("ack_timeout must be positive")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1")
        if self.nios_slowdown < 1.0:
            raise ValueError("nios_slowdown must be >= 1")
        if self.nios_stall_ns < 0:
            raise ValueError("nios_stall_ns must be non-negative")
        for kill in self.link_kills:
            if (
                not isinstance(kill, tuple)
                or len(kill) != 2
                or not isinstance(kill[0], str)
                or not isinstance(kill[1], (int, float))
                or not kill[1] >= 0
            ):
                raise ValueError(
                    f"link_kills entries must be (site, time_ns>=0) tuples, got {kill!r}"
                )

    @property
    def active(self) -> bool:
        """True if this plan can perturb a run at all."""
        return (
            self.link_ber > 0
            or self.link_drop_rate > 0
            or self.tlp_ber > 0
            or self.nios_stall_rate > 0
            or self.nios_slowdown > 1.0
            or bool(self.link_kills)
        )
