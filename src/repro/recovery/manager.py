"""The per-cluster health monitor / failure detector and detour router.

One :class:`RecoveryManager` serves a cluster (wired by
:func:`~repro.net.cluster.build_apenet_cluster` when a ``recovery``
policy is passed).  It consumes the structured
:class:`~repro.faults.LinkFailure` escalations that link-level
retransmission produces when a retry budget is exhausted, marks the
torus link dead, and switches every router from static dimension-order
to the deterministic BFS detour of
:meth:`~repro.net.topology.TorusShape.route_avoiding`.  Because all
routers consult the same manager (the simulated analogue of the global
fault-awareness protocol of arXiv:1311.1741), they derive hops from an
identical dead-link set and per-hop detour forwarding stays loop-free.

The manager also owns the P2P -> host-staging degradation verdict: when
a node's GPU-side fault sites (Nios II stall count, PCIe TLP replay
storms) cross the policy thresholds, its endpoint stops posting P2P
descriptors and stages through host bounce buffers instead — sticky per
node, recorded in :class:`~repro.sim.stats.RecoveryStats`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..net.topology import Coord, TorusShape
from ..sim import Simulator
from ..sim.stats import FaultStats, RecoveryStats
from .policy import RecoveryPolicy

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from ..apenet.torus import TorusLink
    from ..faults import LinkFailure

__all__ = ["RecoveryManager"]


class RecoveryManager:
    """Cluster-wide failure detector, detour router, degradation oracle."""

    def __init__(
        self,
        sim: Simulator,
        shape: TorusShape,
        policy: Optional[RecoveryPolicy] = None,
        fault_stats: Optional[FaultStats] = None,
    ):
        self.sim = sim
        self.shape = shape
        self.policy = policy if policy is not None else RecoveryPolicy()
        self.stats = RecoveryStats()
        # Per-site fault counters feeding the degradation thresholds;
        # attached by the cluster builder when an injector is present.
        self.fault_stats = fault_stats
        # Dead directed links, keyed (src_coord, dim, direction) — the
        # same identity route_avoiding() expects.
        self.dead_links: set[tuple[Coord, int, int]] = set()
        # Bumped on every topology change; routers may use it to notice
        # staleness of anything they derived from the old route set.
        self.route_epoch = 0
        self._hop_cache: dict[tuple[Coord, Coord], tuple[Optional[tuple[int, int]], bool]] = {}
        self._degraded: set[str] = set()

    # ------------------------------------------------------------------
    # Failure detection
    # ------------------------------------------------------------------

    def is_dead(self, src_coord: Coord, dim: int, direction: int) -> bool:
        """True if the directed link has been marked dead."""
        return (src_coord, dim, direction) in self.dead_links

    def mark_dead(
        self,
        src_coord: Coord,
        dim: int,
        direction: int,
        site: str = "",
        elapsed_ns: Optional[float] = None,
        kind: str = "",
    ) -> None:
        """Mark a directed link dead and recompute the route universe."""
        key = (src_coord, dim, direction)
        if key in self.dead_links:
            return
        self.dead_links.add(key)
        self.route_epoch += 1
        self._hop_cache.clear()
        info = dict(
            site=site,
            src_coord=src_coord,
            dim=dim,
            direction=direction,
            time=self.sim.now,
            kind=kind,
        )
        if elapsed_ns is not None:
            info["elapsed_ns"] = elapsed_ns
        self.stats.record_link_death(**info)
        obs = self.sim._obs
        if obs is not None:
            obs.instant(
                "recovery",
                "link_dead",
                site=site,
                dim=dim,
                direction=direction,
                kind=kind,
            )

    def link_failed(self, link: "TorusLink", failure: "LinkFailure") -> bool:
        """Absorb one retry-budget escalation from a torus link.

        Returns True when the failure was consumed (link located on the
        torus, now marked dead — the sender drops the packet and the
        end-to-end transaction layer replays it over the detour).  An
        unlocated link keeps the legacy contract: the caller re-raises.
        """
        if link.src_coord is None or link.dim is None:
            return False
        self.mark_dead(
            link.src_coord,
            link.dim,
            link.direction,
            site=link.name,
            elapsed_ns=failure.elapsed_ns,
            kind=failure.kind,
        )
        return True

    # ------------------------------------------------------------------
    # Detour routing
    # ------------------------------------------------------------------

    def _lookup(self, cur: Coord, dst: Coord) -> tuple[Optional[tuple[int, int]], bool]:
        """(next hop | None-if-unreachable, took-a-detour) — no counting."""
        if not self.dead_links:
            route = self.shape.route(cur, dst)
            return (route[0] if route else None), False
        key = (cur, dst)
        cached = self._hop_cache.get(key)
        if cached is not None:
            return cached
        detour = self.shape.route_avoiding(cur, dst, self.dead_links)
        if not detour:  # None (partitioned) or [] (cur == dst)
            result: tuple[Optional[tuple[int, int]], bool] = (None, False)
        else:
            static = self.shape.route(cur, dst)
            result = (detour[0], bool(static) and detour[0] != static[0])
        self._hop_cache[key] = result
        return result

    def next_hop(self, cur: Coord, dst: Coord) -> Optional[tuple[int, int]]:
        """Forwarding decision for one packet (counts rerouted hops).

        None means unreachable: every surviving path to *dst* is severed
        (callers must already have handled the arrived case).
        """
        hop, is_detour = self._lookup(cur, dst)
        if hop is not None and is_detour:
            self.stats.packets_rerouted += 1
        return hop

    def reachable(self, src: Coord, dst: Coord) -> bool:
        """True when a surviving route src -> dst exists (no counting)."""
        if self.shape.wrap(src) == self.shape.wrap(dst):
            return True
        hop, _ = self._lookup(src, dst)
        return hop is not None

    def record_unreachable(self, site: str, pkt) -> None:
        """Book one packet discarded for lack of any surviving route."""
        self.stats.packets_unreachable += 1
        obs = self.sim._obs
        if obs is not None:
            obs.instant(
                "recovery",
                "unreachable",
                site=site,
                dst=str(pkt.dst_coord),
                nbytes=pkt.nbytes,
            )

    # ------------------------------------------------------------------
    # P2P -> host-staging degradation
    # ------------------------------------------------------------------

    def should_degrade(self, card) -> bool:
        """Sticky per-node verdict: stage through host memory from now on?

        Consults the per-site fault counters: the node's own Nios II
        stall count and the TLP replay storms on any PCIe channel of the
        node (BAR1 writes ride those channels).  Crossing either policy
        threshold flips the node permanently — a sick NIC does not heal
        mid-run.
        """
        name = card.name
        if name in self._degraded:
            return True
        fs = self.fault_stats
        if fs is None:
            return False
        nios_site = f"{name}.nios"
        nios_stalls = fs.nios_stalls_by_site.get(nios_site, 0)
        node_prefix = name.split(".")[0] + "."
        tlp_replays = sum(
            count
            for site, count in fs.tlp_replays_by_site.items()
            if site.startswith(node_prefix)
        )
        policy = self.policy
        if (
            nios_stalls < policy.degrade_nios_stalls
            and tlp_replays < policy.degrade_tlp_replays
        ):
            return False
        self._degraded.add(name)
        self.stats.record_degradation(
            card=name,
            time=self.sim.now,
            nios_stalls=nios_stalls,
            tlp_replays=tlp_replays,
        )
        obs = self.sim._obs
        if obs is not None:
            obs.instant(
                "recovery",
                "degrade_to_staging",
                card=name,
                nios_stalls=nios_stalls,
                tlp_replays=tlp_replays,
            )
        return True
