"""End-to-end recovery: fault-aware re-routing, reliable RDMA, degradation.

PR 2's fault layer (:mod:`repro.faults`) recovers *within* a link: ACK/NAK
retransmission hides transient corruption and loss, and escalates a
structured :class:`~repro.faults.LinkFailure` when a retry budget is
exhausted.  This package is the systemic layer above it, modelled on the
fault-awareness work of the later APEnet+ papers (arXiv:1311.1741,
arXiv:2201.01088):

* :class:`RecoveryManager` — per-cluster health monitor consuming
  ``LinkFailure`` escalations, marking torus links dead and switching the
  routers from static dimension order to a deterministic BFS detour
  (explicit unreachable verdict on a true partition), plus the sticky
  P2P -> host-staging degradation verdict for nodes whose GPU-side fault
  sites (Nios stalls, TLP replay storms) cross a budget;
* :class:`RecoveryPolicy` — frozen knobs: end-to-end PUT timeout scaling,
  backoff, replay budget, degradation thresholds;
* :class:`PutOutcome` — the structured verdict
  (``delivered | timeout | unreachable``) returned by
  :meth:`~repro.apenet.rdma.ApenetEndpoint.reliable_put`.

Wire it in with ``build_apenet_cluster(..., recovery=RecoveryPolicy())``;
accounting lands in :class:`~repro.sim.stats.RecoveryStats` and recovery
events (link deaths, replays, degradations) are emitted as ``repro.obs``
spans/instants.  Without a manager attached every code path is
bit-identical to the recovery-free simulator.

``python -m repro.bench recovery`` kills a link mid-run and measures
goodput through the detect -> reroute -> replay window.
"""

from .manager import RecoveryManager
from .policy import PutOutcome, RecoveryPolicy

__all__ = ["RecoveryManager", "RecoveryPolicy", "PutOutcome"]
