"""Recovery policy knobs and the structured PUT outcome type.

A :class:`RecoveryPolicy` is the end-to-end analogue of the link-level
knobs on :class:`~repro.faults.FaultPlan`: where the plan's retry budget
governs a single wire hop, the policy governs whole RDMA transactions
(timeout scaling with message size, exponential backoff, bounded
replays) and the P2P -> host-staging degradation thresholds.  It is
frozen and hashable so it can ride cache keys and cross process
boundaries, like the fault plan itself.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..units import us

__all__ = ["RecoveryPolicy", "PutOutcome"]


@dataclass(frozen=True)
class RecoveryPolicy:
    """Deterministic end-to-end recovery knobs."""

    # ------------------------------------------------------------------
    # RDMA transaction layer: reliable_put() arms a deadline per attempt,
    # sized for the message plus headroom, backed off exponentially, and
    # gives up (structured, not silent) after a bounded replay budget.
    # ------------------------------------------------------------------
    put_timeout: float = us(60)  # fixed headroom per attempt
    put_timeout_per_byte: float = 4.0  # ns of deadline per payload byte
    put_backoff: float = 2.0
    put_max_retries: int = 5

    # ------------------------------------------------------------------
    # Degradation thresholds: once a node's GPU-side fault sites cross
    # these budgets, its endpoint stops posting P2P descriptors and
    # stages through host memory instead (sticky per node).
    # ------------------------------------------------------------------
    degrade_nios_stalls: int = 40
    degrade_tlp_replays: int = 32

    def __post_init__(self):
        if self.put_timeout <= 0:
            raise ValueError("put_timeout must be positive")
        if self.put_timeout_per_byte < 0:
            raise ValueError("put_timeout_per_byte must be non-negative")
        if self.put_backoff < 1.0:
            raise ValueError("put_backoff must be >= 1")
        if self.put_max_retries < 0:
            raise ValueError("put_max_retries must be >= 0")
        if self.degrade_nios_stalls < 1 or self.degrade_tlp_replays < 1:
            raise ValueError("degradation thresholds must be >= 1")

    def timeout_for(self, nbytes: int, attempt: int) -> float:
        """Deadline (ns) for attempt number *attempt* (1-based) of a PUT."""
        base = self.put_timeout + nbytes * self.put_timeout_per_byte
        return base * self.put_backoff ** (attempt - 1)


@dataclass(frozen=True)
class PutOutcome:
    """What happened to one reliable PUT, as reported to the caller.

    ``verdict`` is one of ``"delivered"`` (possibly after replays),
    ``"timeout"`` (replay budget exhausted without an ACK) or
    ``"unreachable"`` (the failure detector proved no surviving route to
    the destination — a true partition).
    """

    delivered: bool
    verdict: str
    attempts: int
    elapsed_ns: float
