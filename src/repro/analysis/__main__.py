"""CLI for the DES sanitizer tooling.

``python -m repro.analysis lint PATH...``
    Run the DET/UNIT/SIM lint rules; print ``path:line:col`` diagnostics;
    exit 1 when findings remain (the CI ``analysis`` job gates on this).

``python -m repro.analysis sanitize EXPERIMENT...``
    Run each experiment twice — a normal baseline and a run with
    ``REPRO_SANITIZE=1`` — then verify (a) every simulator finished with
    zero sanitizer violations and (b) the sanitized comparison rows are
    **bit-identical** to the baseline, extending the golden-number
    identity proof to sanitized mode.  Exit 1 on any violation or drift.

``python -m repro.analysis docstrings PATH...``
    Documentation contract: every module must open with a one-paragraph
    docstring (no stubs, no missing docstrings).  Exit 1 on findings.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from .linter import lint_paths
from .rules import RULES
from .sanitizer import collect_reports, reset_registry


def _cmd_lint(args: argparse.Namespace) -> int:
    if args.explain:
        for rule, desc in sorted(RULES.items()):
            print(f"{rule}: {desc}")
        return 0
    findings = lint_paths(args.paths)
    for f in findings:
        print(f.render())
    n = len(findings)
    print(f"repro.analysis lint: {n} finding(s) in {len(args.paths)} path(s)")
    return 1 if n else 0


def _cmd_sanitize(args: argparse.Namespace) -> int:
    from ..bench import harness  # deferred: pulls in the whole model
    from ..sim.sched import BACKEND_ENV, resolve_backend

    backend = resolve_backend(args.backend)
    os.environ[BACKEND_ENV] = backend  # both runs, so identity is per-backend
    quick = not args.full
    failed = False
    for exp_id in args.experiments:
        baseline = harness.run(exp_id, quick=quick)
        reset_registry()
        os.environ["REPRO_SANITIZE"] = "1"
        try:
            sanitized = harness.run(exp_id, quick=quick)
        finally:
            os.environ.pop("REPRO_SANITIZE", None)
        reports = collect_reports()
        violations = [v for r in reports for v in r.violations]
        identical = baseline.comparisons == sanitized.comparisons
        events = sum(r.events_processed for r in reports)
        status = "OK" if (identical and not violations) else "FAIL"
        print(
            f"[{status}] {exp_id} [{backend}]: {len(reports)} simulator(s), "
            f"{events} events, {len(violations)} violation(s), golden rows "
            f"{'identical' if identical else 'DRIFTED'}"
        )
        for v in violations:
            print("  " + v.render())
        if not identical:
            for base_row, san_row in zip(baseline.comparisons, sanitized.comparisons):
                if base_row != san_row:
                    print(f"  drift: {base_row} -> {san_row}")
        failed = failed or bool(violations) or not identical
    return 1 if failed else 0


def _cmd_docstrings(args: argparse.Namespace) -> int:
    from .docstrings import check_paths

    findings = check_paths(args.paths)
    for f in findings:
        print(f.render())
    n = len(findings)
    print(f"repro.analysis docstrings: {n} finding(s) in {len(args.paths)} path(s)")
    return 1 if n else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="DES lint rules and runtime sanitizer gate",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_lint = sub.add_parser("lint", help="run the DET/UNIT/SIM AST rules")
    p_lint.add_argument("paths", nargs="*", default=["src"], help="files or directories")
    p_lint.add_argument(
        "--explain", action="store_true", help="print the rule catalogue and exit"
    )
    p_lint.set_defaults(func=_cmd_lint)

    p_san = sub.add_parser(
        "sanitize", help="sanitized golden-identity run of experiments"
    )
    p_san.add_argument("experiments", nargs="+", help="experiment ids (e.g. selftest faults)")
    p_san.add_argument(
        "--full", action="store_true", help="full (paper-parameter) mode instead of quick"
    )
    p_san.add_argument(
        "--backend",
        default=None,
        help="simulator backend for both runs (heap|wheel; default: "
        "REPRO_BACKEND or heap)",
    )
    p_san.set_defaults(func=_cmd_sanitize)

    p_doc = sub.add_parser(
        "docstrings", help="module-docstring completeness check"
    )
    p_doc.add_argument(
        "paths", nargs="*", default=["src/repro"], help="files or directories"
    )
    p_doc.set_defaults(func=_cmd_docstrings)

    args = parser.parse_args(argv)
    if not getattr(args, "experiments", True):
        parser.error("sanitize needs at least one experiment id")
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
