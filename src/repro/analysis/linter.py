"""Lint engine: parse, run the DES rules, apply suppressions.

Entry points:

* :func:`lint_source` — lint one module's source text;
* :func:`lint_paths` — walk files/directories and lint every ``.py`` file;
* ``python -m repro.analysis lint src/`` — the CLI (see ``__main__``).
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterable, Sequence

from .rules import Finding, collect_findings

__all__ = ["lint_source", "lint_paths", "iter_python_files", "suppressed_rules"]

#: ``# repro: noqa`` or ``# repro: noqa-DET001,SIM001`` (case-insensitive).
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:-([A-Za-z0-9_,\s]+))?", re.IGNORECASE)

#: Directory names never worth linting.
_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache"}


def suppressed_rules(line: str) -> frozenset[str] | None:
    """The rules a source line suppresses.

    Returns ``None`` when the line has no noqa comment, an empty frozenset
    for a blanket ``# repro: noqa`` (suppress everything), or the specific
    rule ids of a scoped ``# repro: noqa-RULE[,RULE...]``.
    """
    m = _NOQA_RE.search(line)
    if m is None:
        return None
    scope = m.group(1)
    if scope is None:
        return frozenset()
    return frozenset(r.strip().upper() for r in scope.split(",") if r.strip())


def _apply_suppressions(findings: list[Finding], source: str) -> list[Finding]:
    lines = source.splitlines()
    kept = []
    for f in findings:
        line = lines[f.line - 1] if 0 < f.line <= len(lines) else ""
        scope = suppressed_rules(line)
        if scope is None:
            kept.append(f)
        elif scope and f.rule.upper() not in scope:
            kept.append(f)
        # blanket noqa (empty frozenset) or matching scope: suppressed
    return kept


def lint_source(source: str, path: str = "<string>") -> list[Finding]:
    """Lint one module's source; returns findings with suppressions applied.

    A file that fails to parse yields a single ``PARSE`` finding rather
    than raising, so one broken file cannot hide the rest of a sweep.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(path, exc.lineno or 1, exc.offset or 0, "PARSE", str(exc.msg))
        ]
    findings = collect_findings(tree, path)
    findings = _apply_suppressions(findings, source)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def iter_python_files(paths: Iterable[Path | str]) -> list[Path]:
    """Expand files/directories into the sorted list of ``.py`` files."""
    out: list[Path] = []
    for p in paths:
        p = Path(p)
        if p.is_dir():
            out.extend(
                f
                for f in sorted(p.rglob("*.py"))
                if not _SKIP_DIRS.intersection(part.name for part in f.parents)
            )
        elif p.suffix == ".py":
            out.append(p)
        else:
            raise FileNotFoundError(f"not a python file or directory: {p}")
    return out


def lint_paths(paths: Sequence[Path | str]) -> list[Finding]:
    """Lint every ``.py`` file under *paths*; findings in path/line order."""
    findings: list[Finding] = []
    for file in iter_python_files(paths):
        findings.extend(lint_source(file.read_text(), str(file)))
    return findings
