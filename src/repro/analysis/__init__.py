"""Static analysis + runtime sanitizer for the DES reproduction.

The software analogue of the APEnet+ line's systematic hardware
verification (arXiv:1311.1741): determinism and causality are enforced by
machine-checkable tooling rather than review.

* :mod:`repro.analysis.rules` / :mod:`repro.analysis.linter` — AST lint
  rules DET001/UNIT001/SIM001, ``python -m repro.analysis lint src/``;
* :mod:`repro.analysis.sanitizer` — runtime causality/leak checking for
  ``Simulator(sanitize=True)`` / ``REPRO_SANITIZE=1``, and the
  ``python -m repro.analysis sanitize`` golden-identity gate.
"""

from .linter import lint_paths, lint_source
from .rules import RULES, Finding
from .sanitizer import (
    Sanitizer,
    SanitizerError,
    SanitizerReport,
    Violation,
    collect_reports,
    reset_registry,
)

__all__ = [
    "Finding",
    "RULES",
    "lint_source",
    "lint_paths",
    "Sanitizer",
    "SanitizerError",
    "SanitizerReport",
    "Violation",
    "collect_reports",
    "reset_registry",
]
