"""DES-specific AST lint rules.

Four rule families guard the properties the reproduction's golden-number
argument rests on (see DESIGN.md, "DES sanitizer"):

* **DET001 — nondeterminism hazards.**  The simulator must produce
  bit-identical traces run to run; anything that injects wall-clock time,
  an unseeded random stream, CPython object identity, or hash-seeded
  iteration order into model code can silently break that.
* **UNIT001 — unit safety.**  The clock is nanoseconds and bandwidths are
  bytes/ns (== GB/s); raw numeric literals fed to ``timeout``/``bandwidth``/
  ``latency``/``rate`` parameters hide which unit the author meant.  The
  :mod:`repro.units` helpers (``ns``, ``us``, ``GBps``, ``Gbps``, ...) make
  the unit part of the call site, and make bytes-vs-bits mistakes visible.
* **SIM001 — hot-path hazards.**  ``assert`` statements vanish under
  ``python -O`` so load-bearing invariants must be explicit ``raise``\\ s of
  typed errors; broad ``except Exception`` handlers can swallow structured
  failures like :class:`~repro.faults.LinkFailure` unless they re-raise.
* **RETRY001 — retry hazards.**  A retry loop that sleeps the *same*
  delay every attempt hammers whatever it is retrying against; the
  recovery layer's own loops (:mod:`repro.faults`, :mod:`repro.recovery`)
  back off exponentially, and this rule keeps it that way.

A finding is suppressed by a ``# repro: noqa`` comment on the reported
line, optionally scoped to rules: ``# repro: noqa-SIM001`` or
``# repro: noqa-DET001,UNIT001``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

__all__ = ["Finding", "RULES", "collect_findings"]

#: rule id -> one-line description (the CLI's --explain output).
RULES = {
    "DET001": (
        "nondeterminism hazard: wall-clock time, unseeded module-level RNG, "
        "id()-keyed ordering, or iteration over an unordered set"
    ),
    "UNIT001": (
        "unit-safety hazard: raw numeric literal passed to a delay/bandwidth "
        "parameter; use the repro.units helpers (ns/us/GBps/Gbps/...)"
    ),
    "SIM001": (
        "hot-path hazard: load-bearing assert (stripped under python -O) or "
        "broad except that can swallow LinkFailure without re-raising"
    ),
    "RETRY001": (
        "retry hazard: retry/attempt loop sleeps a constant delay every "
        "iteration; back the delay off per attempt (e.g. base * factor ** n) "
        "so repeated failures do not hammer a congested resource"
    ),
}


@dataclass(frozen=True)
class Finding:
    """One diagnostic: ``path:line:col: rule message``."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    severity: str = "error"

    def render(self) -> str:
        """The canonical single-line diagnostic format."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} [{self.severity}] {self.message}"


# ---------------------------------------------------------------------------
# DET001 tables
# ---------------------------------------------------------------------------

#: Dotted call targets that read the wall clock.
_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.date.today",
}

#: numpy.random attributes that are fine to *construct* (explicitly seeded
#: generators); everything else on the module is the hidden global stream.
_NP_RANDOM_OK = {"default_rng", "Generator", "SeedSequence", "PCG64", "Philox"}

#: random-module attributes that construct an independent stream.
_PY_RANDOM_OK = {"Random"}


def _dotted(node: ast.AST) -> str:
    """Best-effort dotted name of a Name/Attribute chain, else ''."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _is_nonzero_number(node: ast.AST) -> bool:
    """True for a bare numeric literal other than 0 (0 is unit-free)."""
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
        return not isinstance(node.value, bool) and node.value != 0
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _is_nonzero_number(node.operand)
    return False


def _contains_id_call(node: ast.AST) -> bool:
    """True if the expression calls the builtin ``id``."""
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Name)
            and sub.func.id == "id"
        ):
            return True
    return False


def _is_set_expr(node: ast.AST) -> bool:
    """True for a set display or a direct set()/frozenset() call."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


def _has_bare_raise(body: list[ast.stmt]) -> bool:
    """True if the handler body re-raises (a bare ``raise`` at any depth)."""
    for stmt in body:
        for sub in ast.walk(stmt):
            if isinstance(sub, ast.Raise) and sub.exc is None:
                return True
    return False


class _RuleVisitor(ast.NodeVisitor):
    """Single-pass visitor producing findings for every rule family."""

    def __init__(self, path: str):
        self.path = path
        self.findings: list[Finding] = []
        # (line, col) already reported for RETRY001 — nested loops walk
        # overlapping subtrees and must not report the same delay twice.
        self._retry_seen: set[tuple[int, int]] = set()

    def _emit(self, node: ast.AST, rule: str, message: str) -> None:
        self.findings.append(
            Finding(self.path, node.lineno, node.col_offset, rule, message)
        )

    # -- DET001 -------------------------------------------------------------

    def _check_call_det(self, node: ast.Call) -> None:
        full = _dotted(node.func)
        if full in _WALL_CLOCK:
            self._emit(
                node,
                "DET001",
                f"{full}() reads the wall clock; simulation state must derive "
                "only from sim.now and seeded inputs",
            )
            return
        parts = full.split(".")
        if len(parts) >= 2 and parts[0] in ("np", "numpy") and parts[1] == "random":
            fn = parts[2] if len(parts) > 2 else ""
            if fn == "default_rng" and not node.args and not node.keywords:
                self._emit(
                    node,
                    "DET001",
                    "np.random.default_rng() without a seed is nondeterministic; "
                    "pass an explicit seed",
                )
            elif fn and fn not in _NP_RANDOM_OK:
                self._emit(
                    node,
                    "DET001",
                    f"{full}() uses numpy's hidden global RNG stream; build a "
                    "seeded np.random.default_rng(seed) instead",
                )
        elif len(parts) == 2 and parts[0] == "random":
            if parts[1] not in _PY_RANDOM_OK:
                self._emit(
                    node,
                    "DET001",
                    f"{full}() uses the module-level random stream; build a "
                    "seeded random.Random(seed) instead",
                )

    def _check_call_id_key(self, node: ast.Call) -> None:
        for kw in node.keywords:
            if kw.arg != "key" or kw.value is None:
                continue
            if (isinstance(kw.value, ast.Name) and kw.value.id == "id") or (
                isinstance(kw.value, ast.Lambda) and _contains_id_call(kw.value.body)
            ):
                self._emit(
                    node,
                    "DET001",
                    "ordering by id() depends on allocator addresses and varies "
                    "run to run; key on a stable field instead",
                )

    def visit_Dict(self, node: ast.Dict) -> None:
        for key in node.keys:
            if key is not None and isinstance(key, ast.Call) and _contains_id_call(key):
                self._emit(
                    key,
                    "DET001",
                    "id()-keyed mapping: key on the object itself (identity "
                    "hash, stable within a run) or a stable field",
                )
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        if isinstance(node.key, ast.Call) and _contains_id_call(node.key):
            self._emit(
                node.key,
                "DET001",
                "id()-keyed mapping: key on the object itself (identity hash, "
                "stable within a run) or a stable field",
            )
        self.generic_visit(node)

    def _check_set_iteration(self, iter_node: ast.AST) -> None:
        if _is_set_expr(iter_node):
            self._emit(
                iter_node,
                "DET001",
                "iterating an unordered set: order varies with PYTHONHASHSEED "
                "and can feed the event heap; iterate a sorted() or list view",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_set_iteration(node.iter)
        self._check_retry_loop(node)
        self.generic_visit(node)

    def _visit_comprehensions(self, node) -> None:
        for comp in node.generators:
            self._check_set_iteration(comp.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehensions
    visit_SetComp = _visit_comprehensions
    visit_GeneratorExp = _visit_comprehensions

    # -- UNIT001 ------------------------------------------------------------

    _UNIT_KWARGS = ("bandwidth", "latency", "rate")
    _PIPE_CTORS = ("Channel", "RateLimiter")

    def _check_call_units(self, node: ast.Call) -> None:
        for kw in node.keywords:
            if kw.arg in self._UNIT_KWARGS and _is_nonzero_number(kw.value):
                self._emit(
                    kw.value,
                    "UNIT001",
                    f"raw literal for {kw.arg}=; state the unit with a "
                    "repro.units helper (GBps/Gbps/MBps for rates, ns/us for "
                    "latencies)",
                )
        func_tail = _dotted(node.func).rsplit(".", 1)[-1]
        if func_tail in self._PIPE_CTORS:
            for arg in node.args[1:]:
                if _is_nonzero_number(arg):
                    self._emit(
                        arg,
                        "UNIT001",
                        f"raw positional literal in {func_tail}(); state the "
                        "unit with a repro.units helper",
                    )
        if func_tail in ("timeout", "Timeout"):
            pos = node.args[1:] if func_tail == "Timeout" else node.args[:1]
            for arg in pos[:1]:
                if _is_nonzero_number(arg):
                    self._emit(
                        arg,
                        "UNIT001",
                        "raw literal delay; the clock is nanoseconds — write "
                        "ns(x)/us(x) so the unit is visible",
                    )

    # -- RETRY001 -----------------------------------------------------------

    _SLEEP_TAILS = ("timeout", "sleep")
    #: unit helpers whose result is as constant as their arguments.
    _UNIT_HELPERS = ("ns", "us", "ms", "s")

    def _loop_is_retryish(self, node) -> bool:
        """A loop that counts retries/attempts somewhere in header or body."""
        for sub in ast.walk(node):
            name = ""
            if isinstance(sub, ast.Name):
                name = sub.id
            elif isinstance(sub, ast.Attribute):
                name = sub.attr
            lowered = name.lower()
            if "retry" in lowered or "retries" in lowered or "attempt" in lowered:
                return True
        return False

    def _delay_kind(self, arg: ast.AST) -> str:
        """'backoff' (computed per attempt), 'constant', or 'unknown'."""
        if any(isinstance(sub, ast.BinOp) for sub in ast.walk(arg)):
            return "backoff"
        if isinstance(arg, ast.Call):
            tail = _dotted(arg.func).rsplit(".", 1)[-1]
            if tail in self._UNIT_HELPERS:
                return "constant"
            return "unknown"  # some computation we cannot see through
        if _is_nonzero_number(arg) or isinstance(arg, (ast.Name, ast.Attribute)):
            return "constant"
        return "unknown"

    def _check_retry_loop(self, node) -> None:
        if not self._loop_is_retryish(node):
            return
        delays: list[tuple[ast.AST, str]] = []
        for sub in ast.walk(node):
            if not (isinstance(sub, ast.Call) and sub.args):
                continue
            if _dotted(sub.func).rsplit(".", 1)[-1] in self._SLEEP_TAILS:
                delays.append((sub.args[0], self._delay_kind(sub.args[0])))
        kinds = [kind for _a, kind in delays]
        if "backoff" in kinds:
            return  # some path backs off; give the loop the benefit of doubt
        for arg, kind in delays:
            if kind != "constant":
                continue
            where = (arg.lineno, arg.col_offset)
            if where in self._retry_seen:
                continue
            self._retry_seen.add(where)
            self._emit(
                arg,
                "RETRY001",
                "retry loop waits a constant delay every attempt; back it "
                "off per attempt (e.g. base * factor ** attempts) so "
                "repeated failures do not hammer the congested path",
            )

    def visit_While(self, node: ast.While) -> None:
        self._check_retry_loop(node)
        self.generic_visit(node)

    # -- SIM001 -------------------------------------------------------------

    def visit_Assert(self, node: ast.Assert) -> None:
        self._emit(
            node,
            "SIM001",
            "load-bearing assert is stripped under python -O; raise a typed "
            "error (SimulationError/DeadlockError/ExperimentError) instead",
        )
        self.generic_visit(node)

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        broad = node.type is None or _dotted(node.type) in (
            "Exception",
            "BaseException",
        )
        if broad and not _has_bare_raise(node.body):
            what = "bare except" if node.type is None else f"except {_dotted(node.type)}"
            self._emit(
                node,
                "SIM001",
                f"{what} without re-raise can swallow LinkFailure/"
                "SimulationError; catch the specific types or re-raise",
            )
        self.generic_visit(node)

    # -- dispatch -----------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        self._check_call_det(node)
        self._check_call_id_key(node)
        self._check_call_units(node)
        self.generic_visit(node)


def collect_findings(tree: ast.AST, path: str) -> list[Finding]:
    """Run every rule over a parsed module; returns unsuppressed findings
    (suppression is applied by the caller, which owns the source text)."""
    visitor = _RuleVisitor(path)
    visitor.visit(tree)
    return visitor.findings
