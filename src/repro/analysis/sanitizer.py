"""Runtime DES sanitizer: causality, leak and shared-stats checking.

Enabled per simulator (``Simulator(sanitize=True)``) or globally
(``REPRO_SANITIZE=1``).  The sanitizer is **observation-only**: it never
changes event ordering, timing, or floating-point arithmetic, so a
sanitized run is bit-identical to a normal run (see EXPERIMENTS.md,
"Sanitized runs").  Its hooks live exclusively on cold paths — object
construction and kernel error branches — so even wall-clock overhead is
negligible.

Checks, reported as structured :class:`Violation` records inside a
:class:`SanitizerReport`:

* **causality** — an event scheduled in the past or popped behind the
  clock (recorded at the kernel's existing error branches, right before
  the :class:`~repro.sim.core.SimulationError` raise);
* **event-leak** — heap entries never processed when the simulation is
  finalized (timeouts/events scheduled but abandoned);
* **resource-leak** — a :class:`~repro.sim.resources.Resource` finishing
  with held slots (an acquire whose release never ran);
* **blocked-putter** — a producer still blocked on a full
  Store/ByteFifo/PacketFifo at the end (data accepted by the model but
  never drained);
* **channel-backlog** — a :class:`~repro.sim.channel.Channel` whose
  serializer is still busy past the final clock (in-flight transfer never
  delivered);
* **process-leak** — a process still pending that is *not* parked on a
  consumer-side wait (idle ``get()`` on an empty queue is the normal rest
  state of the card's service loops and is never flagged);
* **stats-cross-process** — mutation of a guarded stats object (see
  :meth:`Sanitizer.guard_stats`) from a different OS process: with the
  fork-based parallel runner such writes silently vanish in the parent.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

__all__ = [
    "Violation",
    "SanitizerReport",
    "Sanitizer",
    "SanitizerError",
    "collect_reports",
    "reset_registry",
]


class SanitizerError(RuntimeError):
    """Raised when a sanitizer guard is violated (cross-process mutation)."""


@dataclass(frozen=True)
class Violation:
    """One structured sanitizer finding."""

    kind: str  # causality | event-leak | resource-leak | blocked-putter |
    # channel-backlog | process-leak | stats-cross-process
    message: str
    time: float  # sim.now when detected
    details: dict = field(default_factory=dict)

    def render(self) -> str:
        """Single-line diagnostic."""
        return f"[{self.kind}] t={self.time:g}: {self.message}"


@dataclass
class SanitizerReport:
    """End-of-simulation summary produced by :meth:`Sanitizer.finalize`."""

    violations: list[Violation]
    events_processed: int
    pending_heap_events: int
    pending_processes: int
    idle_consumers: int
    resources_tracked: int
    containers_tracked: int
    channels_tracked: int
    aborted: bool
    # Appended after the multi-backend kernel work; defaulted so any
    # older call sites constructing reports positionally keep working.
    backend: str = "heap"
    pool_stats: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when the run finished with zero violations."""
        return not self.violations

    def render(self) -> str:
        """Human-readable multi-line summary."""
        head = (
            f"SanitizerReport[{self.backend}]: {len(self.violations)} violation(s), "
            f"{self.events_processed} events, "
            f"{self.pending_heap_events} pending heap entries, "
            f"{self.pending_processes} pending processes "
            f"({self.idle_consumers} idle consumers)"
            + (" [aborted]" if self.aborted else "")
        )
        return "\n".join([head] + ["  " + v.render() for v in self.violations])


#: Every sanitizer constructed since the last reset (the CLI's collection
#: point for experiment runs that build simulators internally).
_REGISTRY: list["Sanitizer"] = []


def reset_registry() -> None:
    """Forget all sanitizers constructed so far."""
    _REGISTRY.clear()


def collect_reports() -> list[SanitizerReport]:
    """Finalize and return a report for every registered sanitizer."""
    reports = [s.finalize() for s in _REGISTRY]
    _REGISTRY.clear()
    return reports


class Sanitizer:
    """Per-simulator instrumentation state.

    Constructed by :class:`~repro.sim.core.Simulator` when sanitizing;
    model primitives (resources, FIFOs, channels) self-register at
    construction time through the ``register_*`` hooks.
    """

    def __init__(self, sim: Any):
        self.sim = sim
        self.origin_pid = os.getpid()
        self.violations: list[Violation] = []
        self.aborted = False
        self._resources: list[Any] = []
        self._containers: list[Any] = []
        self._channels: list[Any] = []
        self._processes: list[Any] = []
        self._report: Optional[SanitizerReport] = None
        _REGISTRY.append(self)

    # -- registration hooks (cold paths: object construction) ----------------

    def register_resource(self, resource: Any) -> None:
        """Track a Resource for end-of-run held-slot checking."""
        self._resources.append(resource)

    def register_container(self, container: Any) -> None:
        """Track a Store/ByteFifo/PacketFifo for blocked-putter checking."""
        self._containers.append(container)

    def register_channel(self, channel: Any) -> None:
        """Track a Channel for end-of-run backlog checking."""
        self._channels.append(channel)

    def register_process(self, process: Any) -> None:
        """Track a Process for end-of-run stall classification."""
        self._processes.append(process)

    # -- kernel error-branch hooks -------------------------------------------

    def record_causality(self, scheduled_t: float, now: float, what: str) -> None:
        """Record a causality violation (called just before the kernel
        raises its own SimulationError, so behaviour is unchanged)."""
        self.violations.append(
            Violation(
                "causality",
                f"{what}: t={scheduled_t!r} behind clock {now!r}",
                now,
                {"scheduled_t": scheduled_t, "now": now},
            )
        )

    def mark_aborted(self) -> None:
        """An exception escaped run(); skip end-state checks at finalize."""
        self.aborted = True

    # -- shared-stats guard ----------------------------------------------------

    def guard_stats(self, stats: Any, getpid: Callable[[], int] = os.getpid):
        """Wrap *stats* so mutations from another OS process raise.

        With the fork-based parallel experiment runner, a worker mutating a
        parent-owned stats object updates its private copy-on-write page —
        the write silently vanishes.  The guard turns that into a loud
        :class:`SanitizerError` in the offending process (and a recorded
        violation when it happens in the owning process's registry).
        """
        return _GuardedStats(stats, self, getpid)

    # -- finalize ----------------------------------------------------------------

    def finalize(self) -> SanitizerReport:
        """Run end-of-simulation checks and freeze the report (idempotent)."""
        if self._report is not None:
            return self._report
        sim = self.sim
        violations = list(self.violations)
        # Backend-neutral pending snapshot (sorted by (t, seq)): the heap
        # backend's raw list and the calendar queue's buckets both surface
        # through pending_entries(), so the checks below see one shape.
        heap = sim.pending_entries()
        pending_procs = [p for p in self._processes if p.is_alive]
        idle_consumers = 0

        if not self.aborted:
            if heap:
                with_waiters = sum(1 for _, _, ev in heap if ev.callbacks)
                violations.append(
                    Violation(
                        "event-leak",
                        f"{len(heap)} scheduled event(s) never processed "
                        f"({with_waiters} with waiters); earliest due at "
                        f"t={heap[0][0]:g}",
                        sim.now,
                        {"count": len(heap), "with_waiters": with_waiters},
                    )
                )
            for res in self._resources:
                if res.in_use > 0:
                    violations.append(
                        Violation(
                            "resource-leak",
                            f"resource {res.name!r} ends with {res.in_use} "
                            f"held slot(s) (acquire without release)",
                            sim.now,
                            {"resource": res.name, "in_use": res.in_use},
                        )
                    )
            for c in self._containers:
                n_blocked = len(getattr(c, "_putters", ()))
                if n_blocked:
                    violations.append(
                        Violation(
                            "blocked-putter",
                            f"{type(c).__name__} {getattr(c, 'name', '')!r} ends "
                            f"with {n_blocked} blocked producer(s)",
                            sim.now,
                            {"container": getattr(c, "name", ""), "count": n_blocked},
                        )
                    )
            for ch in self._channels:
                if ch._free_at > sim.now + 1e-9:
                    violations.append(
                        Violation(
                            "channel-backlog",
                            f"channel {ch.name!r} serializer busy until "
                            f"t={ch._free_at:g}, past end of run",
                            sim.now,
                            {"channel": ch.name, "free_at": ch._free_at},
                        )
                    )
            heap_events = [entry[2] for entry in heap]
            consumer_waits = self._consumer_wait_events()
            for proc in pending_procs:
                if self._is_idle_wait(proc._waiting_on, heap_events, consumer_waits):
                    idle_consumers += 1
                else:
                    violations.append(
                        Violation(
                            "process-leak",
                            f"process {proc.name!r} still pending, waiting on "
                            f"{proc._waiting_on!r} which can never fire",
                            sim.now,
                            {"process": proc.name},
                        )
                    )

        self._report = SanitizerReport(
            violations=violations,
            events_processed=sim.events_processed,
            pending_heap_events=len(heap),
            pending_processes=len(pending_procs),
            idle_consumers=idle_consumers,
            resources_tracked=len(self._resources),
            containers_tracked=len(self._containers),
            channels_tracked=len(self._channels),
            aborted=self.aborted,
            backend=getattr(sim, "backend", "heap"),
            pool_stats=sim.pool.stats() if hasattr(sim, "pool") else {},
        )
        return self._report

    def _consumer_wait_events(self) -> list[Any]:
        """Events parked in consumer-side queues: Store/PacketFifo getters
        (plain events), ByteFifo getters (tuples), Resource waiters."""
        waits: list[Any] = []
        for c in self._containers:
            for entry in getattr(c, "_getters", ()):
                waits.append(entry[0] if isinstance(entry, tuple) else entry)
        for res in self._resources:
            waits.extend(res._waiters)
        return waits

    def _is_idle_wait(self, target: Any, heap_events: list, consumer_waits: list) -> bool:
        """True when a pending process is in a legitimate rest state.

        Waiting on a heap entry is legitimate too (the leftover is already
        reported once as an event-leak; no double count per process).
        Composite AllOf/AnyOf waits are classified through their pending
        constituents.
        """
        if target is None:
            return True  # start event still in the heap: covered by event-leak
        if any(target is ev for ev in heap_events):
            return True
        if any(target is ev for ev in consumer_waits):
            return True
        events = getattr(target, "events", None)
        if events is not None:  # AllOf/AnyOf composite
            return all(
                ev.processed or self._is_idle_wait(ev, heap_events, consumer_waits)
                for ev in events
            )
        return False


class _GuardedStats:
    """Attribute/method proxy enforcing single-process stats mutation."""

    __slots__ = ("_target", "_sanitizer", "_getpid")

    def __init__(self, target: Any, sanitizer: Sanitizer, getpid: Callable[[], int]):
        object.__setattr__(self, "_target", target)
        object.__setattr__(self, "_sanitizer", sanitizer)
        object.__setattr__(self, "_getpid", getpid)

    def _check(self, action: str) -> None:
        san = object.__getattribute__(self, "_sanitizer")
        pid = object.__getattribute__(self, "_getpid")()
        if pid != san.origin_pid:
            san.violations.append(
                Violation(
                    "stats-cross-process",
                    f"stats {action} from pid {pid} (owner pid "
                    f"{san.origin_pid}); route updates through sim.stats in "
                    "the owning process",
                    getattr(san.sim, "now", 0.0),
                    {"pid": pid, "owner_pid": san.origin_pid, "action": action},
                )
            )
            raise SanitizerError(
                f"cross-process stats {action}: pid {pid} != owner "
                f"{san.origin_pid}; the write would be lost with the "
                "fork-based parallel runner"
            )

    def __getattr__(self, name: str) -> Any:
        attr = getattr(object.__getattribute__(self, "_target"), name)
        if callable(attr):
            check = object.__getattribute__(self, "_check")

            def _guarded(*args, **kwargs):
                check(f"call {name}()")
                return attr(*args, **kwargs)

            return _guarded
        return attr

    def __setattr__(self, name: str, value: Any) -> None:
        object.__getattribute__(self, "_check")(f"write .{name}")
        setattr(object.__getattribute__(self, "_target"), name, value)
