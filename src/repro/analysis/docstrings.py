"""Module-docstring completeness check for the repro source tree.

The repository's documentation contract (DESIGN.md, ISSUE 4's satellite)
requires every public module under ``src/repro/`` to open with a
one-paragraph docstring that situates the module — ideally naming the paper
section or mechanism it reproduces.  This checker enforces the measurable
half of that contract: a module docstring must exist and must be a real
paragraph (at least :data:`MIN_WORDS` words), not a single-line stub.

Kept separate from the AST rule engine in :mod:`repro.analysis.rules`
because the existing fixture tests pin the rule catalogue's exact findings;
``python -m repro.analysis docstrings src/repro`` runs this check and CI
gates on a clean result.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Sequence, Union

from .linter import iter_python_files

__all__ = ["MIN_WORDS", "DocstringFinding", "check_file", "check_paths"]

#: A docstring shorter than this many words is a stub, not a paragraph.
MIN_WORDS = 8


class DocstringFinding:
    """One module that fails the docstring contract."""

    __slots__ = ("path", "problem")

    def __init__(self, path: Path, problem: str):
        self.path = path
        self.problem = problem

    def render(self) -> str:
        """One ``path: problem`` line for console output."""
        return f"{self.path}: {self.problem}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DocstringFinding({str(self.path)!r}, {self.problem!r})"


def check_source(source: str, path: Path) -> list[DocstringFinding]:
    """Check one module's source text; returns findings (empty = ok)."""
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [DocstringFinding(path, f"unparseable: {exc.msg}")]
    doc = ast.get_docstring(tree)
    if doc is None:
        return [DocstringFinding(path, "missing module docstring")]
    words = doc.split()
    if len(words) < MIN_WORDS:
        return [
            DocstringFinding(
                path,
                f"module docstring is a {len(words)}-word stub "
                f"(need >= {MIN_WORDS} words — one real paragraph)",
            )
        ]
    return []


def check_file(path: Union[str, Path]) -> list[DocstringFinding]:
    """Check one file on disk."""
    p = Path(path)
    return check_source(p.read_text(encoding="utf-8"), p)


def check_paths(paths: Sequence[Union[str, Path]]) -> list[DocstringFinding]:
    """Check every ``.py`` file under *paths* (files or directories)."""
    findings: list[DocstringFinding] = []
    for p in iter_python_files(paths):
        findings.extend(check_file(p))
    return findings
