#!/usr/bin/env python
"""End-to-end smoke of ``python -m repro.serve`` as a real subprocess.

Boots the service on an ephemeral port, then walks the full client story
the README promises:

1. a healthy submission runs to ``done`` and /result returns the
   deterministic body;
2. a *concurrent* duplicate coalesces onto the in-flight execution
   (``repro_serve_dedup_hits_total``), a *later* duplicate answers 200
   straight from the shared result cache
   (``repro_serve_cache_hits_total``);
3. a failing request (deadline too short for the experiment) terminates
   with a structured ``failed``/``timeout`` outcome — no hang;
4. an unknown experiment is a 400, flooding past ``--queue-limit`` is a
   429 with ``Retry-After``;
5. /metrics exposes the golden metric families with the expected labels;
6. SIGTERM drains: /readyz flips to 503, the final metrics snapshot on
   stderr reports ``repro_serve_up 0``, the process exits 0, and no
   worker processes survive it.

Exit code 0 when every step passes.  Run from the repository root:

    PYTHONPATH=src python scripts/serve_smoke.py
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path
from tempfile import TemporaryDirectory

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Metric families the service contract guarantees on /metrics, with one
#: label-shape probe each (None = unlabelled family).
GOLDEN_METRICS = {
    "repro_serve_info": 'version="',
    "repro_serve_up": None,
    "repro_serve_http_requests_total": 'route="submit"',
    "repro_serve_requests_total": 'outcome="accepted"',
    "repro_serve_requests_inflight": None,
    "repro_serve_queue_depth": None,
    "repro_serve_cache_hits_total": None,
    "repro_serve_cache_misses_total": None,
    "repro_serve_dedup_hits_total": None,
    "repro_serve_completed_total": 'outcome="done"',
    "repro_serve_request_latency_seconds_bucket": 'le="',
    "repro_serve_sim_events_total": None,
    "repro_serve_sim_wall_seconds_total": None,
    "repro_serve_retries_total": None,
    "repro_serve_worker_restarts_total": None,
}

FAILURES: list[str] = []


def check(ok: bool, what: str) -> None:
    print(("ok   " if ok else "FAIL ") + what)
    if not ok:
        FAILURES.append(what)


class Client:
    def __init__(self, port: int):
        self.base = f"http://127.0.0.1:{port}"

    def get(self, path: str):
        try:
            with urllib.request.urlopen(self.base + path, timeout=30) as resp:
                return resp.status, dict(resp.headers), resp.read().decode()
        except urllib.error.HTTPError as exc:
            return exc.code, dict(exc.headers), exc.read().decode()

    def get_json(self, path: str):
        status, headers, body = self.get(path)
        return status, headers, json.loads(body)

    def post(self, path: str, doc: dict):
        data = json.dumps(doc).encode()
        req = urllib.request.Request(
            self.base + path,
            data=data,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        try:
            with urllib.request.urlopen(req, timeout=30) as resp:
                return resp.status, dict(resp.headers), json.loads(resp.read().decode())
        except urllib.error.HTTPError as exc:
            return exc.code, dict(exc.headers), json.loads(exc.read().decode())

    def wait_terminal(self, request_id: str, timeout_s: float = 120.0) -> dict:
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            _, _, doc = self.get_json(f"/status/{request_id}")
            if doc.get("state") in ("done", "failed"):
                return doc
            time.sleep(0.05)
        raise SystemExit(f"request {request_id} still not terminal after {timeout_s}s")


def orphan_workers(marker: str) -> list[int]:
    """PIDs of surviving processes carrying our environment marker."""
    pids = []
    for entry in Path("/proc").iterdir():
        if not entry.name.isdigit() or int(entry.name) == os.getpid():
            continue
        try:
            environ = (entry / "environ").read_bytes()
        except OSError:
            continue
        if marker.encode() in environ:
            pids.append(int(entry.name))
    return pids


def main() -> int:
    marker = f"REPRO_SERVE_SMOKE_MARKER=pid-{os.getpid()}"
    with TemporaryDirectory(prefix="serve-smoke-cache-") as cache_dir:
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        key, _, value = marker.partition("=")
        env[key] = value
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.serve",
                "--port", "0", "--workers", "1", "--queue-limit", "1",
                "--cache-dir", cache_dir,
            ],
            cwd=REPO_ROOT,
            env=env,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            return run_session(proc, Client(_wait_port(proc)), marker)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()


def _wait_port(proc) -> int:
    line = proc.stderr.readline()
    match = re.search(r"listening on http://[^:]+:(\d+)", line)
    if not match:
        raise SystemExit(f"no listening banner, got: {line!r}")
    print("boot " + line.strip())
    return int(match.group(1))


def run_session(proc, client: Client, marker: str) -> int:
    status, _, _ = client.get("/healthz")
    check(status == 200, "/healthz answers 200")
    status, _, _ = client.get("/readyz")
    check(status == 200, "/readyz answers 200 while accepting")

    # 1+2. Healthy run, with a concurrent duplicate coalescing onto it.
    status, _, first = client.post("/submit", {"experiment": "fig3"})
    check(status == 202, "healthy submit accepted (202)")
    status, _, dup = client.post("/submit", {"experiment": "fig3"})
    check(
        status in (200, 202),
        "concurrent duplicate admitted",
    )
    coalesced = status == 202 and dup.get("coalesced", False)
    final = client.wait_terminal(first["request_id"])
    check(final["state"] == "done", "healthy request reaches done")
    _, _, result = client.get_json(f"/result/{first['request_id']}")
    check(
        result.get("result", {}).get("experiment_id") == "fig3"
        and bool(result["result"].get("comparisons")),
        "/result returns the deterministic body",
    )

    # A later duplicate is a cache hit answered 200 on admission.
    status, _, cached = client.post("/submit", {"experiment": "fig3"})
    check(
        status == 200 and cached.get("cached") is True,
        "later duplicate answered 200 from the shared cache",
    )
    check(
        coalesced or cached.get("cached") is True,
        "duplicate deduplicated (coalesced in flight or cache hit)",
    )

    # 3. A failing request: deadline far below the experiment's runtime
    # (a different experiment, so it cannot coalesce with the above).
    status, _, failing = client.post(
        "/submit", {"experiment": "fig8", "quick": False, "deadline_s": 0.05}
    )
    check(status == 202, "doomed submit accepted (202)")
    final = client.wait_terminal(failing["request_id"])
    check(
        final["state"] == "failed" and final["outcome"] == "timeout",
        "doomed request fails structurally (timeout), no hang",
    )

    # 4. Bad requests and overload.
    status, _, _ = client.post("/submit", {"experiment": "no-such-figure"})
    check(status == 400, "unknown experiment rejected (400)")
    # Flood with *distinct* coalescing keys (identical ones would dedup,
    # not queue) and a short deadline so the backlog self-clears fast.
    flood_hit_429 = False
    retry_after = None
    flood = [
        ("fig9", False), ("fig9", True), ("faults", False),
        ("faults", True), ("fig8", True), ("fig3", False),
    ]
    admitted = []
    for experiment, quick in flood:
        body = {"experiment": experiment, "quick": quick, "deadline_s": 1.0}
        status, headers, doc = client.post("/submit", body)
        if status == 429:
            flood_hit_429 = True
            retry_after = headers.get("Retry-After")
            break
        if status == 202:
            admitted.append(doc["request_id"])
    check(flood_hit_429, "flood past --queue-limit rejected (429)")
    check(bool(retry_after), "429 carries a Retry-After hint")
    for request_id in admitted:  # let the backlog clear before draining
        client.wait_terminal(request_id)

    # 5. Golden metric families.
    status, headers, text = client.get("/metrics")
    check(
        status == 200 and headers.get("Content-Type", "").startswith("text/plain"),
        "/metrics scrapes as text exposition",
    )
    for family, probe in GOLDEN_METRICS.items():
        # Headers render from declaration, even before the first sample
        # (histogram children share their family's header).
        base = family[: -len("_bucket")] if family.endswith("_bucket") else family
        present = f"# HELP {base} " in text
        if probe is not None:
            present = present and f"{family}{{" in text and probe in text
        check(present, f"metric family {family} present with expected labels")
    check("repro_serve_up 1" in text, "repro_serve_up is 1 while serving")

    # 6. SIGTERM drain: in-flight work finishes, then a clean exit.  The
    # guinea pig uses a key no earlier step touched, so it really runs.
    status, _, pig = client.post("/submit", {"experiment": "fig10"})
    check(status == 202, "drain guinea pig accepted (202)")
    proc.send_signal(signal.SIGTERM)
    status, _, _ = client.get("/readyz")
    check(status == 503, "/readyz flips to 503 while draining")
    status, _, _ = client.post("/submit", {"experiment": "fig3", "quick": False})
    check(status == 503, "submissions bounce with 503 while draining")

    rc = proc.wait(timeout=600)
    stderr = proc.stderr.read()
    check(rc == 0, f"service exits 0 after drain (got {rc})")
    check(
        "repro_serve_up 0" in stderr,
        "final metrics snapshot reports repro_serve_up 0",
    )
    check(
        "workers_alive=0" in stderr,
        "drain line reports no surviving workers",
    )
    leftovers = orphan_workers(marker)
    check(not leftovers, f"no orphaned worker processes (found {leftovers})")

    print(f"serve_smoke: {len(FAILURES)} failure(s)")
    return 1 if FAILURES else 0


if __name__ == "__main__":
    sys.exit(main())
