#!/usr/bin/env python
"""Gate a benchmark artifact against its committed baseline.

Two modes:

* default — gate ``BENCH_kernel.json`` (from ``python -m repro.bench
  selftest --bench-json ...``) against
  ``benchmarks/baselines/kernel.json``;
* ``--scale`` — gate ``BENCH_scale.json`` (from ``python -m repro.bench
  scale --scale-json ...``) against ``benchmarks/baselines/scale.json``:
  the exact-vs-flow parity probe must report bit-exact lossless
  aggregates and completion deviations inside the documented tolerance,
  every golden row (small tori) must match the committed numbers
  *exactly* (the flow model is deterministic model time, not wall
  time), all required torus sizes must be present, and the calibration
  hash must match.

Kernel-mode contract:

Consumes the ``BENCH_kernel.json`` produced by ``python -m repro.bench
selftest --bench-json ...`` and the committed reference numbers in
``benchmarks/baselines/kernel.json``, then enforces the perf-history
contract:

1. every baseline backend is present in the artifact, with identical
   event counts across backends (the bit-identity contract leaves no
   room for a backend to "win" by simulating different work);
2. no backend's events/sec regresses more than ``max_regression_pct``
   below its committed reference throughput;
3. the ``wheel`` backend's aggregate events/sec stays at or above the
   ``heap`` reference backend's (``min_speedup_vs_heap``, default 1.0) —
   the calendar queue must pay for its complexity;
4. the artifact's calibration hash matches the baseline's: perf numbers
   measured under a different cost-model calibration are not comparable,
   so a calibration change must ship a refreshed baseline in the same
   commit.

Exit code 0 when every check passes, 1 otherwise (the CI
``bench-history`` job gates on this).  Run from the repository root:

    PYTHONPATH=src python -m repro.bench selftest --bench-json BENCH_kernel.json
    python scripts/check_bench.py BENCH_kernel.json

Refreshing the baseline after an intentional change: copy the relevant
numbers (rounded *down* generously — the committed floor must hold on
the slowest CI runner, not your workstation) into
``benchmarks/baselines/kernel.json`` and commit both files together.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO_ROOT / "benchmarks" / "baselines" / "kernel.json"
DEFAULT_SCALE_BASELINE = REPO_ROOT / "benchmarks" / "baselines" / "scale.json"

#: Golden-row fields that must match the committed baseline exactly.
SCALE_GOLDEN_FIELDS = (
    "n_ranks",
    "n_vertices",
    "n_edges",
    "root",
    "n_levels",
    "reached",
    "traversed",
    "levels_checksum",
    "total_time_ns",
    "teps",
    "comm_bytes",
    "max_link_load",
)


def load(path: Path) -> dict:
    """Parse *path* as JSON, exiting with a readable error on failure."""
    try:
        with open(path) as fh:
            return json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"check_bench: cannot read {path}: {exc}", file=sys.stderr)
        raise SystemExit(1)


def check(artifact: dict, baseline: dict) -> list[str]:
    """Return the list of gate failures (empty when the artifact passes)."""
    failures: list[str] = []
    backends = artifact.get("backends")
    if not isinstance(backends, dict) or not backends:
        return [f"artifact has no per-backend numbers: keys={sorted(artifact)}"]

    base_backends = baseline.get("backends", {})
    missing = sorted(set(base_backends) - set(backends))
    if missing:
        failures.append(f"artifact is missing baseline backend(s): {missing}")

    events = {
        name: b.get("events") for name, b in backends.items() if name in base_backends
    }
    if len(set(events.values())) > 1:
        failures.append(
            "backends disagree on simulated event counts (bit-identity "
            f"violation): {events}"
        )

    max_reg = float(baseline.get("max_regression_pct", 20.0))
    for name, ref in base_backends.items():
        b = backends.get(name)
        if b is None:
            continue
        ref_eps = float(ref["events_per_s"])
        floor = ref_eps * (1.0 - max_reg / 100.0)
        eps = float(b.get("events_per_s", 0.0))
        if eps < floor:
            failures.append(
                f"{name}: {eps:,.0f} events/s regresses >{max_reg:.0f}% below "
                f"the committed reference {ref_eps:,.0f} (floor {floor:,.0f})"
            )

    min_speedup = float(baseline.get("min_speedup_vs_heap", 1.0))
    wheel = backends.get("wheel")
    if wheel is not None:
        speedup = float(wheel.get("speedup_vs_heap", 0.0))
        if speedup < min_speedup:
            failures.append(
                f"wheel: {speedup:.3f}x vs heap falls below the required "
                f"{min_speedup:.2f}x — the calendar queue must not lose to "
                "the reference backend"
            )

    base_cal = baseline.get("calibration_hash")
    cal = artifact.get("calibration_hash")
    if base_cal and cal != base_cal:
        failures.append(
            f"calibration hash {cal!r} != baseline {base_cal!r}: the cost "
            "model changed — refresh benchmarks/baselines/kernel.json in "
            "the same commit"
        )
    return failures


def check_scale(artifact: dict, baseline: dict) -> list[str]:
    """Gate failures for a ``BENCH_scale.json`` artifact (empty = pass)."""
    failures: list[str] = []

    parity = artifact.get("parity")
    if not isinstance(parity, dict):
        return [f"artifact has no parity report: keys={sorted(artifact)}"]
    if not parity.get("lossless_ok"):
        failures.append(
            "parity: lossless aggregates (bytes/link bytes/packet counts/"
            "routes) are NOT bit-exact against the per-packet reference"
        )
    if not parity.get("within_tolerance"):
        failures.append(
            f"parity: completion times deviate beyond the documented "
            f"tolerance (max rel {parity.get('completion_max_rel')!r}, "
            f"tol {parity.get('time_rtol')!r})"
        )
    max_dev = float(baseline.get("max_parity_completion_rel", 2e-3))
    dev = float(parity.get("completion_max_rel", float("inf")))
    if dev > max_dev:
        failures.append(
            f"parity: completion max rel dev {dev:.3e} exceeds the "
            f"committed ceiling {max_dev:.3e}"
        )

    rows = {
        (tuple(r.get("dims", ())), r.get("scale")): r
        for r in artifact.get("rows", [])
    }
    for ref in baseline.get("golden_rows", []):
        key = (tuple(ref["dims"]), ref["scale"])
        row = rows.get(key)
        if row is None:
            failures.append(f"golden row {key} missing from the artifact")
            continue
        for fld in SCALE_GOLDEN_FIELDS:
            if fld not in ref:
                continue
            if row.get(fld) != ref[fld]:
                failures.append(
                    f"golden row {key}: {fld} = {row.get(fld)!r} != "
                    f"committed {ref[fld]!r} (flow-mode rows are "
                    "deterministic — an intentional model change must "
                    "refresh benchmarks/baselines/scale.json)"
                )
    present_dims = {tuple(r.get("dims", ())) for r in artifact.get("rows", [])}
    for dims in baseline.get("require_dims", []):
        if tuple(dims) not in present_dims:
            failures.append(f"required torus {tuple(dims)} missing from the sweep")

    base_cal = baseline.get("calibration_hash")
    cal = artifact.get("calibration_hash")
    if base_cal and cal != base_cal:
        failures.append(
            f"calibration hash {cal!r} != baseline {base_cal!r}: the cost "
            "model changed — refresh benchmarks/baselines/scale.json in "
            "the same commit"
        )
    return failures


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="scripts/check_bench.py",
        description="gate a benchmark artifact against its committed baseline",
    )
    parser.add_argument("artifact", help="path to BENCH_kernel.json / BENCH_scale.json")
    parser.add_argument(
        "--scale", action="store_true",
        help="gate a BENCH_scale.json scaling artifact instead of the "
        "kernel benchmark",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=f"committed baseline (default: {DEFAULT_BASELINE} or, with "
        f"--scale, {DEFAULT_SCALE_BASELINE})",
    )
    args = parser.parse_args(argv)

    baseline_path = args.baseline or (
        DEFAULT_SCALE_BASELINE if args.scale else DEFAULT_BASELINE
    )
    artifact = load(Path(args.artifact))
    baseline = load(Path(baseline_path))

    if args.scale:
        failures = check_scale(artifact, baseline)
        parity = artifact.get("parity", {})
        for row in artifact.get("rows", []):
            dims = row.get("dims", [])
            print(
                f"  {'x'.join(str(d) for d in dims):8s} scale {row.get('scale', '?'):>2} "
                f" TEPS {float(row.get('teps', 0.0)):.4e}  "
                f"levels {row.get('n_levels', '?')}  reached {row.get('reached', '?')}"
            )
        if isinstance(parity, dict):
            print(
                f"  parity: lossless={parity.get('lossless_ok')} "
                f"completion dev {parity.get('completion_max_rel')}"
            )
    else:
        failures = check(artifact, baseline)
        backends = artifact.get("backends", {})
        for name in sorted(backends):
            b = backends[name]
            print(
                f"  {name:6s} {float(b.get('events_per_s', 0.0)):>12,.0f} events/s  "
                f"{float(b.get('speedup_vs_heap', 0.0)):.3f}x vs heap  "
                f"({b.get('events', '?')} events)"
            )
    for failure in failures:
        print(f"FAIL: {failure}")
    verdict = "FAILED" if failures else "ok"
    print(
        f"check_bench: {len(failures)} failure(s) "
        f"[{artifact.get('run_id', '?')}, calibration "
        f"{artifact.get('calibration_hash', '?')}] -> {verdict}"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
