#!/usr/bin/env python
"""Gate on documentation drift: every ``bash`` block must still be runnable.

Extracts fenced ```bash blocks from the repository's documentation
(README.md, EXPERIMENTS.md, DESIGN.md, docs/OBSERVABILITY.md), then

1. **statically validates** every command — ``python -m repro.X`` modules
   must import, experiment ids must be registered in the bench harness,
   subcommands must exist, referenced scripts/example files and
   pytest/lint target paths must exist on disk;
2. **smoke-runs** a small allowlist of cheap commands end to end
   (``python -m repro.bench --list``, ``python -m repro.analysis lint
   --explain``, ...) so the commands a reader is most likely to paste
   first are proven to work, not just to parse.

Exit code 0 when every block passes, 1 otherwise (the CI lint job gates
on this).  Run from the repository root:

    PYTHONPATH=src python scripts/check_docs.py
"""

from __future__ import annotations

import shlex
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"

#: Documentation files whose ```bash blocks are checked (missing files are
#: themselves a failure — the list is part of the documentation contract).
DOC_FILES = [
    "README.md",
    "EXPERIMENTS.md",
    "DESIGN.md",
    "docs/OBSERVABILITY.md",
]

#: Commands cheap enough to execute for real (matched after normalisation).
SMOKE_RUN = {
    "python -m repro.bench --list",
    "python -m repro.bench recovery --quick --no-cache",
    "python -m repro.bench scale --quick --no-cache",
    "python -m repro.analysis lint --explain",
    "python -m repro.analysis docstrings src/repro",
    "PYTHONPATH=src python scripts/serve_smoke.py",
}

#: Flags that consume the following token, per CLI prefix.  Keeps the id /
#: path scan from misreading flag values as experiment ids.
VALUE_FLAGS = {
    "python -m repro.bench": {
        "-j",
        "--jobs",
        "--json",
        "--trace",
        "--cache-dir",
        "--backend",
        "--bench-json",
        "--scale-json",
    },
    "python -m repro.obs": {"-o", "--out", "-j", "--jobs"},
    "pytest": {"-m", "-k", "-n", "--cov", "--cov-fail-under"},
}

#: Known subcommands per dispatching CLI.
SUBCOMMANDS = {
    "repro.analysis": {"lint", "sanitize", "docstrings"},
    "repro.obs": {"summary", "diff", "export"},
}


class Problem:
    """One failed check, tied back to its file/line and command."""

    def __init__(self, doc: str, line: int, command: str, message: str):
        self.doc = doc
        self.line = line
        self.command = command
        self.message = message

    def render(self) -> str:
        return f"{self.doc}:{self.line}: `{self.command}`: {self.message}"


def extract_bash_blocks(text: str):
    """Yield ``(lineno, command)`` for each command line in ```bash fences.

    Strips ``$ `` prompts, drops blank/comment lines, joins backslash
    continuations onto one logical line.
    """
    in_bash = False
    pending = ""
    pending_line = 0
    for lineno, raw in enumerate(text.splitlines(), start=1):
        stripped = raw.strip()
        if stripped.startswith("```"):
            in_bash = stripped[3:].strip() == "bash" and not in_bash
            continue
        if not in_bash:
            continue
        if stripped.startswith("$ "):
            stripped = stripped[2:]
        if pending:
            stripped = pending + " " + stripped
            lineno = pending_line
            pending = ""
        if not stripped or stripped.startswith("#"):
            continue
        if stripped.endswith("\\"):
            pending = stripped[:-1].strip()
            pending_line = lineno
            continue
        yield lineno, stripped


def split_command(command: str):
    """Tokenise; returns (env_assignments, argv) or (None, None) if odd."""
    try:
        tokens = shlex.split(command, comments=True)
    except ValueError:
        return None, None
    env = []
    while tokens and "=" in tokens[0] and not tokens[0].startswith(("-", "/")):
        env.append(tokens.pop(0))
    return env, tokens


def module_exists(module: str) -> bool:
    """True when ``python -m module`` would find something to run."""
    import importlib.util

    try:
        spec = importlib.util.find_spec(module)
    except (ImportError, ValueError):
        return False
    if spec is None:
        return False
    if spec.submodule_search_locations is not None:
        # A package: -m needs a __main__ inside it.
        return importlib.util.find_spec(module + ".__main__") is not None
    return True


def positional_args(argv, value_flags):
    """Non-flag tokens of *argv*, skipping the values of value-taking flags."""
    out = []
    skip = False
    for tok in argv:
        if skip:
            skip = False
            continue
        if tok.startswith("-"):
            flag = tok.split("=", 1)[0]
            if flag in value_flags and "=" not in tok:
                skip = True
            continue
        out.append(tok)
    return out


def check_command(command: str):
    """Statically validate one command; returns a list of problem strings."""
    env, argv = split_command(command)
    if argv is None:
        return ["cannot tokenise (unbalanced quotes?)"]
    if not argv:
        return []  # pure env assignment / comment-only line
    prog = argv[0]

    if prog == "pip":
        return []  # environment-dependent by design; never validated or run

    if prog == "curl":
        # The serve quickstart: talks to a live service, so there is
        # nothing to validate statically and nothing safe to smoke-run.
        return []

    if prog == "pytest":
        problems = []
        for arg in positional_args(argv[1:], VALUE_FLAGS["pytest"]):
            target = arg.split("::", 1)[0]
            if not (REPO_ROOT / target).exists():
                problems.append(f"pytest target {target!r} does not exist")
        return problems

    if prog != "python":
        return [f"unknown program {prog!r} (extend scripts/check_docs.py)"]

    if len(argv) >= 3 and argv[1] == "-m":
        module = argv[2]
        if not module_exists(module):
            return [f"module {module!r} not importable as `python -m`"]
        rest = argv[3:]
        if module == "repro.bench":
            return _check_bench_args(rest)
        if module in SUBCOMMANDS:
            if rest and not rest[0].startswith("-"):
                if rest[0] not in SUBCOMMANDS[module]:
                    return [
                        f"{module} has no subcommand {rest[0]!r} "
                        f"(has: {', '.join(sorted(SUBCOMMANDS[module]))})"
                    ]
                if module == "repro.obs" and rest[0] == "export":
                    return _check_experiment_ids(
                        positional_args(rest[1:], VALUE_FLAGS["python -m repro.obs"])
                    )
        return []

    # `python path/to/script.py ...`
    script = argv[1] if len(argv) > 1 else ""
    if script.endswith(".py"):
        if not (REPO_ROOT / script).exists():
            return [f"script {script!r} does not exist"]
        return []
    return []


def _check_experiment_ids(ids):
    from repro.bench import harness

    known = set(harness.all_ids())
    return [
        f"unknown experiment id {exp_id!r}" for exp_id in ids if exp_id not in known
    ]


def _check_bench_args(rest):
    return _check_experiment_ids(
        positional_args(rest, VALUE_FLAGS["python -m repro.bench"])
    )


def smoke_run(command: str):
    """Execute one allowlisted command; returns a problem string or None."""
    env, argv = split_command(command)
    proc_env = dict(**__import__("os").environ)
    proc_env["PYTHONPATH"] = str(SRC)
    for assignment in env or []:
        key, _, value = assignment.partition("=")
        proc_env[key] = value
    try:
        proc = subprocess.run(
            argv,
            cwd=REPO_ROOT,
            env=proc_env,
            capture_output=True,
            text=True,
            timeout=180,
        )
    except subprocess.TimeoutExpired:
        return "smoke run timed out after 180 s"
    if proc.returncode != 0:
        tail = (proc.stderr or proc.stdout).strip().splitlines()[-5:]
        return "smoke run exited {}: {}".format(proc.returncode, " | ".join(tail))
    return None


def main() -> int:
    sys.path.insert(0, str(SRC))
    problems: list[Problem] = []
    n_commands = 0
    n_ran = 0
    for doc in DOC_FILES:
        path = REPO_ROOT / doc
        if not path.exists():
            problems.append(Problem(doc, 0, "-", "documentation file is missing"))
            continue
        for lineno, command in extract_bash_blocks(path.read_text(encoding="utf-8")):
            n_commands += 1
            for msg in check_command(command):
                problems.append(Problem(doc, lineno, command, msg))
            env, argv = split_command(command)
            normalised = " ".join((env or []) + (argv or []))
            if normalised in SMOKE_RUN:
                n_ran += 1
                msg = smoke_run(command)
                if msg:
                    problems.append(Problem(doc, lineno, command, msg))

    for p in problems:
        print(p.render())
    print(
        f"check_docs: {n_commands} documented command(s) across "
        f"{len(DOC_FILES)} file(s), {n_ran} smoke-run, "
        f"{len(problems)} problem(s)"
    )
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
