#!/usr/bin/env python
"""Calibration probe: print model vs paper for the headline numbers."""

import time

from repro.apenet import BufferKind, GpuTxVersion
from repro.bench.microbench import (
    loopback_read_bandwidth,
    pingpong_latency,
    sender_gap,
    staged_pingpong_latency,
    staged_unidirectional_bandwidth,
    unidirectional_bandwidth,
)
from repro.units import KiB, kib, mib

H, G = BufferKind.HOST, BufferKind.GPU


def show(label, value, target, unit=""):
    err = (value - target) / target * 100 if target else 0
    print(f"{label:<44s} {value:9.2f} {unit:<5s} target {target:8.2f}  ({err:+5.1f}%)")


t0 = time.time()

# --- Table I: memory read bandwidths (flushed) ---
r = loopback_read_bandwidth(H, mib(1), n_messages=8)
show("host mem read (flush)", r.MBps, 2400, "MB/s")
r = loopback_read_bandwidth(G, mib(1), n_messages=8)
show("GPU mem read v3 (flush)", r.MBps, 1500, "MB/s")
r = loopback_read_bandwidth(G, mib(1), n_messages=8, gpu_tx_version=GpuTxVersion.V1)
show("GPU mem read v1 (flush)", r.MBps, 600, "MB/s")
r = loopback_read_bandwidth(
    G, mib(1), n_messages=8, gpu_tx_version=GpuTxVersion.V2, prefetch_window=32 * KiB
)
show("GPU mem read v2/32K (flush)", r.MBps, 1450, "MB/s")

# --- Table I: loop-back ---
r = unidirectional_bandwidth(H, H, mib(1), n_messages=8, loopback=True)
show("H-H loopback", r.MBps, 1200, "MB/s")
r = unidirectional_bandwidth(G, G, mib(1), n_messages=8, loopback=True)
show("G-G loopback", r.MBps, 1100, "MB/s")

# --- Fig 6: two-node plateaus ---
r = unidirectional_bandwidth(H, H, mib(1), n_messages=8)
show("two-node H-H @1M", r.MBps, 1200, "MB/s")
r = unidirectional_bandwidth(G, G, mib(1), n_messages=8)
show("two-node G-G @1M", r.MBps, 1050, "MB/s")
r = unidirectional_bandwidth(H, H, kib(8), n_messages=48)
show("two-node H-H @8K", r.MBps, 900, "MB/s")
r = unidirectional_bandwidth(G, G, kib(8), n_messages=48)
show("two-node G-G @8K", r.MBps, 450, "MB/s")

# --- Fig 8/9: latencies ---
r = pingpong_latency(H, H, 32)
show("H-H latency @32B", r.usec, 6.3, "us")
r = pingpong_latency(G, G, 32)
show("G-G latency @32B (P2P)", r.usec, 8.2, "us")
r = staged_pingpong_latency(32)
show("G-G latency @32B (staging)", r.usec, 16.8, "us")

# --- Fig 7: staging bandwidth + crossover ---
r = staged_unidirectional_bandwidth(mib(1), n_messages=6)
show("G-G staging bw @1M", r.MBps, 1150, "MB/s")
r = staged_unidirectional_bandwidth(kib(16), n_messages=24)
show("G-G staging bw @16K", r.MBps, 350, "MB/s")

# --- Fig 10: host overheads @ small ---
g = sender_gap(H, H, 128)
show("sender gap H-H @128B", g / 1000, 5.0, "us")
g = sender_gap(G, G, 128)
show("sender gap G-G P2P @128B", g / 1000, 8.0, "us")
g = sender_gap(G, G, 128, staged=True)
show("sender gap G-G staged @128B", g / 1000, 17.0, "us")

print(f"\nwall time: {time.time() - t0:.1f}s")
