#!/usr/bin/env python
"""Run every registered experiment and write a measured-results report.

Usage:
    python scripts/run_all_experiments.py [--full] [-o report.md]

Quick mode takes a few minutes; ``--full`` runs the paper's exact
parameters (the scale-20 BFS table dominates, ~10 minutes).  The output
is the raw data behind EXPERIMENTS.md.
"""

import argparse
import sys
import time

from repro.bench import all_ids, run
from repro.bench.tables import fmt_ratio


def main(argv=None) -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("--full", action="store_true")
    ap.add_argument("-o", "--output", default="experiments_measured.md")
    args = ap.parse_args(argv)

    lines = [
        "# Measured experiment results",
        "",
        f"Mode: {'full (paper parameters)' if args.full else 'quick'}",
        "",
    ]
    for exp_id in all_ids():
        t0 = time.time()
        result = run(exp_id, quick=not args.full)
        dt = time.time() - t0
        print(f"[{exp_id}] done in {dt:.1f}s")
        lines += [f"## {exp_id} — {result.title}", "", "```", result.rendered, "```", ""]
        if result.comparisons:
            lines.append("| quantity | measured | paper | dev |")
            lines.append("|---|---|---|---|")
            for name, measured, paper, unit in result.comparisons:
                paper_s = f"{paper:.4g} {unit}" if paper else "n.a."
                lines.append(
                    f"| {name} | {measured:.4g} {unit} | {paper_s} | "
                    f"{fmt_ratio(measured, paper)} |"
                )
            lines.append("")
    with open(args.output, "w") as fh:
        fh.write("\n".join(lines))
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
