#!/usr/bin/env python
"""Run every registered experiment and write a measured-results report.

Usage:
    python scripts/run_all_experiments.py [--full] [--jobs N] [--no-cache]
                                          [-o report.md] [--json PATH]

Quick mode takes a few minutes; ``--full`` runs the paper's exact
parameters (the scale-20 BFS table dominates, ~10 minutes).  Experiments
fan out over ``--jobs`` worker processes and unchanged experiments are
served from the on-disk result cache (disable with ``--no-cache``).  The
markdown output is the raw data behind EXPERIMENTS.md; the JSON artifact
(default ``results/run-<id>.json``) carries per-experiment wall-clock and
event-count telemetry for CI.
"""

import argparse
import sys

from repro.bench.runner import default_run_id, run_experiments, write_json
from repro.bench.harness import all_ids
from repro.bench.tables import fmt_ratio


def main(argv=None) -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("--full", action="store_true")
    ap.add_argument("-j", "--jobs", type=int, default=1, metavar="N")
    ap.add_argument("--no-cache", action="store_true")
    ap.add_argument("-o", "--output", default="experiments_measured.md")
    ap.add_argument("--json", default=None, metavar="PATH",
                    help="JSON artifact path (default: results/run-<id>.json)")
    args = ap.parse_args(argv)
    if args.jobs < 1:
        ap.error(f"--jobs must be >= 1, got {args.jobs}")
    quick = not args.full

    def progress(record):
        tag = "cached" if record.cached else f"{record.wall_s:.1f}s"
        suffix = "  FAILED" if record.status == "error" else ""
        print(f"[{record.experiment_id}] {tag}, {record.events} events{suffix}")

    records = run_experiments(
        all_ids(),
        quick=quick,
        jobs=args.jobs,
        use_cache=not args.no_cache,
        progress=progress,
    )

    lines = [
        "# Measured experiment results",
        "",
        f"Mode: {'full (paper parameters)' if args.full else 'quick'}",
        "",
    ]
    failed = []
    for record in records:
        if record.status == "error":
            failed.append(record)
            lines += [f"## {record.experiment_id} — FAILED", "", "```",
                      record.error or "", "```", ""]
            continue
        lines += [f"## {record.experiment_id} — {record.title}", "", "```",
                  record.rendered, "```", ""]
        if record.comparisons:
            lines.append("| quantity | measured | paper | dev |")
            lines.append("|---|---|---|---|")
            for name, measured, paper, unit in record.comparisons:
                paper_s = f"{paper:.4g} {unit}" if paper else "n.a."
                lines.append(
                    f"| {name} | {measured:.4g} {unit} | {paper_s} | "
                    f"{fmt_ratio(measured, paper)} |"
                )
            lines.append("")
    with open(args.output, "w") as fh:
        fh.write("\n".join(lines))
    print(f"wrote {args.output}")

    json_path = args.json or f"results/run-{default_run_id()}.json"
    write_json(records, json_path, quick=quick, jobs=args.jobs)
    print(f"wrote {json_path}")

    if failed:
        print(f"{len(failed)} experiment(s) FAILED: "
              + ", ".join(r.experiment_id for r in failed))
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
