"""Sharded flow-mode BFS: traversal correctness, determinism, detours.

The traversal layer of :func:`repro.scale.bfs.run_scale_bfs` must be
indistinguishable from the single-process reference
(:func:`repro.apps.bfs.serial.serial_bfs`) on the same R-MAT graph, for
any shard count; the timing layer must respond to faults the way the
recovery router does (slower, never faster; partition -> ValueError).
``_DetourTable`` — the vectorised all-pairs next-hop table — is proven
hop-identical to :func:`repro.scale.flow.hop_route` (and therefore to
``TorusShape.route_avoiding``'s per-hop re-query) by a hypothesis sweep
over random shapes and fault seeds.
"""

from __future__ import annotations

import dataclasses
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.bfs.csr import CSRGraph
from repro.apps.bfs.rmat import rmat_edges
from repro.apps.bfs.serial import UNVISITED, serial_bfs, traversed_edges
from repro.net.topology import TorusShape
from repro.scale.bfs import _DetourTable, run_scale_bfs
from repro.scale.flow import hop_route, normalize_dead_links

pytestmark = pytest.mark.scale


@pytest.fixture(scope="module")
def small_run():
    return run_scale_bfs((3, 3, 3), 10, seed=1, shards=1)


def test_traversal_matches_serial_reference(small_run):
    res = small_run
    graph = CSRGraph.from_edges(1 << 10, rmat_edges(10, 16, seed=1))
    levels, _parents = serial_bfs(graph, res.root)
    visited = levels != UNVISITED
    assert res.n_vertices == 1 << 10
    assert res.n_edges == graph.n_directed_edges
    assert res.reached == int(visited.sum())
    assert res.levels_checksum == int(levels[visited].sum())
    assert res.n_levels == int(levels.max()) + 1
    assert res.traversed == traversed_edges(graph, levels)
    assert res.teps > 0 and res.total_time_ns > 0
    assert res.frontier_peak > 0 and res.comm_bytes > 0


@pytest.mark.parametrize("shards", [2, 4, 27, 64])
def test_any_shard_count_is_bit_identical(small_run, shards):
    """Contiguous split + order-preserving merge: shards never show."""
    res = run_scale_bfs((3, 3, 3), 10, seed=1, shards=shards)
    a = dataclasses.asdict(small_run)
    b = dataclasses.asdict(res)
    assert b.pop("shards") == min(shards, 27)  # capped at the rank count
    a.pop("shards")
    assert a == b


def test_dead_link_changes_timing_but_never_the_traversal(small_run):
    res = run_scale_bfs((3, 3, 3), 10, seed=1, shards=1, dead_links=((0, 0, 1),))
    assert res.dead_links == 1
    # Traversal identical: the graph doesn't care about the interconnect.
    for fld in ("reached", "traversed", "levels_checksum", "n_levels", "root"):
        assert getattr(res, fld) == getattr(small_run, fld)
    # Wire bytes are per-pair (payload + headers + count messages), so the
    # detour moves them to other links without changing the total.
    assert res.comm_bytes == small_run.comm_bytes
    # The fault is visible in the timing: the affected pairs' hop counts
    # (latency term) and link loads (serialisation term) both shift.
    # Note the direction is NOT guaranteed — rerouting can relieve a
    # per-level hotspot link, and the serialisation term is a max — but
    # the shift must stay far below the level-time scale.
    assert res.total_time_ns != small_run.total_time_ns
    assert (
        abs(res.total_time_ns - small_run.total_time_ns)
        / small_run.total_time_ns
        < 0.05
    )


def test_partitioned_torus_raises():
    # Both X channels out of rank 0 on a 2-node line: rank 0 cannot send.
    with pytest.raises(ValueError, match="partitioned"):
        run_scale_bfs((2, 1, 1), 8, seed=1, dead_links=((0, 0, 1), (0, 0, -1)))


def test_root_defaults_to_first_connected_vertex():
    res = run_scale_bfs((2, 2, 2), 8, seed=3)
    graph = CSRGraph.from_edges(1 << 8, rmat_edges(8, 16, seed=3))
    degrees = np.diff(graph.row_ptr)
    assert res.root == int(np.nonzero(degrees > 0)[0][0])


# ---------------------------------------------------------------------------
# _DetourTable == hop_route (== route_avoiding, hop for hop)
# ---------------------------------------------------------------------------

SHAPES = [(2, 2, 1), (3, 2, 1), (2, 2, 2), (3, 3, 3), (4, 2, 2), (5, 4, 3)]


def _all_links(dims):
    return [
        (rank, dim, direction)
        for rank in range(dims[0] * dims[1] * dims[2])
        for dim, extent in enumerate(dims)
        if extent > 1
        for direction in (1, -1)
    ]


@settings(max_examples=20, deadline=None)
@given(
    dims=st.sampled_from(SHAPES),
    fault_seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_detour_table_matches_hop_route(dims, fault_seed):
    shape = TorusShape(*dims)
    rng = random.Random(fault_seed)
    n_dead = rng.randrange(1, 5)
    dead = normalize_dead_links(shape, rng.sample(_all_links(dims), n_dead))
    table = _DetourTable(shape, dead)
    pairs = [
        (rng.randrange(shape.size), rng.randrange(shape.size)) for _ in range(40)
    ]
    for src, dst in pairs:
        expected = hop_route(shape, src, dst, dead)
        got = table.path(src, dst)
        assert got == expected, (dims, sorted(dead), src, dst)


def test_detour_table_exhaustive_on_one_damaged_torus():
    """All-pairs equality on one fixed shape, so no pair is ever sampled out."""
    shape = TorusShape(3, 3, 3)
    dead = normalize_dead_links(
        shape, [(0, 0, 1), (0, 1, 1), (13, 2, -1), (14, 0, -1)]
    )
    table = _DetourTable(shape, dead)
    for src in range(shape.size):
        for dst in range(shape.size):
            assert table.path(src, dst) == hop_route(shape, src, dst, dead)
