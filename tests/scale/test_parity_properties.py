"""Property-based exact-vs-batched parity over random scenarios.

Hypothesis draws random small tori, random transfer batches (sizes,
start times, buffer kinds) and random fault seeds (dead-link subsets,
including severing ones), then asserts the flow engine's contract
against the per-packet golden driver:

* lossless aggregates (delivered bytes, per-link wire bytes and packet
  counts, delivered/undeliverable sets) are **bit-exact** — on every
  topology, payload mix and fault set, with no tolerance;
* link busy time agrees to 1e-6 (analytic in both modes);
* completion times and makespan stay inside the widest documented
  envelope (3e-1) — random batches may land in any traffic class,
  including the degenerate duplicate-tiny-flow case pinned below, which
  sits above the 2.5e-1 general-contention ceiling of
  test_parity_exact.py.

Tori are kept small (<= 18 nodes) so each example's exact-DES reference
stays in the millisecond range; the traffic *classes* these examples
fall into are the same ones the 16^3 sweeps use, because the flow model
is per-(src,dst-kind) calibrated and topology-agnostic.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.apenet.buflist import BufferKind
from repro.scale import BulkTransfer, FlowNetwork, compare_aggregates, run_exact
from repro.units import us

pytestmark = pytest.mark.scale

# The widest class the random sweep can land in.  Wider than the 2.5e-1
# general-contention ceiling: hypothesis found that *duplicate* 1-byte
# flows squeezed through a dead-link detour deviate up to ~2.8e-1 (two
# identical head-latency-dominated packets serialise differently in the
# fabric than in the model's injection-order service); that scenario is
# pinned as an explicit @example so the bound stays honest.
ENVELOPE_RTOL = 3e-1
BUSY_RTOL = 1e-6

DIMS = [(2, 1, 1), (3, 1, 1), (2, 2, 1), (3, 2, 1), (2, 2, 2), (3, 3, 1), (3, 2, 2)]


def _size(dims):
    return dims[0] * dims[1] * dims[2]


def _all_links(dims):
    """Every directed link as (src_rank, dim, direction)."""
    nx, ny, nz = dims
    links = []
    for rank in range(_size(dims)):
        for dim, extent in enumerate(dims):
            if extent == 1:
                continue
            for direction in (1, -1):
                links.append((rank, dim, direction))
    return links


@st.composite
def scenarios(draw):
    dims = draw(st.sampled_from(DIMS))
    n_ranks = _size(dims)
    n_transfers = draw(st.integers(min_value=1, max_value=4))
    transfers = []
    for _ in range(n_transfers):
        src = draw(st.integers(min_value=0, max_value=n_ranks - 1))
        dst = draw(st.integers(min_value=0, max_value=n_ranks - 1))
        if dst == src:
            dst = (dst + 1) % n_ranks
        nbytes = draw(st.integers(min_value=1, max_value=20_000))
        start = us(float(draw(st.integers(min_value=0, max_value=40)) * 5))
        kinds = draw(
            st.sampled_from(
                [
                    (BufferKind.HOST, BufferKind.HOST),
                    (BufferKind.GPU, BufferKind.GPU),
                    (BufferKind.HOST, BufferKind.GPU),
                    (BufferKind.GPU, BufferKind.HOST),
                ]
            )
        )
        transfers.append(BulkTransfer(src, dst, nbytes, start, *kinds))
    # Fault seed -> dead-link subset (0-2 links, any channels, possibly
    # severing a destination entirely: the drivers must agree on that too).
    fault_seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = random.Random(fault_seed)
    n_dead = rng.randrange(3)
    dead = tuple(rng.sample(_all_links(dims), n_dead)) if n_dead else ()
    return dims, tuple(transfers), dead


#: Worst deviation the random sweep has found so far (~2.8e-1): two
#: identical 1-byte host-to-host flows forced onto the same dead-link
#: detour of a 2-node ring.  Pinned so every run re-checks it.
_DUPLICATE_TINY_DETOUR = (
    (2, 1, 1),
    (
        BulkTransfer(0, 1, 1, 0.0, BufferKind.HOST, BufferKind.HOST),
        BulkTransfer(0, 1, 1, 0.0, BufferKind.HOST, BufferKind.HOST),
    ),
    ((1, 0, -1),),
)


@settings(max_examples=25, deadline=None)
@given(scenarios())
@example(_DUPLICATE_TINY_DETOUR)
def test_random_scenarios_hold_the_parity_contract(scenario):
    dims, transfers, dead = scenario
    exact = run_exact(dims, transfers, dead_links=dead)
    flow = FlowNetwork(dims, dead_links=dead).run_transfers(transfers)
    report = compare_aggregates(exact, flow)

    # Lossless: exact equality, regardless of topology/payload/faults.
    assert report.bytes_exact, (dims, dead, "delivered bytes differ")
    assert report.link_bytes_exact, (dims, dead, "link wire bytes differ")
    assert report.link_packets_exact, (dims, dead, "link packet counts differ")
    assert report.delivered_set_exact, (dims, dead, "delivered sets differ")

    # Toleranced: inside the widest documented class.
    assert report.busy_max_rel <= BUSY_RTOL
    assert report.completion_max_rel <= ENVELOPE_RTOL
    assert abs(report.makespan_rel) <= ENVELOPE_RTOL


@settings(max_examples=25, deadline=None)
@given(scenarios())
def test_flow_engine_is_deterministic(scenario):
    """Same batch, fresh engine -> bit-identical aggregates (no DES, no RNG)."""
    dims, transfers, dead = scenario
    a = FlowNetwork(dims, dead_links=dead).run_transfers(transfers)
    b = FlowNetwork(dims, dead_links=dead).run_transfers(transfers)
    assert a.completions == b.completions
    assert a.link_bytes == b.link_bytes
    assert a.link_packets == b.link_packets
    assert a.link_busy == b.link_busy
    assert a.makespan == b.makespan
