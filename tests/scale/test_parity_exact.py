"""Exact-vs-batched parity: scenario classes with documented tolerances.

Every scenario runs the same transfer batch through the per-packet golden
driver (:func:`repro.scale.exact.run_exact`) and the batched flow engine
(:class:`repro.scale.flow.FlowNetwork`), then diffs the aggregates:

* the **lossless** aggregates — delivered bytes, per-link wire bytes,
  per-link packet counts, the delivered set — must be *bit-exact* in
  every scenario (equality, not tolerance);
* **completion times** carry a per-scenario tolerance that widens with
  traffic entanglement.  The ceilings asserted here are the documented
  parity envelope (EXPERIMENTS.md "Scaling beyond the paper"):

  =========================  ==========  =====================
  traffic class              completion  makespan
  =========================  ==========  =====================
  non-overlapping             2e-3        2e-3
  dead-link detours           2e-3        2e-3
  same-path burst (at knot)   8e-2        8e-2
  same-path burst (off-knot)  2e-1        2e-1
  same-source overlap         3e-2        3e-2
  general cross contention    2.5e-1      5e-2
  =========================  ==========  =====================

  (Back-to-back occupancy is probed at 1/9/33-fragment knots and
  interpolated between them, so bursts of knot-aligned sizes track the
  exact driver much more tightly than off-knot sizes.)

Link busy time is analytic in both modes, so it is held to 1e-6
everywhere.  Tightening a ceiling requires a model change; loosening one
requires an EXPERIMENTS.md update in the same commit.
"""

from __future__ import annotations

import pytest

from repro.apenet.buflist import BufferKind
from repro.scale import BulkTransfer, FlowNetwork, compare_aggregates, run_exact
from repro.units import us

pytestmark = pytest.mark.scale

BUSY_RTOL = 1e-6


def parity(dims, transfers, dead_links=()):
    """Run both modes over the same batch; return (report, exact, flow)."""
    exact = run_exact(dims, transfers, dead_links=dead_links)
    net = FlowNetwork(dims, dead_links=dead_links)
    flow = net.run_transfers(transfers)
    return compare_aggregates(exact, flow), exact, flow


def assert_lossless(report):
    """The equality half of the contract — no tolerance involved."""
    assert report.bytes_exact, "delivered byte totals differ"
    assert report.link_bytes_exact, "per-link wire bytes differ"
    assert report.link_packets_exact, "per-link packet counts differ"
    assert report.delivered_set_exact, "delivered/undeliverable sets differ"


def test_non_overlapping_staggered_mixed_sizes():
    """Tightest class: flows spaced so no two lifetimes overlap."""
    transfers = [
        BulkTransfer(0, 13, 8192, 0.0),
        BulkTransfer(1, 26, 5000, us(150.0)),  # partial last fragment
        BulkTransfer(14, 3, 65536, us(300.0)),  # deep 16-fragment pipeline
        BulkTransfer(5, 22, 300, us(550.0)),  # sub-fragment payload
        BulkTransfer(9, 4, 12000, us(700.0)),
    ]
    report, exact, flow = parity((3, 3, 3), transfers)
    assert_lossless(report)
    assert report.within(2e-3, busy_rtol=BUSY_RTOL)
    # Spot check the strongest form: identical link byte maps, key by key.
    assert {k: v for k, v in exact.link_bytes.items() if v} == {
        k: v for k, v in flow.link_bytes.items() if v
    }


def test_gpu_kinds_same_source_overlap():
    """GPU/GPU transfers from one source with overlapping lifetimes."""
    transfers = [
        BulkTransfer(0, 13, 32768, 0.0, BufferKind.GPU, BufferKind.GPU),
        BulkTransfer(0, 22, 32768, us(5.0), BufferKind.GPU, BufferKind.GPU),
        BulkTransfer(0, 7, 8192, us(10.0), BufferKind.GPU, BufferKind.GPU),
    ]
    report, _exact, _flow = parity((3, 3, 3), transfers)
    assert_lossless(report)
    assert report.within(3e-2, busy_rtol=BUSY_RTOL)


def test_dead_link_detours_stay_lossless_and_tight():
    """Recovery-style reroutes: routes must match hop for hop."""
    dead = ((0, 0, 1),)  # +X out of the origin
    transfers = [
        BulkTransfer(0, 1, 8192, 0.0),  # direct hop is dead: must detour
        BulkTransfer(0, 13, 16384, us(200.0)),  # dimension-ordered X first
        BulkTransfer(4, 0, 4096, us(400.0)),  # reverse direction unaffected
    ]
    report, exact, flow = parity((3, 3, 3), transfers, dead_links=dead)
    assert_lossless(report)
    assert report.within(2e-3, busy_rtol=BUSY_RTOL)
    # Nothing crossed the dead channel in either mode.
    dead_key = (0, 0, 1)
    assert exact.link_bytes.get(dead_key, 0) == 0
    assert flow.link_bytes.get(dead_key, 0) == 0


def test_partitioned_destinations_agree_on_undeliverable():
    """Severing a 2-node line: both modes report the same delivered set."""
    dead = ((0, 0, 1), (0, 0, -1))  # both channels out of rank 0
    transfers = [
        BulkTransfer(0, 1, 8192, 0.0),  # unreachable
        BulkTransfer(1, 0, 8192, 0.0),  # reverse channels still alive
    ]
    report, exact, flow = parity((2, 1, 1), transfers, dead_links=dead)
    assert_lossless(report)
    assert exact.completions[0] is None and flow.completions[0] is None
    assert exact.completions[1] is not None and flow.completions[1] is not None
    assert report.within(2e-3, busy_rtol=BUSY_RTOL)


def test_same_path_burst_at_occupancy_knot():
    """Six 9-fragment PUTs down one path: occupancy-dominated, probed size."""
    transfers = [BulkTransfer(0, 13, 36864, 0.0) for _ in range(6)]
    report, _exact, _flow = parity((3, 3, 3), transfers)
    assert_lossless(report)
    assert report.completion_max_rel <= 8e-2
    assert abs(report.makespan_rel) <= 8e-2
    assert report.busy_max_rel <= BUSY_RTOL


def test_same_path_burst_off_knot():
    """Bursts of interpolated (off-knot) sizes carry the widest ceiling."""
    transfers = [BulkTransfer(0, 13, 16384, 0.0) for _ in range(6)]
    report, _exact, _flow = parity((3, 3, 3), transfers)
    assert_lossless(report)
    assert report.completion_max_rel <= 2e-1
    assert abs(report.makespan_rel) <= 2e-1
    assert report.busy_max_rel <= BUSY_RTOL


def test_general_cross_contention():
    """Many concurrent flows with crossing routes: the loosest class.

    Per-flow completions may drift up to 25% (queueing order inside the
    fabric differs from the model's injection-order service), but the
    batch-level makespan stays within 5% and every byte-level aggregate
    is still bit-exact.
    """
    transfers = []
    for i in range(18):
        src = (5 * i + 1) % 27
        dst = (11 * i + 13) % 27
        if src == dst:
            dst = (dst + 1) % 27
        transfers.append(BulkTransfer(src, dst, 4096 + 512 * (i % 7), us(2.0 * i)))
    report, _exact, _flow = parity((3, 3, 3), transfers)
    assert_lossless(report)
    assert report.completion_max_rel <= 2.5e-1
    assert abs(report.makespan_rel) <= 5e-2
    assert report.busy_max_rel <= BUSY_RTOL
