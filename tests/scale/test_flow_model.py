"""Unit tests for the batched flow engine (repro.scale.flow).

Fragment arithmetic, routing (including detours and partition verdicts),
calibration memoisation, and the scalar-vs-vectorised latency model.
Parity against the exact per-packet driver lives in test_parity_*.py.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.net.packet import MAX_PACKET_PAYLOAD, PACKET_HEADER_BYTES
from repro.net.topology import TorusShape
from repro.scale import (
    FlowNetwork,
    calibrate,
    fragment_count,
    hop_route,
    last_fragment_bytes,
    wire_bytes,
)
from repro.scale.flow import normalize_dead_links

pytestmark = pytest.mark.scale


# ---------------------------------------------------------------------------
# Fragment arithmetic (the lossless backbone)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "nbytes,n,last",
    [
        (1, 1, 1),
        (300, 1, 300),
        (MAX_PACKET_PAYLOAD, 1, MAX_PACKET_PAYLOAD),
        (MAX_PACKET_PAYLOAD + 1, 2, 1),
        (2 * MAX_PACKET_PAYLOAD, 2, MAX_PACKET_PAYLOAD),
        (65536, 16, MAX_PACKET_PAYLOAD),
        (65537, 17, 1),
    ],
)
def test_fragment_arithmetic(nbytes, n, last):
    assert fragment_count(nbytes) == n
    assert last_fragment_bytes(nbytes) == last
    assert wire_bytes(nbytes) == nbytes + n * PACKET_HEADER_BYTES
    # Fragment payloads must re-sum to the transfer size.
    assert (n - 1) * MAX_PACKET_PAYLOAD + last == nbytes


# ---------------------------------------------------------------------------
# Routing
# ---------------------------------------------------------------------------


def test_hop_route_fault_free_is_dimension_ordered():
    shape = TorusShape(3, 3, 3)
    for src, dst in [(0, 13), (5, 22), (26, 0), (7, 7)]:
        route = hop_route(shape, src, dst)
        assert route is not None
        assert len(route) == shape.distance(shape.coord(src), shape.coord(dst))
        # Walking the hop list must land on dst.
        cur = shape.coord(src)
        for rank, dim, direction in route:
            assert rank == shape.rank(cur)
            cur = shape.neighbor(cur, dim, direction)
        assert shape.rank(cur) == dst


def test_hop_route_detours_around_dead_link():
    shape = TorusShape(3, 3, 3)
    dead = normalize_dead_links(shape, [(0, 0, 1)])  # +X out of rank 0
    route = hop_route(shape, 0, 1, dead)
    assert route is not None
    assert (0, 0, 1) not in route  # the dead hop is never taken
    # The detour is longer than the direct hop but still reaches dst.
    assert len(route) > 1
    cur = shape.coord(0)
    for _rank, dim, direction in route:
        cur = shape.neighbor(cur, dim, direction)
    assert shape.rank(cur) == 1


def test_hop_route_partition_verdict_is_none():
    # On a 2-node line both X channels out of rank 0 are the only exits.
    shape = TorusShape(2, 1, 1)
    dead = normalize_dead_links(shape, [(0, 0, 1), (0, 0, -1)])
    assert hop_route(shape, 0, 1, dead) is None
    # The reverse direction uses rank 1's (alive) channels.
    assert hop_route(shape, 1, 0, dead) is not None


def test_unreachable_flow_record_is_undelivered():
    net = FlowNetwork((2, 1, 1), dead_links=[(0, 0, 1), (0, 0, -1)])
    rec = net.bulk_put(0, 1, 4096)
    assert rec.completion is None and not rec.delivered
    agg = net.aggregates()
    assert agg.bytes_delivered == 0
    assert agg.completions == (None,)
    assert not agg.link_bytes  # nothing ever hit a wire


# ---------------------------------------------------------------------------
# Calibration and the latency model
# ---------------------------------------------------------------------------


def test_calibrate_is_memoised():
    a = calibrate()
    b = calibrate()
    assert a is b  # module-wide memo: same object, no re-probing


def test_calibration_is_physically_sane():
    cal = calibrate()
    assert cal.per_fragment > 0
    assert cal.hop_base > 0
    # Latency knots are strictly increasing in fragment count.
    assert all(b > a for a, b in zip(cal.knot_times, cal.knot_times[1:]))
    # Occupancy (the LogP g) is bounded below by the RX service time.
    assert cal.occupancy(1, 512) >= cal.per_fragment
    assert cal.occupancy(9, MAX_PACKET_PAYLOAD) >= cal.per_fragment


def test_latency_monotone_in_size_and_hops():
    cal = calibrate()
    sizes = [64, 512, 4096, 8192, 65536, 131072]
    lat = [
        cal.completion_latency(fragment_count(s), last_fragment_bytes(s), 1)
        for s in sizes
    ]
    assert all(b > a for a, b in zip(lat, lat[1:]))
    hops = [cal.completion_latency(2, MAX_PACKET_PAYLOAD, h) for h in (1, 2, 3, 5)]
    assert all(b > a for a, b in zip(hops, hops[1:]))


def test_vectorised_latency_matches_scalar():
    cal = calibrate()
    nbytes = np.array([1, 300, 512, 4096, 4097, 5000, 8192, 40000, 600000])
    hops = np.array([1, 2, 3, 1, 4, 2, 1, 5, 3])
    vec = cal.completion_latency_array(nbytes, hops)
    for i, (nb, h) in enumerate(zip(nbytes, hops)):
        scalar = cal.completion_latency(
            fragment_count(int(nb)), last_fragment_bytes(int(nb)), int(h)
        )
        assert vec[i] == pytest.approx(scalar, rel=0, abs=1e-9)


def test_latency_is_exact_at_probed_knots():
    """The model must reproduce its own probe points bit-for-bit."""
    cal = calibrate()
    for i, n in enumerate(cal.knots):
        assert cal.completion_latency(n, MAX_PACKET_PAYLOAD, 1) == cal.knot_times[i]
    for i, b in enumerate(cal.single_byte_knots):
        assert cal.completion_latency(1, b, 1) == cal.single_byte_times[i]


# ---------------------------------------------------------------------------
# Flow scheduling invariants
# ---------------------------------------------------------------------------


def test_back_to_back_flows_are_spaced_by_occupancy():
    net = FlowNetwork((2, 1, 1))
    cal = net.calibration()
    n, last = 9, MAX_PACKET_PAYLOAD
    r1 = net.bulk_put(0, 1, 9 * MAX_PACKET_PAYLOAD)
    r2 = net.bulk_put(0, 1, 9 * MAX_PACKET_PAYLOAD)
    # The steady-state same-path gap is the probed occupancy exactly.
    assert r2.completion - r1.completion == pytest.approx(
        cal.occupancy(n, last), rel=1e-12
    )


def test_run_transfers_matches_incremental_for_sorted_posts():
    from repro.scale import BulkTransfer

    transfers = [
        BulkTransfer(0, 13, 8192, 0.0),
        BulkTransfer(1, 26, 5000, 1000.0),
        BulkTransfer(5, 22, 300, 2000.0),
    ]
    batch = FlowNetwork((3, 3, 3)).run_transfers(transfers)
    inc = FlowNetwork((3, 3, 3))
    for tr in transfers:
        inc.bulk_put(tr.src, tr.dst, tr.nbytes, tr.start, tr.src_kind, tr.dst_kind)
    assert batch.completions == inc.aggregates().completions
    assert batch.link_bytes == inc.aggregates().link_bytes
