"""Tests for the LogP model extraction (Fig 10's framework)."""

import pytest

from repro.apenet import BufferKind
from repro.models import extract_logp

H, G = BufferKind.HOST, BufferKind.GPU


@pytest.fixture(scope="module")
def hh_params():
    return extract_logp(H, H)


@pytest.fixture(scope="module")
def gg_params():
    return extract_logp(G, G)


def test_parameters_are_positive(hh_params):
    p = hh_params
    assert p.L > 0 and p.o > 0 and p.g > 0 and p.G > 0


def test_hh_bandwidth_matches_plateau(hh_params):
    # 1/G is the long-message bandwidth: the 1.2 GB/s H-H plateau.
    assert 1.0 / hh_params.G == pytest.approx(1.26, rel=0.1)


def test_gg_overhead_exceeds_hh(hh_params, gg_params):
    """Fig 10: the GPU path costs the sender more per message."""
    assert gg_params.o > hh_params.o * 1.5


def test_gap_at_least_overhead(hh_params, gg_params):
    # You can never stream faster than the sender-side bottleneck allows.
    for p in (hh_params, gg_params):
        assert p.g >= p.o * 0.5


def test_predict_send_time_is_consistent(hh_params):
    p = hh_params
    t = p.predict_send_time(128)
    assert t == pytest.approx(p.o + p.L + 128 * p.G)


def test_predict_stream_rate_small_vs_large(hh_params):
    p = hh_params
    # Small messages are gap-limited; large are bandwidth-limited.
    assert p.predict_stream_rate(32) == pytest.approx(32 / p.g)
    big = 1 << 20
    assert p.predict_stream_rate(big) == pytest.approx(1.0 / p.G)


def test_prediction_tracks_simulation(hh_params):
    """The fitted model must predict the measured H-H bandwidth curve."""
    from repro.bench.microbench import unidirectional_bandwidth

    for size in (4096, 65536):
        measured = unidirectional_bandwidth(H, H, size, n_messages=32).bandwidth
        predicted = hh_params.predict_stream_rate(size)
        assert predicted == pytest.approx(measured, rel=0.45)


def test_predict_exchange_monotone(hh_params):
    p = hh_params
    assert p.predict_exchange(4096, 10) < p.predict_exchange(4096, 20)
    assert p.predict_exchange(1024, 5) < p.predict_exchange(65536, 5)
