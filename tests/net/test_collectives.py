"""Tests for the collective-operations library over APEnet+ RDMA."""

import numpy as np
import pytest

from repro.net.collectives import make_collectives
from repro.bench.microbench import make_cluster
from repro.units import us


def build(nx=2, ny=2):
    sim, cluster = make_cluster(nx, ny)
    colls = make_collectives(cluster, scratch_bytes=1 << 16)
    return sim, cluster, colls


def run_collective(sim, colls, body):
    """Run body(coll) on every rank; returns {rank: result}."""
    results = {}

    def proc(c):
        yield from c.setup()
        r = yield from body(c)
        results[c.rank] = r

    procs = [sim.process(proc(c)) for c in colls]
    sim.run()
    assert all(p.processed for p in procs), "collective deadlocked"
    return results


def test_barrier_holds_everyone():
    sim, cluster, colls = build()
    release = {}

    def body(c):
        yield sim.timeout(us(25) * c.rank)  # staggered entry
        yield from c.barrier(tag=("b", 1))
        release[c.rank] = sim.now
        return True

    run_collective(sim, colls, body)
    assert min(release.values()) >= us(25) * 3


def test_broadcast_from_root():
    sim, cluster, colls = build()

    def body(c):
        val = yield from c.broadcast("hello" if c.rank == 0 else None, root=0)
        return val

    results = run_collective(sim, colls, body)
    assert all(v == "hello" for v in results.values())


def test_broadcast_nonzero_root():
    sim, cluster, colls = build()

    def body(c):
        val = yield from c.broadcast(42 if c.rank == 2 else None, root=2)
        return val

    results = run_collective(sim, colls, body)
    assert all(v == 42 for v in results.values())


def test_allreduce_sum_and_max():
    sim, cluster, colls = build()

    def body(c):
        total = yield from c.allreduce(c.rank + 1, tag=("s", 0))
        biggest = yield from c.allreduce(c.rank, op=max, tag=("m", 0))
        return total, biggest

    results = run_collective(sim, colls, body)
    assert all(v == (10, 3) for v in results.values())


def test_alltoallv_moves_real_bytes():
    sim, cluster, colls = build()

    def body(c):
        payloads, sizes = {}, {}
        for p in range(4):
            if p == c.rank:
                continue
            n = 100 * (c.rank + 1) + p
            payloads[p] = np.full(n, c.rank * 16 + p, dtype=np.uint8)
            sizes[p] = n
        got = yield from c.alltoallv(payloads, sizes, tag=("x", 0))
        return got

    results = run_collective(sim, colls, body)
    for me, got in results.items():
        for src, data in got.items():
            expect_n = 100 * (src + 1) + me
            assert len(data) == expect_n
            assert (data == src * 16 + me).all()


def test_alltoallv_with_zero_sizes():
    sim, cluster, colls = build()

    def body(c):
        sizes = {p: (0 if p % 2 == 0 else 256) for p in range(4) if p != c.rank}
        got = yield from c.alltoallv({}, sizes, tag=("z", 0))
        return {p: len(v) for p, v in got.items()}

    results = run_collective(sim, colls, body)
    # Receivers see 0 bytes from even ranks... every sender sends 0 to even
    # PEERS; so rank p receives 256 from everyone iff p is odd.
    for me, lens in results.items():
        for src, n in lens.items():
            assert n == (0 if me % 2 == 0 else 256)


def test_ring_exchange():
    sim, cluster, colls = build(4, 1)

    def body(c):
        down = np.full(512, c.rank, dtype=np.uint8)
        up = np.full(512, c.rank + 100, dtype=np.uint8)
        fd, fu = yield from c.ring_exchange(down, up, 512, tag=("h", 0))
        return fd[0], fu[0]

    results = run_collective(sim, colls, body)
    for me, (from_down, from_up) in results.items():
        assert from_down == ((me - 1) % 4) + 100  # neighbour's "up" payload
        assert from_up == (me + 1) % 4  # neighbour's "down" payload


def test_oversized_payload_rejected():
    sim, cluster, colls = build()

    def body(c):
        if c.rank == 0:
            with pytest.raises(ValueError, match="exceeds scratch"):
                yield from c._put(1, None, 1 << 20, ("big",))
        yield sim.timeout(1)
        return True

    run_collective(sim, colls, body)


def test_collectives_compose_across_tags():
    """Interleaved collectives with different tags must not cross-talk."""
    sim, cluster, colls = build()

    def body(c):
        s1 = yield from c.allreduce(1, tag=("a", 1))
        yield from c.barrier(tag=("b", 1))
        s2 = yield from c.allreduce(c.rank, tag=("a", 2))
        return s1, s2

    results = run_collective(sim, colls, body)
    assert all(v == (4, 6) for v in results.values())
