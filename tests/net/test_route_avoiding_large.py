"""Property coverage for TorusShape.route_avoiding on large (>= 8^3) tori.

The recovery router (PR-4/5) and the flow model's detour table (PR-7)
both lean on ``route_avoiding``; earlier suites only exercised it on
paper-sized tori (<= 12 nodes).  Here hypothesis drives 8^3 = 512-node
tori with 1-6 dead directed links drawn from a fault seed and checks,
against an independent deque-based BFS reference:

* **validity** — every returned hop exists, avoids the dead set, and the
  walk ends at the destination;
* **optimality** — the detour length equals the damaged-graph shortest
  distance (so it is also bounded by the fault-free distance plus the
  extra hops the faults force, never an unbounded wander);
* **partition verdicts** — ``None`` exactly when the reference finds no
  path (exercised deterministically by fully severing a corner node:
  outbound routes die, inbound routes survive);
* **determinism** — repeated queries return the identical hop list.
"""

from __future__ import annotations

import random
from collections import deque

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.topology import TorusShape

pytestmark = pytest.mark.scale

DIMS = (8, 8, 8)


def _all_links(shape):
    return [
        (coord, dim, direction)
        for coord in shape.coords()
        for dim, extent in enumerate(shape.dims)
        if extent > 1
        for direction in (1, -1)
    ]


def _reference_distance(shape, src, dst, dead):
    """Independent BFS hop distance in the damaged graph (-1 = cut off).

    Deliberately a different traversal (deque, visited-set) from the
    production code's layered list BFS.
    """
    if src == dst:
        return 0
    seen = {src}
    queue = deque([(src, 0)])
    while queue:
        cur, d = queue.popleft()
        for dim, direction, nxt in shape.neighbors(cur):
            if (cur, dim, direction) in dead or nxt in seen:
                continue
            if nxt == dst:
                return d + 1
            seen.add(nxt)
            queue.append((nxt, d + 1))
    return -1


def _walk(shape, src, hops, dead):
    """Apply a hop list, asserting each hop is alive; returns the endpoint."""
    cur = src
    for dim, direction in hops:
        assert (cur, dim, direction) not in dead, "route crosses a dead link"
        cur = shape.neighbor(cur, dim, direction)
    return cur


@settings(max_examples=20, deadline=None)
@given(fault_seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_route_avoiding_on_8cubed_with_random_faults(fault_seed):
    shape = TorusShape(*DIMS)
    rng = random.Random(fault_seed)
    dead = frozenset(rng.sample(_all_links(shape), rng.randrange(1, 7)))
    for _ in range(6):
        src = shape.coord(rng.randrange(shape.size))
        dst = shape.coord(rng.randrange(shape.size))
        ref = _reference_distance(shape, src, dst, dead)
        route = shape.route_avoiding(src, dst, dead)
        if ref < 0:
            assert route is None, (src, dst, "reference says unreachable")
            continue
        assert route is not None, (src, dst, "reference found a path")
        # Validity + optimality.
        assert _walk(shape, src, route, dead) == dst
        assert len(route) == ref
        # Detour-length bound: the faults can only add hops, and with k
        # dead links a shortest detour never needs to outrun the
        # fault-free distance by more than the full damaged diameter.
        assert len(route) >= shape.distance(src, dst)
        # Determinism: the FIFO/neighbor-order tie-break pins the route.
        assert shape.route_avoiding(src, dst, dead) == route


@settings(max_examples=10, deadline=None)
@given(fault_seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_fault_free_pairs_keep_their_shortest_distance(fault_seed):
    """Dead links elsewhere never lengthen an untouched pair's route."""
    shape = TorusShape(*DIMS)
    rng = random.Random(fault_seed)
    # Faults confined to the z=7 plane; traffic confined to z in [0, 3].
    plane_links = [
        link for link in _all_links(shape) if link[0][2] == 7 and link[1] != 2
    ]
    dead = frozenset(rng.sample(plane_links, 6))
    for _ in range(4):
        src = (rng.randrange(8), rng.randrange(8), rng.randrange(4))
        dst = (rng.randrange(8), rng.randrange(8), rng.randrange(4))
        route = shape.route_avoiding(src, dst, dead)
        assert route is not None
        assert len(route) == shape.distance(src, dst)


def test_severed_corner_partition_verdicts():
    """Killing all 6 outbound channels of a node: out dies, in survives."""
    shape = TorusShape(*DIMS)
    corner = (0, 0, 0)
    dead = frozenset(
        (corner, dim, direction) for dim in range(3) for direction in (1, -1)
    )
    far = (4, 4, 4)
    near = (1, 0, 0)
    for dst in (far, near):
        assert shape.route_avoiding(corner, dst, dead) is None
    # Inbound uses other nodes' (alive) outbound channels.
    for src in (far, near):
        route = shape.route_avoiding(src, corner, dead)
        assert route is not None
        assert _walk(shape, src, route, dead) == corner
        assert len(route) == _reference_distance(shape, src, corner, dead)


def test_multi_dead_links_on_one_ring_force_the_long_way_round():
    """Deterministic detour-length check: cut both directions of a ring
    segment and the router must go around the orthogonal dimension."""
    shape = TorusShape(*DIMS)
    # Cut the +X channel at (0,0,0) and the -X channel at (1,0,0): the
    # direct X edge between them is gone in both directions.
    dead = frozenset({((0, 0, 0), 0, 1), ((1, 0, 0), 0, -1)})
    route = shape.route_avoiding((0, 0, 0), (1, 0, 0), dead)
    assert route is not None
    assert _walk(shape, (0, 0, 0), route, dead) == (1, 0, 0)
    # Shortest detour: step off the ring, cross, step back (3 hops).
    assert len(route) == 3
