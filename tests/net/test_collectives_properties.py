"""Property-based tests for the collectives library."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.microbench import make_cluster
from repro.net.collectives import make_collectives


def run_all(sim, colls, body):
    results = {}

    def proc(c):
        yield from c.setup()
        results[c.rank] = (yield from body(c))

    procs = [sim.process(proc(c)) for c in colls]
    sim.run()
    assert all(p.processed for p in procs), "collective deadlocked"
    return results


@given(
    values=st.lists(st.integers(-1000, 1000), min_size=4, max_size=4),
)
@settings(max_examples=15, deadline=None)
def test_allreduce_is_correct_for_any_values(values):
    sim, cluster = make_cluster(2, 2)
    colls = make_collectives(cluster, scratch_bytes=4096)

    def body(c):
        out = yield from c.allreduce(values[c.rank], tag=("p", 0))
        return out

    results = run_all(sim, colls, body)
    assert all(v == sum(values) for v in results.values())


@given(
    sizes=st.lists(st.integers(0, 2000), min_size=12, max_size=12),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=10, deadline=None)
def test_alltoallv_conserves_every_byte(sizes, seed):
    """Random per-pair sizes: every byte lands at the right peer."""
    sim, cluster = make_cluster(2, 2)
    colls = make_collectives(cluster, scratch_bytes=4096)
    rng = np.random.default_rng(seed)
    n = 4
    # sizes[i*3 + k] = bytes from rank i to its k-th peer.
    size_map = {}
    payload_map = {}
    for me in range(n):
        peers = [p for p in range(n) if p != me]
        for k, p in enumerate(peers):
            nbytes = sizes[me * 3 + k]
            size_map[(me, p)] = nbytes
            payload_map[(me, p)] = rng.integers(0, 256, nbytes, dtype=np.uint8)

    def body(c):
        payloads = {p: payload_map[(c.rank, p)] for p in range(n) if p != c.rank}
        szs = {p: size_map[(c.rank, p)] for p in range(n) if p != c.rank}
        got = yield from c.alltoallv(payloads, szs, tag=("pp", 0))
        return got

    results = run_all(sim, colls, body)
    for me, got in results.items():
        for src, data in got.items():
            np.testing.assert_array_equal(data, payload_map[(src, me)])


@given(root=st.integers(0, 3), value=st.integers(-10**9, 10**9))
@settings(max_examples=12, deadline=None)
def test_broadcast_any_root(root, value):
    sim, cluster = make_cluster(2, 2)
    colls = make_collectives(cluster, scratch_bytes=4096)

    def body(c):
        out = yield from c.broadcast(value if c.rank == root else None, root=root)
        return out

    results = run_all(sim, colls, body)
    assert all(v == value for v in results.values())
