"""Unit tests for torus topology math."""

import pytest

from repro.net import TorusShape


def test_rank_coord_round_trip():
    shape = TorusShape(4, 2, 1)
    for rank in range(shape.size):
        assert shape.rank(shape.coord(rank)) == rank


def test_size_and_dims():
    assert TorusShape(4, 2).size == 8
    assert TorusShape(2, 2, 2).size == 8
    assert TorusShape(1, 1, 1).size == 1


def test_bad_shape_rejected():
    with pytest.raises(ValueError):
        TorusShape(0, 2)


def test_wrap():
    shape = TorusShape(4, 2, 1)
    assert shape.wrap((4, 2, 1)) == (0, 0, 0)
    assert shape.wrap((-1, -1, 0)) == (3, 1, 0)


def test_neighbors():
    shape = TorusShape(4, 2, 1)
    assert shape.neighbor((0, 0, 0), 0, 1) == (1, 0, 0)
    assert shape.neighbor((3, 0, 0), 0, 1) == (0, 0, 0)  # wraparound
    assert shape.neighbor((0, 0, 0), 0, -1) == (3, 0, 0)
    assert shape.neighbor((0, 1, 0), 1, 1) == (0, 0, 0)


def test_route_is_dimension_ordered():
    shape = TorusShape(4, 4, 4)
    hops = shape.route((0, 0, 0), (2, 1, 3))
    dims = [d for d, _ in hops]
    assert dims == sorted(dims)  # X hops before Y before Z
    # Apply the hops; we must land on the destination.
    cur = (0, 0, 0)
    for dim, step in hops:
        cur = shape.neighbor(cur, dim, step)
    assert cur == (2, 1, 3)


def test_route_takes_shortest_way_around():
    shape = TorusShape(8, 1, 1)
    # 0 -> 6 is 2 hops backwards, not 6 forwards.
    hops = shape.route((0, 0, 0), (6, 0, 0))
    assert hops == [(0, -1), (0, -1)]
    # 0 -> 4 (exactly half): tie goes positive.
    hops = shape.route((0, 0, 0), (4, 0, 0))
    assert hops == [(0, 1)] * 4


def test_route_to_self_is_empty():
    shape = TorusShape(4, 2)
    assert shape.route((1, 1, 0), (1, 1, 0)) == []


def test_distance():
    shape = TorusShape(4, 2, 1)
    assert shape.distance((0, 0, 0), (1, 0, 0)) == 1
    assert shape.distance((0, 0, 0), (3, 0, 0)) == 1  # wrap
    assert shape.distance((0, 0, 0), (2, 1, 0)) == 3


def test_links_enumeration_4x2():
    shape = TorusShape(4, 2, 1)
    links = list(shape.links())
    # Per node: 2 X links + 2 Y links (Z has extent 1) = 4; 8 nodes = 32.
    assert len(links) == 32
    for src, dim, direction, dst in links:
        assert shape.neighbor(src, dim, direction) == dst


def test_links_skip_unit_dimensions():
    shape = TorusShape(2, 1, 1)
    links = list(shape.links())
    assert all(dim == 0 for _, dim, _, _ in links)
    assert len(links) == 4  # 2 nodes x 2 X-directions


def test_route_all_pairs_land_correctly():
    shape = TorusShape(3, 3, 2)
    for s in range(shape.size):
        for d in range(shape.size):
            cur = shape.coord(s)
            for dim, step in shape.route(cur, shape.coord(d)):
                cur = shape.neighbor(cur, dim, step)
            assert cur == shape.coord(d)
