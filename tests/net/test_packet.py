"""Unit tests for the APEnet+ packet format."""

import pytest

from repro.net.packet import (
    MAX_PACKET_PAYLOAD,
    PACKET_HEADER_BYTES,
    ApePacket,
    MessageInfo,
    next_message_id,
)


def make(nbytes=4096):
    msg = MessageInfo(1, nbytes, 0, 1, 0x1000, tag="t")
    return ApePacket((1, 0, 0), (0, 0, 0), 0x1000, nbytes, msg)


def test_wire_size_includes_envelope():
    pkt = make(4096)
    assert pkt.size == 4096 + PACKET_HEADER_BYTES


def test_payload_bounds_enforced():
    with pytest.raises(ValueError):
        make(0)
    with pytest.raises(ValueError):
        make(MAX_PACKET_PAYLOAD + 1)
    assert make(MAX_PACKET_PAYLOAD).nbytes == MAX_PACKET_PAYLOAD


def test_message_ids_monotonic():
    a, b = next_message_id(), next_message_id()
    assert b == a + 1


def test_message_info_carries_routing_metadata():
    msg = MessageInfo(7, 8192, src_rank=2, dst_rank=5, dst_addr=0xABC, tag=("x", 1))
    assert msg.total_bytes == 8192
    assert msg.dst_rank == 5
    assert msg.tag == ("x", 1)
