"""Tests for the parallel experiment runner and its on-disk result cache."""

import json

import pytest

from repro.bench import harness
from repro.bench.runner import (
    ResultCache,
    cache_key,
    run_experiments,
    write_json,
)


@pytest.fixture
def cheap_experiment():
    """Register a tiny deterministic experiment, unregister on teardown."""
    exp_id = "_t_runner_cheap"

    def runner(quick):
        """Deterministic toy runner used by the runner tests."""
        n = 3 if quick else 7
        return harness.ExperimentResult(
            experiment_id=exp_id,
            title="runner-test experiment",
            rendered=f"n={n}",
            comparisons=[("toy quantity", float(n), 3.0, "units")],
        )

    harness.register(exp_id, "runner-test experiment", "—")(runner)
    try:
        yield exp_id
    finally:
        harness._REGISTRY.pop(exp_id, None)


@pytest.fixture
def failing_experiment():
    exp_id = "_t_runner_boom"

    def runner(quick):
        """Always-failing toy runner used by the runner tests."""
        raise RuntimeError("intentional test failure")

    harness.register(exp_id, "runner-test failure", "—")(runner)
    try:
        yield exp_id
    finally:
        harness._REGISTRY.pop(exp_id, None)


# ---------------------------------------------------------------------------
# Cache behaviour
# ---------------------------------------------------------------------------


def test_cache_miss_then_hit(tmp_path, cheap_experiment):
    first = run_experiments([cheap_experiment], cache_dir=tmp_path)
    assert first[0].status == "ok" and not first[0].cached

    second = run_experiments([cheap_experiment], cache_dir=tmp_path)
    assert second[0].status == "cached" and second[0].cached
    assert second[0].comparisons == first[0].comparisons
    assert second[0].rendered == first[0].rendered


def test_use_cache_false_never_reads_or_writes(tmp_path, cheap_experiment):
    run_experiments([cheap_experiment], cache_dir=tmp_path, use_cache=False)
    assert list(tmp_path.iterdir()) == []
    again = run_experiments([cheap_experiment], cache_dir=tmp_path, use_cache=False)
    assert not again[0].cached


def test_corrupted_cache_file_is_a_miss_and_gets_repaired(tmp_path, cheap_experiment):
    run_experiments([cheap_experiment], cache_dir=tmp_path)
    key = cache_key(cheap_experiment, quick=True)
    path = ResultCache(tmp_path).path(key)
    assert path.exists()

    path.write_text("{not valid json ...")
    rerun = run_experiments([cheap_experiment], cache_dir=tmp_path)
    assert rerun[0].status == "ok" and not rerun[0].cached  # miss -> re-executed

    # The re-execution repaired the entry: next run is a hit again.
    assert json.loads(path.read_text())["experiment_id"] == cheap_experiment
    third = run_experiments([cheap_experiment], cache_dir=tmp_path)
    assert third[0].cached


def test_cache_payload_missing_keys_is_a_miss(tmp_path, cheap_experiment):
    key = cache_key(cheap_experiment, quick=True)
    cache = ResultCache(tmp_path)
    cache.put(key, {"experiment_id": cheap_experiment})  # valid JSON, truncated payload
    assert cache.get(key) is None
    records = run_experiments([cheap_experiment], cache_dir=tmp_path)
    assert not records[0].cached


def test_truncated_cache_file_is_a_miss(tmp_path, cheap_experiment):
    """A torn write (e.g. power loss mid-flush) must read as a miss."""
    run_experiments([cheap_experiment], cache_dir=tmp_path)
    key = cache_key(cheap_experiment, quick=True)
    path = ResultCache(tmp_path).path(key)
    intact = path.read_text()
    path.write_text(intact[: len(intact) // 2])  # torn mid-document
    assert ResultCache(tmp_path).get(key) is None
    rerun = run_experiments([cheap_experiment], cache_dir=tmp_path)
    assert rerun[0].status == "ok" and not rerun[0].cached


def test_empty_cache_file_is_a_miss_and_gets_overwritten(tmp_path, cheap_experiment):
    key = cache_key(cheap_experiment, quick=True)
    cache = ResultCache(tmp_path)
    cache.path(key).parent.mkdir(parents=True, exist_ok=True)
    cache.path(key).write_text("")  # zero-byte file (crash before any write)
    assert cache.get(key) is None
    run_experiments([cheap_experiment], cache_dir=tmp_path)
    assert json.loads(cache.path(key).read_text())["experiment_id"] == cheap_experiment


def test_cache_file_with_non_dict_json_is_a_miss(tmp_path, cheap_experiment):
    key = cache_key(cheap_experiment, quick=True)
    cache = ResultCache(tmp_path)
    cache.path(key).parent.mkdir(parents=True, exist_ok=True)
    for blob in ('["a", "list"]', '"just a string"', "42", "null"):
        cache.path(key).write_text(blob)
        assert cache.get(key) is None, blob


def test_cache_put_is_atomic_no_tmp_debris(tmp_path, cheap_experiment):
    """put() lands via tmp-file + os.replace: afterwards the directory
    holds only complete entries, never partially written temporaries."""
    key = cache_key(cheap_experiment, quick=True)
    cache = ResultCache(tmp_path)
    cache.put(key, {"experiment_id": cheap_experiment, "payload": "x" * 4096})
    names = [p.name for p in tmp_path.rglob("*") if p.is_file()]
    assert names == [cache.path(key).name]
    assert ".tmp" not in "".join(names)


def test_cache_key_distinguishes_experiment_and_mode():
    keys = {
        cache_key("fig3", quick=True),
        cache_key("fig3", quick=False),
        cache_key("fig8", quick=True),
    }
    assert len(keys) == 3
    assert cache_key("fig3", quick=True) == cache_key("fig3", quick=True)


# ---------------------------------------------------------------------------
# Parallel execution
# ---------------------------------------------------------------------------


def test_jobs_1_and_jobs_4_identical_comparisons(tmp_path):
    ids = ["fig3", "fig8", "fig10"]
    serial = run_experiments(ids, jobs=1, use_cache=False)
    parallel = run_experiments(ids, jobs=4, use_cache=False)
    assert [r.experiment_id for r in serial] == ids
    assert [r.experiment_id for r in parallel] == ids
    for s, p in zip(serial, parallel):
        assert s.status == p.status == "ok"
        assert s.comparisons == p.comparisons  # bit-identical, not approximate
        assert s.rendered == p.rendered


def test_jobs_identical_with_fault_injection(tmp_path):
    """Fault-injected runs stay bit-identical across --jobs counts.

    Fault sampling uses per-site streams derived from (plan seed, site
    name), so worker forking and scheduling must not shift a single draw:
    the whole chaos sweep — goodput curves, retransmit counts, the
    escalated LinkFailure — is reproduced exactly in serial and parallel.
    """
    ids = ["faults", "fig3"]
    serial = run_experiments(ids, jobs=1, use_cache=False)
    parallel = run_experiments(ids, jobs=4, use_cache=False)
    for s, p in zip(serial, parallel):
        assert s.status == p.status == "ok"
        assert s.comparisons == p.comparisons  # bit-identical, not approximate
        assert s.rendered == p.rendered


def test_parallel_run_sees_runtime_registered_experiments(tmp_path, cheap_experiment):
    # Workers are forked, so they inherit experiments registered after import.
    records = run_experiments(
        [cheap_experiment, "fig3"], jobs=2, cache_dir=tmp_path
    )
    assert [r.status for r in records] == ["ok", "ok"]
    assert records[0].comparisons == [("toy quantity", 3.0, 3.0, "units")]


def test_unknown_id_fails_fast(tmp_path):
    with pytest.raises(KeyError, match="nonexistent"):
        run_experiments(["nonexistent"], cache_dir=tmp_path)


def test_jobs_must_be_positive(tmp_path, cheap_experiment):
    with pytest.raises(ValueError):
        run_experiments([cheap_experiment], jobs=0, cache_dir=tmp_path)


# ---------------------------------------------------------------------------
# Failures + artifact
# ---------------------------------------------------------------------------


def test_failed_experiment_recorded_but_not_cached(tmp_path, failing_experiment):
    records = run_experiments([failing_experiment], cache_dir=tmp_path)
    assert records[0].status == "error"
    assert "intentional test failure" in records[0].error
    assert list(tmp_path.iterdir()) == []  # errors never poison the cache


def test_write_json_artifact(tmp_path, cheap_experiment, failing_experiment):
    records = run_experiments(
        [cheap_experiment, failing_experiment], cache_dir=tmp_path
    )
    path = write_json(records, tmp_path / "run.json", quick=True, jobs=2, run_id="t")
    doc = json.loads(path.read_text())
    assert doc["run_id"] == "t"
    assert doc["mode"] == "quick" and doc["jobs"] == 2
    assert doc["n_errors"] == 1 and doc["n_cached"] == 0
    assert len(doc["records"]) == 2
    assert doc["records"][0]["comparisons"] == [["toy quantity", 3.0, 3.0, "units"]]
