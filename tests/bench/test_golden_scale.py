"""Golden-number regression tests for the `scale` experiment.

Same contract as test_golden_numbers.py / test_golden_recovery.py: the
flow model is deterministic *model* time (no wall-clock anywhere), so
every quick-mode comparison row is pinned with exact float equality, and
the full per-row records for the <= 6^3 configs are pinned against the
committed ``benchmarks/baselines/scale.json`` — drifting either means
the flow model, the sharded BFS, or the calibration changed, and the
goldens + baseline + EXPERIMENTS.md table must be refreshed together.

The jobs-determinism test additionally proves the ISSUE-level property
that ``--jobs 1`` and ``--jobs 4`` sweeps are bit-identical: inside a
(daemonic) runner worker the shard pool falls back to serial expansion,
and the contiguous-split/concat merge makes that fallback byte-equal to
the pooled path.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.bench import harness
from repro.bench.runner import calibration_hash, run_experiments

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
BASELINE = REPO_ROOT / "benchmarks" / "baselines" / "scale.json"

GOLDEN = {
    "parity: lossless aggregates bit-exact": (1.0, "bool"),
    "parity: completions within tolerance": (1.0, "bool"),
    "parity: completion max rel dev": (2.6631055738590968e-05, "rel"),
    "TEPS 4^3 (scale 12)": (24917576.188836824, "TEPS"),
    "levels checksum 4^3": (6645.0, "sum"),
    "TEPS 6^3 (scale 14)": (42353538.493716106, "TEPS"),
    "levels checksum 6^3": (35389.0, "sum"),
    "TEPS 8^3 (scale 16)": (90846786.62831299, "TEPS"),
    "levels checksum 8^3": (160953.0, "sum"),
    "TEPS 12^3 (scale 16)": (45472215.951238655, "TEPS"),
    "levels checksum 12^3": (160953.0, "sum"),
}


@pytest.fixture(scope="module")
def result():
    return harness.run("scale", quick=True)


def test_golden_rows_exact(result):
    measured = {name: (value, unit) for name, value, _paper, unit in result.comparisons}
    assert set(measured) == set(GOLDEN), (
        "comparison row set changed — update GOLDEN deliberately"
    )
    mismatches = {
        name: (measured[name], golden)
        for name, golden in GOLDEN.items()
        if measured[name] != golden
    }
    assert not mismatches, (
        f"scale drifted from golden values (measured, golden): {mismatches}"
    )


def test_parity_probe_reports_lossless_and_tight(result):
    parity = result.data["scale_bench"]["parity"]
    assert parity["lossless_ok"] is True
    assert parity["within_tolerance"] is True
    assert 0.0 <= parity["completion_max_rel"] <= parity["time_rtol"]
    assert abs(parity["makespan_rel"]) <= parity["time_rtol"]
    assert parity["busy_max_rel"] <= 1e-6


def test_rows_cover_the_quick_ladder_with_recovery_enabled(result):
    rows = result.data["scale_bench"]["rows"]
    assert [tuple(r["dims"]) for r in rows] == [
        (4, 4, 4), (6, 6, 6), (8, 8, 8), (12, 12, 12)
    ]
    for row in rows:
        assert row["dead_links"] == 1  # recovery-enabled: detoured fault
        assert row["shards"] == 4
        assert row["teps"] > 0 and row["total_time_ns"] > 0
        assert row["reached"] > 0 and row["comm_bytes"] > 0
    # The acceptance config: 12^3 = 1728 ranks actually swept.
    assert rows[-1]["n_ranks"] == 1728


def test_golden_rows_match_committed_baseline(result):
    """benchmarks/baselines/scale.json gates CI artifacts; it must agree
    with what the code produces *now*, field for field."""
    baseline = json.loads(BASELINE.read_text())
    assert baseline["calibration_hash"] == calibration_hash()
    rows = {
        (tuple(r["dims"]), r["scale"]): r
        for r in result.data["scale_bench"]["rows"]
    }
    golden_dims = [tuple(d) for d in result.data["scale_bench"]["golden_dims"]]
    assert baseline["golden_rows"], "baseline lost its golden rows"
    for ref in baseline["golden_rows"]:
        key = (tuple(ref["dims"]), ref["scale"])
        assert key[0] in golden_dims
        row = rows[key]
        for fld, expected in ref.items():
            if fld == "dims":
                continue
            assert row[fld] == expected, (key, fld)


def test_jobs_1_vs_jobs_4_sweeps_are_bit_identical(result):
    """The ISSUE-level determinism claim, through the real runner pool.

    A >= 2-experiment sweep forces the fork pool (single-id sweeps run
    in-process), so the scale experiment executes inside a daemonic
    worker where frontier sharding falls back to serial — and must still
    reproduce the pooled in-process run bit for bit.
    """
    records = run_experiments(["table1", "scale"], quick=True, jobs=4, use_cache=False)
    by_id = {r.experiment_id: r for r in records}
    rec = by_id["scale"]
    assert rec.status == "ok", rec.error
    assert [tuple(c) for c in rec.comparisons] == list(result.comparisons)
    # The pool round-trips payloads through JSON (tuples -> lists), so
    # compare both sides in canonical JSON form; every number must still
    # be bit-identical.
    canon = lambda obj: json.loads(json.dumps(obj))
    assert canon(rec.data["scale_bench"]["rows"]) == canon(
        result.data["scale_bench"]["rows"]
    )
    assert canon(rec.data["scale_bench"]["parity"]) == canon(
        result.data["scale_bench"]["parity"]
    )


def test_scale_run_is_deterministic(result):
    again = harness.run("scale", quick=True)
    assert again.comparisons == result.comparisons  # bit-identical
    assert again.rendered == result.rendered


# ---------------------------------------------------------------------------
# scripts/check_bench.py --scale gate logic (on the real run's data)
# ---------------------------------------------------------------------------


def _load_check_bench():
    """Import scripts/check_bench.py (scripts/ is not a package)."""
    import importlib.util

    path = REPO_ROOT / "scripts" / "check_bench.py"
    spec = importlib.util.spec_from_file_location("check_bench_scale", path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


check_bench = _load_check_bench()


def _artifact(result):
    bench = json.loads(json.dumps(result.data["scale_bench"]))
    return {
        "run_id": "t",
        "calibration_hash": calibration_hash(),
        "rows": bench["rows"],
        "parity": bench["parity"],
    }


def test_scale_gate_passes_on_healthy_artifact(result):
    baseline = json.loads(BASELINE.read_text())
    assert check_bench.check_scale(_artifact(result), baseline) == []


def test_scale_gate_flags_lossless_violation(result):
    art = _artifact(result)
    art["parity"]["lossless_ok"] = False
    failures = check_bench.check_scale(art, json.loads(BASELINE.read_text()))
    assert any("bit-exact" in f for f in failures)


def test_scale_gate_flags_parity_drift(result):
    art = _artifact(result)
    art["parity"]["completion_max_rel"] = 0.5
    failures = check_bench.check_scale(art, json.loads(BASELINE.read_text()))
    assert any("ceiling" in f for f in failures)


def test_scale_gate_flags_golden_row_drift(result):
    art = _artifact(result)
    art["rows"][0]["teps"] += 1.0
    failures = check_bench.check_scale(art, json.loads(BASELINE.read_text()))
    assert any("golden row" in f and "teps" in f for f in failures)


def test_scale_gate_flags_missing_required_torus(result):
    art = _artifact(result)
    art["rows"] = [r for r in art["rows"] if tuple(r["dims"]) != (12, 12, 12)]
    failures = check_bench.check_scale(art, json.loads(BASELINE.read_text()))
    assert any("required torus" in f for f in failures)


def test_scale_gate_flags_calibration_mismatch(result):
    art = _artifact(result)
    art["calibration_hash"] = "deadbeef0000"
    failures = check_bench.check_scale(art, json.loads(BASELINE.read_text()))
    assert any("calibration" in f for f in failures)


def test_scale_gate_cli_roundtrip(result, tmp_path, capsys):
    art_path = tmp_path / "BENCH_scale.json"
    art_path.write_text(json.dumps(_artifact(result)))
    rc = check_bench.main([str(art_path), "--scale"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "parity" in out and "ok" in out

    broken = _artifact(result)
    broken["parity"]["within_tolerance"] = False
    art_path.write_text(json.dumps(broken))
    rc = check_bench.main([str(art_path), "--scale"])
    assert rc == 1
