"""Regression: the calibration dict/hash are computed once per process.

Before the hoist, ``cache_key`` and ``calibration_hash`` each re-walked
``asdict(DEFAULT_CONFIG)`` on every call — once per cached-experiment
lookup and, worst, once per selftest backend-grid repeat.  The memo in
:mod:`repro.bench.runner` pins both: after the first computation no call
path may walk the config dataclass again, and the memoised values must
be byte-identical to the direct computation.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict

import repro.bench.runner as runner
from repro.apenet.config import DEFAULT_CONFIG
from repro.bench.runner import RunRecord


def _counting_asdict(counter):
    real = asdict

    def wrapper(obj, *args, **kwargs):
        if obj is DEFAULT_CONFIG:
            counter["n"] += 1
        return real(obj, *args, **kwargs)

    return wrapper


def _reset_memos(monkeypatch, counter):
    monkeypatch.setattr(runner, "_calibration_dict_memo", None)
    monkeypatch.setattr(runner, "_calibration_hash_memo", None)
    monkeypatch.setattr(runner, "asdict", _counting_asdict(counter))


def test_calibration_walked_once_across_hash_and_cache_keys(monkeypatch):
    counter = {"n": 0}
    _reset_memos(monkeypatch, counter)
    hashes = {runner.calibration_hash() for _ in range(5)}
    keys = {runner.cache_key(exp, quick) for exp in ("selftest", "scale")
            for quick in (True, False) for _ in range(3)}
    assert counter["n"] == 1, (
        f"asdict(DEFAULT_CONFIG) walked {counter['n']} times — the memo "
        "in repro.bench.runner regressed"
    )
    assert len(hashes) == 1
    assert len(keys) == 4  # (experiment, quick) combinations stay distinct


def test_artifact_writers_do_not_rewalk_the_config(monkeypatch, tmp_path):
    """One run producing both artifacts stamps the hash from the memo."""
    counter = {"n": 0}
    _reset_memos(monkeypatch, counter)

    selftest = RunRecord(
        experiment_id="selftest",
        data={"kernel_bench": {
            "heap": {"events": 10, "wall_s": 0.1, "events_per_s": 100.0,
                     "speedup_vs_heap": 1.0, "scenarios": {}},
        }},
    )
    scale = RunRecord(
        experiment_id="scale",
        data={"scale_bench": {"rows": [], "parity": {"lossless_ok": True},
                              "dead_links": [], "golden_dims": []}},
    )
    runner.write_kernel_bench([selftest], tmp_path / "k.json", run_id="t")
    runner.write_scale_bench([scale], tmp_path / "s.json", run_id="t")
    for _ in range(3):
        runner.calibration_hash()
    assert counter["n"] == 1

    k = json.loads((tmp_path / "k.json").read_text())
    s = json.loads((tmp_path / "s.json").read_text())
    assert k["calibration_hash"] == s["calibration_hash"] == runner.calibration_hash()


def test_memoised_hash_equals_direct_computation(monkeypatch):
    counter = {"n": 0}
    _reset_memos(monkeypatch, counter)
    blob = json.dumps(
        asdict(DEFAULT_CONFIG), sort_keys=True, separators=(",", ":")
    )
    expected = hashlib.sha256(blob.encode()).hexdigest()[:12]
    assert runner.calibration_hash() == expected
