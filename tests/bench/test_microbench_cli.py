"""Tests for the micro-benchmark helpers and the CLI entry point."""

import pytest

from repro.apenet import BufferKind
from repro.bench.__main__ import main as bench_main
from repro.bench.microbench import (
    bidirectional_bandwidth,
    default_message_count,
    unidirectional_bandwidth,
)
from repro.units import kib, mib

H, G = BufferKind.HOST, BufferKind.GPU


def test_default_message_count_bounds():
    assert default_message_count(32) == 96
    assert default_message_count(mib(4)) == 8
    assert 8 <= default_message_count(kib(64)) <= 96


def test_bidirectional_aggregate_vs_unidirectional():
    uni = unidirectional_bandwidth(H, H, mib(1), n_messages=4).bandwidth
    bi = bidirectional_bandwidth(H, H, mib(1), n_messages=4).bandwidth
    # Aggregate must exceed one direction but cannot exceed 2x.
    assert uni < bi <= 2.02 * uni


def test_bidir_per_direction_matches_loopback():
    """The paper's §IV prediction, kept as a regression."""
    bi = bidirectional_bandwidth(G, G, mib(1), n_messages=4).MBps
    loop = unidirectional_bandwidth(G, G, mib(1), n_messages=4, loopback=True).MBps
    assert bi / 2 == pytest.approx(loop, rel=0.05)


def test_cli_list(capsys):
    assert bench_main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "table1" in out and "fig12" in out and "ablation_bar1" in out


def test_cli_runs_single_experiment(capsys):
    assert bench_main(["fig8"]) == 0
    out = capsys.readouterr().out
    assert "APEnet+ latency" in out
    assert "Paper-vs-measured summary" in out
