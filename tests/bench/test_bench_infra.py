"""Unit tests for the benchmark infrastructure: tables, figures, registry."""

import pytest

from repro.bench import (
    ExperimentResult,
    Series,
    all_ids,
    ascii_plot,
    fmt_ratio,
    get,
    render_series_table,
    render_table,
    series_to_csv,
)


# ---------------------------------------------------------------------------
# Tables
# ---------------------------------------------------------------------------


def test_render_table_alignment():
    out = render_table(["a", "long-header"], [[1, 2.5], ["xy", None]])
    lines = out.splitlines()
    assert len({len(line) for line in lines}) <= 2  # header/sep/rows align
    assert "n.a." in out
    assert "2.50" in out


def test_render_table_with_title():
    out = render_table(["x"], [[1]], title="My Table")
    assert out.splitlines()[0] == "My Table"


def test_fmt_values():
    out = render_table(["v"], [[1234567.0], [0.0001], [0.0]])
    assert "1.23e+06" in out
    assert "1.00e-04" in out


def test_fmt_ratio():
    assert fmt_ratio(110, 100) == "+10.0%"
    assert fmt_ratio(90, 100) == "-10.0%"
    assert fmt_ratio(90, None) == ""
    assert fmt_ratio(90, 0) == ""


# ---------------------------------------------------------------------------
# Figures
# ---------------------------------------------------------------------------


def make_series():
    a = Series("alpha")
    b = Series("beta")
    for i, x in enumerate([1024, 2048, 4096]):
        a.add(x, 100.0 * (i + 1))
        b.add(x, 50.0 * (i + 1))
    return [a, b]


def test_series_table_includes_all_points():
    out = render_series_table(make_series())
    assert "alpha" in out and "beta" in out
    assert "1KiB" in out and "4KiB" in out
    assert "300" in out and "150" in out


def test_series_table_handles_missing_points():
    a, b = make_series()
    b.x.pop()
    b.y.pop()
    out = render_series_table([a, b])
    assert "n.a." in out


def test_ascii_plot_renders():
    out = ascii_plot(make_series(), width=40, height=8, title="T")
    assert out.startswith("T")
    assert "o = alpha" in out and "x = beta" in out
    body = "\n".join(out.splitlines()[2:-3])
    assert "o" in body and "x" in body  # markers placed somewhere


def test_ascii_plot_empty():
    assert ascii_plot([Series("none")]) == "(empty plot)"


def test_series_csv():
    csv = series_to_csv(make_series())
    lines = csv.splitlines()
    assert lines[0] == "x,alpha,beta"
    assert lines[1].startswith("1024,")
    assert len(lines) == 4


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


def test_all_paper_artifacts_registered():
    ids = all_ids()
    for required in (
        "table1", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
        "fig10", "table2", "table3", "fig11", "table4", "fig12",
    ):
        assert required in ids, f"{required} missing from the registry"


def test_registry_order_is_paper_order():
    ids = all_ids()
    assert ids.index("table1") < ids.index("fig4") < ids.index("table2")


def test_get_unknown_raises():
    with pytest.raises(KeyError, match="unknown experiment"):
        get("fig99")


def test_experiment_metadata():
    exp = get("table1")
    assert exp.paper_ref == "Table I"
    assert callable(exp.runner)


def test_experiment_result_deviation_math():
    r = ExperimentResult("x", "t", "out", comparisons=[("q", 110.0, 100.0, "u")])
    assert r.deviations() == {"q": pytest.approx(0.1)}


def test_quick_experiment_runs_end_to_end():
    exp = get("fig8")
    result = exp.runner(True)
    assert result.rendered
    assert result.comparisons
    # H-H latency within the calibration envelope.
    hh = dict((n, m) for n, m, p, u in result.comparisons)["H-H @32B"]
    assert 5.0 < hh < 8.5
