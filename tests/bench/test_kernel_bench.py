"""The kernel perf-history pipeline: artifact writer + baseline gate.

Covers ``write_kernel_bench`` (the ``BENCH_kernel.json`` producer behind
``python -m repro.bench selftest --bench-json``) and the gate logic in
``scripts/check_bench.py`` that CI's ``bench-history`` job runs against
the committed baseline — both unit-tested on synthesized records so the
tests never pay for a real benchmark sweep.
"""

import importlib.util
import json
from pathlib import Path

import pytest

from repro.bench.runner import RunRecord, calibration_hash, write_kernel_bench

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def _load_check_bench():
    """Import scripts/check_bench.py (scripts/ is not a package)."""
    path = REPO_ROOT / "scripts" / "check_bench.py"
    spec = importlib.util.spec_from_file_location("check_bench", path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


check_bench = _load_check_bench()


def _backend_block(events=1000, wall_s=0.01, speedup=1.0):
    return {
        "events": events,
        "wall_s": wall_s,
        "events_per_s": events / wall_s,
        "speedup_vs_heap": speedup,
        "scenarios": {
            "mixed 8x100": {"wall_s": wall_s, "events": events, "events_per_s": events / wall_s}
        },
    }


def _selftest_record(heap=None, wheel=None):
    return RunRecord(
        experiment_id="selftest",
        title="Kernel selftest",
        data={
            "kernel_bench": {
                "heap": heap or _backend_block(),
                "wheel": wheel or _backend_block(speedup=1.1),
            }
        },
    )


# ---------------------------------------------------------------------------
# write_kernel_bench
# ---------------------------------------------------------------------------


def test_write_kernel_bench_happy_path(tmp_path):
    out = tmp_path / "BENCH_kernel.json"
    path = write_kernel_bench(
        [RunRecord(experiment_id="latency"), _selftest_record()],
        out,
        quick=True,
        run_id="test-run",
    )
    assert path == out
    doc = json.loads(out.read_text())
    assert doc["run_id"] == "test-run"
    assert doc["mode"] == "quick"
    assert doc["calibration_hash"] == calibration_hash()
    assert set(doc["backends"]) == {"heap", "wheel"}
    wheel = doc["backends"]["wheel"]
    assert wheel["speedup_vs_heap"] == 1.1
    assert wheel["events"] == 1000
    assert "scenarios" in wheel


def test_write_kernel_bench_skips_errored_records(tmp_path):
    bad = _selftest_record()
    bad.status = "error"
    good = _selftest_record(wheel=_backend_block(speedup=2.0))
    write_kernel_bench([bad, good], tmp_path / "b.json")
    doc = json.loads((tmp_path / "b.json").read_text())
    assert doc["backends"]["wheel"]["speedup_vs_heap"] == 2.0


def test_write_kernel_bench_requires_selftest_data(tmp_path):
    with pytest.raises(ValueError, match="selftest"):
        write_kernel_bench(
            [RunRecord(experiment_id="latency"), RunRecord(experiment_id="faults")],
            tmp_path / "b.json",
        )
    assert not (tmp_path / "b.json").exists()


def test_calibration_hash_is_stable_and_short():
    h = calibration_hash()
    assert h == calibration_hash()
    assert len(h) == 12
    int(h, 16)  # hex string


# ---------------------------------------------------------------------------
# check_bench gate logic
# ---------------------------------------------------------------------------


def _artifact(heap_eps=500_000.0, wheel_eps=550_000.0, events=1000, cal=None):
    mk = lambda eps, speedup: {
        "events": events,
        "wall_s": events / eps,
        "events_per_s": eps,
        "speedup_vs_heap": speedup,
    }
    return {
        "run_id": "t",
        "calibration_hash": cal if cal is not None else calibration_hash(),
        "backends": {
            "heap": mk(heap_eps, 1.0),
            "wheel": mk(wheel_eps, wheel_eps / heap_eps),
        },
    }


def _baseline(heap=400_000, wheel=400_000, max_reg=20, min_speedup=1.0, cal=None):
    return {
        "calibration_hash": cal if cal is not None else calibration_hash(),
        "max_regression_pct": max_reg,
        "min_speedup_vs_heap": min_speedup,
        "backends": {
            "heap": {"events_per_s": heap},
            "wheel": {"events_per_s": wheel},
        },
    }


def test_gate_passes_on_healthy_artifact():
    assert check_bench.check(_artifact(), _baseline()) == []


def test_gate_flags_throughput_regression():
    # 20% of 400k -> floor 320k; 300k is below it.
    failures = check_bench.check(_artifact(wheel_eps=300_000.0), _baseline())
    assert len(failures) == 2  # regression + speedup < 1.0
    assert any("regresses" in f and "wheel" in f for f in failures)


def test_gate_allows_regression_within_tolerance():
    # 350k > the 320k floor, but wheel must still not lose to heap.
    failures = check_bench.check(
        _artifact(heap_eps=340_000.0, wheel_eps=350_000.0), _baseline()
    )
    assert failures == []


def test_gate_flags_wheel_slower_than_heap():
    failures = check_bench.check(
        _artifact(heap_eps=500_000.0, wheel_eps=450_000.0), _baseline()
    )
    assert any("must not lose" in f for f in failures)


def test_gate_flags_event_count_disagreement():
    art = _artifact()
    art["backends"]["wheel"]["events"] += 1
    failures = check_bench.check(art, _baseline())
    assert any("bit-identity" in f for f in failures)


def test_gate_flags_calibration_mismatch():
    failures = check_bench.check(_artifact(cal="deadbeef0000"), _baseline())
    assert any("calibration" in f for f in failures)


def test_gate_flags_missing_backend():
    art = _artifact()
    del art["backends"]["wheel"]
    failures = check_bench.check(art, _baseline())
    assert any("missing baseline backend" in f for f in failures)


def test_gate_rejects_malformed_artifact():
    failures = check_bench.check({"run_id": "t"}, _baseline())
    assert len(failures) == 1
    assert "no per-backend numbers" in failures[0]


def test_check_bench_cli_roundtrip(tmp_path, capsys):
    art_path = tmp_path / "BENCH_kernel.json"
    base_path = tmp_path / "baseline.json"
    art_path.write_text(json.dumps(_artifact()))
    base_path.write_text(json.dumps(_baseline()))
    rc = check_bench.main([str(art_path), "--baseline", str(base_path)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "ok" in out

    art_path.write_text(json.dumps(_artifact(wheel_eps=100_000.0)))
    rc = check_bench.main([str(art_path), "--baseline", str(base_path)])
    assert rc == 1


def test_check_bench_cli_unreadable_artifact(tmp_path, capsys):
    with pytest.raises(SystemExit):
        check_bench.main([str(tmp_path / "missing.json")])
    assert "cannot read" in capsys.readouterr().err


def test_committed_baseline_matches_current_calibration():
    """The committed baseline must gate artifacts produced by the current
    cost-model calibration — otherwise every CI run fails at the hash
    check and the baseline was not refreshed with the calibration."""
    baseline = check_bench.load(check_bench.DEFAULT_BASELINE)
    assert baseline["calibration_hash"] == calibration_hash()
    assert set(baseline["backends"]) == {"heap", "wheel"}
    for block in baseline["backends"].values():
        assert block["events_per_s"] > 0
