"""Golden-number regression tests: pin every measured EXPERIMENTS.md row.

The simulator is fully deterministic, so quick-mode experiment results are
bit-exact run to run.  These tests pin the measured value of every
comparison row of the headline experiments with **exact float equality**:
any drift — however small — is a behavioural change of the model and must
be acknowledged by deliberately updating the goldens here (and the tables
in EXPERIMENTS.md).

This is also the fault-layer's zero-fault guarantee in executable form:
the fault-injection machinery of :mod:`repro.faults` threads through the
torus links, PCIe fabric and Nios II, and with no injector attached every
one of these numbers must stay bit-identical to the pre-fault-layer
simulator.
"""

from __future__ import annotations

import pytest

from repro.bench import harness

# {experiment_id: {row_name: (measured, unit)}} — captured from quick-mode
# runs of the seed simulator.  Exact equality, no tolerances.
GOLDEN = {
    "table1": {
        "Host mem read": (2392.7852332203593, "MB/s"),
        "GPU mem read (Fermi/P2P)": (1516.6516994722804, "MB/s"),
        "GPU mem read (Fermi/BAR1)": (149.95779673093617, "MB/s"),
        "GPU mem read (Kepler/P2P)": (1579.4924648254137, "MB/s"),
        "GPU mem read (Kepler/BAR1)": (1596.182546816839, "MB/s"),
        "GPU-to-GPU loop-back": (1064.1423489572019, "MB/s"),
        "Host-to-Host loop-back": (1241.9118210830754, "MB/s"),
    },
    "fig3": {
        "initial delay to first request (us)": (2.9526315789473685, ""),
        "GPU head latency (us)": (2.1135087719298244, ""),
        "sustained data rate (MB/s)": (1390.29065270757, ""),
        "request interval (us)": (2.9540350877192787, ""),
    },
    "fig4": {
        "plateau v1": (674.5521933250164, "MB/s"),
        "plateau v2 w=8K": (1044.177995558353, "MB/s"),
        "plateau v2 w=32K": (1365.0614186867156, "MB/s"),
        "plateau v3 w=128K": (1516.651699472311, "MB/s"),
    },
    # Heisenberg Spin Glass strong scaling (ps/spin).
    "table2": {
        "Ttot NP=1": (924.1760253881995, "ps/spin"),
        "Ttot NP=2": (419.1184879972026, "ps/spin"),
        "Tnet NP=2": (92.04573652200513, "ps/spin"),
        "Ttot NP=4": (205.08189039050387, "ps/spin"),
        "Tnet NP=4": (92.0457365220052, "ps/spin"),
        "Ttot NP=8": (103.06709289550781, "ps/spin"),
        "Tnet NP=8": (92.0449139779074, "ps/spin"),
    },
    # Graph500 BFS traversed edges per second.
    "table4": {
        "APEnet TEPS NP=1 (scale 16)": (65726363.97888251, "TEPS"),
        "IB TEPS NP=1 (scale 16)": (60955615.54427928, "TEPS"),
        "APEnet TEPS NP=2 (scale 16)": (83384445.53040871, "TEPS"),
        "IB TEPS NP=2 (scale 16)": (77445454.62401867, "TEPS"),
        "APEnet TEPS NP=4 (scale 16)": (101573710.90891063, "TEPS"),
        "IB TEPS NP=4 (scale 16)": (120146045.17599662, "TEPS"),
        "APEnet TEPS NP=8 (scale 16)": (130750258.53324024, "TEPS"),
        "IB TEPS NP=8 (scale 16)": (178349826.4529464, "TEPS"),
    },
}

_cache: dict[str, object] = {}


def _run(exp_id: str):
    """Each experiment runs once per test session, shared across rows."""
    if exp_id not in _cache:
        _cache[exp_id] = harness.run(exp_id, quick=True)
    return _cache[exp_id]


@pytest.mark.parametrize("exp_id", sorted(GOLDEN))
def test_golden_rows_exact(exp_id):
    result = _run(exp_id)
    measured = {name: (value, unit) for name, value, _paper, unit in result.comparisons}
    assert set(measured) == set(GOLDEN[exp_id]), (
        "comparison row set changed — update GOLDEN deliberately"
    )
    mismatches = {
        name: (measured[name], golden)
        for name, golden in GOLDEN[exp_id].items()
        if measured[name] != golden
    }
    assert not mismatches, (
        f"{exp_id} drifted from golden values (measured, golden): {mismatches}"
    )
