"""Golden-number regression tests for the `recovery` experiment.

Same contract as test_golden_numbers.py: the simulator is deterministic,
so every measured row of the quick-mode `recovery` run is pinned with
exact float equality.  Any drift is a behavioural change of the recovery
layer (detection timing, detour routing, replay protocol, degradation
thresholds) and must be acknowledged by updating these goldens and the
EXPERIMENTS.md table together.
"""

from __future__ import annotations

import pytest

from repro.bench import harness

GOLDEN = {
    "H-H goodput pre-kill": (684.4096384558294, "MB/s"),
    "H-H recovery gap": (420.3416240601513, "us"),
    "H-H goodput post-recovery": (684.4096384558327, "MB/s"),
    "H-H time-to-detect": (20.153142857142957, "us"),
    "H-H replays": (1.0, ""),
    "H-H packets rerouted": (157.0, ""),
    "G-G P2P goodput pre-kill": (667.8004700191555, "MB/s"),
    "G-G P2P recovery gap": (422.72320300751915, "us"),
    "G-G P2P goodput post-recovery": (667.8004700191544, "MB/s"),
    "G-G P2P time-to-detect": (20.153142857142957, "us"),
    "G-G P2P replays": (1.0, ""),
    "G-G P2P packets rerouted": (159.0, ""),
    "G-G staged goodput pre-kill": (551.6657527393784, "MB/s"),
    "G-G staged recovery gap": (443.38267669173075, "us"),
    "G-G staged goodput post-recovery": (551.6657527393791, "MB/s"),
    "G-G staged time-to-detect": (20.153142857142957, "us"),
    "G-G staged replays": (1.0, ""),
    "G-G staged packets rerouted": (177.0, ""),
    "HSG energy across kill": (-196.48655629671896, ""),
    "HSG link deaths": (1.0, ""),
    "HSG replays": (1.0, ""),
    "partition unreachable verdicts": (3.0, ""),
    "partition link deaths": (2.0, ""),
    "degraded goodput": (856.0852314233138, "MB/s"),
    "degraded puts": (32.0, ""),
    "degraded fraction": (0.8, ""),
    "mode switches": (1.0, ""),
}


@pytest.fixture(scope="module")
def result():
    return harness.run("recovery", quick=True)


def test_golden_rows_exact(result):
    measured = {name: (value, unit) for name, value, _paper, unit in result.comparisons}
    assert set(measured) == set(GOLDEN), (
        "comparison row set changed — update GOLDEN deliberately"
    )
    mismatches = {
        name: (measured[name], golden)
        for name, golden in GOLDEN.items()
        if measured[name] != golden
    }
    assert not mismatches, (
        f"recovery drifted from golden values (measured, golden): {mismatches}"
    )


def test_goodput_dips_then_recovers(result):
    """The ISSUE-level shape: a visible gap, then full recovery."""
    rows = {name: value for name, value, _p, _u in result.comparisons}
    for path in ("H-H", "G-G P2P", "G-G staged"):
        pre = rows[f"{path} goodput pre-kill"]
        post = rows[f"{path} goodput post-recovery"]
        gap = rows[f"{path} recovery gap"]
        detect = rows[f"{path} time-to-detect"]
        assert pre > 0 and post > 0
        # The recovery gap dwarfs a normal inter-delivery interval...
        assert gap * 1000.0 > 3 * (65536 / (pre / 1000.0))
        # ...and the detoured steady state matches the pre-kill rate to 1%
        # (the reverse ring channel has identical capacity).
        assert abs(post - pre) / pre < 0.01
        assert 0 < detect < gap
        assert rows[f"{path} replays"] >= 1
        assert rows[f"{path} packets rerouted"] > 0


def test_hsg_and_partition_and_degradation(result):
    rows = {name: value for name, value, _p, _u in result.comparisons}
    assert rows["HSG link deaths"] >= 1
    assert rows["HSG replays"] >= 1
    assert rows["partition unreachable verdicts"] >= 1
    assert rows["partition link deaths"] == 2.0
    assert rows["mode switches"] >= 1
    assert 0.0 < rows["degraded fraction"] < 1.0
    assert "spins identical" in result.rendered
    assert "unreachable" in result.rendered


def test_recovery_run_is_deterministic(result):
    again = harness.run("recovery", quick=True)
    assert again.comparisons == result.comparisons  # bit-identical
    assert again.rendered == result.rendered
