"""Tests for the post-run cluster diagnostics."""


from repro.apenet import BufferKind
from repro.bench.diagnostics import cluster_report, render_report
from repro.bench.microbench import make_cluster
from repro.units import kib


def run_traffic(sim, cluster, nbytes=kib(64), gpu=False):
    a, b = cluster.nodes[0], cluster.nodes[1]
    if gpu:
        src = a.gpu.alloc(nbytes).addr
        dst = b.gpu.alloc(nbytes).addr
        kind = BufferKind.GPU
    else:
        src = a.runtime.host_alloc(nbytes).addr
        dst = b.runtime.host_alloc(nbytes).addr
        kind = BufferKind.HOST

    def proc():
        yield from b.endpoint.register(dst, nbytes)
        if gpu:
            yield from a.endpoint.register(src, nbytes)
        done = yield from a.endpoint.put(1, src, dst, nbytes, src_kind=kind)
        yield done
        yield from b.endpoint.wait_event()

    sim.run_process(proc())


def test_report_counts_traffic():
    sim, cluster = make_cluster(2, 1)
    run_traffic(sim, cluster, kib(64))
    diags = cluster_report(cluster)
    sender, receiver = diags
    assert sender.tx_host_bytes == kib(64)
    assert receiver.rx_bytes == kib(64)
    assert receiver.rx_packets == 16
    assert receiver.rx_dropped == 0
    # The user buffer plus the endpoint's GET firmware mailbox.
    assert receiver.registered_buffers == 2
    assert receiver.nios_utilization > 0


def test_dominant_task_is_rx_on_receiver():
    sim, cluster = make_cluster(2, 1)
    run_traffic(sim, cluster, kib(256), gpu=True)
    diags = cluster_report(cluster)
    assert diags[1].dominant_task == "rx"
    assert diags[0].dominant_task == "gpu_tx"
    assert diags[0].tx_gpu_bytes == kib(256)


def test_fifo_peaks_recorded():
    sim, cluster = make_cluster(2, 1)
    run_traffic(sim, cluster, kib(256))
    diags = cluster_report(cluster)
    assert diags[0].tx_fifo_peak > 0
    assert diags[1].rx_fifo_peak > 0
    assert diags[1].rx_fifo_peak <= cluster.config.rx_fifo_bytes


def test_render_report_mentions_links():
    sim, cluster = make_cluster(2, 1)
    run_traffic(sim, cluster)
    out = render_report(cluster)
    assert "Per-node firmware/engine counters" in out
    assert "Busiest torus links" in out
    assert "n0.ape->n1.ape" in out


def test_report_on_idle_cluster():
    sim, cluster = make_cluster(2, 1)
    out = render_report(cluster)
    assert "(no traffic)" in out
