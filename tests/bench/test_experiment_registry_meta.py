"""Meta-tests over the experiment registry: every entry is well-formed."""

import pytest

from repro.bench import all_ids, get


def test_every_experiment_has_paper_ref_and_title():
    for exp_id in all_ids():
        exp = get(exp_id)
        assert exp.title, exp_id
        assert exp.paper_ref, exp_id
        assert exp.id == exp_id


def test_extension_experiments_registered():
    ids = all_ids()
    for required in (
        "ablation_window", "ablation_nios", "ablation_bar1", "ablation_torus",
        "ablation_scaleout", "ablation_memcpy", "ablation_cache",
        "ext_bidir", "ext_hsg2d", "ext_get",
    ):
        assert required in ids, required


def test_runner_docstrings_exist():
    """Each runner documents what it reproduces."""
    for exp_id in all_ids():
        assert get(exp_id).runner.__doc__, f"{exp_id} runner lacks a docstring"


@pytest.mark.parametrize("exp_id", ["ext_get", "ablation_bar1"])
def test_cheap_extension_experiments_run(exp_id):
    result = get(exp_id).runner(True)
    assert result.rendered
