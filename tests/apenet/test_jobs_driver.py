"""Tests for TX job fragmentation and the kernel-driver model."""

import numpy as np
import pytest

from repro.apenet import BufferKind, fragment_message
from repro.apenet.jobs import TxJob
from repro.bench.microbench import make_cluster
from repro.net.packet import MAX_PACKET_PAYLOAD, MessageInfo
from repro.sim import Event
from repro.units import kib, us


def test_fragment_message_exact_multiple():
    frags = fragment_message(3 * MAX_PACKET_PAYLOAD)
    assert frags == [(0, 4096), (4096, 4096), (8192, 4096)]


def test_fragment_message_remainder():
    frags = fragment_message(5000)
    assert frags == [(0, 4096), (4096, 904)]
    assert sum(n for _, n in frags) == 5000


def test_fragment_message_small():
    assert fragment_message(1) == [(0, 1)]
    with pytest.raises(ValueError):
        fragment_message(0)


def make_job(sim, nbytes=8192, data=None):
    msg = MessageInfo(1, nbytes, 0, 1, 0x5000)
    return TxJob(
        message=msg,
        src_addr=0x1000,
        src_kind=BufferKind.HOST,
        dst_coord=(1, 0, 0),
        src_coord=(0, 0, 0),
        local_done=Event(sim),
        data=data,
    )


def test_txjob_auto_fragments():
    sim, cluster = make_cluster(2, 1)
    job = make_job(sim, 10_000)
    assert len(job.packets) == 3
    assert job.descriptor_bytes == 3 * 64


def test_txjob_slice_data():
    sim, cluster = make_cluster(2, 1)
    data = np.arange(8192, dtype=np.uint8)
    job = make_job(sim, 8192, data=data)
    chunk = job.slice_data(4096, 100)
    np.testing.assert_array_equal(chunk, data[4096:4196])
    assert make_job(sim, 8192).slice_data(0, 10) is None


def test_driver_tx_queue_backpressure():
    """With a tiny descriptor ring, a burst of PUTs serializes."""
    sim, cluster = make_cluster(2, 1, tx_queue_slots=2)
    a, b = cluster.nodes
    src = a.runtime.host_alloc(kib(64))
    dst = b.runtime.host_alloc(kib(64))
    posted = []

    def receiver():
        yield from b.endpoint.register(dst.addr, kib(64))
        for _ in range(6):
            yield from b.endpoint.wait_event()

    def sender():
        yield sim.timeout(us(10))
        for i in range(6):
            yield from a.endpoint.put(
                1, src.addr, dst.addr, kib(16), src_kind=BufferKind.HOST
            )
            posted.append(sim.now)

    rx = sim.process(receiver())
    sim.process(sender())
    sim.run()
    assert rx.processed
    # The first two posts fly; later ones wait for ring slots.
    gaps = [b - a for a, b in zip(posted, posted[1:])]
    assert gaps[0] < us(3)
    assert max(gaps[2:]) > us(8)


def test_driver_counts_submissions():
    sim, cluster = make_cluster(2, 1)
    a, b = cluster.nodes
    src = a.runtime.host_alloc(256)
    dst = b.runtime.host_alloc(256)

    def proc():
        yield from b.endpoint.register(dst.addr, 256)
        for _ in range(3):
            done = yield from a.endpoint.put(
                1, src.addr, dst.addr, 256, src_kind=BufferKind.HOST
            )
            yield done
        yield from b.endpoint.wait_event()

    sim.run_process(proc())
    assert a.endpoint.driver.messages_submitted == 3
    assert a.endpoint.puts_posted == 3
