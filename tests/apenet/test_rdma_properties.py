"""Property-based end-to-end tests of the RDMA data plane.

The strongest invariant in the repository: for ANY mix of message sizes,
sources, destinations, and buffer kinds, every byte PUT into the network
arrives exactly once, in the right place, with no deadlock.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apenet import BufferKind
from repro.bench.microbench import make_cluster
from repro.units import us


@given(
    sizes=st.lists(st.integers(1, 40_000), min_size=1, max_size=6),
    gpu_src=st.booleans(),
    gpu_dst=st.booleans(),
)
@settings(max_examples=25, deadline=None)
def test_puts_conserve_bytes(sizes, gpu_src, gpu_dst):
    """All messages delivered exactly once, payloads intact."""
    sim, cluster = make_cluster(2, 1)
    a, b = cluster.nodes
    total = sum(sizes)
    offsets = np.cumsum([0] + sizes[:-1]).tolist()

    if gpu_src:
        src = a.gpu.alloc(total)
    else:
        src = a.runtime.host_alloc(total)
    if gpu_dst:
        dst = b.gpu.alloc(total)
    else:
        dst = b.runtime.host_alloc(total)
    rng = np.random.default_rng(42)
    src.data[:] = rng.integers(0, 256, total, dtype=np.uint8)
    kind = BufferKind.GPU if gpu_src else BufferKind.HOST

    def receiver():
        yield from b.endpoint.register(dst.addr, total)
        for _ in sizes:
            yield from b.endpoint.wait_event()

    def sender():
        yield sim.timeout(us(10))
        if gpu_src:
            yield from a.endpoint.register(src.addr, total)
        for off, n in zip(offsets, sizes):
            yield from a.endpoint.put(
                1, src.addr + off, dst.addr + off, n, src_kind=kind
            )

    rx = sim.process(receiver())
    sim.process(sender())
    sim.run()
    assert rx.processed, "deadlock: receiver never completed"
    np.testing.assert_array_equal(dst.data, src.data)
    assert b.card.rx.bytes_received == total
    assert b.card.rx.packets_dropped == 0


@given(
    pattern=st.lists(
        st.tuples(st.integers(0, 7), st.integers(0, 7), st.integers(64, 16_384)),
        min_size=2,
        max_size=10,
    ),
)
@settings(max_examples=15, deadline=None)
def test_random_traffic_on_torus_never_deadlocks(pattern):
    """Arbitrary src->dst messages on the 4x2 torus all arrive."""
    sim, cluster = make_cluster(4, 2)
    # One receive buffer per node, large enough for anything.
    bufs = [n.runtime.host_alloc(20_000) for n in cluster.nodes]
    srcs = [n.runtime.host_alloc(20_000) for n in cluster.nodes]
    expected = [0] * 8
    for s, d, n in pattern:
        if s != d:
            expected[d] += 1

    def node_proc(rank):
        node = cluster.nodes[rank]
        yield from node.endpoint.register(bufs[rank].addr, 20_000)
        yield sim.timeout(us(20))
        for s, d, n in pattern:
            if s == rank and d != rank:
                yield from node.endpoint.put(
                    d, srcs[rank].addr, bufs[d].addr, n, src_kind=BufferKind.HOST
                )
        for _ in range(expected[rank]):
            yield from node.endpoint.wait_event()

    procs = [sim.process(node_proc(r)) for r in range(8)]
    sim.run()
    assert all(p.processed for p in procs), "torus deadlock or lost message"


@given(n_buffers=st.integers(1, 30))
@settings(max_examples=10, deadline=None)
def test_buflist_scan_cost_visible_in_latency(n_buffers):
    """More registrations => monotonically slower RX (the linear scan)."""
    sim, cluster = make_cluster(2, 1)
    a, b = cluster.nodes
    pads = [b.runtime.host_alloc(4096) for _ in range(n_buffers)]
    hb = b.runtime.host_alloc(64)
    ha = a.runtime.host_alloc(64)
    out = {}

    def nb():
        for p in pads:
            yield from b.endpoint.register(p.addr, 4096)
        yield from b.endpoint.register(hb.addr, 64)
        yield from b.endpoint.wait_event()
        out["arrived"] = sim.now

    def na():
        yield from a.endpoint.register(ha.addr, 64)
        yield sim.timeout(us(500))
        out["t0"] = sim.now
        yield from a.endpoint.put(1, ha.addr, hb.addr, 32, src_kind=BufferKind.HOST)

    sim.process(nb())
    sim.process(na())
    sim.run()
    one_way = out["arrived"] - out["t0"]
    cfg = cluster.config
    # The scan visits n_buffers + 1 entries: the extra cost is linear.
    extra = n_buffers * cfg.rx_buflist_per_entry
    assert one_way > us(5) + extra - 100
