"""End-to-end APEnet+ cluster tests: PUTs across the torus, all buffer combos."""

import numpy as np
import pytest

from repro.apenet import BufferKind
from repro.net import TorusShape, build_apenet_cluster
from repro.sim import Simulator
from repro.units import kib, mib, us


def build(nx=2, ny=1, **cfg_kw):
    from repro.apenet import DEFAULT_CONFIG

    sim = Simulator()
    config = DEFAULT_CONFIG.with_(**cfg_kw) if cfg_kw else DEFAULT_CONFIG
    cluster = build_apenet_cluster(sim, TorusShape(nx, ny, 1), config)
    return sim, cluster


def test_cluster_composition():
    sim, cluster = build(4, 2)
    assert len(cluster) == 8
    # Cluster I detail: all Fermi 2050 but one 2070.
    names = [n.gpu.spec.name for n in cluster.nodes]
    assert names.count("Tesla C2070") == 1
    assert names.count("Tesla C2050") == 7
    # 32 directed links on a 4x2 torus.
    assert len(cluster.links) == 32


def test_host_to_host_put_delivers_data():
    sim, cluster = build()
    n0, n1 = cluster.nodes
    src = n0.runtime.host_alloc(kib(8))
    dst = n1.runtime.host_alloc(kib(8))
    src.data[:] = np.arange(kib(8), dtype=np.uint8) % 251

    def receiver():
        yield from n1.endpoint.register(dst.addr, kib(8))
        rec = yield from n1.endpoint.wait_event()
        return rec

    def sender():
        yield sim.timeout(us(5))  # let the receiver register
        local_done = yield from n0.endpoint.put(
            1, src.addr, dst.addr, kib(8), src_kind=BufferKind.HOST, tag="t1"
        )
        yield local_done

    recv_proc = sim.process(receiver())
    sim.process(sender())
    sim.run()
    rec = recv_proc.value
    assert rec.nbytes == kib(8)
    assert rec.src_rank == 0
    assert rec.tag == "t1"
    np.testing.assert_array_equal(dst.data, src.data)


def test_gpu_to_gpu_put_delivers_data():
    sim, cluster = build()
    n0, n1 = cluster.nodes
    src = n0.gpu.alloc(kib(16))
    dst = n1.gpu.alloc(kib(16))
    src.data[:] = 7

    def receiver():
        yield from n1.endpoint.register(dst.addr, kib(16))
        rec = yield from n1.endpoint.wait_event()
        return rec

    def sender():
        yield sim.timeout(us(5))
        yield from n0.endpoint.register(src.addr, kib(16))
        done = yield from n0.endpoint.put(
            1, src.addr, dst.addr, kib(16), src_kind=BufferKind.GPU
        )
        yield done

    recv = sim.process(receiver())
    sim.process(sender())
    sim.run()
    assert recv.value.nbytes == kib(16)
    assert dst.data.min() == 7


def test_host_to_gpu_and_gpu_to_host():
    sim, cluster = build()
    n0, n1 = cluster.nodes
    hsrc = n0.runtime.host_alloc(kib(4))
    gdst = n1.gpu.alloc(kib(4))
    gsrc = n1.gpu.alloc(kib(4))
    hdst = n0.runtime.host_alloc(kib(4))
    hsrc.data[:] = 5
    gsrc.data[:] = 9

    def node1():
        yield from n1.endpoint.register(gdst.addr, kib(4))
        yield from n1.endpoint.wait_event()  # H->G arrival
        done = yield from n1.endpoint.put(
            0, gsrc.addr, hdst.addr, kib(4), src_kind=BufferKind.GPU
        )
        yield done

    def node0():
        yield from n0.endpoint.register(hdst.addr, kib(4))
        yield sim.timeout(us(5))
        done = yield from n0.endpoint.put(
            1, hsrc.addr, gdst.addr, kib(4), src_kind=BufferKind.HOST
        )
        yield done
        yield from n0.endpoint.wait_event()  # G->H arrival

    sim.process(node0())
    sim.process(node1())
    sim.run()
    assert gdst.data.min() == 5
    assert hdst.data.min() == 9


def test_unregistered_destination_drops_packets():
    sim, cluster = build()
    n0, n1 = cluster.nodes
    src = n0.runtime.host_alloc(kib(4))

    def sender():
        done = yield from n0.endpoint.put(
            1, src.addr, 0x5_0000_0000, kib(4), src_kind=BufferKind.HOST
        )
        yield done
        yield sim.timeout(us(50))

    sim.run_process(sender())
    assert n1.card.rx.packets_dropped == 1
    assert n1.card.rx.packets_processed == 0


def test_loopback_put_to_self():
    sim, cluster = build()
    n0 = cluster.nodes[0]
    src = n0.runtime.host_alloc(kib(4))
    dst = n0.runtime.host_alloc(kib(4))
    src.data[:] = 3

    def proc():
        yield from n0.endpoint.register(dst.addr, kib(4))
        done = yield from n0.endpoint.put(
            0, src.addr, dst.addr, kib(4), src_kind=BufferKind.HOST
        )
        yield done
        rec = yield from n0.endpoint.wait_event()
        return rec

    rec = sim.run_process(proc())
    assert rec.nbytes == kib(4)
    assert dst.data.min() == 3


def test_multi_hop_route_through_torus():
    sim, cluster = build(4, 2)
    n0 = cluster.nodes[0]
    n5 = cluster.nodes[5]  # coord (1,1): 2 hops from (0,0)
    src = n0.runtime.host_alloc(kib(4))
    dst = n5.runtime.host_alloc(kib(4))
    src.data[:] = 77

    def proc():
        yield from n5.endpoint.register(dst.addr, kib(4))
        done = yield from n0.endpoint.put(
            5, src.addr, dst.addr, kib(4), src_kind=BufferKind.HOST
        )
        yield done
        yield sim.timeout(us(50))

    sim.run_process(proc())
    assert dst.data.min() == 77
    # The intermediate node forwarded but did not deliver.
    mid_rank = cluster.shape.rank((1, 0, 0))
    mid = cluster.nodes[mid_rank]
    assert mid.card.router.packets_forwarded >= 1
    assert mid.card.rx.packets_processed == 0


def test_put_without_kind_flag_costs_pointer_query():
    sim, cluster = build()
    n0, n1 = cluster.nodes
    src = n0.runtime.host_alloc(256)
    dst = n1.runtime.host_alloc(256)

    def run(with_flag):
        t0 = sim.now

        def proc():
            kw = {"src_kind": BufferKind.HOST} if with_flag else {}
            yield from n0.endpoint.put(1, src.addr, dst.addr, 256, **kw)
            return sim.now - t0

        return sim.run_process(proc())

    t_flag = run(True)
    t_query = run(False)
    assert t_query - t_flag == pytest.approx(
        n0.runtime.costs.attribute_query_cost, rel=0.01
    )


def test_gpu_source_auto_registers_mapping():
    sim, cluster = build()
    n0, n1 = cluster.nodes
    src = n0.gpu.alloc(kib(8))
    dst = n1.runtime.host_alloc(kib(8))

    def proc():
        yield from n1.endpoint.register(dst.addr, kib(8))
        assert not n0.card.gpu_v2p.table(0).is_mapped(src.addr)
        done = yield from n0.endpoint.put(
            1, src.addr, dst.addr, kib(8), src_kind=BufferKind.GPU
        )
        yield done
        yield sim.timeout(us(100))

    sim.run_process(proc())
    # "the buffer mapping is automatically done, if necessary" (§IV.A)
    assert n0.card.gpu_v2p.table(0).is_mapped(src.addr)


def test_large_transfer_conservation():
    """1 MiB G-G: every byte arrives exactly once."""
    sim, cluster = build()
    n0, n1 = cluster.nodes
    n = mib(1)
    src = n0.gpu.alloc(n)
    dst = n1.gpu.alloc(n)
    rng = np.random.default_rng(42)
    src.data[:] = rng.integers(0, 256, n, dtype=np.uint8)

    def proc():
        yield from n1.endpoint.register(dst.addr, n)
        yield from n0.endpoint.register(src.addr, n)
        done = yield from n0.endpoint.put(1, src.addr, dst.addr, n, src_kind=BufferKind.GPU)
        yield done
        yield from n1.endpoint.wait_event()

    def waiter():
        yield from proc()

    # Run sender and receiver logic in one process (register first).
    sim.run_process(waiter())
    np.testing.assert_array_equal(dst.data, src.data)
    assert n1.card.rx.bytes_received == n
