"""Tests for the RDMA GET extension (the read half of the RDMA model)."""

import numpy as np
import pytest

from repro.bench.microbench import make_cluster
from repro.units import kib, us


def setup_pair(remote_gpu=True, nbytes=kib(8)):
    sim, cluster = make_cluster(2, 1)
    a, b = cluster.nodes
    if remote_gpu:
        remote = b.gpu.alloc(nbytes)
    else:
        remote = b.runtime.host_alloc(nbytes)
    local = a.runtime.host_alloc(nbytes)
    return sim, cluster, a, b, remote, local


@pytest.mark.parametrize("remote_gpu", [True, False])
def test_get_fetches_remote_data(remote_gpu):
    sim, cluster, a, b, remote, local = setup_pair(remote_gpu)
    remote.data[:] = np.arange(kib(8), dtype=np.uint8) % 201

    def proc():
        yield from b.endpoint.register(remote.addr, kib(8))
        yield from a.endpoint.register(local.addr, kib(8))
        rec = yield from a.endpoint.get(1, remote.addr, local.addr, kib(8))
        return rec

    rec = sim.run_process(proc())
    np.testing.assert_array_equal(local.data, remote.data)
    assert rec.nbytes == kib(8)
    assert a.endpoint.gets_posted == 1


def test_get_into_gpu_destination():
    sim, cluster = make_cluster(2, 1)
    a, b = cluster.nodes
    remote = b.runtime.host_alloc(kib(4))
    remote.data[:] = 9
    local = a.gpu.alloc(kib(4))

    def proc():
        yield from b.endpoint.register(remote.addr, kib(4))
        yield from a.endpoint.register(local.addr, kib(4))
        yield from a.endpoint.get(1, remote.addr, local.addr, kib(4))

    sim.run_process(proc())
    assert local.data.min() == 9


def test_get_latency_is_about_one_round_trip():
    """GET = request one way + PUT back: ~2x the one-way PUT latency."""
    sim, cluster, a, b, remote, local = setup_pair(remote_gpu=False, nbytes=64)

    def proc():
        yield from b.endpoint.register(remote.addr, 64)
        yield from a.endpoint.register(local.addr, 64)
        t0 = sim.now
        yield from a.endpoint.get(1, remote.addr, local.addr, 32)
        return sim.now - t0

    elapsed = sim.run_process(proc())
    assert us(10) < elapsed < us(22)


def test_get_from_unregistered_remote_is_dropped():
    """Invalid GETs vanish (like any unvalidated packet); the requester
    would time out — here we just confirm nothing arrives."""
    sim, cluster, a, b, remote, local = setup_pair(remote_gpu=False)
    state = {}

    def proc():
        # remote NOT registered
        yield from a.endpoint.register(local.addr, kib(8))
        arrival = sim.process(getter())
        yield sim.timeout(us(200))
        state["done"] = arrival.processed

    def getter():
        yield from a.endpoint.get(1, remote.addr, local.addr, kib(8))

    sim.run_process(proc())
    assert state["done"] is False  # still waiting: the GET went nowhere


def test_concurrent_gets_route_to_right_waiters():
    sim, cluster = make_cluster(2, 1)
    a, b = cluster.nodes
    r1 = b.runtime.host_alloc(kib(4))
    r2 = b.runtime.host_alloc(kib(4))
    r1.data[:] = 1
    r2.data[:] = 2
    l1 = a.runtime.host_alloc(kib(4))
    l2 = a.runtime.host_alloc(kib(4))
    done = []

    def setup_then_get():
        yield from b.endpoint.register(r1.addr, kib(4))
        yield from b.endpoint.register(r2.addr, kib(4))
        yield from a.endpoint.register(l1.addr, kib(4))
        yield from a.endpoint.register(l2.addr, kib(4))
        g1 = sim.process(one_get(r1, l1))
        g2 = sim.process(one_get(r2, l2))
        yield sim.all_of([g1, g2])

    def one_get(remote, local):
        yield from a.endpoint.get(1, remote.addr, local.addr, kib(4))
        done.append(local)

    sim.run_process(setup_then_get())
    assert len(done) == 2
    assert l1.data.min() == 1 and l1.data.max() == 1
    assert l2.data.min() == 2 and l2.data.max() == 2


def test_get_requires_linked_peers():
    from repro.apenet import ApenetCard, ApenetEndpoint
    from repro.cuda import CudaRuntime
    from repro.net.topology import TorusShape
    from repro.pcie import plx_platform
    from repro.sim import Simulator

    sim = Simulator()
    plat = plx_platform(sim)
    rt = CudaRuntime(sim, plat)
    card = ApenetCard(sim, "solo", (0, 0, 0), TorusShape(1, 1, 1))
    plat.attach(card, "nic")
    ep = ApenetEndpoint(card, rt)
    with pytest.raises(RuntimeError, match="link_peers"):
        # get() is a generator: the error surfaces on first step.
        next(ep.get(0, 0x1000, 0x2000, 64))
