"""Error-path tests for the RDMA API and card engines."""

import pytest

from repro.apenet import BufferKind
from repro.bench.microbench import make_cluster
from repro.units import kib, us


def test_put_to_invalid_rank_raises():
    sim, cluster = make_cluster(2, 1)
    a = cluster.nodes[0]
    src = a.runtime.host_alloc(64)

    def proc():
        yield from a.endpoint.put(7, src.addr, 0x1000, 64, src_kind=BufferKind.HOST)

    with pytest.raises(ValueError):
        sim.run_process(proc())


def test_double_registration_overlap_rejected():
    sim, cluster = make_cluster(2, 1)
    a = cluster.nodes[0]
    buf = a.runtime.host_alloc(kib(8))

    def proc():
        yield from a.endpoint.register(buf.addr, kib(8))
        with pytest.raises(ValueError, match="overlaps"):
            yield from a.endpoint.register(buf.addr + 100, 64)

    sim.run_process(proc())


def test_put_from_unknown_pointer_raises():
    sim, cluster = make_cluster(2, 1)
    a = cluster.nodes[0]

    def proc():
        yield from a.endpoint.put(1, 0xBAD_ADD7, 0x1000, 64, src_kind=None)

    with pytest.raises(KeyError):
        sim.run_process(proc())


def test_gpu_tx_response_size_mismatch_detected():
    sim, cluster = make_cluster(2, 1)
    card = cluster.nodes[0].card
    from repro.apenet.gpu_tx import _Chunk
    from repro.sim import Event

    card.gpu_tx.pending.append(
        _Chunk(job=None, seq=0, offset=0, nbytes=4096, last=True, injected=Event(sim))
    )
    with pytest.raises(RuntimeError, match="response size"):
        card.gpu_tx.on_response(1024, None)


def test_unexpected_gpu_response_detected():
    sim, cluster = make_cluster(2, 1)
    card = cluster.nodes[0].card
    with pytest.raises(RuntimeError, match="unexpected GPU TX response"):
        card.gpu_tx.on_response(4096, None)


def test_card_regs_reject_garbage_payload():
    sim, cluster = make_cluster(2, 1)
    card = cluster.nodes[0].card
    with pytest.raises(TypeError, match="expects TxJob"):
        card._on_regs_write(card.regs_window.base, 64, "not-a-job")


def test_card_windows_are_write_only():
    sim, cluster = make_cluster(2, 1)
    card = cluster.nodes[0].card
    with pytest.raises(PermissionError):
        card.describe_read(card.regs_window.base)
    with pytest.raises(KeyError):
        card.describe_write(0xDEAD_0000_0000)


def test_registration_cost_scales_with_pages():
    sim, cluster = make_cluster(2, 1)
    a = cluster.nodes[0]
    small = a.gpu.alloc(kib(64))  # one 64 KiB page
    big = a.gpu.alloc(kib(1024))  # sixteen pages

    def cost_of(buf):
        def proc():
            t0 = sim.now
            yield from a.endpoint.register(buf.addr, buf.size)
            return sim.now - t0

        return sim.run_process(proc())

    t_small = cost_of(small)
    t_big = cost_of(big)
    # 15 extra pages at the per-page mapping cost.
    assert t_big - t_small == pytest.approx(15 * us(0.2), rel=0.01)
